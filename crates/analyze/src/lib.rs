//! # simcov-analyze — static fault-collapsing analysis
//!
//! A fault campaign over the paper's error model (output and transfer
//! errors, Definitions 1–4) simulates one mutant per fault. Much of that
//! work is provably redundant *before any simulation runs*: faults on
//! unreachable states can never be excited; every effective output error
//! at one `(state, input)` cell is detected at the cell's first
//! traversal, whatever the wrong label; and two transfer errors at the
//! same cell are indistinguishable whenever their post-excitation joint
//! behaviours are bisimilar. This crate computes those equivalences
//! whole-model and packages them as a
//! [`simcov_core::CollapseCertificate`] that
//! [`simcov_core::FaultCampaign`] / [`simcov_core::ResilientCampaign`]
//! consume (`--collapse on|off|verify` in the CLI):
//!
//! * [`analyze_collapse`] — the analysis: reachability fixpoint,
//!   per-cell output/ineffective grouping, transfer-fault equivalence by
//!   partition refinement ([`simcov_fsm::refine_partition`]) over the
//!   fault-patched joint successor structure, and class dominance edges;
//! * [`passes`] — `SC05x` lint passes surfacing collapse-blocking
//!   ambiguities and degenerate (never-detectable) classes through the
//!   `simcov-lint` diagnostic pipeline.
//!
//! The soundness argument — why class members have *identical*
//! [`simcov_core::FaultOutcome`]s under every test set in the fault
//! domain — is spelled out in DESIGN.md §13 and audited end-to-end by
//! `--collapse verify` plus this crate's property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapse;
pub mod passes;

pub use collapse::{
    analyze_collapse, AnalyzeError, AnalyzeOptions, AnalyzeStats, CollapseAnalysis,
};
pub use passes::{analyze_passes, lint_analysis, AnalyzeTarget};

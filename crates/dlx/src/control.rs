//! The pipeline-control netlist: the initial abstract test model of
//! Fig 3(a).
//!
//! Built the way Section 7.1 describes: the datapath is abstracted away,
//! leaving the individual controllers for the five pipeline stages, the
//! interlock unit and the branch-select multiplexor. Signals from the
//! datapath (including the instruction word) become primary inputs;
//! control signals to the datapath become primary outputs.
//!
//! Inventory (matching the paper's 160 latches / 41 PIs / 32 POs):
//!
//! | module      | latches | contents |
//! |-------------|---------|----------|
//! | `fetch`     | 24      | 16-state one-hot fetch sequencer, instruction-buffer valid bits, squash bookkeeping |
//! | `id`        | 4       | decode valid/stall/branch/jump flags |
//! | `ex`        | 19      | 10-class one-hot opcode register, 5-bit destination address, valid, is-load, link (r31) and upper-bank flags |
//! | `mem`       | 10      | 4-class one-hot register, 5-bit destination address, valid |
//! | `wb`        | 2       | write-enable, valid |
//! | `interlock` | 24      | hazard-history shift register, 8-state one-hot stall sequencer, comparator pipeline flags |
//! | `branch`    | 3       | pending / squash / select |
//! | `sync_out`  | 42      | synchronizing latches on the 24 control signals (18 double-registered) |
//! | `obs`       | 32      | instruction trace register (observation only) |
//!
//! Primary inputs (41): the 32-bit instruction word, `zero_flag`,
//! `mem_ready`, `psw[0..5]`, `icache_stall`, `perf_event`.
//! Primary outputs (32): 24 synchronized control signals + 8 trace
//! signatures.

use simcov_netlist::{Netlist, SignalId, Word};

/// Instruction-word bit positions.
pub mod fields {
    /// Opcode bits `instr[26..32]`.
    pub const OP: (usize, usize) = (26, 6);
    /// `rs1` bits `instr[21..26]`.
    pub const RS1: (usize, usize) = (21, 5);
    /// `rs2` / I-type `rd` bits `instr[16..21]`.
    pub const RFIELD: (usize, usize) = (16, 5);
    /// R-type `rd` bits `instr[11..16]`.
    pub const RD_R: (usize, usize) = (11, 5);
    /// Low six bits of the R-type `func` field `instr[0..6]`.
    pub const FUNC: (usize, usize) = (0, 6);
}

/// The control signals of the design, in output order (the first 18 are
/// double-registered through `sync_out`, the rest single-registered).
pub const CONTROL_SIGNALS: [&str; 24] = [
    "stall",
    "squash",
    "br_sel",
    "rf_wen",
    "alu_op0",
    "alu_op1",
    "alu_op2",
    "alu_op3",
    "alu_op4",
    "alu_src",
    "mem_read",
    "mem_write",
    "mem_be0",
    "mem_be1",
    "mem_be2",
    "mem_be3",
    "wb_sel0",
    "wb_sel1",
    "pc_src0",
    "pc_src1",
    "fetch_en",
    "id_en",
    "ex_en",
    "imm_sel",
];

/// The four control signals that survive the final abstraction (the
/// paper's 4 primary outputs).
pub const FINAL_OUTPUTS: [&str; 4] = ["stall", "squash", "br_sel", "rf_wen"];

/// Names of the instruction-word upper register-address bits tied to zero
/// by the "4 registers instead of 32" abstraction step.
pub fn upper_addr_bit_names() -> Vec<String> {
    let mut v = Vec::new();
    for (lo, w) in [fields::RS1, fields::RFIELD, fields::RD_R] {
        for b in (lo + 2)..(lo + w) {
            v.push(format!("instr[{b}]"));
        }
    }
    v
}

/// Member names of the EX-stage 10-class one-hot register, in code order
/// (matches [`crate::isa::OpClass::ALL`]).
pub fn ex_class_names() -> Vec<String> {
    (0..10).map(|i| format!("ex.class[{i}]")).collect()
}

/// Member names of the MEM-stage 4-class one-hot register, in code order
/// (`bubble`, `load`, `store`, `other`).
pub fn mem_class_names() -> Vec<String> {
    (0..4).map(|i| format!("mem.class[{i}]")).collect()
}

/// Opcode-class decode signals computed from an instruction word.
struct ClassDecode {
    /// One signal per [`crate::isa::OpClass`], in `ALL` order.
    class: Vec<SignalId>,
    uses_rs1: SignalId,
    uses_rs2: SignalId,
    writes_reg: SignalId,
    is_rtype: SignalId,
    is_jump_any: SignalId,
    is_branch: SignalId,
}

fn op_in(n: &mut Netlist, op: &Word, codes: &[u32]) -> SignalId {
    let mut acc = n.constant(false);
    for &c in codes {
        let hit = op.eq_const(n, c as u64);
        acc = n.or(acc, hit);
    }
    acc
}

fn decode_classes(n: &mut Netlist, op: &Word, func: &Word) -> ClassDecode {
    use crate::isa::opcode::*;
    let is_rtype_op = op.eq_const(n, OP_RTYPE as u64);
    // R-type is legal only for the 16 defined functions (func < 16, i.e.
    // the top two of our six func bits are zero).
    let f4 = n.not(func.bit(4));
    let f5 = n.not(func.bit(5));
    let func_legal = n.and(f4, f5);
    let alu = n.and(is_rtype_op, func_legal);
    let aluimm = op_in(
        n,
        op,
        &[
            OP_ADDI, OP_ADDUI, OP_SUBI, OP_SUBUI, OP_ANDI, OP_ORI, OP_XORI, OP_LHI, OP_SLLI,
            OP_SRLI, OP_SRAI, OP_SEQI, OP_SNEI, OP_SLTI, OP_SGTI, OP_SLEI, OP_SGEI,
        ],
    );
    let load = op_in(n, op, &[OP_LB, OP_LH, OP_LW, OP_LBU, OP_LHU]);
    let store = op_in(n, op, &[OP_SB, OP_SH, OP_SW]);
    let branch = op_in(n, op, &[OP_BEQZ, OP_BNEZ]);
    let jump = op.eq_const(n, OP_J as u64);
    let jumplink = op.eq_const(n, OP_JAL as u64);
    let jumpreg = op_in(n, op, &[OP_JR, OP_JALR]);
    let halt = op.eq_const(n, OP_HALT as u64);
    // Everything else (including explicit NOP and illegal opcodes)
    // decodes as a NOP, keeping the class vector one-hot by construction.
    let mut any_other = n.constant(false);
    for s in [
        alu, aluimm, load, store, branch, jump, jumplink, jumpreg, halt,
    ] {
        any_other = n.or(any_other, s);
    }
    let nop = n.not(any_other);
    let is_jalr = op.eq_const(n, OP_JALR as u64);
    let uses_rs1 = {
        let mut u = n.or(alu, aluimm);
        u = n.or(u, load);
        u = n.or(u, store);
        u = n.or(u, branch);
        n.or(u, jumpreg)
    };
    let uses_rs2 = n.or(alu, store);
    let writes_reg = {
        let mut w = n.or(alu, aluimm);
        w = n.or(w, load);
        w = n.or(w, jumplink);
        n.or(w, is_jalr)
    };
    let is_jump_any = {
        let j = n.or(jump, jumplink);
        n.or(j, jumpreg)
    };
    ClassDecode {
        class: vec![
            nop, alu, aluimm, load, store, branch, jump, jumplink, jumpreg, halt,
        ],
        uses_rs1,
        uses_rs2,
        writes_reg,
        is_rtype: alu,
        is_jump_any,
        is_branch: branch,
    }
}

/// Builds the initial abstract test model of Fig 3(a).
///
/// # Example
///
/// ```
/// let n = simcov_dlx::control::initial_control_netlist();
/// let s = n.stats();
/// assert_eq!((s.latches, s.inputs, s.outputs), (160, 41, 32));
/// ```
pub fn initial_control_netlist() -> Netlist {
    let mut n = Netlist::new();

    // ---------------- primary inputs ----------------
    let instr = Word::inputs(&mut n, "instr", 32);
    let zero_flag = n.add_input("zero_flag");
    let mem_ready = n.add_input("mem_ready");
    let psw = Word::inputs(&mut n, "psw", 5);
    let icache_stall = n.add_input("icache_stall");
    let perf_event = n.add_input("perf_event");

    let op = instr.slice(fields::OP.0, fields::OP.1);
    let func = instr.slice(fields::FUNC.0, fields::FUNC.1);
    let rs1_f = instr.slice(fields::RS1.0, fields::RS1.1);
    let rfield = instr.slice(fields::RFIELD.0, fields::RFIELD.1);
    let rd_r = instr.slice(fields::RD_R.0, fields::RD_R.1);

    let dec = decode_classes(&mut n, &op, &func);

    // ---------------- state declarations ----------------
    let mut fstate = Vec::new();
    for i in 0..16 {
        fstate.push(n.add_latch_in(format!("fetch.state[{i}]"), i == 0, "fetch"));
    }
    let fstate_out: Vec<SignalId> = fstate.iter().map(|&l| n.latch_output(l)).collect();
    let if_valid = n.add_latch_in("fetch.if_valid", true, "fetch");
    let if_valid_o = n.latch_output(if_valid);
    let f_brpend = n.add_latch_in("fetch.branch_pending", false, "fetch");
    let f_brpend_o = n.latch_output(f_brpend);
    let (squash_cnt, squash_cnt_h) = Word::register(&mut n, "fetch.squash_cnt", 2, 0, "fetch");
    let (ibuf, ibuf_h) = Word::register(&mut n, "fetch.ibuf_valid", 4, 0, "fetch");

    let id_valid = n.add_latch_in("id.valid", true, "id");
    let id_valid_o = n.latch_output(id_valid);
    let id_stallflag = n.add_latch_in("id.stallflag", false, "id");
    let id_stallflag_o = n.latch_output(id_stallflag);
    let id_is_branch = n.add_latch_in("id.is_branch", false, "id");
    let id_is_branch_o = n.latch_output(id_is_branch);
    let id_is_jump = n.add_latch_in("id.is_jump", false, "id");
    let id_is_jump_o = n.latch_output(id_is_jump);

    let mut ex_class = Vec::new();
    for i in 0..10 {
        ex_class.push(n.add_latch_in(format!("ex.class[{i}]"), i == 0, "ex"));
    }
    let ex_class_o: Vec<SignalId> = ex_class.iter().map(|&l| n.latch_output(l)).collect();
    let (ex_dest, ex_dest_h) = Word::register(&mut n, "ex.dest", 5, 0, "ex");
    let ex_valid = n.add_latch_in("ex.valid", false, "ex");
    let ex_valid_o = n.latch_output(ex_valid);
    let ex_is_load = n.add_latch_in("ex.is_load", false, "ex");
    let ex_is_load_o = n.latch_output(ex_is_load);
    let ex_link_flag = n.add_latch_in("ex.link_flag", false, "ex");
    let ex_link_flag_o = n.latch_output(ex_link_flag);
    let ex_hi_flag = n.add_latch_in("ex.hi_flag", false, "ex");
    let ex_hi_flag_o = n.latch_output(ex_hi_flag);

    let mut mem_class = Vec::new();
    for i in 0..4 {
        mem_class.push(n.add_latch_in(format!("mem.class[{i}]"), i == 0, "mem"));
    }
    let mem_class_o: Vec<SignalId> = mem_class.iter().map(|&l| n.latch_output(l)).collect();
    let (mem_dest, mem_dest_h) = Word::register(&mut n, "mem.dest", 5, 0, "mem");
    let mem_valid = n.add_latch_in("mem.valid", false, "mem");
    let mem_valid_o = n.latch_output(mem_valid);

    let wb_wen = n.add_latch_in("wb.wen", false, "wb");
    let wb_wen_o = n.latch_output(wb_wen);
    let wb_valid = n.add_latch_in("wb.valid", false, "wb");
    let wb_valid_o = n.latch_output(wb_valid);

    let (haz_hist, haz_hist_h) = Word::register(&mut n, "interlock.hist", 8, 0, "interlock");
    let mut ilk_state = Vec::new();
    for i in 0..8 {
        ilk_state.push(n.add_latch_in(format!("interlock.state[{i}]"), i == 0, "interlock"));
    }
    let ilk_state_o: Vec<SignalId> = ilk_state.iter().map(|&l| n.latch_output(l)).collect();
    let ld_prev1 = n.add_latch_in("interlock.ld_prev1", false, "interlock");
    let ld_prev1_o = n.latch_output(ld_prev1);
    let ld_prev2 = n.add_latch_in("interlock.ld_prev2", false, "interlock");
    let ld_prev2_o = n.latch_output(ld_prev2);
    let (cmp_sync, cmp_sync_h) = Word::register(&mut n, "interlock.cmp_sync", 2, 0, "interlock");
    let (ilk_flags, ilk_flags_h) = Word::register(&mut n, "interlock.flags", 4, 0, "interlock");

    let br_pending = n.add_latch_in("branch.pending", false, "branch");
    let br_pending_o = n.latch_output(br_pending);
    let br_squash = n.add_latch_in("branch.squash", false, "branch");
    let br_squash_o = n.latch_output(br_squash);
    let br_sel = n.add_latch_in("branch.sel", false, "branch");
    let br_sel_o = n.latch_output(br_sel);

    // ---------------- combinational control ----------------
    // Destination-address field of the instruction at decode: R-type uses
    // rd, I-type (including JAL/JALR by input-format convention) uses the
    // rs2/rd field.
    let dest_field = Word::mux(&mut n, dec.is_rtype, &rd_r, &rfield);

    // Load-use interlock comparators.
    let m1 = ex_dest.eq_word(&mut n, &rs1_f);
    let m2 = ex_dest.eq_word(&mut n, &rfield);
    let raw_rs1 = n.and(m1, dec.uses_rs1);
    let raw_rs2 = n.and(m2, dec.uses_rs2);
    let raw_any = n.or(raw_rs1, raw_rs2);
    let ex_dest_nz = ex_dest.any(&mut n);
    let not_stallflag = n.not(id_stallflag_o);
    let mut load_stall = n.and(ex_is_load_o, ex_valid_o);
    load_stall = n.and(load_stall, raw_any);
    load_stall = n.and(load_stall, ex_dest_nz);
    load_stall = n.and(load_stall, id_valid_o);
    load_stall = n.and(load_stall, not_stallflag);

    // Memory-wait stall.
    let mem_op = n.or(mem_class_o[1], mem_class_o[2]);
    let not_ready = n.not(mem_ready);
    let mem_stall = n.and(mem_op, not_ready);

    // Redundant deadlock guard through the interlock state (provably
    // inert: two consecutive load stalls are impossible because of the
    // `stallflag` guard, so the sequencer never advances). This is
    // exactly the kind of state the paper's "remove interlock registers"
    // step proves away.
    let mut guard = n.and(ilk_state_o[7], haz_hist.bit(7));
    let g1 = n.and(cmp_sync.bit(0), cmp_sync.bit(1));
    guard = n.and(guard, g1);
    let g2 = n.and(ilk_flags.bit(3), ld_prev2_o);
    guard = n.and(guard, g2);

    // The paper's own structure: `assign stall = load_stall | mem_stall`.
    let mut stall = n.or(load_stall, mem_stall);
    stall = n.or(stall, guard);

    // Branch resolution at EX: the datapath's condition evaluation
    // arrives as `zero_flag`; the PSW inputs select extended conditions.
    let mut ext_cond = n.constant(false);
    for i in 0..5 {
        let t = n.and(psw.bit(i), func.bit(i));
        ext_cond = n.or(ext_cond, t);
    }
    let zf5 = n.and(zero_flag, func.bit(5));
    ext_cond = n.or(ext_cond, zf5);
    let cond = n.or(zero_flag, ext_cond);
    let ex_is_jump_any = {
        let j = n.or(ex_class_o[6], ex_class_o[7]);
        n.or(j, ex_class_o[8])
    };
    let br_taken = n.and(ex_class_o[5], cond);
    let taken = n.or(br_taken, ex_is_jump_any);
    let squash = n.or(taken, br_squash_o);

    let not_stall = n.not(stall);
    let not_squash = n.not(squash);
    let advance = n.and(not_stall, not_squash);

    // ---------------- next-state functions ----------------
    // fetch sequencer: rotate when fetching, hold on stall, reset on
    // squash.
    let f_go = {
        let ni = n.not(icache_stall);
        n.and(not_stall, ni)
    };
    for i in 0..16 {
        let prev = fstate_out[(i + 15) % 16];
        let rot = n.mux(f_go, prev, fstate_out[i]);
        let is0 = n.constant(i == 0);
        let nx = n.mux(squash, is0, rot);
        n.set_latch_next(fstate[i], nx);
    }
    {
        let ni = n.not(icache_stall);
        let v = n.or(ni, f_brpend_o);
        let nx = n.mux(squash, ni, v);
        n.set_latch_next(if_valid, nx);
        n.set_latch_next(f_brpend, squash);
        // Squash counter: shift in squash events.
        let c0 = squash;
        let c1 = n.and(squash_cnt.bit(0), squash);
        squash_cnt_h.set_next(&mut n, &Word::from_bits(vec![c0, c1]));
        // Instruction-buffer valid shift register.
        let b0 = f_go;
        let b1 = n.and(ibuf.bit(0), f_go);
        let b2 = n.and(ibuf.bit(1), f_go);
        let b3 = n.and(ibuf.bit(2), f_go);
        ibuf_h.set_next(&mut n, &Word::from_bits(vec![b0, b1, b2, b3]));
    }

    // id flags.
    {
        let v = n.and(if_valid_o, not_squash);
        let nx = n.mux(stall, id_valid_o, v);
        n.set_latch_next(id_valid, nx);
        n.set_latch_next(id_stallflag, stall);
        let brn = n.and(dec.is_branch, advance);
        n.set_latch_next(id_is_branch, brn);
        let jmpn = n.and(dec.is_jump_any, advance);
        n.set_latch_next(id_is_jump, jmpn);
    }

    // ex stage: classes advance from the decoded input instruction;
    // bubbles (Nop-hot) on stall or squash.
    {
        let issue = {
            let t = n.and(id_valid_o, advance);
            n.and(t, if_valid_o)
        };
        let mut others = n.constant(false);
        for (cls, &latch) in dec.class.iter().zip(&ex_class).skip(1) {
            let nx = n.and(*cls, issue);
            n.set_latch_next(latch, nx);
            others = n.or(others, nx);
        }
        // Nop is hot whenever no other class is (one-hot by construction).
        let nop_next = n.not(others);
        n.set_latch_next(ex_class[0], nop_next);

        let issue_w = n.and(issue, dec.writes_reg);
        let gated = dest_field.gate(&mut n, issue_w);
        ex_dest_h.set_next(&mut n, &gated);
        n.set_latch_next(ex_valid, issue);
        let ldn = n.and(dec.class[3], issue);
        n.set_latch_next(ex_is_load, ldn);
        let is31 = dest_field.eq_const(&mut n, 31);
        let linkn = n.and(is31, issue_w);
        n.set_latch_next(ex_link_flag, linkn);
        let hin = n.and(dest_field.bit(4), issue_w);
        n.set_latch_next(ex_hi_flag, hin);
    }

    // mem stage.
    {
        let to_load = n.and(ex_valid_o, ex_class_o[3]);
        let to_store = n.and(ex_valid_o, ex_class_o[4]);
        let mut oth = n.or(ex_class_o[1], ex_class_o[2]);
        oth = n.or(oth, ex_class_o[7]);
        oth = n.or(oth, ex_class_o[8]);
        oth = n.or(oth, ex_class_o[9]);
        let to_other = n.and(ex_valid_o, oth);
        let nv = n.not(ex_valid_o);
        let mut bub = n.or(nv, ex_class_o[0]);
        bub = n.or(bub, ex_class_o[5]);
        bub = n.or(bub, ex_class_o[6]);
        // Hold the MEM stage while waiting for memory.
        let hold = mem_stall;
        let nb = n.mux(hold, mem_class_o[0], bub);
        let nl = n.mux(hold, mem_class_o[1], to_load);
        let nst = n.mux(hold, mem_class_o[2], to_store);
        let no = n.mux(hold, mem_class_o[3], to_other);
        n.set_latch_next(mem_class[0], nb);
        n.set_latch_next(mem_class[1], nl);
        n.set_latch_next(mem_class[2], nst);
        n.set_latch_next(mem_class[3], no);
        let dn = Word::mux(&mut n, hold, &mem_dest, &ex_dest);
        mem_dest_h.set_next(&mut n, &dn);
        let vn = n.mux(hold, mem_valid_o, ex_valid_o);
        n.set_latch_next(mem_valid, vn);
    }

    // wb stage.
    {
        let writes = n.or(mem_class_o[1], mem_class_o[3]);
        let dnz = mem_dest.any(&mut n);
        let mut wen = n.and(mem_valid_o, writes);
        wen = n.and(wen, dnz);
        n.set_latch_next(wb_wen, wen);
        let nbub = n.not(mem_class_o[0]);
        let v = n.and(mem_valid_o, nbub);
        n.set_latch_next(wb_valid, v);
    }

    // interlock bookkeeping.
    {
        let mut hist_bits = vec![load_stall];
        for i in 0..7 {
            hist_bits.push(haz_hist.bit(i));
        }
        haz_hist_h.set_next(&mut n, &Word::from_bits(hist_bits));
        let adv = n.and(haz_hist.bit(0), haz_hist.bit(1));
        for i in 0..8 {
            let prev = ilk_state_o[(i + 7) % 8];
            let nx = n.mux(adv, prev, ilk_state_o[i]);
            n.set_latch_next(ilk_state[i], nx);
        }
        n.set_latch_next(ld_prev1, ex_is_load_o);
        n.set_latch_next(ld_prev2, ld_prev1_o);
        cmp_sync_h.set_next(&mut n, &Word::from_bits(vec![raw_rs1, raw_rs2]));
        let waw = {
            let t = ex_dest.eq_word(&mut n, &mem_dest);
            let u = n.and(ex_valid_o, mem_valid_o);
            n.and(t, u)
        };
        let f1 = ilk_flags.bit(0);
        let f2 = ilk_flags.bit(1);
        let f3 = ilk_flags.bit(2);
        ilk_flags_h.set_next(&mut n, &Word::from_bits(vec![waw, f1, f2, f3]));
    }

    // branch unit.
    {
        let pend = {
            let t = n.or(id_is_branch_o, id_is_jump_o);
            n.and(t, not_squash)
        };
        n.set_latch_next(br_pending, pend);
        n.set_latch_next(br_squash, taken);
        let seln = n.mux(br_pending_o, id_is_jump_o, br_sel_o);
        n.set_latch_next(br_sel, seln);
    }

    // ---------------- outputs ----------------
    let rf_wen = n.and(wb_wen_o, wb_valid_o);
    let is_alu_like = n.or(dec.class[1], dec.class[2]);
    let alu_ops: Vec<SignalId> = (0..5)
        .map(|i| {
            let b = func.bit(i);
            n.and(b, is_alu_like)
        })
        .collect();
    let alu_src = dec.class[2];
    let mem_read = mem_class_o[1];
    let mem_write = mem_class_o[2];
    let mem_be: Vec<SignalId> = (0..4)
        .map(|i| {
            let b0 = op.bit(i % 2);
            let b1 = op.bit(3 - (i % 2));
            let t = n.xor(b0, b1);
            n.and(t, mem_op)
        })
        .collect();
    let wb_sel0 = mem_class_o[1]; // select load data
    let wb_sel1 = ex_link_flag_o; // select link value
    let pc_src0 = squash;
    let pc_src1 = br_sel_o;
    let fetch_en = {
        let mut early = n.constant(false);
        for &s in fstate_out.iter().take(8) {
            early = n.or(early, s);
        }
        let mut en = n.and(early, not_stall);
        // Throttle on a full instruction buffer or a recent double squash.
        let buf_full = ibuf.bit(3);
        let nb = n.not(buf_full);
        en = n.and(en, nb);
        let double_squash = squash_cnt.bit(1);
        let nd = n.not(double_squash);
        n.and(en, nd)
    };
    let id_en = not_stall;
    let ex_en = {
        let h = n.not(ex_hi_flag_o);
        n.and(advance, h)
    };
    let imm_sel = {
        let mut t = n.or(dec.class[2], dec.class[3]);
        t = n.or(t, dec.class[4]);
        t
    };
    let signals: Vec<SignalId> = vec![
        stall, squash, br_sel_o, rf_wen, alu_ops[0], alu_ops[1], alu_ops[2], alu_ops[3],
        alu_ops[4], alu_src, mem_read, mem_write, mem_be[0], mem_be[1], mem_be[2], mem_be[3],
        wb_sel0, wb_sel1, pc_src0, pc_src1, fetch_en, id_en, ex_en, imm_sel,
    ];
    for (idx, sig) in signals.into_iter().enumerate() {
        let name = CONTROL_SIGNALS[idx];
        let double = idx < 18;
        let l1 = n.add_latch_in(format!("sync.{name}.0"), false, "sync_out");
        n.set_latch_next(l1, sig);
        let l1o = n.latch_output(l1);
        let out = if double {
            let l2 = n.add_latch_in(format!("sync.{name}.1"), false, "sync_out");
            n.set_latch_next(l2, l1o);
            n.latch_output(l2)
        } else {
            l1o
        };
        n.add_output(name, out);
    }

    // Observation module: instruction trace register + perf signatures.
    // Every bit is scrambled with the perf-event strobe, as trace
    // compactors do — which also means no trace bit is ever a constant.
    let mut obs_out = Vec::new();
    for i in 0..32 {
        let l = n.add_latch_in(format!("obs.trace[{i}]"), false, "obs");
        let src = n.xor(instr.bit(i), perf_event);
        n.set_latch_next(l, src);
        obs_out.push(n.latch_output(l));
    }
    for g in 0..8 {
        let mut sig = n.constant(false);
        for b in 0..4 {
            sig = n.xor(sig, obs_out[g * 4 + b]);
        }
        n.add_output(format!("trace_sig{g}"), sig);
    }

    debug_assert!(n.check().is_empty(), "{:?}", n.check());
    n
}

/// Encodes the standard 41-bit input vector of the initial control model
/// from an instruction word and status bits.
pub fn initial_inputs(
    instr_word: u32,
    zero_flag: bool,
    mem_ready: bool,
    psw: u8,
    icache_stall: bool,
    perf_event: bool,
) -> Vec<bool> {
    let mut v = Vec::with_capacity(41);
    for b in 0..32 {
        v.push((instr_word >> b) & 1 == 1);
    }
    v.push(zero_flag);
    v.push(mem_ready);
    for b in 0..5 {
        v.push((psw >> b) & 1 == 1);
    }
    v.push(icache_stall);
    v.push(perf_event);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Instr, MemWidth, Reg};
    use simcov_netlist::SimState;

    #[test]
    fn figure_3a_statistics() {
        let n = initial_control_netlist();
        let s = n.stats();
        assert_eq!(s.latches, 160, "Fig 3(a): 160 state elements");
        assert_eq!(s.inputs, 41, "Fig 3(a): 41 primary inputs");
        assert_eq!(s.outputs, 32, "Fig 3(a): 32 primary outputs");
    }

    #[test]
    fn module_inventory() {
        let n = initial_control_netlist();
        let count = |m: &str| n.module_latches(m).len();
        assert_eq!(count("fetch"), 24);
        assert_eq!(count("id"), 4);
        assert_eq!(count("ex"), 19);
        assert_eq!(count("mem"), 10);
        assert_eq!(count("wb"), 2);
        assert_eq!(count("interlock"), 24);
        assert_eq!(count("branch"), 3);
        assert_eq!(count("sync_out"), 42);
        assert_eq!(count("obs"), 32);
    }

    /// Drives the control with an instruction stream; returns the
    /// `(stall, squash)` output history (synchronized outputs, so events
    /// appear two cycles after the combinational condition).
    fn drive(
        n: &simcov_netlist::Netlist,
        instrs: &[u32],
        status: impl Fn(usize) -> (bool, bool),
    ) -> Vec<(bool, bool)> {
        let mut sim = SimState::new(n);
        let mut hist = Vec::new();
        for (cyc, &w) in instrs.iter().enumerate() {
            let (zf, ready) = status(cyc);
            let inputs = initial_inputs(w, zf, ready, 0, false, false);
            let outs = sim.step(n, &inputs);
            hist.push((outs[0], outs[1]));
        }
        hist
    }

    #[test]
    fn load_use_hazard_asserts_stall() {
        let n = initial_control_netlist();
        let lw = Instr::Load {
            width: MemWidth::Word,
            signed: true,
            rd: Reg(2),
            rs1: Reg(1),
            imm: 0,
        }
        .encode();
        let dep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(2),
            rs2: Reg(2),
        }
        .encode();
        let nop = Instr::Nop.encode();
        let hist = drive(&n, &[lw, dep, nop, nop, nop, nop, nop, nop], |_| {
            (false, true)
        });
        assert!(
            hist.iter().any(|&(s, _)| s),
            "stall must assert somewhere: {hist:?}"
        );
        // Without the dependence, no stall.
        let indep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(1),
        }
        .encode();
        let hist = drive(&n, &[lw, indep, nop, nop, nop, nop, nop, nop], |_| {
            (false, true)
        });
        assert!(hist.iter().all(|&(s, _)| !s), "no stall expected: {hist:?}");
    }

    #[test]
    fn branch_causes_squash() {
        let n = initial_control_netlist();
        let br = Instr::Branch {
            on_zero: true,
            rs1: Reg(1),
            imm: 4,
        }
        .encode();
        let nop = Instr::Nop.encode();
        let hist = drive(&n, &[br, nop, nop, nop, nop, nop, nop], |_| (true, true));
        assert!(hist.iter().any(|&(_, q)| q), "squash must assert: {hist:?}");
        let hist = drive(&n, &[br, nop, nop, nop, nop, nop, nop], |_| (false, true));
        assert!(
            hist.iter().all(|&(_, q)| !q),
            "no squash expected: {hist:?}"
        );
    }

    #[test]
    fn jump_always_squashes() {
        let n = initial_control_netlist();
        let j = Instr::Jump {
            link: false,
            offset: 4,
        }
        .encode();
        let nop = Instr::Nop.encode();
        let hist = drive(&n, &[j, nop, nop, nop, nop, nop], |_| (false, true));
        assert!(hist.iter().any(|&(_, q)| q), "{hist:?}");
    }

    #[test]
    fn mem_wait_stalls_persistently() {
        let n = initial_control_netlist();
        let sw = Instr::Store {
            width: MemWidth::Word,
            rs2: Reg(2),
            rs1: Reg(1),
            imm: 0,
        }
        .encode();
        let nop = Instr::Nop.encode();
        let hist = drive(&n, &[sw, nop, nop, nop, nop, nop, nop, nop], |_| {
            (false, false)
        });
        let stalls = hist.iter().filter(|&&(s, _)| s).count();
        assert!(stalls >= 3, "persistent mem stall expected: {hist:?}");
    }

    #[test]
    fn nop_stream_is_quiet() {
        let n = initial_control_netlist();
        let nop = Instr::Nop.encode();
        let hist = drive(&n, &[nop; 10], |_| (false, true));
        assert!(hist.iter().all(|&(s, q)| !s && !q), "{hist:?}");
    }

    #[test]
    fn rf_wen_follows_alu_instruction() {
        let n = initial_control_netlist();
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        }
        .encode();
        let nop = Instr::Nop.encode();
        let mut sim = SimState::new(&n);
        let mut wen_hist = Vec::new();
        for &w in &[add, nop, nop, nop, nop, nop, nop, nop] {
            let outs = sim.step(&n, &initial_inputs(w, false, true, 0, false, false));
            wen_hist.push(outs[3]);
        }
        assert!(
            wen_hist.iter().any(|&w| w),
            "rf_wen must pulse: {wen_hist:?}"
        );
        // An instruction writing r0 must not enable the write port.
        let add0 = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(0),
            rs1: Reg(1),
            rs2: Reg(2),
        }
        .encode();
        let mut sim = SimState::new(&n);
        let mut wen_hist = Vec::new();
        for &w in &[add0, nop, nop, nop, nop, nop, nop, nop] {
            let outs = sim.step(&n, &initial_inputs(w, false, true, 0, false, false));
            wen_hist.push(outs[3]);
        }
        assert!(
            wen_hist.iter().all(|&w| !w),
            "r0 write must be discarded: {wen_hist:?}"
        );
    }

    #[test]
    fn ex_class_stays_one_hot() {
        let n = initial_control_netlist();
        let class_latches: Vec<usize> = ex_class_names()
            .iter()
            .map(|nm| n.latch_by_name(nm).unwrap().index())
            .collect();
        let mut rng = simcov_prng::Prng::seed_from_u64(42);
        let mut sim = SimState::new(&n);
        for _ in 0..200 {
            let w = rng.next_u32();
            let zf = rng.gen_bool(0.5);
            let ready = rng.gen_bool(0.8);
            let dest = rng.next_u64() as u8 & 31;
            sim.step(&n, &initial_inputs(w, zf, ready, dest, false, false));
            let hot = class_latches.iter().filter(|&&i| sim.state()[i]).count();
            assert_eq!(hot, 1, "ex.class must stay one-hot");
        }
    }

    #[test]
    fn mem_class_stays_one_hot() {
        let n = initial_control_netlist();
        let class_latches: Vec<usize> = mem_class_names()
            .iter()
            .map(|nm| n.latch_by_name(nm).unwrap().index())
            .collect();
        let mut rng = simcov_prng::Prng::seed_from_u64(7);
        let mut sim = SimState::new(&n);
        for _ in 0..200 {
            let w = rng.next_u32();
            let zf = rng.gen_bool(0.5);
            sim.step(
                &n,
                &initial_inputs(w, zf, rng.gen_bool(0.7), 0, false, false),
            );
            let hot = class_latches.iter().filter(|&&i| sim.state()[i]).count();
            assert_eq!(hot, 1, "mem.class must stay one-hot");
        }
    }

    #[test]
    fn interlock_sequencer_never_advances() {
        // The invariant justifying the "remove interlock registers" step:
        // the 8-state sequencer is stuck at its initial state because two
        // consecutive load stalls are impossible.
        let n = initial_control_netlist();
        let state0 = n.latch_by_name("interlock.state[0]").unwrap().index();
        let mut rng = simcov_prng::Prng::seed_from_u64(99);
        let mut sim = SimState::new(&n);
        for _ in 0..500 {
            let w = rng.next_u32();
            let zf = rng.gen_bool(0.5);
            sim.step(
                &n,
                &initial_inputs(w, zf, rng.gen_bool(0.9), 0, false, false),
            );
            assert!(
                sim.state()[state0],
                "interlock sequencer must stay at state 0"
            );
        }
    }
}

#!/usr/bin/env sh
# Regenerates the committed perf baseline (ci/bench-baseline.json) that
# the CI perf job gates against via `simcov-bench --check`.
#
# Run from the workspace root on a quiet machine:
#
#   scripts/bench-baseline.sh
#
# All benchmark workloads use fixed seeds (compiled in), so the set of
# entries is deterministic; only the medians depend on the host. Commit
# the regenerated file together with any change that intentionally
# shifts performance by more than the check tolerance (25%).
set -eu

cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package dir as cwd.
REPORT_DIR="${SIMCOV_BENCH_DIR:-$PWD/target/bench-reports}"
BASELINE="ci/bench-baseline.json"

rm -rf "$REPORT_DIR"
mkdir -p "$REPORT_DIR" ci

# Release build: the committed medians must reflect optimized code, the
# same profile `cargo bench` uses.
SIMCOV_BENCH_DIR="$REPORT_DIR" cargo bench --offline --workspace

cargo run --offline --release -p simcov-bench --bin simcov-bench -- \
    --emit-baseline "$BASELINE" --dir "$REPORT_DIR"

echo "baseline written to $BASELINE; review and commit it"

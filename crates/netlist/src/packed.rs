//! Word-packed (bit-parallel) netlist evaluation.
//!
//! [`Netlist::eval_all`] computes one boolean per node; its packed
//! counterparts here compute **64 independent evaluations at once** by
//! carrying one `u64` per signal — bit `l` of every word belongs to lane
//! `l`. Gates become single bitwise machine ops (`Mux(s, t, e)` =
//! `(s & t) | (!s & e)`, `Const` = all-zeros / all-ones), so one pass over
//! the two-level DAG prices 64 input/state vectors at roughly the cost the
//! scalar walk pays for one.
//!
//! Lane semantics: for every lane `l`,
//! `eval_all_packed(state, inputs)` bit `l` equals
//! `eval_all(state_l, inputs_l)` where `state_l`/`inputs_l` select bit `l`
//! of each word. All 64 lanes are always evaluated — a caller packing
//! fewer than 64 vectors owns the tail masking, exactly as with the
//! packed Mealy tables in `simcov_fsm`. The property tests below pin the
//! per-lane equivalence on random netlists.

use crate::circuit::{Netlist, NodeKind};

impl Netlist {
    /// Evaluates every node over 64 boolean lanes packed into `u64`
    /// words: `state[i]` carries latch `i`'s value for all 64 lanes,
    /// `inputs[j]` input `j`'s. Returns one word per node, in node order
    /// — the packed mirror of [`eval_all`](Self::eval_all).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, like the scalar evaluator.
    pub fn eval_all_packed(&self, state: &[u64], inputs: &[u64]) -> Vec<u64> {
        assert_eq!(state.len(), self.latches.len(), "state width mismatch");
        assert_eq!(inputs.len(), self.inputs.len(), "input width mismatch");
        let mut vals = vec![0u64; self.nodes.len()];
        // Nodes are created in topological order (operands precede users),
        // so a single forward pass evaluates everything — per lane, the
        // same recurrence as the scalar walk, just 64 abreast.
        for (i, kind) in self.nodes.iter().enumerate() {
            vals[i] = match *kind {
                NodeKind::Const(v) => {
                    if v {
                        !0u64
                    } else {
                        0
                    }
                }
                NodeKind::Input(id) => inputs[id.index()],
                NodeKind::LatchOut(id) => state[id.index()],
                NodeKind::Not(a) => !vals[a.index()],
                NodeKind::And(a, b) => vals[a.index()] & vals[b.index()],
                NodeKind::Or(a, b) => vals[a.index()] | vals[b.index()],
                NodeKind::Xor(a, b) => vals[a.index()] ^ vals[b.index()],
                NodeKind::Mux(s, t, e) => {
                    let sel = vals[s.index()];
                    (sel & vals[t.index()]) | (!sel & vals[e.index()])
                }
            };
        }
        vals
    }

    /// Advances 64 lanes one clock cycle at once: returns
    /// `(next_state, outputs)` as one `u64` word per latch / per primary
    /// output — the packed mirror of [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if any latch has no next-state function assigned, or on
    /// width mismatch.
    pub fn step_packed(&self, state: &[u64], inputs: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let vals = self.eval_all_packed(state, inputs);
        let next = self
            .latches
            .iter()
            .map(|l| vals[l.next.expect("latch has no next-state function").index()])
            .collect();
        let outs = self.outputs.iter().map(|&(_, s)| vals[s.index()]).collect();
        (next, outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SignalId;
    use simcov_prng::{forall_cfg, Config, Gen};

    /// Random two-level netlist: a few inputs and latches, a pile of
    /// random gates over already-built signals, random outputs and
    /// next-state functions.
    fn random_netlist(g: &mut Gen) -> Netlist {
        let ni = g.int_in(1..5usize);
        let nl = g.int_in(1..5usize);
        let mut n = Netlist::new();
        let mut sigs: Vec<SignalId> = Vec::new();
        sigs.push(n.constant(false));
        sigs.push(n.constant(true));
        for i in 0..ni {
            sigs.push(n.add_input(format!("i{i}")));
        }
        let latches: Vec<_> = (0..nl)
            .map(|i| n.add_latch(format!("q{i}"), g.bool()))
            .collect();
        for &l in &latches {
            sigs.push(n.latch_output(l));
        }
        for _ in 0..g.int_in(5..40usize) {
            let pick = |g: &mut Gen, sigs: &[SignalId]| sigs[g.int_in(0..sigs.len())];
            let s = match g.int_in(0..5u32) {
                0 => {
                    let a = pick(g, &sigs);
                    n.not(a)
                }
                1 => {
                    let (a, b) = (pick(g, &sigs), pick(g, &sigs));
                    n.and(a, b)
                }
                2 => {
                    let (a, b) = (pick(g, &sigs), pick(g, &sigs));
                    n.or(a, b)
                }
                3 => {
                    let (a, b) = (pick(g, &sigs), pick(g, &sigs));
                    n.xor(a, b)
                }
                _ => {
                    let (s, t, e) = (pick(g, &sigs), pick(g, &sigs), pick(g, &sigs));
                    n.mux(s, t, e)
                }
            };
            sigs.push(s);
        }
        for (i, &l) in latches.iter().enumerate() {
            let next = sigs[g.int_in(0..sigs.len())];
            n.set_latch_next(l, next);
            if i % 2 == 0 {
                n.add_output(format!("o{i}"), next);
            }
        }
        n
    }

    /// Transposes lane `l` out of a packed word vector.
    fn lane(words: &[u64], l: usize) -> Vec<bool> {
        words.iter().map(|w| w >> l & 1 == 1).collect()
    }

    #[test]
    fn packed_eval_matches_scalar_eval_on_every_lane() {
        forall_cfg(
            "netlist_packed_eval",
            Config::with_cases(32),
            |g: &mut Gen| {
                let n = random_netlist(g);
                let state: Vec<u64> = (0..n.num_latches()).map(|_| g.u64()).collect();
                let inputs: Vec<u64> = (0..n.num_inputs()).map(|_| g.u64()).collect();
                let packed = n.eval_all_packed(&state, &inputs);
                // All 64 lanes would be slow under shrinking; spot-check a
                // fixed spread plus one random lane.
                for l in [0usize, 1, 31, 62, 63, g.int_in(0..64usize)] {
                    let scalar = n.eval_all(&lane(&state, l), &lane(&inputs, l));
                    assert_eq!(lane(&packed, l), scalar, "lane {l}");
                }
            },
        );
    }

    #[test]
    fn packed_step_matches_scalar_step_on_every_lane() {
        forall_cfg(
            "netlist_packed_step",
            Config::with_cases(32),
            |g: &mut Gen| {
                let n = random_netlist(g);
                let state: Vec<u64> = (0..n.num_latches()).map(|_| g.u64()).collect();
                let inputs: Vec<u64> = (0..n.num_inputs()).map(|_| g.u64()).collect();
                let (pnext, pouts) = n.step_packed(&state, &inputs);
                for l in [0usize, 17, 63, g.int_in(0..64usize)] {
                    let (snext, souts) = n.step(&lane(&state, l), &lane(&inputs, l));
                    assert_eq!(lane(&pnext, l), snext, "next, lane {l}");
                    assert_eq!(lane(&pouts, l), souts, "outs, lane {l}");
                }
            },
        );
    }

    #[test]
    fn single_divergent_lane_stays_isolated() {
        // One lane carries a different input vector; the other 63 must be
        // bit-identical to each other — no cross-lane leakage.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let q = n.add_latch("q", false);
        let qo = n.latch_output(q);
        let nx = n.xor(a, qo);
        n.set_latch_next(q, nx);
        n.add_output("o", nx);
        let victim = 11usize;
        let inputs = [1u64 << victim];
        let state = [0u64];
        let (next, outs) = n.step_packed(&state, &inputs);
        assert_eq!(next[0], 1 << victim);
        assert_eq!(outs[0], 1 << victim);
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn packed_eval_wrong_width_panics() {
        let mut n = Netlist::new();
        let q = n.add_latch("q", false);
        let qo = n.latch_output(q);
        n.set_latch_next(q, qo);
        n.eval_all_packed(&[], &[]);
    }
}

//! Property-based tests: explicit/symbolic agreement on random netlists,
//! and machine-level invariants.

use proptest::prelude::*;
use simcov_fsm::{enumerate_netlist, EnumerateOptions, PairFsm, SymbolicFsm};
use simcov_netlist::{Netlist, SignalId};

/// A recipe for a random well-formed netlist (operands resolved modulo
/// the signal pool).
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    latch_inits: Vec<bool>,
    gates: Vec<(u8, u16, u16, u16)>,
    latch_next_picks: Vec<u16>,
    output_picks: Vec<u16>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        1..3usize,
        proptest::collection::vec(any::<bool>(), 1..5),
        proptest::collection::vec((0..5u8, any::<u16>(), any::<u16>(), any::<u16>()), 0..16),
        proptest::collection::vec(any::<u16>(), 5),
        proptest::collection::vec(any::<u16>(), 1..3),
    )
        .prop_map(|(num_inputs, latch_inits, gates, mut latch_next_picks, output_picks)| {
            latch_next_picks.truncate(latch_inits.len());
            while latch_next_picks.len() < latch_inits.len() {
                latch_next_picks.push(3);
            }
            Recipe { num_inputs, latch_inits, gates, latch_next_picks, output_picks }
        })
}

fn build(r: &Recipe) -> Netlist {
    let mut n = Netlist::new();
    let mut pool: Vec<SignalId> = Vec::new();
    for i in 0..r.num_inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let latches: Vec<_> = r
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| n.add_latch(format!("q{i}"), init))
        .collect();
    for &l in &latches {
        pool.push(n.latch_output(l));
    }
    for &(op, a, b, c) in &r.gates {
        let pick = |x: u16| pool[x as usize % pool.len()];
        let (sa, sb, sc) = (pick(a), pick(b), pick(c));
        let g = match op {
            0 => n.and(sa, sb),
            1 => n.or(sa, sb),
            2 => n.xor(sa, sb),
            3 => n.not(sa),
            _ => n.mux(sa, sb, sc),
        };
        pool.push(g);
    }
    for (i, &pick) in r.latch_next_picks.iter().enumerate() {
        let s = pool[pick as usize % pool.len()];
        n.set_latch_next(latches[i], s);
    }
    for (i, &pick) in r.output_picks.iter().enumerate() {
        let s = pool[pick as usize % pool.len()];
        n.add_output(format!("o{i}"), s);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explicit enumeration and symbolic reachability agree on state and
    /// transition counts.
    #[test]
    fn explicit_symbolic_agree(r in recipe()) {
        let n = build(&r);
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        let mut fsm = SymbolicFsm::from_netlist(&n);
        let reach = fsm.reachable();
        prop_assert_eq!(fsm.count_states(reach.reached), m.num_states() as u128);
        prop_assert_eq!(fsm.count_transitions(reach.reached), m.num_transitions() as u128);
    }

    /// The symbolic pair analysis agrees with a brute-force pair check.
    #[test]
    fn pair_analysis_agrees_with_bruteforce(r in recipe(), k in 1..3usize) {
        let n = build(&r);
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        // Brute force E_k over the explicit machine.
        let reach = m.reachable_states();
        let nn = reach.len();
        let ni = m.num_inputs();
        let mut idx = vec![usize::MAX; m.num_states()];
        for (i, &s) in reach.iter().enumerate() {
            idx[s.index()] = i;
        }
        let pair = |a: usize, b: usize| if a <= b { a * nn + b } else { b * nn + a };
        let mut e = vec![true; nn * nn];
        for _ in 0..k {
            let mut next = vec![false; nn * nn];
            for a in 0..nn {
                next[pair(a, a)] = true;
                for b in (a + 1)..nn {
                    for i in 0..ni {
                        let (na, oa) = m.step(reach[a], simcov_fsm::InputSym(i as u32)).expect("complete");
                        let (nb, ob) = m.step(reach[b], simcov_fsm::InputSym(i as u32)).expect("complete");
                        if oa == ob && e[pair(idx[na.index()], idx[nb.index()])] {
                            next[pair(a, b)] = true;
                            break;
                        }
                    }
                }
            }
            e = next;
        }
        let mut brute = 0u128;
        for a in 0..nn {
            for b in (a + 1)..nn {
                if e[pair(a, b)] {
                    brute += 1;
                }
            }
        }
        let mut pf = PairFsm::from_netlist(&n);
        let sym = pf.forall_k(&n.initial_state(), k, true);
        prop_assert_eq!(sym.violating_pairs, brute);
        prop_assert_eq!(sym.reachable_states, nn as u128);
    }

    /// Machine mutations are involutive where expected: redirecting a
    /// transition back restores the original machine.
    #[test]
    fn mutation_roundtrip(r in recipe(), s in any::<u16>(), i in any::<u16>()) {
        let n = build(&r);
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        let s = simcov_fsm::StateId(s as u32 % m.num_states() as u32);
        let i = simcov_fsm::InputSym(i as u32 % m.num_inputs() as u32);
        let (orig_next, _) = m.step(s, i).expect("complete");
        let other = simcov_fsm::StateId((orig_next.0 + 1) % m.num_states() as u32);
        let mutated = m.with_redirected_transition(s, i, other);
        let restored = mutated.with_redirected_transition(s, i, orig_next);
        prop_assert_eq!(&restored, &m);
    }

    /// DOT export is syntactically coherent (every reachable state and
    /// transition appears).
    #[test]
    fn dot_mentions_everything(r in recipe()) {
        let n = build(&r);
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        let dot = m.to_dot();
        for s in m.reachable_states() {
            let label = format!("s{}", s.0);
            prop_assert!(dot.contains(&label));
        }
        prop_assert!(dot.contains("init ->"));
    }
}

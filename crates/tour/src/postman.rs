//! Optimal transition tours via the Chinese postman problem.
//!
//! A transition tour visiting every edge of the state transition graph at
//! least once, of minimum total length, is a directed Chinese postman
//! tour: duplicate a minimum-cost set of edges to make the graph Eulerian
//! (every vertex balanced), then extract an Euler circuit. Duplication is
//! a transportation problem from surplus vertices (in-degree > out-degree)
//! to deficit vertices, solved here with successive shortest paths —
//! optimal because all arc costs are non-negative (one edge = one step).

use simcov_fsm::{ExplicitMealy, InputSym};
use std::collections::VecDeque;
use std::fmt;

/// A generated tour: an input sequence to apply from the reset state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tour {
    /// The input sequence, applied from the machine's reset state.
    pub inputs: Vec<InputSym>,
    /// Number of edge *re-traversals* beyond one visit per transition
    /// (`inputs.len() == num_transitions_on_reachable + duplicates`).
    pub duplicates: usize,
}

impl Tour {
    /// Total length of the tour (number of transitions taken).
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` if the tour is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

impl fmt::Display for Tour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tour of length {} ({} duplicates)",
            self.len(),
            self.duplicates
        )
    }
}

/// Errors from tour generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TourError {
    /// The reachable sub-graph is not strongly connected, so no single
    /// input sequence can traverse every transition. (Use a resettable
    /// test *set* instead — see the paper's note that a test set consists
    /// of test vector *sequences*.)
    NotStronglyConnected,
    /// The machine has no transitions from the reset state.
    NoTransitions,
    /// State-tour generation got trapped: the walk entered a region from
    /// which no unvisited state is reachable (the reachable graph has
    /// diverging one-way branches, e.g. two sink components). `visited`
    /// of `total` reachable states were covered before the trap.
    Trapped {
        /// States visited before the trap.
        visited: usize,
        /// Total reachable states.
        total: usize,
    },
}

impl fmt::Display for TourError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TourError::NotStronglyConnected => {
                write!(f, "reachable state graph is not strongly connected")
            }
            TourError::NoTransitions => write!(f, "no transitions reachable from reset"),
            TourError::Trapped { visited, total } => write!(
                f,
                "state tour trapped in a one-way branch after visiting {visited} of {total} \
                 reachable states"
            ),
        }
    }
}

impl std::error::Error for TourError {}

/// Adjacency view of the reachable transition graph.
pub(crate) struct Graph {
    /// `adj[u]` = outgoing `(v, input)` edges; node indices are a dense
    /// renumbering of the reachable states (BFS order from reset).
    pub adj: Vec<Vec<(usize, InputSym)>>,
    /// Reset node.
    pub root: usize,
}

impl Graph {
    pub(crate) fn reachable(m: &ExplicitMealy) -> Self {
        let reach = m.reachable_states();
        let mut node_of = vec![None; m.num_states()];
        for (i, &s) in reach.iter().enumerate() {
            node_of[s.index()] = Some(i);
        }
        let mut adj = vec![Vec::new(); reach.len()];
        for (u, &s) in reach.iter().enumerate() {
            for i in m.inputs() {
                if let Some((n, _)) = m.step(s, i) {
                    adj[u].push((node_of[n.index()].expect("successor reachable"), i));
                }
            }
        }
        let root = node_of[m.reset().index()].expect("reset reachable");
        Graph { adj, root }
    }

    pub(crate) fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// BFS distances from `src` following edges forward.
    fn bfs(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.adj.len()];
        dist[src] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    pub(crate) fn is_strongly_connected(&self) -> bool {
        let n = self.adj.len();
        if self.bfs(self.root).contains(&u32::MAX) {
            return false;
        }
        // Reverse reachability from root.
        let mut radj = vec![Vec::new(); n];
        for (u, edges) in self.adj.iter().enumerate() {
            for &(v, _) in edges {
                radj[v].push(u);
            }
        }
        let mut seen = vec![false; n];
        seen[self.root] = true;
        let mut q = VecDeque::from([self.root]);
        let mut cnt = 1;
        while let Some(u) = q.pop_front() {
            for &p in &radj[u] {
                if !seen[p] {
                    seen[p] = true;
                    cnt += 1;
                    q.push_back(p);
                }
            }
        }
        cnt == n
    }
}

/// Computes a minimum-length transition tour of the reachable part of `m`
/// (the directed Chinese postman tour), starting and ending at the reset
/// state.
///
/// # Errors
///
/// * [`TourError::NotStronglyConnected`] if some reachable transition
///   cannot be followed by a return to the rest of the graph;
/// * [`TourError::NoTransitions`] for a machine with no edges.
pub fn transition_tour(m: &ExplicitMealy) -> Result<Tour, TourError> {
    let g = Graph::reachable(m);
    if g.num_edges() == 0 {
        return Err(TourError::NoTransitions);
    }
    if !g.is_strongly_connected() {
        return Err(TourError::NotStronglyConnected);
    }
    let n = g.adj.len();
    // Vertex balance: positive = needs extra outgoing duplicates.
    let mut balance = vec![0i64; n];
    for (u, edges) in g.adj.iter().enumerate() {
        balance[u] -= edges.len() as i64;
        for &(v, _) in edges {
            balance[v] += 1;
        }
    }
    // Duplication counts per (u, edge index).
    let mut dup = vec![vec![0u64; 0]; n];
    for (u, edges) in g.adj.iter().enumerate() {
        dup[u] = vec![0; edges.len()];
    }
    let duplicates = solve_flow(&g, &mut balance, &mut dup);
    // Build the multigraph and extract an Euler circuit from the root.
    let mut multi: Vec<Vec<(usize, InputSym)>> = vec![Vec::new(); n];
    for (u, edges) in g.adj.iter().enumerate() {
        for (ei, &(v, inp)) in edges.iter().enumerate() {
            for _ in 0..=dup[u][ei] {
                multi[u].push((v, inp));
            }
        }
    }
    let inputs = hierholzer(&multi, g.root);
    debug_assert_eq!(inputs.len(), g.num_edges() + duplicates as usize);
    Ok(Tour {
        inputs,
        duplicates: duplicates as usize,
    })
}

/// Minimum-cost transportation: route `balance > 0` supply to
/// `balance < 0` demand along graph edges (cost 1 each), incrementing
/// per-edge duplication counts. Returns total duplicated edge count.
///
/// The problem is solved exactly: pairwise shortest-path distances give a
/// bipartite transportation instance, solved by successive shortest paths
/// *with residual arcs* (plain greedy pairing is not optimal in general).
fn solve_flow(g: &Graph, balance: &mut [i64], dup: &mut [Vec<u64>]) -> u64 {
    let supplies: Vec<(usize, u64)> = balance
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b > 0)
        .map(|(u, &b)| (u, b as u64))
        .collect();
    let demands: Vec<(usize, u64)> = balance
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b < 0)
        .map(|(u, &b)| (u, (-b) as u64))
        .collect();
    if supplies.is_empty() {
        return 0;
    }
    // BFS distances from each supply node.
    let dists: Vec<Vec<u32>> = supplies.iter().map(|&(u, _)| g.bfs(u)).collect();
    // Bipartite min-cost flow: node 0 = source, 1..=S supplies,
    // S+1..=S+D demands, S+D+1 = sink.
    let ns = supplies.len();
    let nd = demands.len();
    let mut mcmf = Mcmf::new(ns + nd + 2);
    let src = 0;
    let snk = ns + nd + 1;
    for (i, &(_, amt)) in supplies.iter().enumerate() {
        mcmf.add_edge(src, 1 + i, amt, 0);
    }
    for (j, &(_, amt)) in demands.iter().enumerate() {
        mcmf.add_edge(1 + ns + j, snk, amt, 0);
    }
    for (i, &(_, s_amt)) in supplies.iter().enumerate() {
        for (j, &(dv, _)) in demands.iter().enumerate() {
            let d = dists[i][dv];
            debug_assert_ne!(d, u32::MAX, "strong connectivity violated");
            mcmf.add_edge(1 + i, 1 + ns + j, s_amt, d as i64);
        }
    }
    let total = mcmf.run(src, snk);
    // Materialise the flow: duplicate edges along one shortest path per
    // supply/demand pair carrying flow.
    for (i, &(su, _)) in supplies.iter().enumerate() {
        for (j, &(dv, _)) in demands.iter().enumerate() {
            let f = mcmf.flow_between(1 + i, 1 + ns + j);
            if f == 0 {
                continue;
            }
            duplicate_along_path(g, su, dv, f, dup);
        }
    }
    for b in balance.iter_mut() {
        *b = 0;
    }
    total
}

/// Duplicates every edge on one shortest `s → t` path `amount` times.
fn duplicate_along_path(g: &Graph, s: usize, t: usize, amount: u64, dup: &mut [Vec<u64>]) {
    let n = g.adj.len();
    let mut dist = vec![u32::MAX; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut q = VecDeque::new();
    dist[s] = 0;
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        if u == t {
            break;
        }
        for (ei, &(v, _)) in g.adj[u].iter().enumerate() {
            if dist[v] == u32::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = Some((u, ei));
                q.push_back(v);
            }
        }
    }
    let mut cur = t;
    while let Some((p, ei)) = parent[cur] {
        dup[p][ei] += amount;
        cur = p;
    }
    debug_assert_eq!(cur, s);
}

/// Minimal successive-shortest-path min-cost max-flow (SPFA variant,
/// correct with the negative-cost residual arcs transportation creates).
struct Mcmf {
    // Edge arrays: to, cap, cost; edge i and i^1 are a residual pair.
    to: Vec<usize>,
    cap: Vec<u64>,
    cost: Vec<i64>,
    head: Vec<Vec<usize>>,
    orig_cap: Vec<u64>,
}

impl Mcmf {
    fn new(n: usize) -> Self {
        Mcmf {
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            head: vec![Vec::new(); n],
            orig_cap: Vec::new(),
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, cap: u64, cost: i64) {
        let e = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.cost.push(cost);
        self.orig_cap.push(cap);
        self.head[u].push(e);
        self.to.push(u);
        self.cap.push(0);
        self.cost.push(-cost);
        self.orig_cap.push(0);
        self.head[v].push(e + 1);
    }

    /// Runs max-flow at min cost; returns total cost.
    fn run(&mut self, src: usize, snk: usize) -> u64 {
        let n = self.head.len();
        let mut total_cost = 0i64;
        loop {
            // SPFA shortest path in residual network.
            let mut dist = vec![i64::MAX; n];
            let mut in_q = vec![false; n];
            let mut pre: Vec<Option<usize>> = vec![None; n];
            dist[src] = 0;
            let mut q = VecDeque::from([src]);
            in_q[src] = true;
            while let Some(u) = q.pop_front() {
                in_q[u] = false;
                for &e in &self.head[u] {
                    if self.cap[e] > 0 && dist[u] + self.cost[e] < dist[self.to[e]] {
                        let v = self.to[e];
                        dist[v] = dist[u] + self.cost[e];
                        pre[v] = Some(e);
                        if !in_q[v] {
                            in_q[v] = true;
                            q.push_back(v);
                        }
                    }
                }
            }
            if dist[snk] == i64::MAX {
                break;
            }
            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = snk;
            while let Some(e) = pre[v] {
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = snk;
            while let Some(e) = pre[v] {
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            total_cost += dist[snk] * bottleneck as i64;
        }
        total_cost as u64
    }

    /// Flow sent on the (first) edge from `u` to `v`.
    fn flow_between(&self, u: usize, v: usize) -> u64 {
        for &e in &self.head[u] {
            if e % 2 == 0 && self.to[e] == v {
                return self.orig_cap[e] - self.cap[e];
            }
        }
        0
    }
}

/// Hierholzer's algorithm: Euler circuit of a balanced, connected directed
/// multigraph, as the sequence of edge labels, starting from `root`.
fn hierholzer(multi: &[Vec<(usize, InputSym)>], root: usize) -> Vec<InputSym> {
    let n = multi.len();
    let mut next_edge = vec![0usize; n];
    // Iterative Hierholzer producing edges in reverse.
    let mut stack: Vec<usize> = vec![root];
    let mut edge_stack: Vec<InputSym> = Vec::new();
    let mut circuit: Vec<InputSym> = Vec::new();
    while let Some(&u) = stack.last() {
        if next_edge[u] < multi[u].len() {
            let (v, inp) = multi[u][next_edge[u]];
            next_edge[u] += 1;
            stack.push(v);
            edge_stack.push(inp);
        } else {
            stack.pop();
            if let Some(inp) = edge_stack.pop() {
                circuit.push(inp);
            }
        }
    }
    circuit.reverse();
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::coverage;
    use simcov_fsm::MealyBuilder;

    fn two_state() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s0, c, s0, o);
        b.add_transition(s1, a, s0, o);
        b.add_transition(s1, c, s1, o);
        b.build(s0).unwrap()
    }

    #[test]
    fn eulerian_graph_needs_no_duplicates() {
        let m = two_state();
        let tour = transition_tour(&m).unwrap();
        assert_eq!(tour.duplicates, 0);
        assert_eq!(tour.len(), 4);
        assert!(coverage(&m, &tour.inputs).all_transitions_covered());
    }

    #[test]
    fn unbalanced_graph_duplicates_minimally() {
        // s0 -a-> s1, s0 -b-> s1, s1 -a-> s0 : s0 has out 2 / in 1.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let bb = b.add_input("b");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s0, bb, s1, o);
        b.add_transition(s1, a, s0, o);
        let m = b.build(s0).unwrap();
        let tour = transition_tour(&m).unwrap();
        // Must retraverse s1->s0 once: 3 edges + 1 duplicate.
        assert_eq!(tour.duplicates, 1);
        assert_eq!(tour.len(), 4);
        assert!(coverage(&m, &tour.inputs).all_transitions_covered());
    }

    #[test]
    fn tour_returns_to_reset() {
        let m = two_state();
        let tour = transition_tour(&m).unwrap();
        let (states, _) = m.run(m.reset(), &tour.inputs);
        assert_eq!(*states.last().unwrap(), m.reset());
    }

    #[test]
    fn rejects_non_strongly_connected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let sink = b.add_state("sink");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, sink, o);
        b.add_transition(sink, a, sink, o);
        let m = b.build(s0).unwrap();
        assert_eq!(
            transition_tour(&m).unwrap_err(),
            TourError::NotStronglyConnected
        );
    }

    #[test]
    fn larger_ring_with_chords() {
        // 6-state ring with chord edges; verify full coverage and
        // optimality sanity (tour length ≥ edge count).
        let mut b = MealyBuilder::new();
        let states: Vec<_> = (0..6).map(|i| b.add_state(format!("s{i}"))).collect();
        let step = b.add_input("step");
        let jump = b.add_input("jump");
        let o = b.add_output("o");
        for i in 0..6 {
            b.add_transition(states[i], step, states[(i + 1) % 6], o);
            b.add_transition(states[i], jump, states[(i + 3) % 6], o);
        }
        let m = b.build(states[0]).unwrap();
        let tour = transition_tour(&m).unwrap();
        assert!(coverage(&m, &tour.inputs).all_transitions_covered());
        assert_eq!(tour.len(), m.num_transitions() + tour.duplicates);
        // This graph is Eulerian (every vertex has out=2, in=2).
        assert_eq!(tour.duplicates, 0);
    }

    #[test]
    fn unreachable_states_ignored() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let dead = b.add_state("dead");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s1, a, s0, o);
        b.add_transition(dead, a, s0, o);
        let m = b.build(s0).unwrap();
        let tour = transition_tour(&m).unwrap();
        assert_eq!(tour.len(), 2);
    }

    #[test]
    fn single_state_self_loops() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(s0, a, s0, o);
        b.add_transition(s0, c, s0, o);
        let m = b.build(s0).unwrap();
        let tour = transition_tour(&m).unwrap();
        assert_eq!(tour.len(), 2);
        assert_eq!(tour.duplicates, 0);
    }
}

//! End-to-end DLX validation: the pipelined implementation against the
//! ISA specification over directed and randomized programs, golden and
//! faulty.

use simcov::core::validate;
use simcov::dlx::asm;
use simcov::dlx::checkpoint::{PipelineTrace, SpecTrace};
use simcov::dlx::isa::{AluOp, Instr, MemWidth, Reg};
use simcov::dlx::ControlFault;
use simcov::prng::Prng;

/// Random straight-line hazard-rich programs: only forward control flow,
/// so termination is structural.
fn random_program(seed: u64, len: usize) -> Vec<Instr> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut prog = Vec::with_capacity(len + 1);
    for i in 0..len {
        let r = |rng: &mut Prng| Reg(rng.gen_range(0..8u8));
        let instr = match rng.gen_range(0..10u32) {
            0..=2 => Instr::Alu {
                op: AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())],
                rd: r(&mut rng),
                rs1: r(&mut rng),
                rs2: r(&mut rng),
            },
            3..=4 => Instr::AluImm {
                op: AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())],
                rd: r(&mut rng),
                rs1: r(&mut rng),
                imm: rng.next_u64() as u16,
            },
            5 => Instr::Load {
                width: [MemWidth::Byte, MemWidth::Half, MemWidth::Word][rng.gen_range(0..3usize)],
                signed: rng.gen_bool(0.5),
                rd: r(&mut rng),
                rs1: Reg(0),
                imm: rng.gen_range(0..64u16) * 4,
            },
            6 => Instr::Store {
                width: [MemWidth::Byte, MemWidth::Half, MemWidth::Word][rng.gen_range(0..3usize)],
                rs2: r(&mut rng),
                rs1: Reg(0),
                imm: rng.gen_range(0..64u16) * 4,
            },
            7 => {
                // Forward branch over 1-2 instructions (stays in range).
                let skip = rng.gen_range(1..3u16);
                if i + skip as usize + 1 < len {
                    Instr::Branch {
                        on_zero: rng.gen_bool(0.5),
                        rs1: r(&mut rng),
                        imm: skip,
                    }
                } else {
                    Instr::Nop
                }
            }
            8 => {
                let skip = rng.gen_range(1..3i32);
                if i + skip as usize + 1 < len {
                    Instr::Jump {
                        link: rng.gen_bool(0.5),
                        offset: skip,
                    }
                } else {
                    Instr::Nop
                }
            }
            _ => Instr::Nop,
        };
        prog.push(instr);
    }
    prog.push(Instr::Halt);
    prog
}

#[test]
fn golden_pipeline_matches_spec_on_random_programs() {
    let mut spec = SpecTrace::default();
    let mut imp = PipelineTrace::default();
    for seed in 0..40 {
        let prog = random_program(seed, 60);
        let n = validate(&mut spec, &mut imp, &prog).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
        assert!(n > 0, "seed {seed} produced an empty trace");
    }
}

#[test]
fn golden_pipeline_matches_spec_on_loops() {
    let programs: Vec<Vec<Instr>> = vec![
        asm::program(&[
            "addi r1, r0, 8",
            "add r2, r2, r1",
            "subi r1, r1, 1",
            "bnez r1, -3",
            "halt",
        ]),
        asm::program(&[
            // Nested hazards inside a loop: load-use on every iteration.
            "addi r1, r0, 6",
            "sw r1, 0(r0)",
            "lw r2, 0(r0)",
            "add r3, r2, r3",
            "subi r1, r1, 1",
            "sw r1, 0(r0)",
            "bnez r1, -5",
            "halt",
        ]),
        asm::program(&[
            // Function call pattern.
            "addi r1, r0, 3",
            "jal 3", // call pc+1+3 = 5
            "add r4, r3, r3",
            "halt",
            "nop",
            "add r3, r1, r1", // pc 5: body
            "jr r31",
        ]),
    ];
    let mut spec = SpecTrace::default();
    let mut imp = PipelineTrace::default();
    for (i, prog) in programs.iter().enumerate() {
        validate(&mut spec, &mut imp, prog).unwrap_or_else(|m| panic!("program {i}: {m}"));
    }
}

/// Every control fault is caught by at least one of the directed hazard
/// programs — and the interlock fault specifically needs the load-use
/// pattern (no other program catches it), mirroring Section 6.3's
/// observation that the interlock error is excited only by the
/// same-destination-register sequence.
#[test]
fn directed_suite_catches_every_control_fault() {
    let suites: Vec<(&str, Vec<Instr>)> = vec![
        (
            "load-use",
            asm::program(&[
                "addi r1, r0, 42",
                "sw r1, 0(r0)",
                "lw r2, 0(r0)",
                "add r3, r2, r2",
                "halt",
            ]),
        ),
        (
            "alu-chain",
            asm::program(&["addi r1, r0, 1", "add r2, r1, r1", "add r3, r2, r2", "halt"]),
        ),
        (
            "d2-dependence",
            asm::program(&["addi r1, r0, 3", "nop", "add r2, r1, r1", "halt"]),
        ),
        (
            "taken-branch",
            asm::program(&["beqz r0, 1", "addi r1, r0, 9", "addi r2, r0, 1", "halt"]),
        ),
        ("plain-write", asm::program(&["addi r2, r0, 9", "halt"])),
    ];
    let mut spec = SpecTrace::default();
    for fault in ControlFault::ALL {
        let mut caught_by = Vec::new();
        for (name, prog) in &suites {
            let mut imp = PipelineTrace {
                fault,
                ..PipelineTrace::default()
            };
            if validate(&mut spec, &mut imp, prog).is_err() {
                caught_by.push(*name);
            }
        }
        assert!(
            !caught_by.is_empty(),
            "{fault:?} escaped the directed suite"
        );
    }
    // The interlock fault is only caught by the load-use program.
    let mut imp = PipelineTrace {
        fault: ControlFault::DisableLoadInterlock,
        ..PipelineTrace::default()
    };
    for (name, prog) in &suites {
        let r = validate(&mut spec, &mut imp, prog);
        if *name == "load-use" {
            assert!(r.is_err(), "load-use must catch the interlock fault");
        } else {
            assert!(r.is_ok(), "{name} should not excite the interlock fault");
        }
    }
}

/// Random programs miss specific faults at small sample sizes — the
/// motivation for coverage-directed generation. (With enough random
/// programs everything is eventually caught; the point is the directed
/// test needs 5 instructions, not hundreds.)
#[test]
fn interlock_fault_needs_the_right_pattern() {
    let mut spec = SpecTrace::default();
    let mut imp = PipelineTrace {
        fault: ControlFault::DisableLoadInterlock,
        ..PipelineTrace::default()
    };
    // Programs with loads but no load-use dependence never catch it.
    let benign = asm::program(&[
        "addi r1, r0, 7",
        "sw r1, 0(r0)",
        "lw r2, 0(r0)",
        "nop", // gap breaks the d=1 hazard
        "add r3, r2, r2",
        "halt",
    ]);
    assert!(validate(&mut spec, &mut imp, &benign).is_ok());
}

/// Pipeline performance counters behave sensibly: stalls only with
/// load-use patterns, squashes only with taken control flow.
#[test]
fn performance_counters() {
    use simcov::dlx::Pipeline;
    let prog = asm::program(&[
        "addi r1, r0, 2",
        "sw r1, 0(r0)",
        "lw r2, 0(r0)",
        "add r3, r2, r2", // 1 stall
        "beqz r0, 1",     // taken: squash
        "addi r4, r0, 9",
        "halt",
    ]);
    let mut p = Pipeline::new(prog);
    p.run_to_halt(1000, 100);
    assert_eq!(p.stall_cycles(), 1);
    assert!(p.squashed_instrs() >= 1);
    assert!(p.halted());
}

//! Integration test for the paper's central claim (Theorem 3): on a test
//! model satisfying the requirements, a transition tour extended by `k`
//! vectors detects **every** single output/transfer error — and on models
//! violating the requirements, escaping faults exist.

use simcov::core::models::figure2;
use simcov::core::{
    certify_completeness, enumerate_single_faults, extend_cyclically, run_campaign,
    CompletenessViolation, FaultCampaign, FaultSpace,
};
use simcov::dlx::testmodel::{
    reduced_control_netlist, reduced_control_netlist_observable, reduced_valid_inputs,
};
use simcov::fsm::enumerate_netlist;
use simcov::tour::{greedy_transition_tour, state_tour, transition_tour, TestSet};

fn all_faults(m: &simcov::fsm::ExplicitMealy) -> Vec<simcov::core::Fault> {
    enumerate_single_faults(
        m,
        &FaultSpace {
            max_faults: usize::MAX,
            ..FaultSpace::default()
        },
    )
}

/// Theorem 3, empirically: certified model + extended transition tour =
/// 100% fault detection, for both the optimal and the greedy tour.
#[test]
fn certified_model_tour_catches_every_fault() {
    let n = reduced_control_netlist_observable();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    let cert = certify_completeness(&m, 1, None).expect("certifiable");
    let faults = all_faults(&m);
    assert!(
        faults.len() > 10_000,
        "exhaustive fault space: {}",
        faults.len()
    );

    for tour in [
        transition_tour(&m).expect("postman tour"),
        greedy_transition_tour(&m).expect("greedy tour"),
    ] {
        let tests = TestSet::single(extend_cyclically(&tour.inputs, cert.k));
        // Drive the parallel engine explicitly (jobs = all cores) so the
        // paper's flagship campaign also exercises the sharded path.
        let run = FaultCampaign::new(&m, &faults, &tests).run();
        assert!(
            run.report.complete(),
            "tour of length {} must detect all faults, got {}",
            tour.len(),
            run.report
        );
        assert_eq!(run.stats.faults_simulated, faults.len());
        assert_eq!(run.stats.detected, faults.len());
        assert_eq!(run.stats.escapes, 0);
    }
}

/// The weaker baselines are *not* complete: a state tour misses faults on
/// transitions it never takes.
#[test]
fn state_tour_is_incomplete() {
    let n = reduced_control_netlist_observable();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    let faults = all_faults(&m);
    let st = state_tour(&m).expect("state tour");
    let tests = TestSet::single(extend_cyclically(&st.inputs, 1));
    let report = run_campaign(&m, &faults, &tests);
    assert!(
        !report.complete(),
        "a state tour covering {} vectors should miss some of {} faults",
        st.len(),
        faults.len()
    );
    // But it still catches something — it is a coverage measure, just a
    // far weaker one (≈6% here vs 100% for the transition tour).
    assert!(
        report.detection_rate() > 0.02,
        "rate {}",
        report.detection_rate()
    );
    assert!(
        report.detection_rate() < 0.50,
        "rate {}",
        report.detection_rate()
    );
}

/// On the non-certifiable base model (interaction state hidden), some
/// fault escapes even a full transition tour — the Figure 2 phenomenon at
/// system scale.
#[test]
fn uncertified_model_has_escaping_faults() {
    let n = reduced_control_netlist();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    assert!(matches!(
        certify_completeness(&m, 4, None),
        Err(CompletenessViolation::NotDistinguishable(_))
    ));
    let faults = all_faults(&m);
    let tour = transition_tour(&m).expect("tour exists");
    let tests = TestSet::single(extend_cyclically(&tour.inputs, 4));
    let report = run_campaign(&m, &faults, &tests);
    assert!(
        !report.complete(),
        "hidden interaction state must let some fault escape: {report}"
    );
    // Escapes are excited-but-undetected, as in Figure 2.
    assert!(report.escapes().count() > 0);
}

/// Figure 2 exactly: the canonical transfer fault escapes a `c`-path tour
/// and is caught by a `b`-path sequence; the certification pinpoints the
/// culprit pair (3, 3').
#[test]
fn figure2_certification_names_the_culprit() {
    let (m, fault) = figure2();
    let err = certify_completeness(&m, 1, None).expect_err("must fail");
    let CompletenessViolation::NotDistinguishable(violations) = err else {
        panic!("wrong violation kind");
    };
    let s3 = m.state_by_label("3").unwrap();
    let s3p = m.state_by_label("3'").unwrap();
    assert!(
        violations
            .iter()
            .any(|v| (v.s1 == s3 && v.s2 == s3p) || (v.s1 == s3p && v.s2 == s3)),
        "the pair (3, 3') must be reported"
    );
    // The reported fault is exactly a transfer into the lookalike state.
    let faulty = fault.inject(&m);
    let a = m.input_by_label("a").unwrap();
    let c = m.input_by_label("c").unwrap();
    assert_eq!(simcov::core::detects(&m, &faulty, &[a, a, c, a, a]), None);
}

/// The UIO transition-checking method (Aho et al., the paper's cited
/// formulation): complete on the observable model, *inapplicable* on the
/// hidden model because output-equivalent states have no UIO — the same
/// root cause as the ∀k failure, seen from the ∃ side.
#[test]
fn uio_method_complete_when_applicable() {
    use simcov::tour::{uio_test_set, UioError};
    let n = reduced_control_netlist_observable();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    let ts = uio_test_set(&m, 4).expect("observable model has UIOs");
    let faults = all_faults(&m);
    let report = run_campaign(&m, &faults, &ts);
    assert!(report.complete(), "UIO checking must be complete: {report}");
    // Hidden model: no UIOs for the output-equivalent states.
    let n = reduced_control_netlist();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    assert!(matches!(uio_test_set(&m, 8), Err(UioError::NoUio(_))));
}

/// Chow's W-method: complete on the observable (reduced) model,
/// inapplicable on the hidden one — the characterization set does not
/// exist for an unreduced machine.
#[test]
fn w_method_complete_when_applicable() {
    use simcov::tour::{w_method_test_set, WMethodError};
    let n = reduced_control_netlist_observable();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    let ts = w_method_test_set(&m).expect("reduced machine has a W set");
    let faults = all_faults(&m);
    let report = run_campaign(&m, &faults, &ts);
    assert!(report.complete(), "W-method must be complete: {report}");
    let n = reduced_control_netlist();
    let m = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    assert!(matches!(
        w_method_test_set(&m),
        Err(WMethodError::NotReduced(_))
    ));
}

/// State minimization diagnoses the hidden model: its 18 reachable
/// states collapse (output-equivalent groups exist), while the observable
/// model is already reduced. Unreduced ⇔ no UIOs ⇔ ∀k fails forever —
/// three views of the same missing observability.
#[test]
fn minimization_diagnoses_missing_observability() {
    use simcov::fsm::minimize;
    let n = reduced_control_netlist();
    let hidden = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    let r = minimize(&hidden);
    assert!(!r.was_reduced(), "hidden model must have equivalent states");
    assert!(r.machine.num_states() < r.original_states);
    assert!(!r.merged_groups().is_empty());
    let n = reduced_control_netlist_observable();
    let obs = enumerate_netlist(&n, &reduced_valid_inputs(&n)).expect("enumerates");
    let r = minimize(&obs);
    assert!(r.was_reduced(), "observable model must already be reduced");
}

/// Masked transfer errors (Definition 4): a fault pair where the second
/// error corrects the first is invisible to any test set; Requirement 4
/// excludes them by assumption. We verify the masking detector sees the
/// double-fault excursion.
#[test]
fn masked_double_fault_detected_as_masked() {
    use simcov::core::{is_masked_on, Fault, FaultKind};
    let (m, f1) = figure2();
    // Second transfer error: from 3' on c, go where 3 would have gone —
    // already the same (both to 5). Construct a sharper example: fault 1
    // diverts 2-a->3'; fault 2 diverts 3'-b->4' to 4, i.e. the second
    // error "corrects" the path.
    let s3p = m.state_by_label("3'").unwrap();
    let s4 = m.state_by_label("4").unwrap();
    let b = m.input_by_label("b").unwrap();
    let f2 = Fault {
        state: s3p,
        input: b,
        kind: FaultKind::Transfer { new_next: s4 },
    };
    let double = f2.inject(&f1.inject(&m));
    let a = m.input_by_label("a").unwrap();
    // Path a,a,(b): diverges at 3', second fault rejoins at 4 — but the
    // output of 3'-b differs (ob3p vs ob3), so this particular pair is
    // exposed by the output, not masked.
    let seq = [a, a, b, a];
    assert!(simcov::core::detects(&m, &double, &seq).is_some());
    // Whereas along c the excursion is masked (no output difference).
    let c = m.input_by_label("c").unwrap();
    let seq = [a, a, c, a];
    assert!(is_masked_on(&m, &double, &seq));
}

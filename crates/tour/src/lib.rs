//! Transition- and state-tour generation.
//!
//! The test sets of the DAC'97 methodology are *transition tours*: input
//! sequences that traverse every transition of the test model at least
//! once (Section 6.5). The paper notes that minimum-cost transition tours
//! correspond to the **Chinese postman problem**, solvable in polynomial
//! time (Aho, Dahbura, Lee & Uyar 1991); the authors' own implementation
//! generated a *non-optimal* tour with a greedy implicit traversal.
//!
//! This crate provides both, plus the baselines the evaluation compares
//! against:
//!
//! * [`transition_tour`] — optimal (Chinese postman): Eulerian
//!   augmentation by successive-shortest-path min-cost flow, then
//!   Hierholzer's circuit algorithm;
//! * [`greedy_transition_tour`] — the nearest-uncovered-transition
//!   heuristic (what the paper actually ran inside SIS);
//! * [`state_tour`] — covers every *state* at least once (the weaker
//!   coverage measure of Iwashita et al. that Section 1 contrasts with);
//! * [`random_test_set`] — random-walk functional vectors, the
//!   conventional-simulation baseline;
//! * [`coverage`] — transition/state coverage measurement for any input
//!   sequence.
//!
//! # Example
//!
//! ```
//! use simcov_fsm::MealyBuilder;
//! use simcov_tour::{transition_tour, coverage};
//!
//! let mut b = MealyBuilder::new();
//! let s0 = b.add_state("s0");
//! let s1 = b.add_state("s1");
//! let a = b.add_input("a");
//! let o = b.add_output("o");
//! b.add_transition(s0, a, s1, o);
//! b.add_transition(s1, a, s0, o);
//! let m = b.build(s0).unwrap();
//!
//! let tour = transition_tour(&m).unwrap();
//! let report = coverage(&m, &tour.inputs);
//! assert!(report.all_transitions_covered());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod greedy;
mod postman;
mod random;
mod uio;
mod verify;
mod wmethod;

pub use greedy::{greedy_transition_tour, state_tour};
pub use postman::{transition_tour, Tour, TourError};
pub use random::{random_test_set, TestSet};
pub use uio::{uio_sequence, uio_test_set, UioError};
pub use verify::{coverage, coverage_set, coverage_set_jobs, CoverageReport};
pub use wmethod::{characterization_set, w_method_test_set, WMethodError};

//! Word-packed (bit-parallel) transition tables for lane-parallel fault
//! simulation.
//!
//! The scalar [`ExplicitMealy::step`] walk is latency-bound: every table
//! lookup depends on the state produced by the previous one, so a long
//! replay is a serial pointer chase through a table that rarely fits in
//! L1. The classic fix — bit-parallel fault simulation — packs up to
//! [`LANES`] (= 64) *independent* machines into one batch and advances
//! each of them one step per round: the per-lane lookups of a round carry
//! no data dependency on each other, so the memory system overlaps their
//! cache misses instead of serialising them.
//!
//! [`PackedMealy`] is the packed-table mirror of the dense
//! [`ExplicitMealy`] table — one fused `(next, out)` word per cell plus
//! a definedness bitset — so a lane-step costs exactly one random cache
//! line, where the array-of-`Option` layout costs more bytes and the
//! naive two-array split would cost two lines. [`LanePatch`] is the packed
//! counterpart of [`PatchedMealy`]: a one-cell overlay applied to exactly
//! one lane, which is how a fault word simulates 64 *different*
//! single-fault mutants against one shared table.
//!
//! Lane semantics are defined to be *exactly* those of the scalar
//! machinery: for every lane `l`,
//! [`step_lanes`](PackedMealy::step_lanes) computes what
//! [`PatchedMealy::step_patched`] (or [`ExplicitMealy::step`] under
//! [`LanePatch::INACTIVE`]) would, with an undefined transition reported
//! in the returned mask instead of `None`. The property tests below pin
//! that equivalence on random machines, including the all-lanes-divergent
//! and single-lane-patched edge cases.

use crate::explicit::{ExplicitMealy, InputSym, OutputSym, StateId};

/// Number of lanes in a packed word: one fault (or one golden sequence)
/// per bit of a `u64` mask.
pub const LANES: usize = 64;

/// Sentinel filling undefined cells of [`PackedMealy`]'s fused table.
///
/// `raw_record(cell) != UNDEFINED_RECORD` proves the cell defined
/// without touching the definedness bitset; on equality the caller must
/// fall back to [`PackedMealy::is_defined`], because a genuinely defined
/// transition to state `u32::MAX` with output `u32::MAX` would encode
/// the same bits (it would need 2^32 states *and* 2^32 outputs, but the
/// bitset, not the sentinel, is the source of truth).
pub const UNDEFINED_RECORD: u64 = u64::MAX;

/// Sentinel filling undefined cells of the *narrow* (32-bit) table.
///
/// Narrow records are only built when every defined encoding fits in 31
/// bits (see [`PackedMealy::narrow_table`]), so — unlike the wide
/// sentinel — this value can never collide with a defined record.
pub const UNDEFINED_NARROW: u32 = u32::MAX;

/// A one-cell transition overlay for a single lane — the packed
/// counterpart of [`PatchedMealy`](crate::PatchedMealy).
///
/// `cell` is a dense-table index (`state * num_inputs + input`); a lane
/// stepping through its patched cell takes `(next, out)` instead of the
/// base table entry. [`LanePatch::INACTIVE`] never matches any real cell,
/// so a lane carrying it behaves exactly like the unpatched machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanePatch {
    /// Dense-table cell index of the overlaid transition
    /// (`usize::MAX` = no overlay).
    pub cell: usize,
    /// Replacement next state (raw id) for that cell.
    pub next: u32,
    /// Replacement output symbol (raw id) for that cell.
    pub out: u32,
}

impl LanePatch {
    /// A patch that matches no cell: the lane steps the base machine.
    pub const INACTIVE: LanePatch = LanePatch {
        cell: usize::MAX,
        next: 0,
        out: 0,
    };
}

/// Packed transition tables of an [`ExplicitMealy`].
///
/// Built once per campaign with [`from_explicit`](Self::from_explicit)
/// and shared read-only across shards, like the golden trace. The dense
/// cell layout (`state * num_inputs + input`) is identical to the scalar
/// table's, so cell indices are interchangeable between the two.
///
/// ```
/// use simcov_fsm::{LanePatch, MealyBuilder, PackedMealy, LANES};
///
/// let mut b = MealyBuilder::new();
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// let i = b.add_input("i");
/// let o = b.add_output("o");
/// b.add_transition(s0, i, s1, o);
/// b.add_transition(s1, i, s0, o);
/// let m = b.build(s0).unwrap();
/// let packed = PackedMealy::from_explicit(&m);
/// let mut states = [0u32; LANES];
/// states[1] = 1; // lane 1 sits in s1, lane 0 in s0
/// let inputs = [0u32; LANES];
/// let patches = [LanePatch::INACTIVE; LANES];
/// let mut next = [0u32; LANES];
/// let mut out = [0u32; LANES];
/// let undef = packed.step_lanes(&states, &inputs, &patches, 0b11, &mut next, &mut out);
/// assert_eq!(undef, 0);
/// assert_eq!((next[0], next[1]), (1, 0)); // the two lanes swap states
/// ```
#[derive(Debug, Clone)]
pub struct PackedMealy {
    /// Fused per-cell records, dense by cell: next-state id in the low
    /// 32 bits, output id in the high 32. One record is one aligned
    /// `u64`, so a lane-step's random table access touches exactly one
    /// cache line. Undefined cells hold [`UNDEFINED_RECORD`] — a cheap
    /// *pre-filter* for definedness that spares the hot path a second
    /// random load of the `defined` bitset (which stays authoritative:
    /// a defined transition could in principle encode the same bits).
    table: Vec<u64>,
    /// Narrow mirror of `table` — `(out << narrow_shift) | next` per
    /// cell, [`UNDEFINED_NARROW`] where undefined — built whenever the
    /// machine's state and output id ranges together fit in 31 bits.
    /// Half the bytes per lane-step means half the random cache lines
    /// and half the TLB reach for a replay over the same cells; on
    /// L2-dwarfing tables that is the difference between streaming at
    /// the miss-overlap ceiling and stalling on page walks.
    narrow: Option<Vec<u32>>,
    /// Bit position of the output field in a narrow record.
    narrow_shift: u32,
    /// Definedness bitset: cell `c` is defined iff bit `c % 64` of word
    /// `c / 64` is set.
    defined: Vec<u64>,
    num_states: usize,
    num_inputs: usize,
    reset: StateId,
}

impl PackedMealy {
    /// Transposes the dense scalar table into fused packed form — one
    /// sequential pass over the scalar table, no per-cell `step` calls,
    /// so building the tables costs a small fraction of one golden walk
    /// even on 10^4-state machines.
    pub fn from_explicit(m: &ExplicitMealy) -> PackedMealy {
        let ns = m.num_states();
        let ni = m.num_inputs();
        let cells = ns * ni;
        let mut table = vec![UNDEFINED_RECORD; cells];
        let mut defined = vec![0u64; cells.div_ceil(64).max(1)];
        let mut max_out = 0u32;
        for (cell, entry) in m.dense_table().iter().enumerate() {
            if let Some((n, o)) = entry {
                table[cell] = u64::from(o.0) << 32 | u64::from(n.0);
                defined[cell >> 6] |= 1u64 << (cell & 63);
                max_out = max_out.max(o.0);
            }
        }
        // Narrow mirror: next-state ids need `shift` bits, the widest
        // output id used needs `out_bits`; if both fields fit in 31 bits
        // every defined encoding stays below `UNDEFINED_NARROW`.
        let shift = 32 - (ns.saturating_sub(1) as u32).leading_zeros();
        let out_bits = 32 - max_out.leading_zeros();
        let narrow = (shift + out_bits <= 31).then(|| {
            table
                .iter()
                .map(|&rec| {
                    if rec == UNDEFINED_RECORD {
                        UNDEFINED_NARROW
                    } else {
                        ((rec >> 32) as u32) << shift | rec as u32
                    }
                })
                .collect()
        });
        PackedMealy {
            table,
            narrow,
            narrow_shift: shift,
            defined,
            num_states: ns,
            num_inputs: ni,
            reset: m.reset(),
        }
    }

    /// Decodes the fused record at `cell` as `(next, out)` raw ids.
    #[inline]
    fn record(&self, cell: usize) -> (u32, u32) {
        let rec = self.table[cell];
        (rec as u32, (rec >> 32) as u32)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of input symbols.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The reset state.
    pub fn reset(&self) -> StateId {
        self.reset
    }

    /// Dense-table cell index of `(state, input)` — identical to the
    /// scalar table's layout, so patches built here overlay the same
    /// transition [`ExplicitMealy::patched`] would.
    pub fn cell_index(&self, state: StateId, input: InputSym) -> usize {
        state.index() * self.num_inputs + input.index()
    }

    /// `true` iff the transition at `cell` is defined.
    #[inline]
    pub fn is_defined(&self, cell: usize) -> bool {
        (self.defined[cell >> 6] >> (cell & 63)) & 1 == 1
    }

    /// The raw fused record at `cell`: next-state id in the low 32 bits,
    /// output id in the high 32 — garbage where the cell is undefined,
    /// so callers must consult [`is_defined`](Self::is_defined) (and
    /// their [`LanePatch`], which overrides both) before trusting it.
    ///
    /// This is the single random-memory access of a lane-step, exposed
    /// raw so a replay round can be software-pipelined: one tight gather
    /// pass issuing every lane's independent table load back-to-back
    /// (maximal memory-level parallelism), then a bookkeeping pass over
    /// the L1-resident rest. [`step_lane`](Self::step_lane) is the
    /// one-call equivalent when pipelining isn't needed.
    #[inline]
    pub fn raw_record(&self, cell: usize) -> u64 {
        self.table[cell]
    }

    /// The narrow (32-bit) record table and its output-field shift, when
    /// the machine's id ranges permit one (see the field docs).
    ///
    /// For every cell, `(v >> shift)` is the output id and
    /// `v & ((1 << shift) - 1)` the next-state id of the same record
    /// [`raw_record`](Self::raw_record) returns, with
    /// [`UNDEFINED_NARROW`] standing in for [`UNDEFINED_RECORD`] — so a
    /// replay loop can gather half the bytes per lane-step and widen in
    /// registers.
    pub fn narrow_table(&self) -> Option<(&[u32], u32)> {
        self.narrow.as_deref().map(|t| (t, self.narrow_shift))
    }

    /// Scalar parity check: the packed tables' view of one transition,
    /// bit-identical to [`ExplicitMealy::step`].
    pub fn step(&self, state: StateId, input: InputSym) -> Option<(StateId, OutputSym)> {
        let cell = self.cell_index(state, input);
        self.is_defined(cell).then(|| {
            let (n, o) = self.record(cell);
            (StateId(n), OutputSym(o))
        })
    }

    /// Single-lane patched step on raw ids: exactly what
    /// [`PatchedMealy::step_patched`](crate::PatchedMealy::step_patched)
    /// (or [`ExplicitMealy::step`] under [`LanePatch::INACTIVE`]) would
    /// produce, with `None` for an undefined transition. `#[inline]` so
    /// a caller's fused round loop — e.g. the packed replay in
    /// `simcov-core` — compiles down to direct table access with no
    /// cross-crate call per lane-step.
    #[inline]
    pub fn step_lane(&self, state: u32, input: u32, patch: &LanePatch) -> Option<(u32, u32)> {
        let cell = state as usize * self.num_inputs + input as usize;
        if cell == patch.cell {
            return Some((patch.next, patch.out));
        }
        if self.is_defined(cell) {
            Some(self.record(cell))
        } else {
            None
        }
    }

    /// Builds a [`LanePatch`] overlaying `(state, input)` with
    /// `(next, output)`, panicking if the transition is undefined —
    /// mirroring [`ExplicitMealy::patched`]'s contract.
    pub fn lane_patch(
        &self,
        state: StateId,
        input: InputSym,
        next: StateId,
        output: OutputSym,
    ) -> LanePatch {
        let cell = self.cell_index(state, input);
        assert!(
            self.is_defined(cell),
            "transition must be defined to be patched"
        );
        LanePatch {
            cell,
            next: next.0,
            out: output.0,
        }
    }

    /// Advances every lane selected by `live` one step: lane `l` steps
    /// from raw state `states[l]` on raw input `inputs[l]` under its
    /// overlay `patches[l]`, writing the raw successor into
    /// `next_states[l]` and the raw output into `outputs[l]`.
    ///
    /// Returns the subset of `live` whose transition was **undefined**
    /// (those lanes' output slots are not written). Lanes outside `live`
    /// are untouched — callers own tail masking for partial words. The
    /// per-lane result is exactly what the scalar
    /// [`PatchedMealy::step_patched`](crate::PatchedMealy::step_patched)
    /// would produce; the point of the batch is that the lane lookups are
    /// independent loads the memory system can keep in flight together.
    pub fn step_lanes(
        &self,
        states: &[u32; LANES],
        inputs: &[u32; LANES],
        patches: &[LanePatch; LANES],
        live: u64,
        next_states: &mut [u32; LANES],
        outputs: &mut [u32; LANES],
    ) -> u64 {
        let mut undefined = 0u64;
        let mut m = live;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            match self.step_lane(states[l], inputs[l], &patches[l]) {
                Some((n, o)) => {
                    next_states[l] = n;
                    outputs[l] = o;
                }
                None => undefined |= 1u64 << l,
            }
        }
        undefined
    }

    /// Unpatched lane-parallel *walk* for golden-trace construction: runs
    /// every lane from reset over its own input sequence, producing for
    /// lane `l` exactly what [`ExplicitMealy::run`] from reset would —
    /// visited states (`len + 1` entries, truncated at the first
    /// undefined transition), emitted outputs (`len` entries) — plus the
    /// dense cell index traversed at each step (`states[r] * ni +
    /// inputs[r]`, one per output).
    ///
    /// This is the hot loop of packed trace construction, fused into one
    /// pass with direct table access: while every lane is still inside
    /// its sequence and defined, each round is a dense `w`-wide sweep of
    /// independent table loads with indexed stores — no live-mask scans,
    /// no patch compares, no per-push capacity checks. A masked loop
    /// handles ragged tails and truncation, retiring lanes individually
    /// with semantics identical to the scalar walk's `break`.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] sequences are given.
    #[allow(clippy::type_complexity)]
    pub fn walk_lanes(
        &self,
        seqs: &[&[InputSym]],
    ) -> (Vec<Vec<StateId>>, Vec<Vec<OutputSym>>, Vec<Vec<u32>>) {
        let w = seqs.len();
        assert!(w <= LANES, "at most {LANES} lanes per word");
        let ni = self.num_inputs;
        let mut st: Vec<Vec<StateId>> = seqs
            .iter()
            .map(|s| {
                let mut v = Vec::with_capacity(s.len() + 1);
                v.push(self.reset);
                v
            })
            .collect();
        let mut out: Vec<Vec<OutputSym>> =
            seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut cells: Vec<Vec<u32>> = seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut cur = [0u32; LANES];
        for slot in cur.iter_mut().take(w) {
            *slot = self.reset.0;
        }

        // Fast phase: rounds where every lane is live. A round stores
        // optimistically and rolls `cur` back from the already-recorded
        // `st` if any lane hit an undefined transition, leaving the
        // masked loop to replay that round lane by lane.
        let min_len = seqs.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut done = 0usize;
        if min_len > 0 {
            for l in 0..w {
                st[l].resize(min_len + 1, StateId(0));
                out[l].resize(min_len, OutputSym(0));
                cells[l].resize(min_len, 0);
            }
            'fast: for r in 0..min_len {
                let mut undef = false;
                for l in 0..w {
                    let cell = cur[l] as usize * ni + seqs[l][r].0 as usize;
                    // Sentinel pre-filter: no bitset load on the fast
                    // path. A (pathological) defined cell that encodes
                    // the sentinel bits just demotes the walk to the
                    // masked phase, which consults the real bitset.
                    let rec = self.table[cell];
                    undef |= rec == UNDEFINED_RECORD;
                    let n = rec as u32;
                    cells[l][r] = cell as u32;
                    st[l][r + 1] = StateId(n);
                    out[l][r] = OutputSym((rec >> 32) as u32);
                    cur[l] = n;
                }
                if undef {
                    for l in 0..w {
                        cur[l] = st[l][r].0;
                    }
                    break 'fast;
                }
                done = r + 1;
            }
            // Trim the pre-sizing back to the rounds that completed.
            for l in 0..w {
                st[l].truncate(done + 1);
                out[l].truncate(done);
                cells[l].truncate(done);
            }
        }

        // Masked phase: ragged tails past the shortest sequence, plus any
        // round the fast phase abandoned to an undefined transition.
        let mut live = 0u64;
        let mut pos = [0usize; LANES];
        for l in 0..w {
            pos[l] = done;
            if done < seqs[l].len() {
                live |= 1 << l;
            }
        }
        while live != 0 {
            let mut m = live;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let cell = cur[l] as usize * ni + seqs[l][pos[l]].0 as usize;
                if (self.defined[cell >> 6] >> (cell & 63)) & 1 == 0 {
                    live &= !(1 << l);
                    continue;
                }
                let (n, o) = self.record(cell);
                cells[l].push(cell as u32);
                st[l].push(StateId(n));
                out[l].push(OutputSym(o));
                cur[l] = n;
                pos[l] += 1;
                if pos[l] >= seqs[l].len() {
                    live &= !(1 << l);
                }
            }
        }
        (st, out, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::MealyBuilder;
    use simcov_prng::{forall_cfg, Config, Gen};

    /// Random (possibly partial) machine: `n` states, `ni` inputs, with a
    /// connectivity ring on input 0 and random definedness elsewhere.
    fn random_machine(g: &mut Gen, max_states: usize) -> ExplicitMealy {
        let n = g.int_in(2..max_states);
        let ni = g.int_in(1..4usize);
        let no = g.int_in(1..4usize);
        let mut b = MealyBuilder::new();
        let states: Vec<StateId> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
        let inputs: Vec<InputSym> = (0..ni).map(|i| b.add_input(format!("i{i}"))).collect();
        let outs: Vec<OutputSym> = (0..no).map(|i| b.add_output(format!("o{i}"))).collect();
        for (si, &s) in states.iter().enumerate() {
            for (ii, &i) in inputs.iter().enumerate() {
                if ii == 0 {
                    // Ring keeps every state reachable.
                    let next = states[(si + 1) % n];
                    b.add_transition(s, i, next, outs[g.int_in(0..no)]);
                } else if g.bool() {
                    let next = states[g.int_in(0..n)];
                    b.add_transition(s, i, next, outs[g.int_in(0..no)]);
                }
            }
        }
        b.build(states[0]).unwrap()
    }

    /// One random word of lane states/inputs for `m`, with a random live
    /// mask.
    fn random_word(g: &mut Gen, m: &ExplicitMealy) -> ([u32; LANES], [u32; LANES], u64) {
        let mut states = [0u32; LANES];
        let mut inputs = [0u32; LANES];
        for l in 0..LANES {
            states[l] = g.int_in(0..m.num_states()) as u32;
            inputs[l] = g.int_in(0..m.num_inputs()) as u32;
        }
        (states, inputs, g.u64())
    }

    #[test]
    fn packed_tables_mirror_the_scalar_table() {
        forall_cfg("packed_mirror", Config::with_cases(48), |g: &mut Gen| {
            let m = random_machine(g, 20);
            let p = PackedMealy::from_explicit(&m);
            assert_eq!(p.num_states(), m.num_states());
            assert_eq!(p.num_inputs(), m.num_inputs());
            assert_eq!(p.reset(), m.reset());
            for s in m.states() {
                for i in m.inputs() {
                    assert_eq!(p.step(s, i), m.step(s, i), "cell ({s:?}, {i:?})");
                }
            }
        });
    }

    #[test]
    fn narrow_records_decode_to_wide_records() {
        // Small random machines always qualify for the narrow table; its
        // widened view must be bit-identical to the wide table on every
        // cell, undefined cells included.
        forall_cfg("packed_narrow", Config::with_cases(48), |g: &mut Gen| {
            let m = random_machine(g, 20);
            let p = PackedMealy::from_explicit(&m);
            let (narrow, shift) = p.narrow_table().expect("small ranges fit 31 bits");
            let mask = (1u64 << shift) - 1;
            assert_eq!(narrow.len(), m.num_states() * m.num_inputs());
            for (cell, &v) in narrow.iter().enumerate() {
                let widened = if v == UNDEFINED_NARROW {
                    UNDEFINED_RECORD
                } else {
                    u64::from(v >> shift) << 32 | (u64::from(v) & mask)
                };
                assert_eq!(widened, p.raw_record(cell), "cell {cell}");
            }
        });
    }

    #[test]
    fn unpatched_lanes_match_scalar_step() {
        forall_cfg(
            "packed_step_lanes",
            Config::with_cases(48),
            |g: &mut Gen| {
                let m = random_machine(g, 20);
                let p = PackedMealy::from_explicit(&m);
                let (states, inputs, live) = random_word(g, &m);
                let patches = [LanePatch::INACTIVE; LANES];
                let sentinel = u32::MAX;
                let mut next = [sentinel; LANES];
                let mut out = [sentinel; LANES];
                let undef = p.step_lanes(&states, &inputs, &patches, live, &mut next, &mut out);
                assert_eq!(undef & !live, 0, "undefined mask must be a subset of live");
                for l in 0..LANES {
                    let scalar = m.step(StateId(states[l]), InputSym(inputs[l]));
                    if live >> l & 1 == 0 {
                        // Dead lanes are untouched: tail masking is the
                        // caller's job and stale slots must stay stale.
                        assert_eq!((next[l], out[l]), (sentinel, sentinel), "lane {l}");
                    } else if undef >> l & 1 == 1 {
                        assert_eq!(scalar, None, "lane {l}");
                    } else {
                        assert_eq!(
                            scalar,
                            Some((StateId(next[l]), OutputSym(out[l]))),
                            "lane {l}"
                        );
                    }
                }
            },
        );
    }

    #[test]
    fn step_lane_matches_scalar_patched_step() {
        // The inlined single-lane primitive is the packed replay's hot
        // path: pin it against PatchedMealy::step_patched (patched) and
        // ExplicitMealy::step (inactive patch) on random cells.
        forall_cfg("packed_step_lane", Config::with_cases(48), |g: &mut Gen| {
            let m = random_machine(g, 20);
            let p = PackedMealy::from_explicit(&m);
            let defined: Vec<_> = m.transitions().collect();
            let t = defined[g.int_in(0..defined.len())];
            let new_next = StateId(g.int_in(0..m.num_states()) as u32);
            let new_out = OutputSym(g.int_in(0..m.num_outputs()) as u32);
            let scalar_patched = m.patched(t.state, t.input, new_next, new_out);
            let patch = p.lane_patch(t.state, t.input, new_next, new_out);
            for _ in 0..16 {
                let s = g.int_in(0..m.num_states()) as u32;
                let i = g.int_in(0..m.num_inputs()) as u32;
                let expect = scalar_patched
                    .step_patched(StateId(s), InputSym(i))
                    .map(|(n, o)| (n.0, o.0));
                assert_eq!(p.step_lane(s, i, &patch), expect, "patched ({s}, {i})");
                let expect = m.step(StateId(s), InputSym(i)).map(|(n, o)| (n.0, o.0));
                assert_eq!(
                    p.step_lane(s, i, &LanePatch::INACTIVE),
                    expect,
                    "inactive ({s}, {i})"
                );
            }
        });
    }

    #[test]
    fn walk_lanes_matches_scalar_run_lane_by_lane() {
        // The fused walk (fast uniform phase + masked ragged tail) must
        // reproduce ExplicitMealy::run from reset exactly per lane,
        // including truncation at undefined transitions — random partial
        // machines with random-length sequences hit both phases and the
        // mid-round rollback.
        forall_cfg(
            "packed_walk_lanes",
            Config::with_cases(48),
            |g: &mut Gen| {
                let m = random_machine(g, 20);
                let p = PackedMealy::from_explicit(&m);
                let w = g.int_in(1..LANES + 1);
                let seqs: Vec<Vec<InputSym>> = (0..w)
                    .map(|_| {
                        let len = g.int_in(0..30usize);
                        (0..len)
                            .map(|_| InputSym(g.int_in(0..m.num_inputs()) as u32))
                            .collect()
                    })
                    .collect();
                let refs: Vec<&[InputSym]> = seqs.iter().map(|s| s.as_slice()).collect();
                let (st, out, cells) = p.walk_lanes(&refs);
                for l in 0..w {
                    let (es, eo) = m.run(m.reset(), &seqs[l]);
                    assert_eq!(st[l], es, "lane {l} states");
                    assert_eq!(out[l], eo, "lane {l} outputs");
                    let ec: Vec<u32> = es
                        .iter()
                        .zip(&seqs[l])
                        .take(eo.len())
                        .map(|(s, i)| p.cell_index(*s, *i) as u32)
                        .collect();
                    assert_eq!(cells[l], ec, "lane {l} cells");
                }
            },
        );
    }

    #[test]
    fn single_patched_lane_matches_patched_mealy() {
        forall_cfg("packed_one_patch", Config::with_cases(48), |g: &mut Gen| {
            let m = random_machine(g, 20);
            let p = PackedMealy::from_explicit(&m);
            // Pick a defined transition to patch and a lane to carry it.
            let defined: Vec<_> = m.transitions().collect();
            let t = defined[g.int_in(0..defined.len())];
            let new_next = StateId(g.int_in(0..m.num_states()) as u32);
            let new_out = OutputSym(g.int_in(0..m.num_outputs()) as u32);
            let scalar_patched = m.patched(t.state, t.input, new_next, new_out);
            let lane_patched = p.lane_patch(t.state, t.input, new_next, new_out);
            let victim = g.int_in(0..LANES);

            let (states, inputs, _) = random_word(g, &m);
            let mut patches = [LanePatch::INACTIVE; LANES];
            patches[victim] = lane_patched;
            let mut next = [0u32; LANES];
            let mut out = [0u32; LANES];
            let undef = p.step_lanes(&states, &inputs, &patches, u64::MAX, &mut next, &mut out);
            for l in 0..LANES {
                let s = StateId(states[l]);
                let i = InputSym(inputs[l]);
                // Only the victim lane sees the overlay; every other lane
                // must behave as the base machine even on the same cell.
                let expect = if l == victim {
                    scalar_patched.step_patched(s, i)
                } else {
                    m.step(s, i)
                };
                if undef >> l & 1 == 1 {
                    assert_eq!(expect, None, "lane {l}");
                } else {
                    assert_eq!(
                        expect,
                        Some((StateId(next[l]), OutputSym(out[l]))),
                        "lane {l}"
                    );
                }
            }
        });
    }

    #[test]
    fn all_lanes_divergent_word_steps_64_distinct_states() {
        // Edge case named by the harness spec: every lane in a different
        // state of a 64-state ring — one round must advance all of them
        // correctly with no cross-lane interference.
        let mut b = MealyBuilder::new();
        let states: Vec<StateId> = (0..LANES).map(|i| b.add_state(format!("s{i}"))).collect();
        let i = b.add_input("i");
        let o: Vec<OutputSym> = (0..LANES).map(|k| b.add_output(format!("o{k}"))).collect();
        for k in 0..LANES {
            b.add_transition(states[k], i, states[(k + 1) % LANES], o[k]);
        }
        let m = b.build(states[0]).unwrap();
        let p = PackedMealy::from_explicit(&m);
        let mut lane_states = [0u32; LANES];
        for (l, slot) in lane_states.iter_mut().enumerate() {
            *slot = l as u32;
        }
        let inputs = [0u32; LANES];
        let patches = [LanePatch::INACTIVE; LANES];
        let mut next = [0u32; LANES];
        let mut out = [0u32; LANES];
        let undef = p.step_lanes(
            &lane_states,
            &inputs,
            &patches,
            u64::MAX,
            &mut next,
            &mut out,
        );
        assert_eq!(undef, 0);
        for l in 0..LANES {
            assert_eq!(next[l], ((l + 1) % LANES) as u32, "lane {l}");
            assert_eq!(out[l], l as u32, "lane {l}");
        }
    }

    #[test]
    #[should_panic(expected = "transition must be defined")]
    fn lane_patch_panics_on_undefined_transition() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let i = b.add_input("i");
        let o = b.add_output("o");
        b.add_transition(s0, i, s1, o);
        let m = b.build(s0).unwrap();
        let p = PackedMealy::from_explicit(&m);
        let _ = p.lane_patch(s1, i, s0, o);
    }
}

//! Internal open-addressing hash tables specialized for the hot paths of the
//! BDD package (unique table and operation caches).
//!
//! `std::collections::HashMap` with SipHash is measurably slow for the tight
//! `(u32, u32, u32) -> u32` lookups that dominate BDD construction, so we use
//! a simple power-of-two, linear-probing table with a Fibonacci multiplicative
//! hash. Keys never collide with the `EMPTY` sentinel because valid node
//! indices are < `u32::MAX`.

/// Sentinel marking an empty slot.
const EMPTY: u64 = u64::MAX;

#[inline]
fn mix(a: u32, b: u32, c: u32) -> u64 {
    // SplitMix64-style finalizer over the packed key; cheap and well mixed.
    let mut z = (a as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((b as u64).rotate_left(32) ^ (c as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Open-addressing map from `(u32, u32, u32)` to `u32`.
///
/// Used for the unique table (`(var, low, high) -> node`) and the ternary
/// operation caches (`(f, g, h) -> result`).
///
/// Slots are stored *interleaved* — key and value halves adjacent in one
/// array — so a probe touches a single cache line. With the split-array
/// layout used previously, every probe of a table larger than L2 cost two
/// memory stalls, which dominated `ITE` time on transition-relation-sized
/// workloads. Tables also grow 4x rather than 2x: operation caches routinely
/// climb three orders of magnitude during one image computation, and the
/// steeper growth curve halves the number of full rehashes on the way up.
#[derive(Clone)]
pub(crate) struct TripleMap {
    // Slot layout: slots[2*i] = pack(a, b), slots[2*i + 1] = pack(c, value).
    // An empty slot has slots[2*i] == EMPTY.
    slots: Vec<u64>,
    len: usize,
    mask: usize,
}

impl TripleMap {
    pub(crate) fn with_capacity_pow2(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        TripleMap {
            slots: vec![EMPTY; cap * 2],
            len: 0,
            mask: cap - 1,
        }
    }

    // Exercised directly by the unit tests below; production probes go
    // through `insert` / `get_or_insert_with`.
    #[cfg(test)]
    pub(crate) fn get(&self, a: u32, b: u32, c: u32) -> Option<u32> {
        let k0 = pack(a, b);
        let mut idx = (mix(a, b, c) as usize) & self.mask;
        loop {
            let s0 = self.slots[idx * 2];
            if s0 == EMPTY {
                return None;
            }
            let s1 = self.slots[idx * 2 + 1];
            if s0 == k0 && (s1 >> 32) as u32 == c {
                return Some(s1 as u32);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, a: u32, b: u32, c: u32, value: u32) {
        if (self.len + 1) * 4 >= (self.mask + 1) * 3 {
            self.grow();
        }
        let k0 = pack(a, b);
        let k1 = pack(c, value);
        let mut idx = (mix(a, b, c) as usize) & self.mask;
        loop {
            let s0 = self.slots[idx * 2];
            if s0 == EMPTY {
                self.slots[idx * 2] = k0;
                self.slots[idx * 2 + 1] = k1;
                self.len += 1;
                return;
            }
            if s0 == k0 && (self.slots[idx * 2 + 1] >> 32) as u32 == c {
                // Overwrite (operation caches may be refreshed).
                self.slots[idx * 2 + 1] = k1;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Fused lookup-or-insert used by the unique table: one probe sequence
    /// serves both the hit and the miss path (a plain `get` followed by
    /// `insert` would re-hash and re-probe). `make` runs only on a miss,
    /// after any growth, so the produced value may depend on external state
    /// mutated by neither this map nor the probe.
    #[inline]
    pub(crate) fn get_or_insert_with(
        &mut self,
        a: u32,
        b: u32,
        c: u32,
        make: impl FnOnce() -> u32,
    ) -> u32 {
        if (self.len + 1) * 4 >= (self.mask + 1) * 3 {
            self.grow();
        }
        let k0 = pack(a, b);
        let mut idx = (mix(a, b, c) as usize) & self.mask;
        loop {
            let s0 = self.slots[idx * 2];
            if s0 == EMPTY {
                let v = make();
                self.slots[idx * 2] = k0;
                self.slots[idx * 2 + 1] = pack(c, v);
                self.len += 1;
                return v;
            }
            if s0 == k0 && (self.slots[idx * 2 + 1] >> 32) as u32 == c {
                return self.slots[idx * 2 + 1] as u32;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    #[cfg(test)]
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 4;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap * 2]);
        self.mask = new_cap - 1;
        self.len = 0;
        for pair in old.chunks_exact(2) {
            let (s0, s1) = (pair[0], pair[1]);
            if s0 != EMPTY {
                let a = (s0 >> 32) as u32;
                let b = s0 as u32;
                let c = (s1 >> 32) as u32;
                let v = s1 as u32;
                self.insert(a, b, c, v);
            }
        }
    }
}

/// Direct-mapped *lossy* cache from `(u32, u32, u32)` to `u32`, for the
/// operation caches (ITE, quantification, relational product, compose).
///
/// Unlike the unique table, an operation cache does not have to be exact: a
/// dropped entry only means a sub-result may be recomputed, never a wrong
/// answer, because `get` still compares the full key. Exploiting that, each
/// key hashes to exactly one slot — `get` is a single load-and-compare and
/// `insert` a single overwrite, with none of the probe chains or rehash
/// stalls of an exact open-addressing map. This is the classic CUDD cache
/// design, and on transition-relation construction it is the difference
/// between the cache being a constant-time side table and the dominant cost.
///
/// The cache still grows (4x, entries re-hashed, capped at
/// [`MAX_CACHE_SLOTS`]) when insert traffic since the last resize exceeds
/// twice the slot count, so small problems stay small and big image
/// computations get a big cache.
#[derive(Clone)]
pub(crate) struct DirectCache {
    // Slot layout as in `TripleMap`: slots[2*i] = pack(a, b),
    // slots[2*i + 1] = pack(c, value); empty slots have slots[2*i] == EMPTY.
    slots: Vec<u64>,
    mask: usize,
    inserts: u64,
}

/// Upper bound on direct-mapped cache slots (16 bytes each): 1M slots = 16 MB.
const MAX_CACHE_SLOTS: usize = 1 << 20;

impl DirectCache {
    pub(crate) fn with_capacity_pow2(cap: usize) -> Self {
        let cap = cap.next_power_of_two().clamp(16, MAX_CACHE_SLOTS);
        DirectCache {
            slots: vec![EMPTY; cap * 2],
            mask: cap - 1,
            inserts: 0,
        }
    }

    #[inline]
    pub(crate) fn get(&self, a: u32, b: u32, c: u32) -> Option<u32> {
        let idx = (mix(a, b, c) as usize) & self.mask;
        let s0 = self.slots[idx * 2];
        if s0 != pack(a, b) {
            return None;
        }
        let s1 = self.slots[idx * 2 + 1];
        if (s1 >> 32) as u32 != c {
            return None;
        }
        Some(s1 as u32)
    }

    #[inline]
    pub(crate) fn insert(&mut self, a: u32, b: u32, c: u32, value: u32) {
        self.inserts += 1;
        if self.inserts > 2 * (self.mask as u64 + 1) && self.mask + 1 < MAX_CACHE_SLOTS {
            self.grow();
        }
        let idx = (mix(a, b, c) as usize) & self.mask;
        self.slots[idx * 2] = pack(a, b);
        self.slots[idx * 2 + 1] = pack(c, value);
    }

    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.inserts = 0;
    }

    fn grow(&mut self) {
        let new_cap = ((self.mask + 1) * 4).min(MAX_CACHE_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap * 2]);
        self.mask = new_cap - 1;
        self.inserts = 0;
        for pair in old.chunks_exact(2) {
            let (s0, s1) = (pair[0], pair[1]);
            if s0 != EMPTY {
                let a = (s0 >> 32) as u32;
                let b = s0 as u32;
                let c = (s1 >> 32) as u32;
                let idx = (mix(a, b, c) as usize) & self.mask;
                self.slots[idx * 2] = s0;
                self.slots[idx * 2 + 1] = s1;
            }
        }
    }
}

/// Open-addressing map from a single `u32` key to `u64` (used by counting and
/// support caches where the value does not fit in 32 bits).
pub(crate) struct U32Map64 {
    keys: Vec<u32>,
    vals: Vec<u64>,
    len: usize,
    mask: usize,
}

const EMPTY32: u32 = u32::MAX;

impl U32Map64 {
    pub(crate) fn new() -> Self {
        U32Map64 {
            keys: vec![EMPTY32; 64],
            vals: vec![0; 64],
            len: 0,
            mask: 63,
        }
    }

    #[inline]
    pub(crate) fn get(&self, k: u32) -> Option<u64> {
        let mut idx = (mix(k, 0, 0) as usize) & self.mask;
        loop {
            let s = self.keys[idx];
            if s == EMPTY32 {
                return None;
            }
            if s == k {
                return Some(self.vals[idx]);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, k: u32, v: u64) {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mut idx = (mix(k, 0, 0) as usize) & self.mask;
        loop {
            let s = self.keys[idx];
            if s == EMPTY32 {
                self.keys[idx] = k;
                self.vals[idx] = v;
                self.len += 1;
                return;
            }
            if s == k {
                self.vals[idx] = v;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY32; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY32 {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_map_roundtrip() {
        let mut m = TripleMap::with_capacity_pow2(16);
        for i in 0..1000u32 {
            m.insert(i, i.wrapping_mul(7), i ^ 3, i + 1);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(i, i.wrapping_mul(7), i ^ 3), Some(i + 1));
        }
        assert_eq!(m.get(5000, 1, 2), None);
    }

    #[test]
    fn triple_map_overwrite() {
        let mut m = TripleMap::with_capacity_pow2(16);
        m.insert(1, 2, 3, 10);
        m.insert(1, 2, 3, 20);
        assert_eq!(m.get(1, 2, 3), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn triple_map_clear() {
        let mut m = TripleMap::with_capacity_pow2(16);
        m.insert(1, 2, 3, 10);
        m.clear();
        assert_eq!(m.get(1, 2, 3), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn u32map_roundtrip() {
        let mut m = U32Map64::new();
        for i in 0..500u32 {
            m.insert(i, (i as u64) << 33);
        }
        for i in 0..500u32 {
            assert_eq!(m.get(i), Some((i as u64) << 33));
        }
        assert_eq!(m.get(501), None);
    }

    #[test]
    fn u32map_overwrite() {
        let mut m = U32Map64::new();
        m.insert(7, 1);
        m.insert(7, 2);
        assert_eq!(m.get(7), Some(2));
    }
}

//! Differential fault simulation: golden-trace memoization, excitation
//! indexing, and suffix-only replay.
//!
//! The naive engine ([`simulate_fault`](crate::faults::simulate_fault))
//! clones the whole transition table per fault and replays the golden and
//! faulty machines side by side over every sequence. But a *single* fault
//! changes exactly one transition, so the faulty trajectory coincides with
//! the golden one **strictly until the faulted transition is first
//! traversed** — the fault-domain observation behind classic conformance
//! testing engines. This module exploits that structure in three layers:
//!
//! 1. [`GoldenTrace`] memoizes one golden simulation of the whole test
//!    set — per-sequence state/output trajectories plus an **excitation
//!    index** mapping each `(state, input)` cell to the positions where
//!    the golden run traverses it. Built once per campaign and shared
//!    read-only across all shards.
//! 2. [`simulate_fault_differential`] classifies each fault against the
//!    memo: a fault whose cell never appears in the index is provably not
//!    excited, not detected and not masked — tallied in O(1) with zero
//!    simulation. An effective output error is classified entirely from
//!    the index (it never perturbs the state trajectory). Only effective
//!    transfer errors are simulated, and only from their first divergence
//!    point, comparing against the memoized golden outputs.
//! 3. Replay uses the zero-clone
//!    [`Fault::patch`](crate::error_model::Fault::patch) overlay instead
//!    of [`Fault::inject`](crate::error_model::Fault::inject)'s full
//!    table clone.
//!
//! The result is **bit-identical** to the naive engine — same
//! [`FaultOutcome`]s, hence same merged
//! [`CampaignStats`](crate::parallel::CampaignStats) — which DESIGN.md
//! §11 proves and the property tests plus the CI equivalence gate
//! enforce. [`DiffStats`] counts the work the short-cuts avoided and is
//! surfaced through the `campaign.faults_skipped_by_index`,
//! `campaign.prefix_steps_saved` and `campaign.divergence_replays`
//! telemetry counters (see [`simcov_obs::names`]).

use crate::error_model::{Fault, FaultKind};
use crate::faults::FaultOutcome;
use simcov_fsm::{ExplicitMealy, InputSym, OutputSym, PackedMealy, StateId, LANES};
use simcov_tour::TestSet;

/// Which fault-simulation engine a campaign runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// The clone-and-replay reference implementation
    /// ([`simulate_fault`](crate::faults::simulate_fault)): every fault
    /// clones the machine and replays golden + faulty over the full test
    /// set. Kept as the differential engine's cross-check oracle.
    Naive,
    /// Golden-trace memoization with excitation indexing and zero-clone
    /// suffix replay ([`simulate_fault_differential`]). Produces
    /// bit-identical outcomes to [`Engine::Naive`].
    #[default]
    Differential,
    /// Bit-parallel word packing over the differential engine's replay
    /// structure ([`crate::packed::simulate_shard_packed`]): up to 64
    /// effective transfer faults per shard share one lane-parallel suffix
    /// replay over struct-of-arrays tables
    /// ([`simcov_fsm::PackedMealy`]). Produces bit-identical outcomes to
    /// both scalar engines.
    Packed,
    /// Implicit fault enumeration over BDDs
    /// ([`crate::symbolic::simulate_shard_symbolic`]): each shard's faults
    /// become a cofactor cube of a shared fault-id variable space, the
    /// faulty next-state/output functions are patched symbolically, and
    /// one relational-product walk per test sequence classifies every
    /// fault in the shard at once. Produces bit-identical outcomes to the
    /// explicit engines.
    Symbolic,
}

impl Engine {
    /// Stable lower-case name (`naive` / `differential` / `packed` /
    /// `symbolic`), used by the CLI `--engine` flag and its output.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Naive => "naive",
            Engine::Differential => "differential",
            Engine::Packed => "packed",
            Engine::Symbolic => "symbolic",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic counters for the work the differential engine avoided.
///
/// Kept separate from [`CampaignStats`](crate::parallel::CampaignStats)
/// (whose layout is part of the checkpoint-journal and trace surface):
/// these describe the *engine's effort*, not the campaign's findings, and
/// are all zero under [`Engine::Naive`]. Each counter is a pure function
/// of `(golden, faults, tests)`, so merged totals are identical across
/// thread counts and shard schedules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Faults classified with zero simulation because their transition
    /// never appears in the excitation index (not excited, not detected,
    /// not masked — see DESIGN.md §11, Lemma 1).
    pub faults_skipped_by_index: usize,
    /// Golden-trace vectors whose faulty-machine execution was skipped:
    /// the shared prefix before each first divergence, whole sequences
    /// that never excite the fault, and the entire test set for faults
    /// classified purely from the index.
    pub prefix_steps_saved: usize,
    /// Suffix replays performed — one per `(fault, sequence)` pair that
    /// was actually re-simulated from its first divergence point.
    pub divergence_replays: usize,
}

impl DiffStats {
    /// Component-wise sum: commutative and associative, so any merge
    /// tree over the same shard set yields the same totals.
    pub fn merge(&mut self, other: &DiffStats) {
        self.faults_skipped_by_index += other.faults_skipped_by_index;
        self.prefix_steps_saved += other.prefix_steps_saved;
        self.divergence_replays += other.divergence_replays;
    }
}

/// One golden simulation of a whole test set, memoized: per-sequence
/// state/output trajectories plus the excitation index. Built once per
/// campaign ([`GoldenTrace::build`]) and shared read-only across shards.
///
/// ```
/// use simcov_core::differential::GoldenTrace;
/// use simcov_core::models::figure2;
/// use simcov_tour::TestSet;
///
/// let (m, fault) = figure2();
/// let a = m.input_by_label("a").unwrap();
/// let tests = TestSet::single(vec![a, a, a]);
/// let trace = GoldenTrace::build(&m, &tests);
/// // The canonical Figure 2 fault sits on (state 2, input a), first
/// // traversed at position 1 of the only sequence.
/// assert_eq!(trace.excitations(fault.state, fault.input), &[(0, 1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    /// Per-sequence visited states (`len + 1` entries each, truncated at
    /// the first undefined transition) — mirrors [`ExplicitMealy::run`].
    states: Vec<Vec<StateId>>,
    /// Per-sequence emitted outputs (`len` entries each, truncated).
    outputs: Vec<Vec<OutputSym>>,
    /// CSR excitation index: cell `c = s * num_inputs + i` owns
    /// `index_entries[index_offsets[c]..index_offsets[c + 1]]`, the
    /// positions `(sequence, vector)` where the golden run traverses the
    /// transition `(s, i)`, in ascending `(sequence, vector)` order. Two
    /// flat arrays instead of one `Vec` per cell: a 10^4-state machine
    /// has ~10^4·|I| cells, and per-cell vectors cost one heap
    /// allocation per *touched* cell — the dominant cost of trace
    /// construction on large machines.
    index_offsets: Vec<u32>,
    index_entries: Vec<(u32, u32)>,
    /// Input-alphabet size of the machine the index is keyed by.
    num_inputs: usize,
    /// Total golden vectors simulated (sum of output lengths).
    total_steps: usize,
}

/// Builds the CSR excitation index by stable counting sort. `cells`
/// holds the traversed cell of every golden step in ascending
/// `(sequence, vector)` order; each sequence contributed exactly
/// `outputs[si].len()` entries (one per emitted output). Both trace
/// builders feed this one helper, which is what guarantees their
/// indices are bit-identical: same flat record order in, same
/// `(offsets, entries)` out.
fn csr_index(
    ncells: usize,
    outputs: &[Vec<OutputSym>],
    cells: &[u32],
) -> (Vec<u32>, Vec<(u32, u32)>) {
    let mut offsets = vec![0u32; ncells + 1];
    for &c in cells {
        offsets[c as usize + 1] += 1;
    }
    for i in 0..ncells {
        offsets[i + 1] += offsets[i];
    }
    // Scatter with a per-cell cursor; the ascending input order makes
    // the sort stable, so each cell's entries stay ascending too.
    let mut cursor: Vec<u32> = offsets[..ncells].to_vec();
    let mut entries = vec![(0u32, 0u32); cells.len()];
    let mut k = 0usize;
    for (si, out) in outputs.iter().enumerate() {
        for vi in 0..out.len() {
            let c = cells[k] as usize;
            k += 1;
            entries[cursor[c] as usize] = (si as u32, vi as u32);
            cursor[c] += 1;
        }
    }
    debug_assert_eq!(k, cells.len());
    (offsets, entries)
}

impl GoldenTrace {
    /// Simulates `golden` once over every sequence of `tests`, recording
    /// trajectories and the excitation index.
    pub fn build(golden: &ExplicitMealy, tests: &TestSet) -> GoldenTrace {
        let ni = golden.num_inputs();
        let mut states = Vec::with_capacity(tests.sequences.len());
        let mut outputs = Vec::with_capacity(tests.sequences.len());
        let mut cells: Vec<u32> = Vec::new();
        let mut total_steps = 0usize;
        for seq in &tests.sequences {
            let mut st = Vec::with_capacity(seq.len() + 1);
            let mut out = Vec::with_capacity(seq.len());
            let mut cur = golden.reset();
            st.push(cur);
            for &i in seq.iter() {
                let Some((n, o)) = golden.step(cur, i) else {
                    break;
                };
                cells.push((cur.index() * ni + i.index()) as u32);
                st.push(n);
                out.push(o);
                cur = n;
            }
            total_steps += out.len();
            states.push(st);
            outputs.push(out);
        }
        let (index_offsets, index_entries) = csr_index(golden.num_states() * ni, &outputs, &cells);
        GoldenTrace {
            states,
            outputs,
            index_offsets,
            index_entries,
            num_inputs: ni,
            total_steps,
        }
    }

    /// Builds the same trace as [`build`](Self::build) — bit-identical,
    /// field for field — but walks up to [`LANES`]
    /// sequences lane-parallel over the packed tables. The scalar build
    /// is a serial pointer chase (each lookup depends on the previous
    /// step's state); packing independent sequences keeps that many table
    /// loads in flight at once, which is where the packed engine's
    /// trace-construction speedup comes from.
    ///
    /// # Panics
    ///
    /// Panics if `packed` was not built from `golden`.
    pub fn build_packed(
        golden: &ExplicitMealy,
        packed: &PackedMealy,
        tests: &TestSet,
    ) -> GoldenTrace {
        assert_eq!(packed.num_states(), golden.num_states());
        assert_eq!(packed.num_inputs(), golden.num_inputs());
        assert_eq!(packed.reset(), golden.reset());
        let ni = golden.num_inputs();
        let mut states = Vec::with_capacity(tests.sequences.len());
        let mut outputs = Vec::with_capacity(tests.sequences.len());
        let mut cells: Vec<u32> = Vec::new();
        let mut total_steps = 0usize;
        for chunk in tests.sequences.chunks(LANES) {
            let refs: Vec<&[InputSym]> = chunk.iter().map(|s| s.as_slice()).collect();
            let (st, out, lane_cells) = packed.walk_lanes(&refs);
            for ((st, out), lane_cells) in st.into_iter().zip(out).zip(lane_cells) {
                cells.extend_from_slice(&lane_cells);
                total_steps += out.len();
                states.push(st);
                outputs.push(out);
            }
        }
        let (index_offsets, index_entries) = csr_index(golden.num_states() * ni, &outputs, &cells);
        GoldenTrace {
            states,
            outputs,
            index_offsets,
            index_entries,
            num_inputs: ni,
            total_steps,
        }
    }

    /// Positions `(sequence, vector)` where the golden run traverses the
    /// transition `(state, input)`, ascending. Empty iff no sequence ever
    /// excites a fault on that transition.
    pub fn excitations(&self, state: StateId, input: InputSym) -> &[(u32, u32)] {
        let c = state.index() * self.num_inputs + input.index();
        &self.index_entries[self.index_offsets[c] as usize..self.index_offsets[c + 1] as usize]
    }

    /// Number of memoized sequences (= the test set's sequence count).
    pub fn num_sequences(&self) -> usize {
        self.states.len()
    }

    /// Memoized golden state trajectory of sequence `si`: `len + 1`
    /// entries starting at reset, truncated at the first undefined
    /// transition — mirrors [`ExplicitMealy::run`].
    pub fn seq_states(&self, si: usize) -> &[StateId] {
        &self.states[si]
    }

    /// Memoized golden outputs of sequence `si` (`len` entries,
    /// truncated).
    pub fn seq_outputs(&self, si: usize) -> &[OutputSym] {
        &self.outputs[si]
    }

    /// Total golden vectors simulated across the test set.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }
}

/// Classifies one fault against a [`GoldenTrace`], producing the same
/// [`FaultOutcome`] as [`simulate_fault`](crate::faults::simulate_fault)
/// — bit for bit — while skipping all work the single-fault structure
/// makes redundant. `stats` accumulates the [`DiffStats`] counters.
///
/// # Panics
///
/// Panics if the fault's transition is undefined in `golden` (matching
/// [`Fault::inject`](crate::error_model::Fault::inject)'s contract), or
/// if `trace` was built for a different `(golden, tests)` pair.
pub fn simulate_fault_differential(
    golden: &ExplicitMealy,
    trace: &GoldenTrace,
    fault: &Fault,
    tests: &TestSet,
    stats: &mut DiffStats,
) -> FaultOutcome {
    let fault = *fault;
    let (orig_next, orig_out) = golden
        .step(fault.state, fault.input)
        .expect("transition must be defined to be faulted");
    assert_eq!(
        trace.states.len(),
        tests.sequences.len(),
        "golden trace must memoize exactly this test set"
    );
    let entries = trace.excitations(fault.state, fault.input);

    // Layer-2 fast path (DESIGN.md §11, Lemma 1): the faulty trajectory
    // coincides with the golden one until the faulted transition is first
    // traversed, and the first traversal position of the faulty machine
    // equals the first golden-trace traversal of the same cell. An empty
    // index therefore proves the fault is never excited, so golden and
    // faulty runs are identical on every sequence: not detected (equal
    // outputs, equal truncation) and not masked (states never diverge).
    if entries.is_empty() {
        stats.faults_skipped_by_index += 1;
        return FaultOutcome {
            fault,
            detected: None,
            excited: false,
            masked_somewhere: false,
        };
    }

    match fault.kind {
        // An output error never perturbs the state trajectory, so the
        // faulty run visits exactly the golden states and differs only in
        // the output emitted at each indexed traversal. Detection is the
        // globally first traversal iff the relabeling is effective; the
        // states never diverge, so masking is impossible (Lemma 2).
        FaultKind::Output { new_output } => {
            stats.prefix_steps_saved += trace.total_steps;
            let detected =
                (new_output != orig_out).then(|| (entries[0].0 as usize, entries[0].1 as usize));
            FaultOutcome {
                fault,
                detected,
                excited: true,
                masked_somewhere: false,
            }
        }
        FaultKind::Transfer { new_next } => {
            // An ineffective redirection leaves the machine unchanged:
            // excited (the cell is traversed) but nothing to observe.
            if new_next == orig_next {
                stats.prefix_steps_saved += trace.total_steps;
                return FaultOutcome {
                    fault,
                    detected: None,
                    excited: true,
                    masked_somewhere: false,
                };
            }
            let patched = fault.patch(golden);
            let mut detected = None;
            let mut masked_somewhere = false;
            // `entries` is ascending in (sequence, vector); walk it with a
            // cursor so each sequence's *first* excitation is O(1).
            let mut ei = 0usize;
            for (si, seq) in tests.sequences.iter().enumerate() {
                while ei < entries.len() && (entries[ei].0 as usize) < si {
                    ei += 1;
                }
                let go = &trace.outputs[si];
                let gs = &trace.states[si];
                let gl = go.len();
                let excitation = (ei < entries.len() && entries[ei].0 as usize == si)
                    .then(|| entries[ei].1 as usize);
                let Some(e) = excitation else {
                    // No excitation on this sequence: the faulty run is
                    // the golden run — nothing detected, nothing masked.
                    stats.prefix_steps_saved += gl;
                    continue;
                };
                // Replay only the suffix. Up to and including position e
                // the trajectories agree (the transfer emits the golden
                // output at e); the faulty machine then sits in `new_next`
                // at position e + 1 while the golden trace has gs[e + 1].
                stats.prefix_steps_saved += e + 1;
                stats.divergence_replays += 1;
                let mut f_cur = new_next;
                let mut diverged = false;
                let mut seq_detect = None;
                let mut seq_masked = false;
                let mut p = e + 1;
                // Loop invariant: the faulty machine has emitted p
                // outputs (all equal to go[..p]) and sits in f_cur, with
                // p <= gl (we break the moment the faulty run outlives
                // the golden one).
                loop {
                    // Masking state-comparison at position p, mirroring
                    // `is_masked_on`'s diverge-then-reconverge scan. The
                    // output comparisons that scan interleaves are
                    // redundant here: the masked flag is only consulted
                    // when the sequence detects nothing, i.e. when no
                    // output difference exists at all (§11, Lemma 3).
                    if gs[p] != f_cur {
                        diverged = true;
                    } else if diverged {
                        seq_masked = true;
                    }
                    if p >= seq.len() {
                        break; // Both runs consumed the whole sequence.
                    }
                    match patched.step_patched(f_cur, seq[p]) {
                        None => {
                            // Faulty truncates with p outputs. Truncation
                            // asymmetry detects at the common length.
                            if gl > p {
                                seq_detect = Some(p);
                            }
                            break;
                        }
                        Some((nxt, out)) => {
                            if p >= gl {
                                // Golden truncated at gl = p but the
                                // faulty machine stepped on: asymmetry
                                // detects at the common length gl.
                                seq_detect = Some(p);
                                break;
                            }
                            if out != go[p] {
                                seq_detect = Some(p);
                                break;
                            }
                            f_cur = nxt;
                            p += 1;
                        }
                    }
                }
                if let Some(vi) = seq_detect {
                    // First detecting sequence: later sequences can no
                    // longer change any field of the outcome (excitation
                    // is already known from the index, and the naive
                    // engine neither re-detects nor masks past this
                    // point).
                    detected = Some((si, vi));
                    break;
                }
                masked_somewhere |= seq_masked;
            }
            FaultOutcome {
                fault,
                detected,
                excited: true,
                masked_somewhere,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{enumerate_single_faults, extend_cyclically, simulate_fault, FaultSpace};
    use crate::testutil::figure2;
    use simcov_fsm::MealyBuilder;
    use simcov_tour::transition_tour;

    fn assert_equivalent(golden: &ExplicitMealy, faults: &[Fault], tests: &TestSet) {
        let trace = GoldenTrace::build(golden, tests);
        let mut diff = DiffStats::default();
        for f in faults {
            let naive = simulate_fault(golden, f, tests);
            let differential = simulate_fault_differential(golden, &trace, f, tests, &mut diff);
            assert_eq!(differential, naive, "fault {f} under {tests:?}");
        }
    }

    #[test]
    fn figure2_all_faults_all_tours_bit_identical() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tour = transition_tour(&m).unwrap();
        for k in [0, 1, 3, 7] {
            let tests = TestSet::single(extend_cyclically(&tour.inputs, k));
            assert_equivalent(&m, &faults, &tests);
        }
    }

    #[test]
    fn multi_sequence_sets_bit_identical() {
        let (m, _) = figure2();
        let a = m.input_by_label("a").unwrap();
        let b = m.input_by_label("b").unwrap();
        let c = m.input_by_label("c").unwrap();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        // Short sequences exercise cross-sequence detection ordering,
        // per-sequence excitation skips, and empty sequences.
        let tests = TestSet {
            sequences: vec![
                vec![c, c],
                vec![],
                vec![a, a, c],
                vec![a, a, b],
                vec![b, a, b, c, a],
            ],
        };
        assert_equivalent(&m, &faults, &tests);
    }

    #[test]
    fn partial_machines_bit_identical() {
        // A partial machine exercises golden truncation, faulty-only
        // truncation (a transfer redirects into a state where the next
        // input is undefined) and truncation-asymmetry detection.
        let mut bld = MealyBuilder::new();
        let s: Vec<_> = (0..4).map(|i| bld.add_state(format!("s{i}"))).collect();
        let x = bld.add_input("x");
        let y = bld.add_input("y");
        let o0 = bld.add_output("o0");
        let o1 = bld.add_output("o1");
        bld.add_transition(s[0], x, s[1], o0);
        bld.add_transition(s[0], y, s[2], o1);
        bld.add_transition(s[1], x, s[2], o0);
        bld.add_transition(s[1], y, s[0], o0);
        bld.add_transition(s[2], x, s[3], o1);
        // (s2, y), (s3, x), (s3, y) undefined.
        let m = bld.build(s[0]).unwrap();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        assert!(!faults.is_empty());
        let tests = TestSet {
            sequences: vec![
                vec![x, x, x, x],
                vec![x, y, x, y, x],
                vec![y, x, x],
                vec![x, y, y, x],
            ],
        };
        assert_equivalent(&m, &faults, &tests);
    }

    #[test]
    fn ineffective_faults_bit_identical() {
        let (m, fault) = figure2();
        let (next, out) = m.step(fault.state, fault.input).unwrap();
        let tour = transition_tour(&m).unwrap();
        let tests = TestSet::single(extend_cyclically(&tour.inputs, 2));
        let noop_transfer = Fault {
            kind: FaultKind::Transfer { new_next: next },
            ..fault
        };
        let noop_output = Fault {
            kind: FaultKind::Output { new_output: out },
            ..fault
        };
        assert_equivalent(&m, &[noop_transfer, noop_output], &tests);
        // Both are excited (the tour traverses every transition) but
        // observationally silent.
        let trace = GoldenTrace::build(&m, &tests);
        let mut diff = DiffStats::default();
        let o = simulate_fault_differential(&m, &trace, &noop_transfer, &tests, &mut diff);
        assert!(o.excited && o.detected.is_none() && !o.masked_somewhere);
    }

    #[test]
    fn unexcited_faults_skip_with_zero_simulation() {
        let (m, fault) = figure2();
        let a = m.input_by_label("a").unwrap();
        // A 1-vector test set cannot reach state 2, so the canonical
        // fault is never excited.
        let tests = TestSet::single(vec![a]);
        let trace = GoldenTrace::build(&m, &tests);
        let mut diff = DiffStats::default();
        let o = simulate_fault_differential(&m, &trace, &fault, &tests, &mut diff);
        assert_eq!(o, simulate_fault(&m, &fault, &tests));
        assert!(!o.excited);
        assert_eq!(diff.faults_skipped_by_index, 1);
        assert_eq!(diff.divergence_replays, 0);
        assert_eq!(diff.prefix_steps_saved, 0);
    }

    #[test]
    fn diff_stats_account_for_the_avoided_work() {
        let (m, fault) = figure2();
        let tour = transition_tour(&m).unwrap();
        let tests = TestSet::single(extend_cyclically(&tour.inputs, 3));
        let trace = GoldenTrace::build(&m, &tests);
        let mut diff = DiffStats::default();
        let _ = simulate_fault_differential(&m, &trace, &fault, &tests, &mut diff);
        // The canonical transfer fault is excited by the tour: exactly
        // one suffix replay, with the shared prefix skipped.
        assert_eq!(diff.divergence_replays, 1);
        assert!(diff.prefix_steps_saved > 0);
        assert_eq!(diff.faults_skipped_by_index, 0);
        // Output faults are classified purely from the index: the whole
        // golden trace is "saved" and no replay happens.
        let of = Fault {
            kind: FaultKind::Output {
                new_output: OutputSym(0),
            },
            ..fault
        };
        let mut diff = DiffStats::default();
        let _ = simulate_fault_differential(&m, &trace, &of, &tests, &mut diff);
        assert_eq!(diff.divergence_replays, 0);
        assert_eq!(diff.prefix_steps_saved, trace.total_steps());
    }

    #[test]
    fn diff_stats_merge_is_commutative() {
        let a = DiffStats {
            faults_skipped_by_index: 3,
            prefix_steps_saved: 100,
            divergence_replays: 7,
        };
        let b = DiffStats {
            faults_skipped_by_index: 1,
            prefix_steps_saved: 9,
            divergence_replays: 2,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.faults_skipped_by_index, 4);
        assert_eq!(ab.prefix_steps_saved, 109);
        assert_eq!(ab.divergence_replays, 9);
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(Engine::Naive.name(), "naive");
        assert_eq!(Engine::Differential.to_string(), "differential");
        assert_eq!(Engine::Packed.name(), "packed");
        assert_eq!(Engine::default(), Engine::Differential);
    }

    #[test]
    fn packed_trace_build_is_field_identical_to_scalar_build() {
        // Scalar and lane-parallel construction must agree on every field
        // — trajectories, outputs, the excitation index's entry order and
        // the step total — including truncation on partial machines.
        let (m, _) = figure2();
        let a = m.input_by_label("a").unwrap();
        let b = m.input_by_label("b").unwrap();
        let c = m.input_by_label("c").unwrap();
        let tour = transition_tour(&m).unwrap();
        let sets = [
            TestSet::single(extend_cyclically(&tour.inputs, 2)),
            TestSet {
                sequences: vec![vec![c, c], vec![], vec![a, a, c], vec![b, a, b, c, a]],
            },
            TestSet { sequences: vec![] },
            // More sequences than LANES forces multiple chunks.
            TestSet {
                sequences: (0..150).map(|k| vec![[a, b, c][k % 3]; k % 7]).collect(),
            },
        ];
        let packed = PackedMealy::from_explicit(&m);
        for tests in &sets {
            assert_eq!(
                GoldenTrace::build_packed(&m, &packed, tests),
                GoldenTrace::build(&m, tests),
                "{} sequences",
                tests.sequences.len()
            );
        }
    }
}

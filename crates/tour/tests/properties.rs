//! Property-based tests for tour generation on random strongly connected
//! machines.

use proptest::prelude::*;
use simcov_fsm::{ExplicitMealy, MealyBuilder, StateId};
use simcov_tour::{
    coverage, greedy_transition_tour, random_test_set, state_tour, transition_tour,
};

/// A random machine guaranteed strongly connected: a base ring on input 0
/// plus arbitrary extra edges on the remaining inputs.
#[derive(Debug, Clone)]
struct MachineRecipe {
    n: usize,
    extra: Vec<(u16, u16, u16)>, // (state, input>=1, dest)
    num_inputs: usize,
}

fn machine_strategy() -> impl Strategy<Value = MachineRecipe> {
    (2..12usize, 1..4usize)
        .prop_flat_map(|(n, num_inputs)| {
            proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 0..20)
                .prop_map(move |extra| MachineRecipe { n, extra, num_inputs })
        })
}

fn build(r: &MachineRecipe) -> ExplicitMealy {
    let mut b = MealyBuilder::new();
    let states: Vec<_> = (0..r.n).map(|i| b.add_state(format!("s{i}"))).collect();
    let inputs: Vec<_> = (0..r.num_inputs + 1)
        .map(|i| b.add_input(format!("i{i}")))
        .collect();
    let outs: Vec<_> = (0..r.n).map(|i| b.add_output(format!("o{i}"))).collect();
    for i in 0..r.n {
        b.add_transition(states[i], inputs[0], states[(i + 1) % r.n], outs[i]);
    }
    let mut used = std::collections::HashSet::new();
    for &(s, inp, d) in &r.extra {
        let s = s as usize % r.n;
        let inp = 1 + (inp as usize % r.num_inputs);
        let d = d as usize % r.n;
        if used.insert((s, inp)) {
            b.add_transition(states[s], inputs[inp], states[d], outs[d]);
        }
    }
    b.build(states[0]).expect("recipe machines are deterministic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The Chinese-postman tour covers every transition and has the
    /// promised length (edges + duplicates).
    #[test]
    fn postman_tour_covers_everything(r in machine_strategy()) {
        let m = build(&r);
        let tour = transition_tour(&m).expect("ring base makes it strongly connected");
        let report = coverage(&m, &tour.inputs);
        prop_assert!(report.all_transitions_covered());
        prop_assert!(report.all_states_covered());
        prop_assert_eq!(tour.len(), m.num_transitions() + tour.duplicates);
        // The tour is a circuit: it ends where it started.
        let (states, _) = m.run(m.reset(), &tour.inputs);
        prop_assert_eq!(*states.last().unwrap(), m.reset());
    }

    /// The greedy tour also covers everything and is never shorter than
    /// the optimum.
    #[test]
    fn greedy_tour_covers_and_bounds(r in machine_strategy()) {
        let m = build(&r);
        let opt = transition_tour(&m).expect("strongly connected");
        let greedy = greedy_transition_tour(&m).expect("strongly connected");
        prop_assert!(coverage(&m, &greedy.inputs).all_transitions_covered());
        prop_assert!(greedy.len() >= opt.len());
        // And the optimum is at least the edge count.
        prop_assert!(opt.len() >= m.num_transitions());
    }

    /// State tours visit every state, never more vectors than a
    /// transition tour needs.
    #[test]
    fn state_tour_covers_states(r in machine_strategy()) {
        let m = build(&r);
        let st = state_tour(&m).expect("has transitions");
        let report = coverage(&m, &st.inputs);
        prop_assert!(report.all_states_covered());
        let tt = transition_tour(&m).expect("strongly connected");
        prop_assert!(st.len() <= tt.len());
    }

    /// Random test sets are reproducible and respect their budget.
    #[test]
    fn random_sets_deterministic(r in machine_strategy(), seed in any::<u64>()) {
        let m = build(&r);
        let t1 = random_test_set(&m, 3, 20, seed);
        let t2 = random_test_set(&m, 3, 20, seed);
        prop_assert_eq!(&t1, &t2);
        prop_assert!(t1.total_vectors() <= 60);
        // Coverage of a random set never exceeds full coverage and the
        // report's fraction is within [0, 1].
        let seqs: Vec<&[_]> = t1.sequences.iter().map(Vec::as_slice).collect();
        let rep = simcov_tour::coverage_set(&m, seqs);
        prop_assert!(rep.transition_fraction() <= 1.0);
        prop_assert!(rep.state_fraction() <= 1.0);
    }

    /// Tours on machines with unreachable states ignore them.
    #[test]
    fn unreachable_states_do_not_affect_tours(r in machine_strategy()) {
        let m = build(&r);
        // Append unreachable states by rebuilding with extras.
        let mut b = MealyBuilder::new();
        for s in m.states() {
            b.add_state(m.state_label(s));
        }
        let dead = b.add_state("dead");
        for i in m.inputs() {
            b.add_input(m.input_label(i));
        }
        for o in 0..m.num_outputs() {
            b.add_output(format!("o{o}"));
        }
        for t in m.transitions() {
            b.add_transition(t.state, t.input, t.next, t.output);
        }
        b.add_transition(dead, simcov_fsm::InputSym(0), StateId(0), simcov_fsm::OutputSym(0));
        let m2 = b.build(m.reset()).expect("extended machine builds");
        let t1 = transition_tour(&m).expect("sc");
        let t2 = transition_tour(&m2).expect("sc");
        prop_assert_eq!(t1.len(), t2.len());
    }
}

//! Multi-bit construction helpers.

use crate::circuit::{Netlist, SignalId};

/// A little-endian bundle of signals (bit 0 first), used to build
/// registers, opcode fields and comparators without bit-index noise.
///
/// # Example
///
/// ```
/// use simcov_netlist::{Netlist, Word};
///
/// let mut n = Netlist::new();
/// let w = Word::inputs(&mut n, "op", 3);
/// let is5 = w.eq_const(&mut n, 5); // op == 3'b101
/// n.add_output("is5", is5);
/// assert_eq!(n.num_inputs(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<SignalId>,
}

impl Word {
    /// Wraps existing signals as a word (bit 0 first).
    pub fn from_bits(bits: Vec<SignalId>) -> Self {
        Word { bits }
    }

    /// Declares `width` fresh primary inputs named `name[0..width]`.
    pub fn inputs(n: &mut Netlist, name: &str, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| n.add_input(format!("{name}[{i}]")))
            .collect();
        Word { bits }
    }

    /// A constant word of the given width.
    pub fn constant(n: &mut Netlist, value: u64, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| n.constant((value >> i) & 1 == 1))
            .collect();
        Word { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The underlying signals (bit 0 first).
    pub fn bits(&self) -> &[SignalId] {
        &self.bits
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> SignalId {
        self.bits[i]
    }

    /// A sub-range of bits `[lo, lo + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, width: usize) -> Word {
        Word {
            bits: self.bits[lo..lo + width].to_vec(),
        }
    }

    /// Equality with a constant: `∧_i (bit_i == value_i)`.
    pub fn eq_const(&self, n: &mut Netlist, value: u64) -> SignalId {
        let mut acc = n.constant(true);
        for (i, &b) in self.bits.iter().enumerate() {
            let lit = if (value >> i) & 1 == 1 { b } else { n.not(b) };
            acc = n.and(acc, lit);
        }
        acc
    }

    /// Bitwise equality of two words.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn eq_word(&self, n: &mut Netlist, other: &Word) -> SignalId {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        let mut acc = n.constant(true);
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let x = n.xor(a, b);
            let eq = n.not(x);
            acc = n.and(acc, eq);
        }
        acc
    }

    /// Bitwise mux: `sel ? t : e`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mux(n: &mut Netlist, sel: SignalId, t: &Word, e: &Word) -> Word {
        assert_eq!(t.width(), e.width(), "word width mismatch");
        let bits = t
            .bits
            .iter()
            .zip(&e.bits)
            .map(|(&a, &b)| n.mux(sel, a, b))
            .collect();
        Word { bits }
    }

    /// Bitwise AND with a single enable signal (gating).
    pub fn gate(&self, n: &mut Netlist, en: SignalId) -> Word {
        let bits = self.bits.iter().map(|&b| n.and(b, en)).collect();
        Word { bits }
    }

    /// Declares a register: `width` latches in `module` named
    /// `name[0..width]`, with `init` as the power-on value. Returns
    /// `(outputs-as-word, latch-setter)` — call the setter with the
    /// next-value word once it is known.
    pub fn register(
        n: &mut Netlist,
        name: &str,
        width: usize,
        init: u64,
        module: &str,
    ) -> (Word, RegisterHandle) {
        let mut latches = Vec::with_capacity(width);
        let mut bits = Vec::with_capacity(width);
        for i in 0..width {
            let l = n.add_latch_in(format!("{name}[{i}]"), (init >> i) & 1 == 1, module);
            latches.push(l);
            bits.push(n.latch_output(l));
        }
        (Word { bits }, RegisterHandle { latches })
    }

    /// Reduction OR of all bits.
    pub fn any(&self, n: &mut Netlist) -> SignalId {
        let mut acc = n.constant(false);
        for &b in &self.bits {
            acc = n.or(acc, b);
        }
        acc
    }

    /// Interprets a constant-valued word during simulation: helper to
    /// decode a word from a value table produced by
    /// [`Netlist::eval_all`].
    pub fn decode(&self, values: &[bool]) -> u64 {
        let mut v = 0u64;
        for (i, &b) in self.bits.iter().enumerate() {
            if values[b.index()] {
                v |= 1 << i;
            }
        }
        v
    }
}

/// The latch half of a register created by [`Word::register`]; assign the
/// next-state word exactly once.
#[derive(Debug)]
pub struct RegisterHandle {
    latches: Vec<crate::circuit::LatchId>,
}

impl RegisterHandle {
    /// Connects the next-state word to the register's latches.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the register's width.
    pub fn set_next(self, n: &mut Netlist, next: &Word) {
        assert_eq!(self.latches.len(), next.width(), "register width mismatch");
        for (l, &b) in self.latches.iter().zip(next.bits()) {
            n.set_latch_next(*l, b);
        }
    }

    /// The latch ids of the register (bit 0 first).
    pub fn latch_ids(&self) -> &[crate::circuit::LatchId] {
        &self.latches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SimState;

    #[test]
    fn eq_const_truth() {
        let mut n = Netlist::new();
        let w = Word::inputs(&mut n, "x", 3);
        let is5 = w.eq_const(&mut n, 5);
        n.add_output("is5", is5);
        let vals = n.eval_all(&[], &[true, false, true]); // x = 5
        assert!(vals[is5.index()]);
        let vals = n.eval_all(&[], &[true, true, true]); // x = 7
        assert!(!vals[is5.index()]);
    }

    #[test]
    fn eq_word_truth() {
        let mut n = Netlist::new();
        let a = Word::inputs(&mut n, "a", 2);
        let b = Word::inputs(&mut n, "b", 2);
        let eq = a.eq_word(&mut n, &b);
        let vals = n.eval_all(&[], &[true, false, true, false]);
        assert!(vals[eq.index()]);
        let vals = n.eval_all(&[], &[true, false, false, false]);
        assert!(!vals[eq.index()]);
    }

    #[test]
    fn register_pipeline() {
        // 2-bit register loading its input each cycle.
        let mut n = Netlist::new();
        let d = Word::inputs(&mut n, "d", 2);
        let (q, h) = Word::register(&mut n, "q", 2, 0b10, "m");
        h.set_next(&mut n, &d);
        for (i, &b) in q.bits().iter().enumerate() {
            n.add_output(format!("q{i}"), b);
        }
        let mut sim = SimState::new(&n);
        let o = sim.step(&n, &[true, true]);
        assert_eq!(o, vec![false, true]); // init 0b10
        let o = sim.step(&n, &[false, false]);
        assert_eq!(o, vec![true, true]); // loaded 0b11
    }

    #[test]
    fn mux_and_gate() {
        let mut n = Netlist::new();
        let s = n.add_input("s");
        let a = Word::inputs(&mut n, "a", 2);
        let b = Word::inputs(&mut n, "b", 2);
        let m = Word::mux(&mut n, s, &a, &b);
        let g = m.gate(&mut n, s);
        for (i, &bit) in m.bits().iter().enumerate() {
            n.add_output(format!("m{i}"), bit);
        }
        for (i, &bit) in g.bits().iter().enumerate() {
            n.add_output(format!("g{i}"), bit);
        }
        // s=1 selects a.
        let vals = n.eval_all(&[], &[true, true, false, false, true]);
        assert_eq!(m.decode(&vals), 0b01);
        // s=0 selects b; gating with s=0 clears.
        let vals = n.eval_all(&[], &[false, true, false, false, true]);
        assert_eq!(m.decode(&vals), 0b10);
        assert_eq!(g.decode(&vals), 0);
    }

    #[test]
    fn constant_and_slice() {
        let mut n = Netlist::new();
        let c = Word::constant(&mut n, 0b1101, 4);
        let lo = c.slice(0, 2);
        let vals = n.eval_all(&[], &[]);
        assert_eq!(c.decode(&vals), 0b1101);
        assert_eq!(lo.decode(&vals), 0b01);
        assert_eq!(c.width(), 4);
    }

    #[test]
    fn any_reduction() {
        let mut n = Netlist::new();
        let w = Word::inputs(&mut n, "w", 3);
        let any = w.any(&mut n);
        let vals = n.eval_all(&[], &[false, false, true]);
        assert!(vals[any.index()]);
        let vals = n.eval_all(&[], &[false, false, false]);
        assert!(!vals[any.index()]);
    }
}

//! Constrained-random coverage measurement at full scale (E10): uniform
//! stimulus sampling from the valid-input BDD, symbolic transition
//! coverage on the 287-million-transition final model.

use simcov::dlx::testmodel::{derive_test_model, valid_inputs_bdd};
use simcov::fsm::{CoverageAccumulator, SymbolicFsm};

#[test]
fn random_simulation_coverage_is_tiny_at_scale() {
    let (model, _) = derive_test_model();
    let mut fsm = SymbolicFsm::from_netlist(&model);
    let valid = valid_inputs_bdd(&mut fsm);
    fsm.set_valid_inputs(valid);
    let reach = fsm.reachable();
    let total = fsm.count_transitions(reach.reached);
    assert!(
        total > 100_000_000,
        "full model has hundreds of millions of transitions"
    );

    let in_vars: Vec<simcov::bdd::Var> = (0..fsm.num_inputs()).map(|k| fsm.input_var(k)).collect();
    let mut acc = CoverageAccumulator::new();
    let mut state = model.initial_state();
    let mut rng: u128 = 0xda3e39cb94b95bdb;
    let budget = 2_000usize;
    for _ in 0..budget {
        let mt = fsm
            .mgr_ref()
            .sample_minterm(fsm.valid_inputs(), &in_vars, |bound| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng % bound
            })
            .expect("satisfiable constraint");
        let assignment = mt.to_assignment((2 * fsm.num_latches() + fsm.num_inputs()) as u32);
        let inputs: Vec<bool> = (0..fsm.num_inputs())
            .map(|k| assignment[fsm.input_var(k).0 as usize])
            .collect();
        // Sampled inputs must satisfy the constraint (legal instructions).
        fsm.record_visit(&mut acc, &state, &inputs);
        let (next, _) = model.step(&state, &inputs);
        state = next;
    }
    let covered = fsm.coverage_count(&acc);
    // Each cycle covers at most one new transition; near-zero repeats at
    // this scale.
    assert!(covered as usize <= budget);
    assert!(
        covered as usize > budget / 2,
        "covered {covered} of {budget} cycles"
    );
    // The coverage fraction is vanishing — the paper's motivation.
    assert!((covered as f64) / (total as f64) < 1e-4);
}

#[test]
fn sampled_inputs_respect_the_constraint() {
    let (model, _) = derive_test_model();
    let mut fsm = SymbolicFsm::from_netlist(&model);
    let valid = valid_inputs_bdd(&mut fsm);
    fsm.set_valid_inputs(valid);
    let in_vars: Vec<simcov::bdd::Var> = (0..fsm.num_inputs()).map(|k| fsm.input_var(k)).collect();
    let mut rng: u128 = 7;
    for _ in 0..200 {
        let mt = fsm
            .mgr_ref()
            .sample_minterm(fsm.valid_inputs(), &in_vars, |bound| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                rng % bound
            })
            .expect("satisfiable");
        let asg = mt.to_assignment((2 * fsm.num_latches() + fsm.num_inputs()) as u32);
        assert!(fsm.mgr_ref().eval(fsm.valid_inputs(), &asg));
    }
}

//! Ready-made models from the paper, for examples, tests and benchmarks.

use crate::error_model::{Fault, FaultKind};
use simcov_fsm::{ExplicitMealy, MealyBuilder};

/// The machine of the paper's **Figure 2** ("Limitations of Transition
/// Tours") and the transfer fault `2 —a→ 3'` it illustrates.
///
/// From state 3 and its error twin 3', input `b` produces different
/// outputs while input `c` leads to the same state 5 with the same
/// output. A transition tour that covers `2 —a→ …` with the continuation
/// `⟨a, c⟩` therefore *excites* the transfer error without *exposing* it;
/// only tours choosing `⟨a, b⟩` expose it. The pair (3, 3') is
/// ∃-distinguishable but not ∀1-distinguishable — the property Theorem 1
/// requires.
///
/// The fragment is closed into a strongly connected machine so tours
/// exist; 3' is reachable in the golden machine as well (via 5 on `b`).
///
/// # Example
///
/// ```
/// use simcov_core::models::figure2;
/// use simcov_core::detects;
///
/// let (m, fault) = figure2();
/// let faulty = fault.inject(&m);
/// let a = m.input_by_label("a").unwrap();
/// let b = m.input_by_label("b").unwrap();
/// let c = m.input_by_label("c").unwrap();
/// assert_eq!(detects(&m, &faulty, &[a, a, c]), None); // missed
/// assert_eq!(detects(&m, &faulty, &[a, a, b]), Some(2)); // exposed
/// ```
pub fn figure2() -> (ExplicitMealy, Fault) {
    let mut b = MealyBuilder::new();
    let s1 = b.add_state("1");
    let s2 = b.add_state("2");
    let s3 = b.add_state("3");
    let s3p = b.add_state("3'");
    let s4 = b.add_state("4");
    let s4p = b.add_state("4'");
    let s5 = b.add_state("5");
    let a = b.add_input("a");
    let bb = b.add_input("b");
    let c = b.add_input("c");
    let o0 = b.add_output("o0");
    let ob3 = b.add_output("ob3"); // b from 3 (differs from 3')
    let ob3p = b.add_output("ob3p");
    let oc = b.add_output("oc"); // c from 3 and 3' agree
    let oa3 = b.add_output("oa3"); // a self-loops on 3 and 3' differ too
    let oa3p = b.add_output("oa3p");
    // Golden edges of the figure.
    b.add_transition(s1, a, s2, o0);
    b.add_transition(s2, a, s3, o0);
    b.add_transition(s3, bb, s4, ob3);
    b.add_transition(s3, c, s5, oc);
    b.add_transition(s3p, bb, s4p, ob3p);
    b.add_transition(s3p, c, s5, oc);
    // Close the graph so walks continue; 3' is legitimately reachable in
    // the golden machine too (via 5 on b) — the transfer error merely
    // reroutes 2 -a-> into it.
    for s in [s4, s4p] {
        b.add_transition(s, a, s1, o0);
        b.add_transition(s, bb, s1, o0);
        b.add_transition(s, c, s1, o0);
    }
    b.add_transition(s5, a, s1, o0);
    b.add_transition(s5, bb, s3p, o0);
    b.add_transition(s5, c, s1, o0);
    b.add_transition(s1, bb, s1, o0);
    b.add_transition(s1, c, s1, o0);
    b.add_transition(s2, bb, s2, o0);
    b.add_transition(s2, c, s2, o0);
    // Input a distinguishes 3 from 3' as well; only c fails to.
    b.add_transition(s3, a, s3, oa3);
    b.add_transition(s3p, a, s3p, oa3p);
    let m = b.build(s1).expect("figure 2 machine is well-formed");
    let fault = Fault {
        state: s2,
        input: a,
        kind: FaultKind::Transfer { new_next: s3p },
    };
    (m, fault)
}

/// A traffic-light controller — the "non-processor FSM" counterpoint used
/// in examples: a design whose outputs do *not* expose enough state, so
/// the requirement checkers reject it until a sensor-latch output is
/// added.
///
/// States: NS-green, NS-yellow, EW-green, EW-yellow × a latched
/// pedestrian request. Inputs: `tick`, `ped`. Output: the 2-bit light
/// code only (the pedestrian latch is interaction state that remains
/// hidden — a Requirement 5 violation by construction).
pub fn traffic_light(expose_request: bool) -> ExplicitMealy {
    let mut b = MealyBuilder::new();
    // State = (phase 0..4, pending request)
    let mut states = Vec::new();
    for phase in 0..4 {
        for pending in 0..2 {
            states.push(b.add_state(format!("p{phase}r{pending}")));
        }
    }
    let idx = |phase: usize, pending: usize| states[phase * 2 + pending];
    let tick = b.add_input("tick");
    let ped = b.add_input("ped");
    // Output alphabet: light code (2 bits) × optionally the request bit.
    let mut outs = Vec::new();
    for light in 0..4 {
        for r in 0..2 {
            let label = if expose_request {
                format!("L{light}R{r}")
            } else {
                format!("L{light}")
            };
            outs.push(b.add_output(label));
        }
    }
    let out = |light: usize, pending: usize| {
        if expose_request {
            outs[light * 2 + pending]
        } else {
            outs[light * 2] // request bit hidden
        }
    };
    for phase in 0..4 {
        for pending in 0..2 {
            let s = idx(phase, pending);
            // `tick`: advance the phase. Yellow->green transitions
            // consume a pending request by extending the green (modelled
            // as jumping back to the same green).
            let (next_phase, consumed) = match (phase, pending) {
                (1, 1) => (0, true), // NS-yellow + request: replay NS-green
                (p, _) => ((p + 1) % 4, false),
            };
            let next_pending = if consumed { 0 } else { pending };
            b.add_transition(s, tick, idx(next_phase, next_pending), out(phase, pending));
            // `ped`: latch a request, stay in phase.
            b.add_transition(s, ped, idx(phase, 1), out(phase, pending));
        }
    }
    b.build(idx(0, 0))
        .expect("traffic light machine is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinguish::forall_k_distinguishable;

    #[test]
    fn figure2_shape() {
        let (m, fault) = figure2();
        assert_eq!(m.num_states(), 7);
        assert_eq!(m.reachable_states().len(), 7);
        assert!(m.is_complete());
        assert!(m.is_strongly_connected());
        assert!(fault.is_effective(&m));
    }

    #[test]
    fn traffic_light_hidden_request_is_indistinguishable() {
        let hidden = traffic_light(false);
        assert!(hidden.is_strongly_connected());
        let d = forall_k_distinguishable(&hidden, 2, 4).unwrap();
        assert!(
            !d.holds(),
            "hidden request must create indistinguishable pairs"
        );
        let exposed = traffic_light(true);
        let d1 = forall_k_distinguishable(&exposed, 1, 4).unwrap();
        // With the request visible every pair differs within one step of
        // output... except pairs that differ only in phase with same
        // light+request; allow up to k=4.
        let d4 = forall_k_distinguishable(&exposed, 4, 4).unwrap();
        assert!(
            d1.holds() || d4.violations.len() < d1.violations.len() || d4.holds(),
            "exposing the request must improve distinguishability"
        );
    }
}

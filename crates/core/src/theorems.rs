//! Theorems 1–3 as certificate-producing procedures.
//!
//! * **Theorem 1**: Requirement 1 + ∀k-distinguishability ⇒ a transition
//!   tour exposes all errors.
//! * **Theorem 2**: Requirements 2–5 ⇒ ∀k-distinguishability (the
//!   processor-specific route to the hypothesis).
//! * **Theorem 3**: Requirements 1–5 ⇒ a transition tour is a complete
//!   test set.
//!
//! [`certify_completeness`] checks the *checkable* hypotheses directly on
//! the test model (∀k-distinguishability; output-determinism when the
//! concrete machine and abstraction are supplied) and records the assumed
//! ones (Requirements 2 and 4 "are regarded as assumptions", Section 6.4).
//! The certificate is then validated *empirically* by the fault campaigns
//! of [`crate::faults`]: on a certified model, every effective injected
//! fault must be caught — that is the experiment of this reproduction's
//! `completeness` benchmark.

use crate::distinguish::{forall_k_distinguishable, DistinguishError, PairWitness};
use simcov_abstraction::{OutputConflict, Quotient};
use simcov_fsm::ExplicitMealy;

/// Proof that a transition tour of the test model is a complete test set
/// (Theorem 3), with the parameters under which it was established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletenessCertificate {
    /// The distinguishing horizon: any transfer error is exposed within
    /// `k` transitions after excitation, so tours must be extended by `k`
    /// extra vectors (see [`crate::faults::extend_cyclically`]).
    pub k: usize,
    /// Reachable states of the test model.
    pub states: usize,
    /// Distinct state pairs proven ∀k-distinguishable.
    pub pairs_proven: usize,
    /// `true` if Requirement 1 was *checked* against a concrete machine
    /// and abstraction (rather than assumed).
    pub req1_checked: bool,
}

/// Why a completeness certificate could not be issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletenessViolation {
    /// Some state pairs are not ∀k-distinguishable (Theorem 1's
    /// hypothesis fails) — witnesses included.
    NotDistinguishable(Vec<PairWitness>),
    /// The abstraction has non-deterministic outputs: output errors may be
    /// non-uniform (Requirement 1 fails).
    NonUniformOutputs(Vec<OutputConflict>),
    /// The supplied abstraction evidence is malformed: the quotient's
    /// class vectors do not fit the concrete machine, so Requirement 1
    /// cannot even be evaluated.
    MalformedAbstraction(simcov_abstraction::QuotientError),
    /// The test model is not complete over its valid alphabet.
    Incomplete(DistinguishError),
}

impl std::fmt::Display for CompletenessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompletenessViolation::NotDistinguishable(v) => {
                write!(
                    f,
                    "{} state pairs are not forall-k-distinguishable",
                    v.len()
                )
            }
            CompletenessViolation::NonUniformOutputs(c) => {
                write!(
                    f,
                    "{} abstract transitions have non-deterministic outputs",
                    c.len()
                )
            }
            CompletenessViolation::MalformedAbstraction(e) => {
                write!(f, "malformed abstraction evidence: {e}")
            }
            CompletenessViolation::Incomplete(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompletenessViolation {}

/// Certifies that a transition tour of `test_model` (extended by `k`
/// vectors) is a complete test set.
///
/// `abstraction_evidence`, when given as `(concrete_machine, quotient)`,
/// discharges Requirement 1 by checking output-determinism of the
/// abstraction; when `None`, Requirement 1 is assumed (recorded in the
/// certificate).
///
/// # Errors
///
/// [`CompletenessViolation`] naming the failed hypothesis, with witnesses.
pub fn certify_completeness(
    test_model: &ExplicitMealy,
    k: usize,
    abstraction_evidence: Option<(&ExplicitMealy, &Quotient)>,
) -> Result<CompletenessCertificate, CompletenessViolation> {
    let req1_checked = match abstraction_evidence {
        Some((concrete, q)) => {
            crate::requirements::check_req1_uniform_outputs(concrete, q).map_err(|e| match e {
                crate::requirements::Req1Violation::OutputConflicts(c) => {
                    CompletenessViolation::NonUniformOutputs(c)
                }
                crate::requirements::Req1Violation::WidthMismatch(e) => {
                    CompletenessViolation::MalformedAbstraction(e)
                }
            })?;
            true
        }
        None => false,
    };
    let d =
        forall_k_distinguishable(test_model, k, 16).map_err(CompletenessViolation::Incomplete)?;
    if !d.holds() {
        return Err(CompletenessViolation::NotDistinguishable(d.violations));
    }
    let n = d.states;
    Ok(CompletenessCertificate {
        k,
        states: n,
        pairs_proven: n * (n - 1) / 2,
        req1_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    /// A machine whose states all differ on every input's output:
    /// ∀1-distinguishable, certificate issued.
    fn all_distinct() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let s: Vec<_> = (0..3).map(|i| b.add_state(format!("s{i}"))).collect();
        let i = b.add_input("i");
        let j = b.add_input("j");
        let outs: Vec<_> = (0..6).map(|x| b.add_output(format!("o{x}"))).collect();
        for (si, &st) in s.iter().enumerate() {
            b.add_transition(st, i, s[(si + 1) % 3], outs[si]);
            b.add_transition(st, j, s[(si + 2) % 3], outs[si + 3]);
        }
        b.build(s[0]).unwrap()
    }

    #[test]
    fn certificate_issued_on_distinguishable_model() {
        let m = all_distinct();
        let cert = certify_completeness(&m, 1, None).unwrap();
        assert_eq!(cert.states, 3);
        assert_eq!(cert.pairs_proven, 3);
        assert!(!cert.req1_checked);
    }

    #[test]
    fn violation_on_figure2() {
        let (m, _) = crate::testutil::figure2();
        // Figure 2's model is NOT forall-1-distinguishable (3 vs 3' on c).
        match certify_completeness(&m, 1, None).unwrap_err() {
            CompletenessViolation::NotDistinguishable(v) => assert!(!v.is_empty()),
            other => panic!("unexpected violation: {other}"),
        }
    }

    #[test]
    fn req1_evidence_accepted_and_rejected() {
        let m = all_distinct();
        let q = simcov_abstraction::Quotient::identity(&m);
        let cert = certify_completeness(&m, 1, Some((&m, &q))).unwrap();
        assert!(cert.req1_checked);
        // Merge all outputs-differing states: Req1 violated.
        let (f2, _) = crate::testutil::figure2();
        let s3 = f2.state_by_label("3").unwrap();
        let s3p = f2.state_by_label("3'").unwrap();
        let q = simcov_abstraction::Quotient::by_state_key(&f2, |s| {
            if s == s3 || s == s3p {
                99
            } else {
                s.0
            }
        });
        match certify_completeness(&f2, 1, Some((&f2, &q))).unwrap_err() {
            CompletenessViolation::NonUniformOutputs(c) => assert!(!c.is_empty()),
            other => panic!("unexpected violation: {other}"),
        }
    }

    #[test]
    fn incomplete_model_rejected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let i = b.add_input("i");
        let o = b.add_output("o");
        b.add_transition(s0, i, s1, o);
        let m = b.build(s0).unwrap();
        assert!(matches!(
            certify_completeness(&m, 2, None).unwrap_err(),
            CompletenessViolation::Incomplete(_)
        ));
    }

    #[test]
    fn display_messages() {
        let (m, _) = crate::testutil::figure2();
        let err = certify_completeness(&m, 1, None).unwrap_err();
        assert!(err.to_string().contains("not forall-k-distinguishable"));
    }
}

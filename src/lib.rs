//! # simcov — validation methodology using simulation coverage
//!
//! A reproduction of *"Toward Formalizing a Validation Methodology Using
//! Simulation Coverage"* (Gupta, Malik & Ashar, DAC 1997): transition tours
//! on abstracted **test models** as provably complete test sets for
//! processor-like designs.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`bdd`] — ROBDD engine (implicit state-space traversal substrate)
//! * [`netlist`] — bit-level sequential circuit IR with structural
//!   abstraction operators
//! * [`fsm`] — explicit and symbolic Mealy machines, reachability, counting
//! * [`tour`] — transition/state tour generation (Chinese postman,
//!   greedy symbolic heuristic, random baselines)
//! * [`abstraction`] — homomorphic test-model derivation and soundness
//!   checks
//! * [`core`] — the methodology itself: error model, ∀k-distinguishability,
//!   Requirements 1–5, fault campaigns, co-simulation harness
//! * [`lint`] — coded static diagnostics (`SC0xx`) checking the
//!   methodology's preconditions on models, netlists and abstraction maps
//! * [`obs`] — zero-dependency observability: hierarchical spans, typed
//!   counters/gauges, deterministic JSONL event traces
//! * [`dlx`] — the paper's case study: DLX ISA spec, 5-stage pipelined
//!   implementation, control test-model derivation
//! * [`dsp`] — a second case study: a fixed-program FIR-filter ASIC (the
//!   paper's other design class)
//! * [`serve`] — the multi-tenant campaign service: length-prefixed JSON
//!   jobs over TCP with bounded admission, retries/quarantine, engine
//!   degradation and a crash-safe server journal
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through.

pub use simcov_abstraction as abstraction;
pub use simcov_bdd as bdd;
pub use simcov_core as core;
pub use simcov_dlx as dlx;
pub use simcov_dsp as dsp;
pub use simcov_fsm as fsm;
pub use simcov_lint as lint;
pub use simcov_netlist as netlist;
pub use simcov_obs as obs;
pub use simcov_prng as prng;
pub use simcov_serve as serve;
pub use simcov_tour as tour;

//! Shared testing utilities: the workspace's hermetic property-test
//! driver plus canonical fixture machines.
//!
//! This module is `pub` (not `#[cfg(test)]`) so sibling crates can reach
//! it from their dev-dependencies — `simcov_core::testutil::forall` is
//! the workspace-wide entry point for property tests, replacing the
//! external `proptest` crate. The driver itself lives in `simcov-prng`
//! (the bottom of the dependency stack); this module re-exports it
//! alongside the paper's fixture models.

pub use crate::models::figure2;
pub use simcov_prng::{forall, forall_cfg, Config, Gen, Prng};

//! The checkpointed co-simulation harness of Figure 1.
//!
//! The specification and the implementation live at different levels of
//! abstraction (ISA vs RTL), so there is no cycle-equivalent comparison —
//! they are compared at *checkpointing steps*, e.g. at the completion of
//! each instruction, using the observable implementation state (for a
//! processor: most of the datapath state).
//!
//! [`TraceSource`] abstracts "something that turns a stimulus stream into
//! a stream of checkpoint events"; [`validate`] runs two sources on the
//! same stimuli and reports the first mismatch.

use simcov_fsm::{ExplicitMealy, InputSym, OutputSym};

/// A simulation model producing a stream of checkpoint events from a
/// stimulus stream.
///
/// Both the behavioural specification simulator and the RTL-level
/// implementation simulator implement this; the events must be directly
/// comparable (same type), which encodes the paper's requirement that the
/// implementation state used for comparison is observable.
pub trait TraceSource {
    /// One stimulus (e.g. an instruction, or an abstract input vector).
    type Stimulus;
    /// One checkpoint event (e.g. the architectural effect of a retired
    /// instruction).
    type Event: PartialEq + Clone + std::fmt::Debug;

    /// Returns to the power-on state.
    fn reset(&mut self);

    /// Consumes the stimuli and returns the checkpoint events in order.
    fn trace(&mut self, stimuli: &[Self::Stimulus]) -> Vec<Self::Event>;
}

/// A detected divergence between specification and implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch<E> {
    /// Index of the first differing checkpoint.
    pub index: usize,
    /// The specification's event at that index (`None` = spec trace ended
    /// early).
    pub spec: Option<E>,
    /// The implementation's event (`None` = implementation trace ended
    /// early).
    pub imp: Option<E>,
}

impl<E: std::fmt::Debug> std::fmt::Display for Mismatch<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint {} differs: spec={:?} imp={:?}",
            self.index, self.spec, self.imp
        )
    }
}

/// Runs both sources from reset over the same stimuli and compares their
/// checkpoint streams.
///
/// Returns the number of checkpoints compared on success.
///
/// # Errors
///
/// The first [`Mismatch`], including early termination of either trace.
pub fn validate<S, I>(
    spec: &mut S,
    imp: &mut I,
    stimuli: &[S::Stimulus],
) -> Result<usize, Mismatch<S::Event>>
where
    S: TraceSource,
    I: TraceSource<Stimulus = S::Stimulus, Event = S::Event>,
{
    spec.reset();
    imp.reset();
    let st = spec.trace(stimuli);
    let it = imp.trace(stimuli);
    let common = st.len().min(it.len());
    for idx in 0..common {
        if st[idx] != it[idx] {
            return Err(Mismatch {
                index: idx,
                spec: Some(st[idx].clone()),
                imp: Some(it[idx].clone()),
            });
        }
    }
    if st.len() != it.len() {
        return Err(Mismatch {
            index: common,
            spec: st.get(common).cloned(),
            imp: it.get(common).cloned(),
        });
    }
    Ok(common)
}

/// Adapter making an [`ExplicitMealy`] a [`TraceSource`]: stimuli are
/// input symbols, events are output symbols. Lets the explicit-machine
/// fault experiments run through the same harness as the DLX case study.
#[derive(Debug, Clone)]
pub struct MachineTrace {
    machine: ExplicitMealy,
}

impl MachineTrace {
    /// Wraps a machine.
    pub fn new(machine: ExplicitMealy) -> Self {
        MachineTrace { machine }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &ExplicitMealy {
        &self.machine
    }
}

impl TraceSource for MachineTrace {
    type Stimulus = InputSym;
    type Event = OutputSym;

    fn reset(&mut self) {}

    fn trace(&mut self, stimuli: &[InputSym]) -> Vec<OutputSym> {
        self.machine.output_trace(stimuli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure2;

    #[test]
    fn identical_machines_validate() {
        let (m, _) = figure2();
        let a = m.input_by_label("a").unwrap();
        let b = m.input_by_label("b").unwrap();
        let mut spec = MachineTrace::new(m.clone());
        let mut imp = MachineTrace::new(m);
        let n = validate(&mut spec, &mut imp, &[a, a, b]).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn faulty_machine_mismatch_located() {
        let (m, fault) = figure2();
        let faulty = fault.inject(&m);
        let a = m.input_by_label("a").unwrap();
        let b = m.input_by_label("b").unwrap();
        let mut spec = MachineTrace::new(m);
        let mut imp = MachineTrace::new(faulty);
        let e = validate(&mut spec, &mut imp, &[a, a, b]).unwrap_err();
        assert_eq!(e.index, 2);
        assert!(e.spec.is_some() && e.imp.is_some());
        assert!(e.to_string().contains("checkpoint 2"));
    }

    #[test]
    fn missed_by_wrong_path() {
        let (m, fault) = figure2();
        let faulty = fault.inject(&m);
        let a = m.input_by_label("a").unwrap();
        let c = m.input_by_label("c").unwrap();
        let mut spec = MachineTrace::new(m);
        let mut imp = MachineTrace::new(faulty);
        // <a, a, c> does not expose the transfer error.
        assert!(validate(&mut spec, &mut imp, &[a, a, c]).is_ok());
    }

    /// Trace sources with different lengths mismatch at the truncation.
    #[test]
    fn length_mismatch_detected() {
        struct Fixed(Vec<u32>);
        impl TraceSource for Fixed {
            type Stimulus = ();
            type Event = u32;
            fn reset(&mut self) {}
            fn trace(&mut self, _: &[()]) -> Vec<u32> {
                self.0.clone()
            }
        }
        let mut a = Fixed(vec![1, 2, 3]);
        let mut b = Fixed(vec![1, 2]);
        let e = validate(&mut a, &mut b, &[]).unwrap_err();
        assert_eq!(e.index, 2);
        assert_eq!(e.spec, Some(3));
        assert_eq!(e.imp, None);
    }

    /// An empty stimulus stream compares zero checkpoints and succeeds —
    /// the harness never invents a divergence out of nothing.
    #[test]
    fn empty_stimulus_validates_vacuously() {
        let (m, fault) = figure2();
        let faulty = fault.inject(&m);
        let mut spec = MachineTrace::new(m);
        let mut imp = MachineTrace::new(faulty);
        assert_eq!(validate(&mut spec, &mut imp, &[]), Ok(0));
    }

    /// When the *specification* trace is the shorter one (spec simulator
    /// halts early), the mismatch points at the truncation with the
    /// spec side `None` — symmetric to `length_mismatch_detected`.
    #[test]
    fn spec_shorter_than_imp_detected() {
        struct Fixed(Vec<u32>);
        impl TraceSource for Fixed {
            type Stimulus = ();
            type Event = u32;
            fn reset(&mut self) {}
            fn trace(&mut self, _: &[()]) -> Vec<u32> {
                self.0.clone()
            }
        }
        let mut spec = Fixed(vec![1]);
        let mut imp = Fixed(vec![1, 2, 9]);
        let e = validate(&mut spec, &mut imp, &[]).unwrap_err();
        assert_eq!(e.index, 1);
        assert_eq!(e.spec, None);
        assert_eq!(e.imp, Some(2));
        assert!(e.to_string().contains("checkpoint 1"));
    }

    /// A divergence on the very first checkpoint reports `index: 0` with
    /// both sides populated.
    #[test]
    fn first_checkpoint_mismatch_is_index_zero() {
        struct Fixed(Vec<u32>);
        impl TraceSource for Fixed {
            type Stimulus = ();
            type Event = u32;
            fn reset(&mut self) {}
            fn trace(&mut self, _: &[()]) -> Vec<u32> {
                self.0.clone()
            }
        }
        let mut spec = Fixed(vec![7, 8]);
        let mut imp = Fixed(vec![9, 8]);
        let e = validate(&mut spec, &mut imp, &[]).unwrap_err();
        assert_eq!(
            e,
            Mismatch {
                index: 0,
                spec: Some(7),
                imp: Some(9)
            }
        );
    }
}

//! End-to-end DLX validation (the Figure 1 flow).
//!
//! The ISA-level specification simulator and the 5-stage pipelined
//! implementation run the same programs; retire-event checkpoints are
//! compared at the completion of each instruction. A correct pipeline
//! validates; each injected control fault (broken interlock, broken
//! bypass, missing squash, corrupted destination tag) is caught by a
//! targeted program exercising the corresponding hazard.
//!
//! Run with: `cargo run --example dlx_validation`

use simcov::core::validate;
use simcov::dlx::asm;
use simcov::dlx::checkpoint::{PipelineTrace, SpecTrace};
use simcov::dlx::ControlFault;

fn main() {
    // A hazard-rich program: load-use dependences, back-to-back ALU
    // chains, taken and fall-through branches, a loop, and memory
    // traffic of each width.
    let program = asm::program(&[
        "addi r1, r0, 5",  // r1 = 5
        "add  r2, r1, r1", // d=1 bypass
        "sw   r2, 0(r0)",  // store 10
        "lw   r3, 0(r0)",  // load it back
        "add  r4, r3, r1", // load-use interlock
        "subi r1, r1, 1",
        "bnez r1, -6", // loop: 5 iterations (hazards each time)
        "lhi  r5, 0x00ff",
        "sb   r5, 8(r0)",
        "lbu  r6, 8(r0)",
        "beqz r6, 2", // not taken (r6 = 0 after sb/lbu of 0x00)
        "addi r7, r0, 7",
        "jal  1", // link + jump
        "halt",
        "jr   r31",
        "halt",
    ]);

    // Golden implementation validates against the specification.
    let mut spec = SpecTrace::default();
    let mut golden = PipelineTrace::default();
    let compared = validate(&mut spec, &mut golden, &program)
        .expect("golden pipeline must match the specification");
    println!("golden pipeline: {compared} checkpoints compared, no mismatch ✔");

    // Each control fault is exposed by the checkpoint comparison.
    for fault in ControlFault::ALL {
        let mut faulty = PipelineTrace {
            fault,
            ..PipelineTrace::default()
        };
        match validate(&mut spec, &mut faulty, &program) {
            Ok(n) => println!("{fault:?}: ESCAPED ({n} checkpoints equal) ✘"),
            Err(mismatch) => println!(
                "{fault:?}: caught at checkpoint {} (spec {:?} vs impl {:?})",
                mismatch.index,
                mismatch.spec.map(|e| e.instr.to_string()),
                mismatch.imp.map(|e| e.instr.to_string()),
            ),
        }
    }
}

//! Internal open-addressing hash tables specialized for the hot paths of the
//! BDD package (unique table and operation caches).
//!
//! `std::collections::HashMap` with SipHash is measurably slow for the tight
//! `(u32, u32, u32) -> u32` lookups that dominate BDD construction, so we use
//! a simple power-of-two, linear-probing table with a Fibonacci multiplicative
//! hash. Keys never collide with the `EMPTY` sentinel because valid node
//! indices are < `u32::MAX`.

/// Sentinel marking an empty slot.
const EMPTY: u64 = u64::MAX;

#[inline]
fn mix(a: u32, b: u32, c: u32) -> u64 {
    // SplitMix64-style finalizer over the packed key; cheap and well mixed.
    let mut z = (a as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((b as u64).rotate_left(32) ^ (c as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Open-addressing map from `(u32, u32, u32)` to `u32`.
///
/// Used for the unique table (`(var, low, high) -> node`) and the ternary
/// operation caches (`(f, g, h) -> result`).
pub(crate) struct TripleMap {
    // Slot layout: key0 = pack(a, b), key1 = pack(c, value). An empty slot
    // has key0 == EMPTY.
    key0: Vec<u64>,
    key1: Vec<u64>,
    len: usize,
    mask: usize,
}

impl TripleMap {
    pub(crate) fn with_capacity_pow2(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        TripleMap {
            key0: vec![EMPTY; cap],
            key1: vec![0; cap],
            len: 0,
            mask: cap - 1,
        }
    }

    #[inline]
    pub(crate) fn get(&self, a: u32, b: u32, c: u32) -> Option<u32> {
        let k0 = pack(a, b);
        let mut idx = (mix(a, b, c) as usize) & self.mask;
        loop {
            let s0 = self.key0[idx];
            if s0 == EMPTY {
                return None;
            }
            if s0 == k0 && (self.key1[idx] >> 32) as u32 == c {
                return Some(self.key1[idx] as u32);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, a: u32, b: u32, c: u32, value: u32) {
        if self.len * 4 >= self.key0.len() * 3 {
            self.grow();
        }
        let k0 = pack(a, b);
        let k1 = pack(c, value);
        let mut idx = (mix(a, b, c) as usize) & self.mask;
        loop {
            let s0 = self.key0[idx];
            if s0 == EMPTY {
                self.key0[idx] = k0;
                self.key1[idx] = k1;
                self.len += 1;
                return;
            }
            if s0 == k0 && (self.key1[idx] >> 32) as u32 == c {
                // Overwrite (operation caches may be refreshed).
                self.key1[idx] = k1;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    pub(crate) fn clear(&mut self) {
        self.key0.fill(EMPTY);
        self.len = 0;
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn grow(&mut self) {
        let new_cap = self.key0.len() * 2;
        let old_key0 = std::mem::replace(&mut self.key0, vec![EMPTY; new_cap]);
        let old_key1 = std::mem::replace(&mut self.key1, vec![0; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (s0, s1) in old_key0.into_iter().zip(old_key1) {
            if s0 != EMPTY {
                let a = (s0 >> 32) as u32;
                let b = s0 as u32;
                let c = (s1 >> 32) as u32;
                let v = s1 as u32;
                self.insert(a, b, c, v);
            }
        }
    }
}

/// Open-addressing map from a single `u32` key to `u64` (used by counting and
/// support caches where the value does not fit in 32 bits).
pub(crate) struct U32Map64 {
    keys: Vec<u32>,
    vals: Vec<u64>,
    len: usize,
    mask: usize,
}

const EMPTY32: u32 = u32::MAX;

impl U32Map64 {
    pub(crate) fn new() -> Self {
        U32Map64 {
            keys: vec![EMPTY32; 64],
            vals: vec![0; 64],
            len: 0,
            mask: 63,
        }
    }

    #[inline]
    pub(crate) fn get(&self, k: u32) -> Option<u64> {
        let mut idx = (mix(k, 0, 0) as usize) & self.mask;
        loop {
            let s = self.keys[idx];
            if s == EMPTY32 {
                return None;
            }
            if s == k {
                return Some(self.vals[idx]);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, k: u32, v: u64) {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mut idx = (mix(k, 0, 0) as usize) & self.mask;
        loop {
            let s = self.keys[idx];
            if s == EMPTY32 {
                self.keys[idx] = k;
                self.vals[idx] = v;
                self.len += 1;
                return;
            }
            if s == k {
                self.vals[idx] = v;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY32; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY32 {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_map_roundtrip() {
        let mut m = TripleMap::with_capacity_pow2(16);
        for i in 0..1000u32 {
            m.insert(i, i.wrapping_mul(7), i ^ 3, i + 1);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(i, i.wrapping_mul(7), i ^ 3), Some(i + 1));
        }
        assert_eq!(m.get(5000, 1, 2), None);
    }

    #[test]
    fn triple_map_overwrite() {
        let mut m = TripleMap::with_capacity_pow2(16);
        m.insert(1, 2, 3, 10);
        m.insert(1, 2, 3, 20);
        assert_eq!(m.get(1, 2, 3), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn triple_map_clear() {
        let mut m = TripleMap::with_capacity_pow2(16);
        m.insert(1, 2, 3, 10);
        m.clear();
        assert_eq!(m.get(1, 2, 3), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn u32map_roundtrip() {
        let mut m = U32Map64::new();
        for i in 0..500u32 {
            m.insert(i, (i as u64) << 33);
        }
        for i in 0..500u32 {
            assert_eq!(m.get(i), Some((i as u64) << 33));
        }
        assert_eq!(m.get(501), None);
    }

    #[test]
    fn u32map_overwrite() {
        let mut m = U32Map64::new();
        m.insert(7, 1);
        m.insert(7, 2);
        assert_eq!(m.get(7), Some(2));
    }
}

//! Symbolic (BDD-based) Mealy machines and implicit reachability.
//!
//! Variable order: for latch `j`, the current-state variable sits at level
//! `2j` and the next-state variable at level `2j + 1` (interleaving keeps
//! the `y ⇔ f(x)` constraints narrow); primary input `k` sits at level
//! `2 · num_latches + k`.

use simcov_bdd::{Bdd, BddManager, Var};
use simcov_netlist::{Netlist, NodeKind};

/// Result of a reachability fixed-point computation.
#[derive(Debug, Clone, Copy)]
pub struct ReachResult {
    /// Characteristic function of the reachable state set (over the
    /// current-state variables).
    pub reached: Bdd,
    /// Number of image iterations to the fixed point (the sequential
    /// depth of the design plus one).
    pub iterations: usize,
}

/// Size statistics of a symbolic machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicStats {
    /// Number of state variables (latches).
    pub latches: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Live BDD nodes in the manager.
    pub bdd_nodes: usize,
    /// `true` when the machine has more than 127 support variables, in
    /// which case the exact `count_*` methods cannot represent their
    /// result in `u128` and *saturate* to `u128::MAX` instead of
    /// panicking (or, worse, silently wrapping).
    pub counts_saturate: bool,
}

/// A Mealy machine represented by BDD next-state and output functions,
/// built from a [`Netlist`].
///
/// # Example
///
/// ```
/// use simcov_netlist::Netlist;
/// use simcov_fsm::SymbolicFsm;
///
/// // A toggle flip-flop: one latch, no inputs, 2 reachable states.
/// let mut n = Netlist::new();
/// let q = n.add_latch("q", false);
/// let qo = n.latch_output(q);
/// let nq = n.not(qo);
/// n.set_latch_next(q, nq);
/// n.add_output("q", qo);
///
/// let mut fsm = SymbolicFsm::from_netlist(&n);
/// let r = fsm.reachable();
/// assert_eq!(fsm.count_states(r.reached), 2);
/// ```
pub struct SymbolicFsm {
    mgr: BddManager,
    num_latches: usize,
    num_inputs: usize,
    next_fns: Vec<Bdd>,
    output_fns: Vec<(String, Bdd)>,
    init: Bdd,
    valid: Bdd,
    latch_names: Vec<String>,
    input_names: Vec<String>,
    /// `(y_j ⇔ f_j)` conjuncts, built lazily.
    trans_parts: Option<Vec<Bdd>>,
    /// Per-step quantification cubes for early quantification, plus the
    /// cube of variables quantifiable before the first conjunct.
    schedule: Option<(Bdd, Vec<Bdd>)>,
}

impl SymbolicFsm {
    /// Builds the symbolic machine of a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::check`] (e.g. a latch without
    /// a next-state function).
    pub fn from_netlist(n: &Netlist) -> Self {
        let problems = n.check();
        assert!(problems.is_empty(), "malformed netlist: {problems:?}");
        let num_latches = n.num_latches();
        let num_inputs = n.num_inputs();
        let total_vars = (2 * num_latches + num_inputs) as u32;
        let mut mgr = BddManager::new(total_vars.max(1));
        // Map each netlist signal to a BDD, in topological (index) order.
        let mut sig_bdd: Vec<Bdd> = Vec::new();
        for idx in 0.. {
            let sig = match n.node_at(idx) {
                Some(k) => k,
                None => break,
            };
            let b = match sig {
                NodeKind::Const(v) => mgr.constant(v),
                NodeKind::Input(i) => mgr.var(2 * num_latches as u32 + i.index() as u32),
                NodeKind::LatchOut(l) => mgr.var(2 * l.index() as u32),
                NodeKind::Not(a) => {
                    let a = sig_bdd[a.index()];
                    mgr.not(a)
                }
                NodeKind::And(a, b) => {
                    let (a, b) = (sig_bdd[a.index()], sig_bdd[b.index()]);
                    mgr.and(a, b)
                }
                NodeKind::Or(a, b) => {
                    let (a, b) = (sig_bdd[a.index()], sig_bdd[b.index()]);
                    mgr.or(a, b)
                }
                NodeKind::Xor(a, b) => {
                    let (a, b) = (sig_bdd[a.index()], sig_bdd[b.index()]);
                    mgr.xor(a, b)
                }
                NodeKind::Mux(s, t, e) => {
                    let (s, t, e) = (sig_bdd[s.index()], sig_bdd[t.index()], sig_bdd[e.index()]);
                    mgr.ite(s, t, e)
                }
            };
            sig_bdd.push(b);
        }
        let next_fns: Vec<Bdd> = n
            .latches()
            .iter()
            .map(|l| sig_bdd[l.next.expect("checked").index()])
            .collect();
        let output_fns: Vec<(String, Bdd)> = n
            .outputs()
            .iter()
            .map(|(name, s)| (name.clone(), sig_bdd[s.index()]))
            .collect();
        // Initial state cube.
        let mut init = Bdd::TRUE;
        for (j, l) in n.latches().iter().enumerate() {
            let v = mgr.var(2 * j as u32);
            let lit = if l.init { v } else { mgr.not(v) };
            init = mgr.and(init, lit);
        }
        SymbolicFsm {
            mgr,
            num_latches,
            num_inputs,
            next_fns,
            output_fns,
            init,
            valid: Bdd::TRUE,
            latch_names: n.latches().iter().map(|l| l.name.clone()).collect(),
            input_names: n.input_names().map(str::to_string).collect(),
            trans_parts: None,
            schedule: None,
        }
    }

    /// The BDD manager (for building constraints over this machine's
    /// variables).
    pub fn mgr(&mut self) -> &mut BddManager {
        &mut self.mgr
    }

    /// Read-only access to the manager (counting, evaluation).
    pub fn mgr_ref(&self) -> &BddManager {
        &self.mgr
    }

    /// Current-state variable of latch `j`.
    pub fn state_var(&self, j: usize) -> Var {
        assert!(j < self.num_latches);
        Var(2 * j as u32)
    }

    /// Next-state variable of latch `j`.
    pub fn next_var(&self, j: usize) -> Var {
        assert!(j < self.num_latches);
        Var(2 * j as u32 + 1)
    }

    /// Variable of primary input `k`.
    pub fn input_var(&self, k: usize) -> Var {
        assert!(k < self.num_inputs);
        Var((2 * self.num_latches + k) as u32)
    }

    /// Variable of the primary input with the given name.
    pub fn input_var_by_name(&self, name: &str) -> Option<Var> {
        self.input_names
            .iter()
            .position(|n| n == name)
            .map(|k| self.input_var(k))
    }

    /// Index of the latch with the given name.
    pub fn latch_index_by_name(&self, name: &str) -> Option<usize> {
        self.latch_names.iter().position(|n| n == name)
    }

    /// The input names, cloned (useful when the borrow checker forbids
    /// holding a reference across `mgr()` calls).
    pub fn input_names_owned(&self) -> Vec<String> {
        self.input_names.clone()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The initial-state cube (over current-state variables).
    pub fn init(&self) -> Bdd {
        self.init
    }

    /// The valid-input constraint currently in force.
    pub fn valid_inputs(&self) -> Bdd {
        self.valid
    }

    /// Restricts the machine to input vectors satisfying `valid` — the
    /// paper's *input don't-cares* ("of the 2^25 possible input
    /// combinations, only 8228 are valid"). The constraint may mention
    /// input and current-state variables.
    pub fn set_valid_inputs(&mut self, valid: Bdd) {
        self.valid = valid;
    }

    /// The next-state function of latch `j` (over state and input vars).
    pub fn next_fn(&self, j: usize) -> Bdd {
        self.next_fns[j]
    }

    /// The named output functions (over state and input vars).
    pub fn output_fns(&self) -> &[(String, Bdd)] {
        &self.output_fns
    }

    fn ensure_trans_parts(&mut self) {
        if self.trans_parts.is_some() {
            return;
        }
        let parts: Vec<Bdd> = (0..self.num_latches)
            .map(|j| {
                let y = self.mgr.var(self.next_var(j).0);
                let f = self.next_fns[j];
                self.mgr.iff(y, f)
            })
            .collect();
        // Early-quantification schedule: a current-state or input variable
        // may be quantified out right after the last conjunct whose
        // next-state function mentions it.
        let mut last_use: Vec<Option<usize>> =
            vec![None; (2 * self.num_latches + self.num_inputs).max(1)];
        for (j, &f) in self.next_fns.iter().enumerate() {
            for v in self.mgr.support(f) {
                last_use[v.0 as usize] = Some(j);
            }
        }
        let mut per_step: Vec<Vec<Var>> = vec![Vec::new(); self.num_latches];
        let mut pre: Vec<Var> = Vec::new();
        for j in 0..self.num_latches {
            let v = self.state_var(j);
            match last_use[v.0 as usize] {
                Some(k) => per_step[k].push(v),
                None => pre.push(v),
            }
        }
        for k in 0..self.num_inputs {
            let v = self.input_var(k);
            match last_use[v.0 as usize] {
                Some(k2) => per_step[k2].push(v),
                None => pre.push(v),
            }
        }
        let pre_cube = self.mgr.cube_from_vars(&pre);
        let step_cubes: Vec<Bdd> = per_step
            .iter()
            .map(|vs| self.mgr.cube_from_vars(vs))
            .collect();
        self.trans_parts = Some(parts);
        self.schedule = Some((pre_cube, step_cubes));
    }

    /// The monolithic transition relation `T(x, i, y) = ∧_j (y_j ⇔ f_j)`,
    /// conjoined with the valid-input constraint. This is the object whose
    /// construction time Section 7.2 reports ("about 10 seconds on an
    /// UltraSparc").
    ///
    /// Conjuncts accumulate in reverse latch order, so the partial product
    /// picks up the deepest-levelled `y_j ⇔ f_j` parts first and each new
    /// conjunct's top variable sits above most of what has been built —
    /// measured fastest among the schedules tried on the DLX model
    /// (size-ordered and balanced-tree reductions both lost; the real cost
    /// lives in the BDD package's cache behaviour, not the schedule). The
    /// result is the same canonical BDD under any order.
    pub fn transition_relation(&mut self) -> Bdd {
        self.ensure_trans_parts();
        let parts = self.trans_parts.clone().expect("just built");
        let mut t = self.valid;
        for p in parts.into_iter().rev() {
            t = self.mgr.and(t, p);
        }
        t
    }

    /// Image of a state set under the transition relation, using
    /// partitioned conjunction with early quantification: `Img(S)(x) =
    /// (∃x, i . S ∧ valid ∧ T)[y → x]`.
    pub fn image(&mut self, from: Bdd) -> Bdd {
        self.ensure_trans_parts();
        let parts = self.trans_parts.clone().expect("just built");
        let (pre_cube, step_cubes) = self.schedule.clone().expect("just built");
        let mut cur = self.mgr.and(from, self.valid);
        cur = self.mgr.exists(cur, pre_cube);
        for (j, part) in parts.iter().enumerate() {
            cur = self.mgr.and_exists(cur, *part, step_cubes[j]);
        }
        // Rename next-state variables to current-state variables.
        let map: Vec<(Var, Var)> = (0..self.num_latches)
            .map(|j| (self.next_var(j), self.state_var(j)))
            .collect();
        self.mgr.rename(cur, &map)
    }

    /// Least fixed point of [`SymbolicFsm::image`] from the initial state:
    /// the reachable state set.
    pub fn reachable(&mut self) -> ReachResult {
        let mut reached = self.init;
        let mut frontier = self.init;
        let mut iterations = 0;
        loop {
            iterations += 1;
            let img = self.image(frontier);
            let new = {
                let nr = self.mgr.not(reached);
                self.mgr.and(img, nr)
            };
            if new.is_false() {
                return ReachResult {
                    reached,
                    iterations,
                };
            }
            reached = self.mgr.or(reached, new);
            frontier = new;
        }
    }

    /// `true` when the machine has too many support variables
    /// (`2·latches + inputs > 127`) for `u128` satisfying-assignment
    /// counts; the `count_*` methods then saturate to `u128::MAX`.
    /// Mirrored as [`SymbolicStats::counts_saturate`].
    pub fn counts_saturate(&self) -> bool {
        2 * self.num_latches + self.num_inputs > 127
    }

    /// Exact number of states in `set` (a function over current-state
    /// variables only).
    ///
    /// Returns `u128::MAX` when the machine has more than 127 support
    /// variables (see [`SymbolicFsm::counts_saturate`]): `2^128` and up is
    /// not representable, and saturating beats both panicking mid-campaign
    /// and the silent wraparound the shift correction would produce.
    ///
    /// # Panics
    ///
    /// Panics if `set` depends on non-state variables.
    pub fn count_states(&self, set: Bdd) -> u128 {
        for v in self.mgr.support(set) {
            assert!(
                v.0 % 2 == 0 && (v.0 as usize) < 2 * self.num_latches,
                "count_states: set depends on non-state variable {v}"
            );
        }
        if self.counts_saturate() {
            return u128::MAX;
        }
        let total = 2 * self.num_latches + self.num_inputs;
        let free = total - self.num_latches;
        self.mgr.sat_count(set, total as u32) >> free
    }

    /// Exact number of *transitions* leaving `reached`: pairs `(state,
    /// input)` with the state in `reached` and the input valid. This is
    /// the paper's transition count (each such pair is one edge of the
    /// state transition graph that a transition tour must visit).
    ///
    /// Saturates to `u128::MAX` on machines with more than 127 support
    /// variables (see [`SymbolicFsm::counts_saturate`]).
    pub fn count_transitions(&mut self, reached: Bdd) -> u128 {
        if self.counts_saturate() {
            return u128::MAX;
        }
        let total = 2 * self.num_latches + self.num_inputs;
        let both = self.mgr.and(reached, self.valid);
        // Free variables: the next-state variables.
        let free = self.num_latches;
        self.mgr.sat_count(both, total as u32) >> free
    }

    /// Exact number of valid input vectors (assignments to the inputs
    /// satisfying the valid-input constraint), assuming the constraint
    /// mentions input variables only.
    ///
    /// Saturates to `u128::MAX` on machines with more than 127 support
    /// variables (see [`SymbolicFsm::counts_saturate`]).
    pub fn count_valid_inputs(&self) -> u128 {
        if self.counts_saturate() {
            return u128::MAX;
        }
        let total = 2 * self.num_latches + self.num_inputs;
        let free = 2 * self.num_latches;
        self.mgr.sat_count(self.valid, total as u32) >> free
    }

    /// Size statistics.
    pub fn stats(&self) -> SymbolicStats {
        SymbolicStats {
            latches: self.num_latches,
            inputs: self.num_inputs,
            outputs: self.output_fns.len(),
            bdd_nodes: self.mgr.num_nodes(),
            counts_saturate: self.counts_saturate(),
        }
    }
}

/// Accumulates visited `(state, input)` pairs as a BDD — transition
/// coverage measurement on models whose transition count (hundreds of
/// millions here, as in the paper's Section 7.2) is far beyond explicit
/// tracking.
#[derive(Debug, Clone, Copy)]
pub struct CoverageAccumulator {
    visited: Bdd,
}

impl CoverageAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        CoverageAccumulator {
            visited: Bdd::FALSE,
        }
    }

    /// The characteristic function of the visited pairs.
    pub fn visited(&self) -> Bdd {
        self.visited
    }
}

impl Default for CoverageAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolicFsm {
    /// Records one simulation step's `(state, input)` pair into the
    /// accumulator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn record_visit(&mut self, acc: &mut CoverageAccumulator, state: &[bool], inputs: &[bool]) {
        assert_eq!(state.len(), self.num_latches, "state width mismatch");
        assert_eq!(inputs.len(), self.num_inputs, "input width mismatch");
        let mut cube = Bdd::TRUE;
        // Build bottom-up (reverse level order) so each conjunction is a
        // single mk_node.
        for (k, &bit) in inputs.iter().enumerate().rev() {
            let v = self.input_var(k);
            let x = self.mgr.var(v.0);
            let lit = if bit { x } else { self.mgr.not(x) };
            cube = self.mgr.and(lit, cube);
        }
        for (j, &bit) in state.iter().enumerate().rev() {
            let v = self.state_var(j);
            let x = self.mgr.var(v.0);
            let lit = if bit { x } else { self.mgr.not(x) };
            cube = self.mgr.and(lit, cube);
        }
        acc.visited = self.mgr.or(acc.visited, cube);
    }

    /// Number of distinct `(state, input)` transitions recorded.
    ///
    /// Saturates to `u128::MAX` on machines with more than 127 support
    /// variables (see [`SymbolicFsm::counts_saturate`]).
    pub fn coverage_count(&self, acc: &CoverageAccumulator) -> u128 {
        if self.counts_saturate() {
            return u128::MAX;
        }
        let total = 2 * self.num_latches + self.num_inputs;
        let free = self.num_latches; // next-state vars unconstrained
        self.mgr.sat_count(acc.visited, total as u32) >> free
    }
}

impl std::fmt::Debug for SymbolicFsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SymbolicFsm({} latches, {} inputs, {} outputs)",
            self.num_latches,
            self.num_inputs,
            self.output_fns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_netlist::Netlist;

    /// 3-bit binary counter with enable: 8 reachable states.
    fn counter3() -> Netlist {
        let mut n = Netlist::new();
        let en = n.add_input("en");
        let b: Vec<_> = (0..3)
            .map(|i| n.add_latch(format!("b{i}"), false))
            .collect();
        let o: Vec<_> = b.iter().map(|&l| n.latch_output(l)).collect();
        // carry chain
        let mut carry = en;
        for i in 0..3 {
            let nx = n.xor(o[i], carry);
            n.set_latch_next(b[i], nx);
            carry = n.and(carry, o[i]);
        }
        n.add_output("msb", o[2]);
        n
    }

    #[test]
    fn reachable_counts_full_counter() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        let r = fsm.reachable();
        assert_eq!(fsm.count_states(r.reached), 8);
        // Depth: 8 steps to see all states + 1 to observe the fixed point.
        assert!(r.iterations >= 8 && r.iterations <= 9, "{}", r.iterations);
    }

    #[test]
    fn reachable_restricted_by_stuck_enable() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        // Forbid en=1: counter can never move.
        let en = fsm.input_var_by_name("en").unwrap();
        let en_b = fsm.mgr().var(en.0);
        let not_en = fsm.mgr().not(en_b);
        fsm.set_valid_inputs(not_en);
        let r = fsm.reachable();
        assert_eq!(fsm.count_states(r.reached), 1);
        assert_eq!(fsm.count_valid_inputs(), 1);
    }

    #[test]
    fn count_transitions_counts_state_input_pairs() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        let r = fsm.reachable();
        // 8 states × 2 inputs.
        assert_eq!(fsm.count_transitions(r.reached), 16);
    }

    #[test]
    fn transition_relation_sat_count() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        let t = fsm.transition_relation();
        // Each (x, i) pair has exactly one y: 8 × 2 = 16 satisfying
        // assignments over x, i, y.
        let total = (2 * 3 + 1) as u32;
        assert_eq!(fsm.mgr_ref().sat_count(t, total), 16);
    }

    #[test]
    fn image_of_init_is_successors() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        let init = fsm.init();
        let img = fsm.image(init);
        // From state 0: en=0 stays at 0, en=1 goes to 1 → {0, 1}.
        assert_eq!(fsm.count_states(img), 2);
    }

    #[test]
    fn init_cube_respects_init_values() {
        let mut n = Netlist::new();
        let a = n.add_latch("a", true);
        let b = n.add_latch("b", false);
        let ao = n.latch_output(a);
        let bo = n.latch_output(b);
        n.set_latch_next(a, ao);
        n.set_latch_next(b, bo);
        n.add_output("a", ao);
        n.add_output("b", bo);
        let mut fsm = SymbolicFsm::from_netlist(&n);
        let r = fsm.reachable();
        assert_eq!(fsm.count_states(r.reached), 1);
        // init: a=1, b=0
        let init = fsm.init();
        assert!(fsm.mgr_ref().eval(init, &[true, false, false, false]));
        assert!(!fsm.mgr_ref().eval(init, &[false, false, true, false]));
    }

    #[test]
    #[should_panic(expected = "non-state variable")]
    fn count_states_rejects_input_dependence() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        let en = fsm.input_var_by_name("en").unwrap();
        let en_b = fsm.mgr().var(en.0);
        fsm.count_states(en_b);
    }

    #[test]
    fn coverage_accumulator_counts_distinct_pairs() {
        let mut fsm = SymbolicFsm::from_netlist(&counter3());
        let mut acc = CoverageAccumulator::new();
        assert_eq!(fsm.coverage_count(&acc), 0);
        fsm.record_visit(&mut acc, &[false, false, false], &[true]);
        fsm.record_visit(&mut acc, &[false, false, false], &[false]);
        // Duplicate visit: count unchanged.
        fsm.record_visit(&mut acc, &[false, false, false], &[true]);
        assert_eq!(fsm.coverage_count(&acc), 2);
        fsm.record_visit(&mut acc, &[true, false, false], &[true]);
        assert_eq!(fsm.coverage_count(&acc), 3);
    }

    #[test]
    fn coverage_reaches_total_on_full_walk() {
        let n = counter3();
        let mut fsm = SymbolicFsm::from_netlist(&n);
        let r = fsm.reachable();
        let total = fsm.count_transitions(r.reached);
        let mut acc = CoverageAccumulator::new();
        // Walk every (state, input) pair explicitly.
        let mut states = vec![n.initial_state()];
        let mut seen = std::collections::HashSet::new();
        seen.insert(n.initial_state());
        while let Some(s) = states.pop() {
            for en in [false, true] {
                fsm.record_visit(&mut acc, &s, &[en]);
                let (nx, _) = n.step(&s, &[en]);
                if seen.insert(nx.clone()) {
                    states.push(nx);
                }
            }
        }
        assert_eq!(fsm.coverage_count(&acc), total);
    }

    #[test]
    fn output_fns_present() {
        let fsm = SymbolicFsm::from_netlist(&counter3());
        assert_eq!(fsm.output_fns().len(), 1);
        assert_eq!(fsm.output_fns()[0].0, "msb");
        assert_eq!(fsm.stats().latches, 3);
        assert_eq!(fsm.stats().inputs, 1);
        assert!(!fsm.stats().counts_saturate);
    }

    /// A machine wide enough that `2·latches + inputs > 127`: a 70-bit
    /// shift-register-of-itself (each latch feeds itself), one input.
    fn wide70() -> Netlist {
        let mut n = Netlist::new();
        let _en = n.add_input("en");
        for i in 0..70 {
            let l = n.add_latch(format!("b{i}"), false);
            let o = n.latch_output(l);
            n.set_latch_next(l, o);
            if i == 69 {
                n.add_output("msb", o);
            }
        }
        n
    }

    #[test]
    fn counts_saturate_instead_of_overflowing() {
        // 2·70 + 1 = 141 support variables: 2^141 assignments cannot be
        // shift-corrected within u128, so every count saturates rather
        // than panicking or wrapping.
        let mut fsm = SymbolicFsm::from_netlist(&wide70());
        assert!(fsm.counts_saturate());
        assert!(fsm.stats().counts_saturate);
        let r = fsm.reachable();
        assert_eq!(fsm.count_states(r.reached), u128::MAX);
        assert_eq!(fsm.count_transitions(r.reached), u128::MAX);
        assert_eq!(fsm.count_valid_inputs(), u128::MAX);
        let acc = CoverageAccumulator::new();
        assert_eq!(fsm.coverage_count(&acc), u128::MAX);
    }
}

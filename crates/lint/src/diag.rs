//! The diagnostic engine: severities, stable codes, source locations,
//! the [`Diagnostics`] sink with per-code severity overrides, and the
//! [`LintPass`] composition trait.
//!
//! The design mirrors compiler diagnostics rather than ad-hoc `Result`
//! types: every finding carries a *stable code* (`SC001`, …) so policies
//! (`--deny`/`--allow`), documentation and CI gates can refer to checks
//! by name across releases, and every finding carries a *location* in the
//! model vocabulary (state, transition, latch, signal, abstraction class)
//! rather than a file/line pair.

use crate::json::json_escape;
use std::fmt;

/// How a diagnostic affects the lint verdict.
///
/// Ordered: `Allow < Warn < Deny`, so `max` folds a batch of diagnostics
/// into an exit decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed: the finding is dropped from the report.
    Allow,
    /// Reported, but does not fail the lint run.
    Warn,
    /// Reported and fails the lint run (non-zero exit).
    Deny,
}

impl Severity {
    /// Lower-case name, as used in rendered output and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses `"allow"` / `"warn"` / `"deny"`.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A registered lint: stable code, human name, default severity, and the
/// paper definition/requirement it enforces.
///
/// All instances live in [`crate::codes`]; passes reference them by
/// `&'static` identity.
#[derive(Debug)]
pub struct LintCode {
    /// Stable identifier (`"SC001"`); never reused once published.
    pub code: &'static str,
    /// Kebab-case human name (`"unreachable-state"`).
    pub name: &'static str,
    /// Severity when no override is configured.
    pub default_severity: Severity,
    /// One-line description of what the lint checks.
    pub summary: &'static str,
    /// The paper definition / requirement / section this lint enforces.
    pub paper_ref: &'static str,
}

/// Where in a model / netlist / abstraction map a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The model as a whole.
    Model,
    /// A single state of an explicit machine.
    State {
        /// Raw state id.
        id: u32,
        /// State label.
        label: String,
    },
    /// A `(state, input)` transition slot of an explicit machine.
    Transition {
        /// Source-state label.
        state: String,
        /// Input-symbol label.
        input: String,
    },
    /// An unordered pair of states (distinguishability findings).
    StatePair {
        /// First state label.
        s1: String,
        /// Second state label.
        s2: String,
    },
    /// A netlist latch, by name.
    Latch {
        /// Latch name.
        name: String,
    },
    /// A netlist primary input, by name.
    InputPort {
        /// Input name.
        name: String,
    },
    /// A netlist primary output, by name.
    OutputPort {
        /// Output name.
        name: String,
    },
    /// An internal netlist signal (by net name or index rendering).
    Signal {
        /// Net name.
        name: String,
    },
    /// An abstract state class of a quotient map.
    AbstractClass {
        /// Dense class index.
        class: u32,
    },
}

impl Location {
    fn render_text(&self) -> String {
        match self {
            Location::Model => "model".to_string(),
            Location::State { id, label } => format!("state `{label}` (id {id})"),
            Location::Transition { state, input } => {
                format!("transition `{state}` --{input}-->")
            }
            Location::StatePair { s1, s2 } => format!("states `{s1}` / `{s2}`"),
            Location::Latch { name } => format!("latch `{name}`"),
            Location::InputPort { name } => format!("input `{name}`"),
            Location::OutputPort { name } => format!("output `{name}`"),
            Location::Signal { name } => format!("signal `{name}`"),
            Location::AbstractClass { class } => format!("abstract class A{class}"),
        }
    }

    fn render_json(&self, out: &mut String) {
        let kv = |out: &mut String, k: &str, v: &str| {
            out.push_str(",\"");
            out.push_str(k);
            out.push_str("\":\"");
            out.push_str(&json_escape(v));
            out.push('"');
        };
        out.push_str("{\"kind\":\"");
        match self {
            Location::Model => out.push_str("model\""),
            Location::State { id, label } => {
                out.push_str("state\"");
                out.push_str(&format!(",\"id\":{id}"));
                kv(out, "label", label);
            }
            Location::Transition { state, input } => {
                out.push_str("transition\"");
                kv(out, "state", state);
                kv(out, "input", input);
            }
            Location::StatePair { s1, s2 } => {
                out.push_str("state-pair\"");
                kv(out, "s1", s1);
                kv(out, "s2", s2);
            }
            Location::Latch { name } => {
                out.push_str("latch\"");
                kv(out, "name", name);
            }
            Location::InputPort { name } => {
                out.push_str("input\"");
                kv(out, "name", name);
            }
            Location::OutputPort { name } => {
                out.push_str("output\"");
                kv(out, "name", name);
            }
            Location::Signal { name } => {
                out.push_str("signal\"");
                kv(out, "name", name);
            }
            Location::AbstractClass { class } => {
                out.push_str("class\"");
                out.push_str(&format!(",\"id\":{class}"));
            }
        }
        out.push('}');
    }
}

/// One finding: a code, its resolved severity, a location and a message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The registered lint that fired.
    pub code: &'static LintCode,
    /// Severity after applying configuration overrides.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable explanation with concrete witnesses.
    pub message: String,
    /// Supplementary notes (rendered indented under the message).
    pub notes: Vec<String>,
}

/// Per-code severity policy: each code starts at its registered default
/// and can be overridden to `deny`, `warn` or `allow`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: Vec<(String, Severity)>,
}

impl LintConfig {
    /// A configuration with no overrides (registry defaults apply).
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Overrides the severity of `code` (later calls win).
    pub fn set(&mut self, code: &str, severity: Severity) -> &mut Self {
        self.overrides.push((code.to_string(), severity));
        self
    }

    /// Builder-style [`LintConfig::set`] to `Deny`.
    pub fn deny(mut self, code: &str) -> Self {
        self.set(code, Severity::Deny);
        self
    }

    /// Builder-style [`LintConfig::set`] to `Warn`.
    pub fn warn(mut self, code: &str) -> Self {
        self.set(code, Severity::Warn);
        self
    }

    /// Builder-style [`LintConfig::set`] to `Allow`.
    pub fn allow(mut self, code: &str) -> Self {
        self.set(code, Severity::Allow);
        self
    }

    /// The effective severity of a code under this configuration.
    pub fn severity_of(&self, code: &LintCode) -> Severity {
        self.overrides
            .iter()
            .rev()
            .find(|(c, _)| c == code.code || c == code.name)
            .map(|&(_, s)| s)
            .unwrap_or(code.default_severity)
    }
}

/// The sink passes emit into: applies the severity policy at emission
/// time (so `Allow`ed findings cost nothing downstream) and renders the
/// final report in text or JSON form.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    config: LintConfig,
    items: Vec<Diagnostic>,
    suppressed: usize,
    fingerprint: Option<u64>,
}

impl Diagnostics {
    /// An empty sink under the given policy.
    pub fn new(config: LintConfig) -> Self {
        Diagnostics {
            config,
            items: Vec::new(),
            suppressed: 0,
            fingerprint: None,
        }
    }

    /// An empty sink under registry-default severities.
    pub fn with_defaults() -> Self {
        Diagnostics::new(LintConfig::new())
    }

    /// Emits a finding for `code` (dropped silently if the policy says
    /// `Allow`).
    pub fn emit(
        &mut self,
        code: &'static LintCode,
        location: Location,
        message: impl Into<String>,
    ) {
        self.emit_with_notes(code, location, message, Vec::new());
    }

    /// [`Diagnostics::emit`] with supplementary notes.
    pub fn emit_with_notes(
        &mut self,
        code: &'static LintCode,
        location: Location,
        message: impl Into<String>,
        notes: Vec<String>,
    ) {
        let severity = self.config.severity_of(code);
        if severity == Severity::Allow {
            self.suppressed += 1;
            return;
        }
        self.items.push(Diagnostic {
            code,
            severity,
            location,
            message: message.into(),
            notes,
        });
    }

    /// All retained findings, in emission order until [`sorted`]
    /// (deny-first) is called.
    ///
    /// [`sorted`]: Diagnostics::sort_by_severity
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Findings suppressed by `Allow` policy.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Number of `Deny` findings.
    pub fn deny_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of `Warn` findings.
    pub fn warn_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// `true` when at least one finding denies (lint run should fail).
    pub fn has_denials(&self) -> bool {
        self.deny_count() > 0
    }

    /// `true` when a finding with the given code is present.
    pub fn has_code(&self, code: &str) -> bool {
        self.items.iter().any(|d| d.code.code == code)
    }

    /// Findings with the given code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.items.iter().filter(move |d| d.code.code == code)
    }

    /// Stable deny-first ordering (then by code, then emission order) —
    /// the order both renderers use.
    pub fn sort_by_severity(&mut self) {
        self.items.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.code.cmp(b.code.code))
        });
    }

    /// Binds the report to the linted artifact's FNV-64 fingerprint (the
    /// machine fingerprint for enumerable models, the normalized-source
    /// hash otherwise). Rendered by [`Diagnostics::render_json`] so two
    /// reports are diffable — and cacheable — exactly when they describe
    /// the same model under the same policy.
    pub fn set_fingerprint(&mut self, fingerprint: u64) {
        self.fingerprint = Some(fingerprint);
    }

    /// The bound artifact fingerprint, if one was set.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Merges another sink's findings into this one (used to combine the
    /// netlist, model and abstraction pass families into one report).
    /// A fingerprint set on either side survives; `self`'s wins if both
    /// are set.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
        self.suppressed += other.suppressed;
        self.fingerprint = self.fingerprint.or(other.fingerprint);
    }

    /// Renders the human-readable report, one finding per line, notes
    /// indented, with a trailing summary line.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for d in &self.items {
            s.push_str(&format!(
                "{}[{}] {}: {}: {}\n",
                d.severity,
                d.code.code,
                d.code.name,
                d.location.render_text(),
                d.message
            ));
            for note in &d.notes {
                s.push_str(&format!("  = note: {note}\n"));
            }
        }
        let denies = self.deny_count();
        let warns = self.warn_count();
        s.push_str(&format!(
            "summary: {} finding{} ({} deny, {} warn",
            self.items.len(),
            if self.items.len() == 1 { "" } else { "s" },
            denies,
            warns
        ));
        if self.suppressed > 0 {
            s.push_str(&format!(", {} allowed", self.suppressed));
        }
        s.push_str(")\n");
        s
    }

    /// Renders the machine-readable report: a single JSON object with
    /// deterministic field order (stable for golden tests and CI diffing).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"tool\":\"simcov-lint\",");
        if let Some(fp) = self.fingerprint {
            s.push_str(&format!("\"fingerprint\":\"{fp:#018x}\","));
        }
        s.push_str(&format!(
            "\"deny\":{},\"warn\":{},\"allowed\":{},\"diagnostics\":[",
            self.deny_count(),
            self.warn_count(),
            self.suppressed
        ));
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"location\":",
                d.code.code, d.code.name, d.severity
            ));
            d.location.render_json(&mut s);
            s.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
            if !d.notes.is_empty() {
                s.push_str(",\"notes\":[");
                for (j, n) in d.notes.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    s.push_str(&json_escape(n));
                    s.push('"');
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// A composable static check over a target type `T` (an explicit machine
/// wrapper, a netlist, a quotient map, …).
///
/// Passes are stateless unit structs; each one owns exactly one code so
/// policy, documentation and implementation stay aligned. Families of
/// passes for the same target compose as `&[&dyn LintPass<T>]` and run
/// through [`run_passes`].
pub trait LintPass<T: ?Sized> {
    /// The code this pass emits.
    fn code(&self) -> &'static LintCode;

    /// Runs the check, emitting findings into `out`.
    fn run(&self, target: &T, out: &mut Diagnostics);
}

/// Runs a family of passes over one target under a severity policy,
/// returning the (deny-first sorted) findings.
pub fn run_passes<T: ?Sized>(
    passes: &[&dyn LintPass<T>],
    target: &T,
    config: &LintConfig,
) -> Diagnostics {
    let mut out = Diagnostics::new(config.clone());
    for pass in passes {
        pass.run(target, &mut out);
    }
    out.sort_by_severity();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_CODE: LintCode = LintCode {
        code: "SC999",
        name: "test-lint",
        default_severity: Severity::Warn,
        summary: "a lint for tests",
        paper_ref: "none",
    };

    #[test]
    fn severity_ordering_and_parsing() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Allow);
        assert_eq!(Severity::parse("deny"), Some(Severity::Deny));
        assert_eq!(Severity::parse("nope"), None);
        assert_eq!(Severity::Warn.to_string(), "warn");
    }

    #[test]
    fn config_overrides_by_code_and_name() {
        let cfg = LintConfig::new().deny("SC999");
        assert_eq!(cfg.severity_of(&TEST_CODE), Severity::Deny);
        let cfg = LintConfig::new().allow("test-lint");
        assert_eq!(cfg.severity_of(&TEST_CODE), Severity::Allow);
        // Later overrides win.
        let cfg = LintConfig::new().deny("SC999").allow("SC999");
        assert_eq!(cfg.severity_of(&TEST_CODE), Severity::Allow);
        assert_eq!(LintConfig::new().severity_of(&TEST_CODE), Severity::Warn);
    }

    #[test]
    fn allow_suppresses_at_emission() {
        let mut d = Diagnostics::new(LintConfig::new().allow("SC999"));
        d.emit(&TEST_CODE, Location::Model, "dropped");
        assert!(d.items().is_empty());
        assert_eq!(d.suppressed(), 1);
        assert!(!d.has_denials());
    }

    #[test]
    fn counts_and_rendering() {
        let mut d = Diagnostics::new(LintConfig::new().deny("SC999"));
        d.emit_with_notes(
            &TEST_CODE,
            Location::State {
                id: 3,
                label: "s3".into(),
            },
            "something broke",
            vec!["context".into()],
        );
        assert_eq!(d.deny_count(), 1);
        assert!(d.has_denials());
        assert!(d.has_code("SC999"));
        let text = d.render_text();
        assert!(text.contains("deny[SC999] test-lint: state `s3` (id 3): something broke"));
        assert!(text.contains("  = note: context"));
        assert!(text.contains("summary: 1 finding (1 deny, 0 warn)"));
        let json = d.render_json();
        assert!(json.contains("\"code\":\"SC999\""));
        assert!(json.contains("\"severity\":\"deny\""));
        assert!(json.contains("\"notes\":[\"context\"]"));
    }

    #[test]
    fn fingerprint_renders_in_json_and_survives_merge() {
        let mut d = Diagnostics::with_defaults();
        assert_eq!(d.fingerprint(), None);
        assert!(d
            .render_json()
            .starts_with("{\"tool\":\"simcov-lint\",\"deny\":"));
        d.set_fingerprint(0xDEAD_BEEF);
        assert!(d
            .render_json()
            .starts_with("{\"tool\":\"simcov-lint\",\"fingerprint\":\"0x00000000deadbeef\","));
        // Merge: an unset side adopts the set side's fingerprint.
        let mut plain = Diagnostics::with_defaults();
        let mut stamped = Diagnostics::with_defaults();
        stamped.set_fingerprint(7);
        plain.merge(stamped);
        assert_eq!(plain.fingerprint(), Some(7));
        // ...and a set fingerprint is not overwritten.
        let mut other = Diagnostics::with_defaults();
        other.set_fingerprint(9);
        plain.merge(other);
        assert_eq!(plain.fingerprint(), Some(7));
    }

    #[test]
    fn sort_puts_denials_first() {
        static DENY_CODE: LintCode = LintCode {
            code: "SC998",
            name: "deny-lint",
            default_severity: Severity::Deny,
            summary: "",
            paper_ref: "",
        };
        let mut d = Diagnostics::with_defaults();
        d.emit(&TEST_CODE, Location::Model, "warns");
        d.emit(&DENY_CODE, Location::Model, "denies");
        d.sort_by_severity();
        assert_eq!(d.items()[0].code.code, "SC998");
    }
}

//! The `simcov` binary: thin wrapper over [`simcov_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match simcov_cli::run(&args) {
        Ok(out) => {
            print!("{}", out.text);
            // The metrics table goes to stderr so stdout stays parseable
            // (JSON lint reports, tour vectors, ...).
            if let Some(metrics) = &out.metrics {
                eprint!("{metrics}");
            }
            if out.code != 0 {
                std::process::exit(out.code);
            }
        }
        Err(e) => {
            eprintln!("error: {}", e.message);
            std::process::exit(e.code);
        }
    }
}

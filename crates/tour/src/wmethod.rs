//! Chow's W-method: characterization sets and the `P·W` test suite.
//!
//! The third classic conformance-testing construction (after transition
//! tours and UIO sequences): a **characterization set** `W` is a set of
//! input sequences such that every pair of distinct states is
//! distinguished by at least one sequence in `W`. The W-method test suite
//! applies every sequence of the *transition cover* `P` (reach each
//! transition from reset) followed by every sequence of `W` — detecting
//! all output and transfer errors of any implementation with no more
//! states than the specification.
//!
//! Like UIO sequences, a characterization set exists iff the machine is
//! *reduced* (no output-equivalent states) — the same precondition the
//! paper's Requirement 5 establishes by making interaction state
//! observable.

use crate::random::TestSet;
use simcov_fsm::{ExplicitMealy, InputSym, StateId};
use std::collections::{HashMap, VecDeque};

/// Errors from W-method construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WMethodError {
    /// The machine is not reduced: these state pairs are output-equivalent
    /// under every input sequence, so no characterization set exists.
    NotReduced(Vec<(StateId, StateId)>),
    /// A reachable transition is undefined. The W-method compares the
    /// response of every state to every sequence in `W`, so it needs a
    /// completely specified machine.
    Incomplete {
        /// The reachable state with a missing transition.
        state: StateId,
        /// The input it does not define.
        input: InputSym,
    },
}

impl std::fmt::Display for WMethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WMethodError::NotReduced(pairs) => write!(
                f,
                "machine is not reduced: {} output-equivalent state pairs",
                pairs.len()
            ),
            WMethodError::Incomplete { state, input } => write!(
                f,
                "machine is incomplete: state {} has no transition on input {} \
                 (the W-method requires a completely specified machine)",
                state.index(),
                input.index()
            ),
        }
    }
}

impl std::error::Error for WMethodError {}

/// Computes a characterization set for the reachable part of `m`: a set
/// of input sequences distinguishing every pair of distinct reachable
/// states.
///
/// Construction: partition refinement recording, for each refinement
/// round, one separating input per freshly split class — yielding
/// sequences of length at most `n - 1` and at most `n - 1` sequences.
///
/// # Errors
///
/// * [`WMethodError::NotReduced`] with the undistinguishable pairs.
/// * [`WMethodError::Incomplete`] if a reachable transition is undefined
///   (a malformed model must be reported, not panicked on).
pub fn characterization_set(m: &ExplicitMealy) -> Result<Vec<Vec<InputSym>>, WMethodError> {
    let reach = m.reachable_states();
    let n = reach.len();
    let ni = m.num_inputs();
    let mut idx_of = vec![usize::MAX; m.num_states()];
    for (i, &s) in reach.iter().enumerate() {
        idx_of[s.index()] = i;
    }
    // Tabulate the reachable transition relation up front; a missing
    // entry is a typed error instead of a panic deep inside the pair BFS.
    let mut table: Vec<(usize, u32)> = Vec::with_capacity(n * ni);
    for &s in &reach {
        for i in 0..ni {
            let input = InputSym(i as u32);
            let (nx, o) = m
                .step(s, input)
                .ok_or(WMethodError::Incomplete { state: s, input })?;
            table.push((idx_of[nx.index()], o.0));
        }
    }
    let step = |si: usize, i: usize| -> (usize, u32) { table[si * ni + i] };
    // For each unordered pair, find a shortest distinguishing sequence by
    // BFS over pair states. (O(n² · |I|) per BFS level; fine at the test
    // model sizes the explicit layer handles.)
    let mut dist_seq: HashMap<(usize, usize), Vec<InputSym>> = HashMap::new();
    let mut not_distinguishable = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if dist_seq.contains_key(&(a, b)) {
                continue;
            }
            // BFS over the pair graph from (a, b).
            let mut parent: HashMap<(usize, usize), ((usize, usize), InputSym)> = HashMap::new();
            let mut queue = VecDeque::from([(a, b)]);
            let mut found: Option<((usize, usize), InputSym)> = None;
            parent.insert((a, b), ((a, b), InputSym(0))); // sentinel
            'bfs: while let Some((x, y)) = queue.pop_front() {
                for i in 0..ni {
                    let (nx, ox) = step(x, i);
                    let (ny, oy) = step(y, i);
                    if ox != oy {
                        found = Some(((x, y), InputSym(i as u32)));
                        break 'bfs;
                    }
                    let key = if nx <= ny { (nx, ny) } else { (ny, nx) };
                    if nx != ny && !parent.contains_key(&key) {
                        parent.insert(key, ((x, y), InputSym(i as u32)));
                        queue.push_back(key);
                    }
                }
            }
            match found {
                None => not_distinguishable.push((reach[a], reach[b])),
                Some((last_pair, last_input)) => {
                    // Reconstruct the sequence back to (a, b).
                    let mut seq = vec![last_input];
                    let mut cur = last_pair;
                    while cur != (a, b) {
                        let (prev, inp) = parent[&cur];
                        seq.push(inp);
                        cur = prev;
                    }
                    seq.reverse();
                    dist_seq.insert((a, b), seq);
                }
            }
        }
    }
    if !not_distinguishable.is_empty() {
        return Err(WMethodError::NotReduced(not_distinguishable));
    }
    // Deduplicate: drop sequences that are prefixes of others (a longer
    // sequence distinguishes everything its prefix does not necessarily —
    // so keep exact set, only dedup equal sequences).
    let mut w: Vec<Vec<InputSym>> = dist_seq.into_values().collect();
    w.sort();
    w.dedup();
    Ok(w)
}

/// Builds the W-method test suite: for every reachable transition
/// `(s, i)` and every `w ∈ W`, the sequence
/// *shortest-path-to-s · i · w*.
///
/// # Errors
///
/// [`WMethodError::NotReduced`] if no characterization set exists.
pub fn w_method_test_set(m: &ExplicitMealy) -> Result<TestSet, WMethodError> {
    let w = characterization_set(m)?;
    // Shortest access paths.
    let mut path: HashMap<StateId, Vec<InputSym>> = HashMap::new();
    path.insert(m.reset(), Vec::new());
    let mut q = VecDeque::from([m.reset()]);
    while let Some(s) = q.pop_front() {
        for i in m.inputs() {
            if let Some((nx, _)) = m.step(s, i) {
                if !path.contains_key(&nx) {
                    let mut p = path[&s].clone();
                    p.push(i);
                    path.insert(nx, p);
                    q.push_back(nx);
                }
            }
        }
    }
    let mut sequences = Vec::new();
    for s in m.reachable_states() {
        for i in m.inputs() {
            if m.step(s, i).is_none() {
                continue;
            }
            for wseq in &w {
                let mut seq = path[&s].clone();
                seq.push(i);
                seq.extend(wseq.iter().copied());
                sequences.push(seq);
            }
        }
    }
    Ok(TestSet { sequences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    fn probe_machine() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let states: Vec<_> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        let step = b.add_input("step");
        let probe = b.add_input("probe");
        let o = b.add_output("common");
        let probes: Vec<_> = (0..4).map(|i| b.add_output(format!("p{i}"))).collect();
        for i in 0..4 {
            b.add_transition(states[i], step, states[(i + 1) % 4], o);
            b.add_transition(states[i], probe, states[i], probes[i]);
        }
        b.build(states[0]).unwrap()
    }

    #[test]
    fn characterization_set_distinguishes_all_pairs() {
        let m = probe_machine();
        let w = characterization_set(&m).unwrap();
        assert!(!w.is_empty());
        for (ai, &a) in m.reachable_states().iter().enumerate() {
            for &b in m.reachable_states().iter().skip(ai + 1) {
                let distinguished = w.iter().any(|seq| m.run(a, seq).1 != m.run(b, seq).1);
                assert!(distinguished, "{a:?} vs {b:?}");
            }
        }
        // The probe input distinguishes everything in one step: W should
        // be small.
        assert!(w.len() <= 3, "{w:?}");
    }

    #[test]
    fn w_method_catches_all_single_faults() {
        let m = probe_machine();
        let ts = w_method_test_set(&m).unwrap();
        // Every transfer and output mutation changes some trace.
        for s in m.reachable_states() {
            for i in m.inputs() {
                let (next, out) = m.step(s, i).unwrap();
                for t in m.reachable_states() {
                    if t != next {
                        let bad = m.with_redirected_transition(s, i, t);
                        let caught = ts
                            .sequences
                            .iter()
                            .any(|seq| m.output_trace(seq) != bad.output_trace(seq));
                        assert!(caught, "transfer ({s:?},{i:?})->{t:?}");
                    }
                }
                for o in 0..m.num_outputs() as u32 {
                    if o != out.0 {
                        let bad = m.with_changed_output(s, i, simcov_fsm::OutputSym(o));
                        let caught = ts
                            .sequences
                            .iter()
                            .any(|seq| m.output_trace(seq) != bad.output_trace(seq));
                        assert!(caught, "output ({s:?},{i:?})->o{o}");
                    }
                }
            }
        }
    }

    #[test]
    fn unreduced_machine_rejected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s1, a, s0, o);
        let m = b.build(s0).unwrap();
        let err = characterization_set(&m).unwrap_err();
        assert_eq!(err, WMethodError::NotReduced(vec![(s0, s1)]));
        assert!(w_method_test_set(&m).is_err());
    }

    #[test]
    fn incomplete_machine_rejected_not_panicked() {
        // s1 defines no transition on `b`: reachable and incomplete.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let bb = b.add_input("b");
        let o = b.add_output("o");
        let p = b.add_output("p");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s0, bb, s0, p);
        b.add_transition(s1, a, s0, p);
        let m = b.build(s0).unwrap();
        let err = characterization_set(&m).unwrap_err();
        assert_eq!(
            err,
            WMethodError::Incomplete {
                state: s1,
                input: bb
            }
        );
        assert!(err.to_string().contains("incomplete"), "{err}");
        assert_eq!(w_method_test_set(&m).unwrap_err(), err);
    }

    #[test]
    fn deep_distinction_found() {
        // States distinguished only after 2 steps: W sequences of length 3.
        let mut b = MealyBuilder::new();
        let s: Vec<_> = (0..6).map(|i| b.add_state(format!("s{i}"))).collect();
        let a = b.add_input("a");
        let o = b.add_output("o");
        let x = b.add_output("x");
        // Chain 1: s0 -> s1 -> s2 -(x)-> s0; chain 2: s3 -> s4 -> s5 -(o)-> s3.
        b.add_transition(s[0], a, s[1], o);
        b.add_transition(s[1], a, s[2], o);
        b.add_transition(s[2], a, s[0], x);
        b.add_transition(s[3], a, s[4], o);
        b.add_transition(s[4], a, s[5], o);
        b.add_transition(s[5], a, s[3], o);
        // Bridge input to make both chains reachable.
        let j = b.add_input("j");
        for i in 0..6 {
            b.add_transition(s[i], j, s[(i + 3) % 6], o);
        }
        let m = b.build(s[0]).unwrap();
        let w = characterization_set(&m).unwrap();
        let max_len = w.iter().map(Vec::len).max().unwrap();
        assert!(max_len >= 3, "need depth-3 distinction: {w:?}");
    }
}

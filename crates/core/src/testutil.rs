//! Shared test fixtures (test builds only).

pub(crate) use crate::models::figure2;

//! Telemetry contract tests over the CLI surface (the acceptance
//! property of the observability layer):
//!
//! 1. a campaign run with `--trace-out` produces a JSONL trace whose
//!    counter totals **exactly** equal the merged `CampaignStats` the
//!    command prints (faults simulated / detected), and whose per-shard
//!    event fields sum to the same totals;
//! 2. the trace is **byte-identical** across `--jobs 1/2/8` for the same
//!    seed (thread-count blindness);
//! 3. the trace verifies against its FNV-64 fingerprint footer.

use simcov_cli::run;
use simcov_obs::{json, verify_trace};
use std::path::PathBuf;

struct TempPath(PathBuf);
impl TempPath {
    fn as_str(&self) -> &str {
        self.0.to_str().expect("utf-8 path")
    }
}
impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp(tag: &str, ext: &str, contents: &str) -> TempPath {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "simcov_telemetry_{tag}_{}_{:?}.{ext}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&p, contents).expect("write temp file");
    TempPath(p)
}

fn reduced_blif(tag: &str) -> TempPath {
    let n = simcov_dlx::testmodel::reduced_control_netlist_observable();
    temp(tag, "blif", &simcov_netlist::to_blif(&n, "reduced"))
}

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

/// Pulls `<n> faults simulated: <m> detected` out of the `stats:` line.
fn stats_line_counts(text: &str) -> (u64, u64) {
    let line = text
        .lines()
        .find(|l| l.starts_with("stats: "))
        .expect("stats line");
    let mut words = line.split_whitespace();
    let simulated: u64 = words.nth(1).unwrap().parse().expect("faults simulated");
    let detected: u64 = words.nth(2).unwrap().parse().expect("faults detected");
    (simulated, detected)
}

/// Reads a named counter line out of a parsed trace.
fn trace_counter(lines: &[json::Json], name: &str) -> u64 {
    lines
        .iter()
        .find(|l| {
            l.get("type").and_then(|t| t.as_str()) == Some("counter")
                && l.get("name").and_then(|n| n.as_str()) == Some(name)
        })
        .and_then(|l| l.get("value"))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("counter {name} missing from trace"))
}

#[test]
fn campaign_trace_reconciles_with_stats_and_is_jobs_invariant() {
    let model = reduced_blif("campaign");
    for seed in [3u64, 11] {
        let mut traces: Vec<String> = Vec::new();
        let mut stats: Vec<(u64, u64)> = Vec::new();
        for jobs in [1usize, 2, 8] {
            let trace = temp(&format!("trace_s{seed}_j{jobs}"), "jsonl", "");
            let out = run(&args(&[
                "campaign",
                model.as_str(),
                "--max-faults",
                "400",
                "--seed",
                &seed.to_string(),
                "--k",
                "1",
                "--jobs",
                &jobs.to_string(),
                "--trace-out",
                trace.as_str(),
                "--metrics",
            ]))
            .expect("campaign runs");
            assert_eq!(out.code, 0, "{}", out.text);
            let metrics = out.metrics.expect("--metrics renders a table");
            assert!(metrics.contains("campaign.faults_simulated"), "{metrics}");
            assert!(metrics.contains("spans (wall clock):"), "{metrics}");
            stats.push(stats_line_counts(&out.text));
            traces.push(std::fs::read_to_string(trace.as_str()).expect("trace written"));
        }
        // Property 2: byte-identical across thread counts.
        assert_eq!(traces[0], traces[1], "seed {seed}: jobs 1 vs 2");
        assert_eq!(traces[0], traces[2], "seed {seed}: jobs 1 vs 8");
        assert_eq!(stats[0], stats[1]);
        assert_eq!(stats[0], stats[2]);

        // Property 3: the trace verifies (schema header + fingerprint).
        let lines = verify_trace(&traces[0]).expect("trace verifies");

        // Property 1: counters == printed stats == sum of event fields.
        let (simulated, detected) = stats[0];
        assert_eq!(
            trace_counter(&lines, "campaign.faults_simulated"),
            simulated
        );
        assert_eq!(trace_counter(&lines, "campaign.faults_detected"), detected);
        let events: Vec<&json::Json> = lines
            .iter()
            .filter(|l| {
                l.get("type").and_then(|t| t.as_str()) == Some("event")
                    && l.get("name").and_then(|n| n.as_str()) == Some("campaign.shard")
            })
            .collect();
        assert!(!events.is_empty());
        let field_sum = |key: &str| -> u64 {
            events
                .iter()
                .map(|e| {
                    e.get("fields")
                        .and_then(|f| f.get(key))
                        .and_then(|v| v.as_u64())
                        .expect("event field")
                })
                .sum()
        };
        assert_eq!(field_sum("faults"), simulated);
        assert_eq!(field_sum("detected"), detected);
        assert_eq!(
            trace_counter(&lines, "campaign.shards"),
            events.len() as u64
        );
    }
}

#[test]
fn tour_and_lint_traces_are_deterministic_and_verify() {
    let model = reduced_blif("tourlint");
    for cmd in [
        vec!["tour", model.as_str()],
        vec!["lint", "--dlx", "reduced-obs"],
    ] {
        let mut traces = Vec::new();
        for round in 0..2 {
            let trace = temp(&format!("{}_{round}", cmd[0]), "jsonl", "");
            let mut full: Vec<&str> = cmd.clone();
            full.extend_from_slice(&["--trace-out", trace.as_str()]);
            let out = run(&args(&full)).expect("command runs");
            assert_eq!(out.code, 0, "{}", out.text);
            traces.push(std::fs::read_to_string(trace.as_str()).expect("trace written"));
        }
        assert_eq!(traces[0], traces[1], "{} trace must be stable", cmd[0]);
        let lines = verify_trace(&traces[0]).expect("trace verifies");
        let has_counter = |name: &str| {
            lines.iter().any(|l| {
                l.get("type").and_then(|t| t.as_str()) == Some("counter")
                    && l.get("name").and_then(|n| n.as_str()) == Some(name)
            })
        };
        match cmd[0] {
            "tour" => assert!(has_counter("tour.length")),
            _ => assert!(has_counter("lint.findings")),
        }
    }
}

#[test]
fn zero_deadline_checkpoint_journal_is_valid_for_resume() {
    // Regression for the `--deadline 0` semantics: expire-immediately
    // must still write a well-formed (header-only) journal, and a
    // subsequent `--resume` without the deadline completes normally.
    let model = reduced_blif("zerodl");
    let journal = temp("zerodl", "journal", "");
    let partial = run(&args(&[
        "campaign",
        model.as_str(),
        "--max-faults",
        "150",
        "--deadline",
        "0",
        "--checkpoint",
        journal.as_str(),
    ]))
    .expect("zero-deadline campaign runs");
    assert_eq!(partial.code, simcov_cli::EXIT_PARTIAL);
    assert!(
        partial.text.contains("status: partial (deadline expired)"),
        "{}",
        partial.text
    );
    assert!(
        partial.text.contains("0 faults simulated"),
        "expire-immediately means zero work: {}",
        partial.text
    );
    let resumed = run(&args(&[
        "campaign",
        model.as_str(),
        "--max-faults",
        "150",
        "--checkpoint",
        journal.as_str(),
        "--resume",
    ]))
    .expect("resume after zero-deadline runs");
    assert_eq!(resumed.code, 0, "{}", resumed.text);
    assert!(
        resumed.text.contains("status: complete"),
        "{}",
        resumed.text
    );
}

//! Symbolic ∀k-distinguishability on the full-size 22-latch DLX test
//! model — an experiment *beyond* the paper: the authors argue Theorem 2
//! informally; the BDD pair analysis verifies its conclusion mechanically
//! at the case study's real scale.

use simcov::dlx::testmodel::{
    derive_test_model, derive_test_model_observable, valid_inputs_constraint,
};
use simcov::fsm::PairFsm;
use simcov::netlist::Netlist;

fn pair_with_valid(n: &Netlist) -> PairFsm {
    let mut pf = PairFsm::from_netlist(n);
    let names: Vec<String> = n.input_names().map(str::to_string).collect();
    let vars: Vec<_> = names
        .iter()
        .map(|nm| pf.input_var_by_name(nm).expect("input present"))
        .collect();
    let valid = valid_inputs_constraint(pf.mgr(), &|name| {
        let i = names.iter().position(|nm| nm == name).expect("known input");
        vars[i]
    });
    pf.set_valid_inputs(valid);
    pf
}

/// The bare 4-output model is NOT ∀1-distinguishable: tens of thousands
/// of reachable state pairs look alike through stall/squash/br_sel/rf_wen
/// alone.
#[test]
fn bare_full_model_fails_forall_1() {
    let (fin, _) = derive_test_model();
    let init = fin.initial_state();
    let mut pf = pair_with_valid(&fin);
    let r = pf.forall_k(&init, 1, true);
    assert!(!r.holds);
    assert!(
        r.violating_pairs > 100_000,
        "expected massive violation count, got {}",
        r.violating_pairs
    );
    assert_eq!(r.reachable_states, 1552);
}

/// With Requirement 5 applied (all interaction state observable), the
/// full model is ∀1-distinguishable — Theorem 2's conclusion, proven
/// symbolically over all 1552² reachable pairs.
#[test]
fn observable_full_model_certified_at_k1() {
    let fin = derive_test_model_observable();
    let init = fin.initial_state();
    let mut pf = pair_with_valid(&fin);
    let r = pf.forall_k(&init, 1, true);
    assert!(r.holds, "{} violating pairs", r.violating_pairs);
    assert_eq!(r.reachable_states, 1552);
}

/// The symbolic and explicit analyses agree on the reduced models (the
/// cross-validation anchoring the full-scale result).
#[test]
fn symbolic_agrees_with_explicit_on_reduced_models() {
    use simcov::core::forall_k_distinguishable;
    use simcov::dlx::testmodel::{
        reduced_control_netlist, reduced_control_netlist_observable, reduced_valid_inputs,
    };
    use simcov::fsm::enumerate_netlist;
    for (name, n) in [
        ("hidden", reduced_control_netlist()),
        ("observable", reduced_control_netlist_observable()),
    ] {
        let opts = reduced_valid_inputs(&n);
        let m = enumerate_netlist(&n, &opts).expect("enumerates");
        // Symbolic valid constraint mirroring the explicit alphabet.
        let mut pf = PairFsm::from_netlist(&n);
        let mut valid = simcov::bdd::Bdd::FALSE;
        for v in &opts.inputs {
            let mut cube = simcov::bdd::Bdd::TRUE;
            for (k, &bit) in v.iter().enumerate() {
                let var = pf.input_var(k);
                let x = pf.mgr().var(var.0);
                let lit = if bit { x } else { pf.mgr().not(x) };
                cube = pf.mgr().and(cube, lit);
            }
            valid = pf.mgr().or(valid, cube);
        }
        pf.set_valid_inputs(valid);
        for k in 1..=3 {
            let explicit = forall_k_distinguishable(&m, k, 0).expect("complete");
            let sym = pf.forall_k(&n.initial_state(), k, true);
            assert_eq!(
                sym.violating_pairs,
                explicit.violations.len() as u128,
                "{name} k={k}"
            );
            assert_eq!(sym.holds, explicit.holds(), "{name} k={k}");
        }
    }
}

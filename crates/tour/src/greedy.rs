//! Greedy tour heuristics: nearest-uncovered-transition transition tours
//! (the style of tour the paper's SIS implementation produced — complete
//! but non-optimal) and greedy state tours.

use crate::postman::{Graph, Tour, TourError};
use simcov_fsm::{ExplicitMealy, InputSym};
use std::collections::VecDeque;

/// Generates a transition tour by repeatedly walking a shortest path to
/// the nearest state with an uncovered outgoing transition and taking it.
///
/// The result covers every reachable transition but is generally longer
/// than the Chinese-postman optimum of
/// [`transition_tour`](crate::transition_tour) — this mirrors the paper's
/// Section 7.2, which reports a tour of 1,069 M transitions over a
/// 123 M-transition model and notes "this is not an optimal tour".
///
/// # Errors
///
/// Same conditions as [`transition_tour`](crate::transition_tour).
pub fn greedy_transition_tour(m: &ExplicitMealy) -> Result<Tour, TourError> {
    let g = Graph::reachable(m);
    if g.num_edges() == 0 {
        return Err(TourError::NoTransitions);
    }
    if !g.is_strongly_connected() {
        return Err(TourError::NotStronglyConnected);
    }
    let n = g.adj.len();
    let mut covered: Vec<Vec<bool>> = g.adj.iter().map(|e| vec![false; e.len()]).collect();
    let mut remaining = g.num_edges();
    let mut inputs: Vec<InputSym> = Vec::new();
    let mut cur = g.root;
    while remaining > 0 {
        // Take an uncovered edge here if one exists.
        if let Some(ei) = covered[cur].iter().position(|&c| !c) {
            covered[cur][ei] = true;
            remaining -= 1;
            let (v, inp) = g.adj[cur][ei];
            inputs.push(inp);
            cur = v;
            continue;
        }
        // BFS to the nearest state with an uncovered outgoing edge.
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[cur] = true;
        let mut q = VecDeque::from([cur]);
        let mut goal = None;
        'bfs: while let Some(u) = q.pop_front() {
            for (ei, &(v, _)) in g.adj[u].iter().enumerate() {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some((u, ei));
                    if covered[v].iter().any(|&c| !c) {
                        goal = Some(v);
                        break 'bfs;
                    }
                    q.push_back(v);
                }
            }
        }
        let t = goal.expect("strong connectivity guarantees an uncovered edge is reachable");
        let mut path = Vec::new();
        let mut walk = t;
        while let Some((p, ei)) = parent[walk] {
            path.push((p, ei));
            walk = p;
        }
        path.reverse();
        for (u, ei) in path {
            let (v, inp) = g.adj[u][ei];
            if !covered[u][ei] {
                covered[u][ei] = true;
                remaining -= 1;
            }
            inputs.push(inp);
            cur = v;
        }
    }
    // Close the circuit: walk back to the reset state so the tour, like
    // the Chinese-postman tour, can be extended cyclically.
    if cur != g.root {
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[cur] = true;
        let mut q = VecDeque::from([cur]);
        'bfs: while let Some(u) = q.pop_front() {
            for (ei, &(v, _)) in g.adj[u].iter().enumerate() {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some((u, ei));
                    if v == g.root {
                        break 'bfs;
                    }
                    q.push_back(v);
                }
            }
        }
        let mut path = Vec::new();
        let mut walk = g.root;
        while let Some((p, ei)) = parent[walk] {
            path.push((p, ei));
            walk = p;
        }
        path.reverse();
        for (u, ei) in path {
            let (_, inp) = g.adj[u][ei];
            inputs.push(inp);
        }
    }
    let duplicates = inputs.len() - g.num_edges();
    Ok(Tour { inputs, duplicates })
}

/// Generates a *state tour*: an input sequence visiting every reachable
/// state at least once (the weaker coverage measure the paper contrasts
/// with — state coverage does not exercise every transition).
///
/// # Errors
///
/// * [`TourError::NoTransitions`] if the machine has no edges.
/// * [`TourError::Trapped`] if the walk enters a region from which no
///   unvisited state is reachable. Unlike transition tours, state tours
///   do not require strong connectivity — a single one-way descent (a
///   dag-shaped machine) is fine — but *diverging* one-way branches
///   (e.g. two separate sink components) defeat any single walk; a
///   malformed model must report that, not panic.
pub fn state_tour(m: &ExplicitMealy) -> Result<Tour, TourError> {
    let g = Graph::reachable(m);
    if g.num_edges() == 0 {
        return Err(TourError::NoTransitions);
    }
    let n = g.adj.len();
    let mut visited = vec![false; n];
    visited[g.root] = true;
    let mut num_visited = 1;
    let mut inputs: Vec<InputSym> = Vec::new();
    let mut cur = g.root;
    while num_visited < n {
        // BFS to the nearest unvisited state.
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[cur] = true;
        let mut q = VecDeque::from([cur]);
        let mut goal = None;
        'bfs: while let Some(u) = q.pop_front() {
            for (ei, &(v, _)) in g.adj[u].iter().enumerate() {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some((u, ei));
                    if !visited[v] {
                        goal = Some(v);
                        break 'bfs;
                    }
                    q.push_back(v);
                }
            }
        }
        let Some(t) = goal else {
            // Reachable-but-unvisitable states remain: the walk committed
            // to a one-way branch that cannot reach them.
            return Err(TourError::Trapped {
                visited: num_visited,
                total: n,
            });
        };
        let mut path = Vec::new();
        let mut walk = t;
        while let Some((p, ei)) = parent[walk] {
            path.push((p, ei));
            walk = p;
        }
        path.reverse();
        for (u, ei) in path {
            let (v, inp) = g.adj[u][ei];
            inputs.push(inp);
            if !visited[v] {
                visited[v] = true;
                num_visited += 1;
            }
            cur = v;
        }
    }
    Ok(Tour {
        inputs,
        duplicates: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition_tour;
    use crate::verify::coverage;
    use simcov_fsm::MealyBuilder;

    fn ring_with_chords(n: usize) -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
        let step = b.add_input("step");
        let jump = b.add_input("jump");
        let o = b.add_output("o");
        for i in 0..n {
            b.add_transition(states[i], step, states[(i + 1) % n], o);
            b.add_transition(states[i], jump, states[(i + n / 2) % n], o);
        }
        b.build(states[0]).unwrap()
    }

    #[test]
    fn greedy_covers_all_transitions() {
        let m = ring_with_chords(8);
        let tour = greedy_transition_tour(&m).unwrap();
        let rep = coverage(&m, &tour.inputs);
        assert!(rep.all_transitions_covered());
        assert_eq!(tour.len(), m.num_transitions() + tour.duplicates);
    }

    #[test]
    fn greedy_no_shorter_than_postman() {
        for n in [4, 6, 8, 10] {
            let m = ring_with_chords(n);
            let opt = transition_tour(&m).unwrap();
            let greedy = greedy_transition_tour(&m).unwrap();
            assert!(greedy.len() >= opt.len(), "n={n}");
        }
    }

    #[test]
    fn greedy_tour_is_a_circuit() {
        let m = ring_with_chords(7);
        let tour = greedy_transition_tour(&m).unwrap();
        let (states, _) = m.run(m.reset(), &tour.inputs);
        assert_eq!(*states.last().unwrap(), m.reset());
    }

    #[test]
    fn state_tour_visits_all_states() {
        let m = ring_with_chords(9);
        let tour = state_tour(&m).unwrap();
        let rep = coverage(&m, &tour.inputs);
        assert!(rep.all_states_covered());
    }

    #[test]
    fn state_tour_shorter_than_transition_tour() {
        let m = ring_with_chords(12);
        let st = state_tour(&m).unwrap();
        let tt = transition_tour(&m).unwrap();
        assert!(st.len() < tt.len());
    }

    #[test]
    fn state_tour_works_without_strong_connectivity() {
        // A dag-shaped machine: s0 -> s1 -> s2(sink).
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s1, a, s2, o);
        b.add_transition(s2, a, s2, o);
        let m = b.build(s0).unwrap();
        let tour = state_tour(&m).unwrap();
        assert!(coverage(&m, &tour.inputs).all_states_covered());
        assert!(greedy_transition_tour(&m).is_err());
    }

    #[test]
    fn state_tour_reports_trap_instead_of_panicking() {
        // Diverging one-way branches: root -> s1 and root -> s2, both
        // absorbing. After descending into either branch the other is
        // unreachable, so no single walk covers all three states.
        let mut b = MealyBuilder::new();
        let root = b.add_state("root");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let o = b.add_output("o");
        b.add_transition(root, a, s1, o);
        b.add_transition(root, c, s2, o);
        b.add_transition(s1, a, s1, o);
        b.add_transition(s1, c, s1, o);
        b.add_transition(s2, a, s2, o);
        b.add_transition(s2, c, s2, o);
        let m = b.build(root).unwrap();
        let err = state_tour(&m).unwrap_err();
        assert_eq!(
            err,
            TourError::Trapped {
                visited: 2,
                total: 3
            }
        );
        assert!(err.to_string().contains("one-way branch"), "{err}");
    }
}

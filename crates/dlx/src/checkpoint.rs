//! Retire-event checkpoints and [`TraceSource`] adapters.
//!
//! Section 2: *"The comparison between them is made at special
//! checkpointing steps, e.g. at the completion of each instruction. To
//! enable this, the implementation state used in this comparison is
//! observable during functional simulation."* A [`RetireEvent`] is
//! exactly that observation: everything architecturally visible about one
//! completed instruction.

use crate::isa::{Instr, Reg};
use crate::pipeline::{ControlFault, Pipeline};
use crate::spec::Spec;
use simcov_core::TraceSource;

/// The architectural effect of one retired instruction — the checkpoint
/// unit compared between specification and implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// Word-addressed PC of the instruction.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Register write performed, if any (r0 writes are discarded and
    /// never reported).
    pub reg_write: Option<(Reg, u32)>,
    /// Memory write performed, if any: `(byte address, value)` with the
    /// value truncated to the access width.
    pub mem_write: Option<(u32, u32)>,
    /// The PC of the next instruction in program order (branch outcome
    /// included).
    pub next_pc: u32,
}

/// [`TraceSource`] adapter for the ISA-level specification: stimuli are
/// the program, events are its retire events.
#[derive(Debug, Clone)]
pub struct SpecTrace {
    /// Retirement bound (guards non-terminating programs).
    pub max_instrs: usize,
}

impl Default for SpecTrace {
    fn default() -> Self {
        SpecTrace { max_instrs: 10_000 }
    }
}

impl TraceSource for SpecTrace {
    type Stimulus = Instr;
    type Event = RetireEvent;

    fn reset(&mut self) {}

    fn trace(&mut self, program: &[Instr]) -> Vec<RetireEvent> {
        Spec::new(program.to_vec()).run_to_halt(self.max_instrs)
    }
}

/// [`TraceSource`] adapter for the pipelined implementation, with an
/// optional injected control fault.
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    /// The control fault to inject ([`ControlFault::None`] for the golden
    /// implementation).
    pub fault: ControlFault,
    /// Cycle bound (guards livelocked faulty pipelines).
    pub max_cycles: usize,
    /// Retirement bound, matching the specification's.
    pub max_instrs: usize,
}

impl Default for PipelineTrace {
    fn default() -> Self {
        PipelineTrace {
            fault: ControlFault::None,
            max_cycles: 100_000,
            max_instrs: 10_000,
        }
    }
}

impl TraceSource for PipelineTrace {
    type Stimulus = Instr;
    type Event = RetireEvent;

    fn reset(&mut self) {}

    fn trace(&mut self, program: &[Instr]) -> Vec<RetireEvent> {
        let mut p = Pipeline::new(program.to_vec()).with_fault(self.fault);
        p.run_to_halt(self.max_cycles, self.max_instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use simcov_core::validate;

    #[test]
    fn golden_pipeline_validates_against_spec() {
        let prog = asm::program(&[
            "addi r1, r0, 3",
            "add r2, r1, r1",
            "sw r2, 4(r0)",
            "lw r3, 4(r0)",
            "add r4, r3, r1",
            "halt",
        ]);
        let mut spec = SpecTrace::default();
        let mut imp = PipelineTrace::default();
        let n = validate(&mut spec, &mut imp, &prog).unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn faulty_pipeline_mismatch_found() {
        // Back-to-back dependent load: interlock fault is exposed.
        let prog = asm::program(&[
            "addi r1, r0, 42",
            "sw r1, 0(r0)",
            "lw r2, 0(r0)",
            "add r3, r2, r0", // load-use dependence
            "halt",
        ]);
        let mut spec = SpecTrace::default();
        let mut imp = PipelineTrace {
            fault: ControlFault::DisableLoadInterlock,
            ..PipelineTrace::default()
        };
        let e = validate(&mut spec, &mut imp, &prog).unwrap_err();
        assert_eq!(e.index, 3); // the dependent add retires a stale value
    }
}

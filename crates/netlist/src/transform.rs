//! Structural abstraction operators.
//!
//! These are the topological operations Section 6.1 of the paper describes:
//! *"an abstraction over state variables can be implemented by removing
//! certain state elements from the concrete model, and all of the logic
//! associated with only that part — this is a simple topological operation.
//! Any communication signals between the abstract model and the parts
//! abstracted out are now considered as input/output signals for the
//! abstract model."*
//!
//! Every transform is functional (takes `&Netlist`, returns a fresh
//! [`Netlist`]) and finishes with a [`sweep`] so dead logic, unread latches
//! and unused primary inputs disappear from the statistics — the latch
//! counts of Fig 3(b) are exactly `result.stats().latches`.

use crate::circuit::{InputId, LatchId, Netlist, NodeKind, SignalId};
use std::collections::{HashMap, HashSet};

/// How the rewriter treats each source latch.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Plan {
    /// Copy the latch into the destination.
    Keep,
    /// Remove the latch; its output becomes a fresh primary input
    /// (the paper's cut-signals-become-inputs semantics).
    CutToInput,
    /// Remove the latch; uses of its output are replaced by its
    /// next-state function (used for synchronizing output latches, which
    /// only delay a signal by one cycle).
    Bypass,
    /// Remove the latch; uses of its output are replaced by a constant.
    Constant(bool),
    /// Member of a one-hot group being re-encoded: uses of its output are
    /// replaced by a decode of the group's new binary register.
    OneHotMember,
}

/// A one-hot latch group scheduled for binary re-encoding.
struct OneHotGroup {
    members: Vec<LatchId>,
    new_name: String,
    module: String,
    init_index: u64,
}

/// Error produced by [`reencode_onehot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReencodeError {
    /// The group is empty or has a single member.
    GroupTooSmall,
    /// Not exactly one member latch initialises to 1.
    BadInit {
        /// Number of members whose power-on value is 1.
        hot_count: usize,
    },
    /// A latch id occurs twice in the group.
    DuplicateMember(LatchId),
}

impl std::fmt::Display for ReencodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReencodeError::GroupTooSmall => {
                write!(f, "one-hot group must have at least two members")
            }
            ReencodeError::BadInit { hot_count } => write!(
                f,
                "one-hot group must initialise with exactly one hot bit, found {hot_count}"
            ),
            ReencodeError::DuplicateMember(l) => {
                write!(f, "latch {:?} listed twice in one-hot group", l)
            }
        }
    }
}

impl std::error::Error for ReencodeError {}

struct Rewriter<'a> {
    src: &'a Netlist,
    dst: Netlist,
    plans: Vec<Plan>,
    memo: HashMap<SignalId, SignalId>,
    input_sigs: Vec<SignalId>,
    kept_latch_out: HashMap<u32, SignalId>,
    cut_input_out: HashMap<u32, SignalId>,
    group_decode: HashMap<u32, SignalId>,
    group_handles: Vec<crate::build::RegisterHandle>,
    bypass_stack: HashSet<u32>,
}

impl<'a> Rewriter<'a> {
    fn new(src: &'a Netlist, plans: Vec<Plan>, groups: &[OneHotGroup]) -> Self {
        assert_eq!(plans.len(), src.num_latches());
        let mut dst = Netlist::new();
        // Inputs first, preserving order and names.
        let input_sigs: Vec<SignalId> = src
            .input_names()
            .map(|n| dst.add_input(n.to_string()))
            .collect::<Vec<_>>();
        // Kept latches next, preserving order, names, modules and inits.
        let mut kept_latch_out = HashMap::new();
        for (i, l) in src.latches().iter().enumerate() {
            if plans[i] == Plan::Keep {
                let nl = dst.add_latch_in(l.name.clone(), l.init, l.module.clone());
                let out = dst.latch_output(nl);
                kept_latch_out.insert(i as u32, out);
            }
        }
        // Fresh inputs for cut latches (named after the latch).
        let mut cut_input_out = HashMap::new();
        for (i, l) in src.latches().iter().enumerate() {
            if plans[i] == Plan::CutToInput {
                let sig = dst.add_input(format!("cut:{}", l.name));
                cut_input_out.insert(i as u32, sig);
            }
        }
        // Binary registers for one-hot groups, plus per-member decodes.
        let mut group_decode = HashMap::new();
        let mut group_handles = Vec::new();
        for g in groups {
            let width = bits_for(g.members.len() as u64);
            let (word, handle) =
                crate::build::Word::register(&mut dst, &g.new_name, width, g.init_index, &g.module);
            // Decode expressions for each member.
            for (idx, &m) in g.members.iter().enumerate() {
                let dec = word.eq_const(&mut dst, idx as u64);
                group_decode.insert(m.0, dec);
            }
            // Handles are kept so the binary next functions can be wired
            // after the member next-state cones have been mapped.
            group_handles.push(handle);
        }
        Rewriter {
            src,
            dst,
            plans,
            memo: HashMap::new(),
            input_sigs,
            kept_latch_out,
            cut_input_out,
            group_decode,
            group_handles,
            bypass_stack: HashSet::new(),
        }
    }

    fn map(&mut self, sig: SignalId) -> SignalId {
        if let Some(&m) = self.memo.get(&sig) {
            return m;
        }
        let mapped = match self.src.node(sig) {
            NodeKind::Const(v) => self.dst.constant(v),
            NodeKind::Input(InputId(i)) => self.input_sigs[i as usize],
            NodeKind::LatchOut(LatchId(l)) => match self.plans[l as usize].clone() {
                Plan::Keep => self.kept_latch_out[&l],
                Plan::CutToInput => self.cut_input_out[&l],
                Plan::Constant(v) => self.dst.constant(v),
                Plan::OneHotMember => self.group_decode[&l],
                Plan::Bypass => {
                    assert!(
                        self.bypass_stack.insert(l),
                        "bypass cycle through latch `{}`",
                        self.src.latches()[l as usize].name
                    );
                    let next = self.src.latches()[l as usize]
                        .next
                        .expect("bypassed latch has no next function");
                    let r = self.map(next);
                    self.bypass_stack.remove(&l);
                    r
                }
            },
            NodeKind::Not(a) => {
                let a = self.map(a);
                self.dst.not(a)
            }
            NodeKind::And(a, b) => {
                let (a, b) = (self.map(a), self.map(b));
                self.dst.and(a, b)
            }
            NodeKind::Or(a, b) => {
                let (a, b) = (self.map(a), self.map(b));
                self.dst.or(a, b)
            }
            NodeKind::Xor(a, b) => {
                let (a, b) = (self.map(a), self.map(b));
                self.dst.xor(a, b)
            }
            NodeKind::Mux(s, t, e) => {
                let (s, t, e) = (self.map(s), self.map(t), self.map(e));
                self.dst.mux(s, t, e)
            }
        };
        self.memo.insert(sig, mapped);
        mapped
    }

    fn finish(mut self, groups: &[OneHotGroup], keep_output: impl Fn(&str) -> bool) -> Netlist {
        // Wire kept latches' next functions.
        for i in 0..self.src.num_latches() {
            if self.plans[i] == Plan::Keep {
                let next = self.src.latches()[i]
                    .next
                    .expect("kept latch has no next function");
                let mapped = self.map(next);
                let dst_latch = self
                    .dst
                    .latch_by_name(&self.src.latches()[i].name)
                    .expect("kept latch present in destination");
                self.dst.set_latch_next(dst_latch, mapped);
            }
        }
        // Wire one-hot groups: binary bit j next = OR of mapped old nexts
        // whose member index has bit j set.
        let handles = std::mem::take(&mut self.group_handles);
        for (g, handle) in groups.iter().zip(handles) {
            let width = bits_for(g.members.len() as u64);
            let member_nexts: Vec<SignalId> = g
                .members
                .iter()
                .map(|&m| {
                    let next = self.src.latches()[m.index()]
                        .next
                        .expect("one-hot member has no next function");
                    self.map(next)
                })
                .collect();
            let mut next_bits = Vec::with_capacity(width);
            for j in 0..width {
                let mut acc = self.dst.constant(false);
                for (idx, &nx) in member_nexts.iter().enumerate() {
                    if (idx >> j) & 1 == 1 {
                        acc = self.dst.or(acc, nx);
                    }
                }
                next_bits.push(acc);
            }
            handle.set_next(&mut self.dst, &crate::build::Word::from_bits(next_bits));
        }
        // Outputs.
        for (name, sig) in self.src.outputs() {
            if keep_output(name) {
                let mapped = self.map(*sig);
                self.dst.add_output(name.clone(), mapped);
            }
        }
        self.dst
    }
}

fn bits_for(n: u64) -> usize {
    (64 - (n - 1).leading_zeros()) as usize
}

/// Removes logic, latches and primary inputs that cannot influence any
/// primary output (directly or through state). Order and names of the
/// survivors are preserved.
pub fn sweep(src: &Netlist) -> Netlist {
    // Mark latches transitively read from outputs.
    let mut marked_latches: HashSet<u32> = HashSet::new();
    let mut marked_inputs: HashSet<u32> = HashSet::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut stack: Vec<SignalId> = src.outputs().iter().map(|&(_, s)| s).collect();
    while let Some(sig) = stack.pop() {
        if !visited.insert(sig.0) {
            continue;
        }
        match src.node(sig) {
            NodeKind::Const(_) => {}
            NodeKind::Input(InputId(i)) => {
                marked_inputs.insert(i);
            }
            NodeKind::LatchOut(LatchId(l)) => {
                if marked_latches.insert(l) {
                    if let Some(next) = src.latches()[l as usize].next {
                        stack.push(next);
                    }
                }
            }
            NodeKind::Not(a) => stack.push(a),
            NodeKind::And(a, b) | NodeKind::Or(a, b) | NodeKind::Xor(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            NodeKind::Mux(s, t, e) => {
                stack.push(s);
                stack.push(t);
                stack.push(e);
            }
        }
    }
    // Rebuild with only marked inputs and latches.
    let mut dst = Netlist::new();
    let mut input_map: HashMap<u32, SignalId> = HashMap::new();
    for (i, name) in src.input_names().enumerate() {
        if marked_inputs.contains(&(i as u32)) {
            input_map.insert(i as u32, dst.add_input(name.to_string()));
        }
    }
    let mut latch_out_map: HashMap<u32, SignalId> = HashMap::new();
    let mut kept: Vec<u32> = Vec::new();
    for (i, l) in src.latches().iter().enumerate() {
        if marked_latches.contains(&(i as u32)) {
            let nl = dst.add_latch_in(l.name.clone(), l.init, l.module.clone());
            latch_out_map.insert(i as u32, dst.latch_output(nl));
            kept.push(i as u32);
        }
    }
    fn map_sig(
        src: &Netlist,
        dst: &mut Netlist,
        sig: SignalId,
        input_map: &HashMap<u32, SignalId>,
        latch_out_map: &HashMap<u32, SignalId>,
        memo: &mut HashMap<u32, SignalId>,
    ) -> SignalId {
        if let Some(&m) = memo.get(&sig.0) {
            return m;
        }
        let r = match src.node(sig) {
            NodeKind::Const(v) => dst.constant(v),
            NodeKind::Input(InputId(i)) => input_map[&i],
            NodeKind::LatchOut(LatchId(l)) => latch_out_map[&l],
            NodeKind::Not(a) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                dst.not(a)
            }
            NodeKind::And(a, b) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                let b = map_sig(src, dst, b, input_map, latch_out_map, memo);
                dst.and(a, b)
            }
            NodeKind::Or(a, b) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                let b = map_sig(src, dst, b, input_map, latch_out_map, memo);
                dst.or(a, b)
            }
            NodeKind::Xor(a, b) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                let b = map_sig(src, dst, b, input_map, latch_out_map, memo);
                dst.xor(a, b)
            }
            NodeKind::Mux(s, t, e) => {
                let s = map_sig(src, dst, s, input_map, latch_out_map, memo);
                let t = map_sig(src, dst, t, input_map, latch_out_map, memo);
                let e = map_sig(src, dst, e, input_map, latch_out_map, memo);
                dst.mux(s, t, e)
            }
        };
        memo.insert(sig.0, r);
        r
    }
    let mut memo = HashMap::new();
    for &i in &kept {
        let next = src.latches()[i as usize]
            .next
            .expect("marked latch has no next function");
        let mapped = map_sig(src, &mut dst, next, &input_map, &latch_out_map, &mut memo);
        let dl = dst
            .latch_by_name(&src.latches()[i as usize].name)
            .expect("kept latch present");
        dst.set_latch_next(dl, mapped);
    }
    for (name, sig) in src.outputs() {
        let mapped = map_sig(src, &mut dst, *sig, &input_map, &latch_out_map, &mut memo);
        dst.add_output(name.clone(), mapped);
    }
    dst
}

fn apply_plans(
    src: &Netlist,
    plans: Vec<Plan>,
    groups: &[OneHotGroup],
    keep_output: impl Fn(&str) -> bool,
) -> Netlist {
    let rw = Rewriter::new(src, plans, groups);
    let out = rw.finish(groups, keep_output);
    sweep(&out)
}

/// Removes the latches selected by `pred`; their outputs become fresh
/// primary inputs named `cut:<latch name>` (the paper's semantics for
/// signals crossing the abstraction boundary), then sweeps.
pub fn abstract_latches(
    src: &Netlist,
    pred: impl Fn(LatchId, &crate::circuit::Latch) -> bool,
) -> Netlist {
    let plans = src
        .latches()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if pred(LatchId(i as u32), l) {
                Plan::CutToInput
            } else {
                Plan::Keep
            }
        })
        .collect();
    apply_plans(src, plans, &[], |_| true)
}

/// Removes an entire module: all its latches are cut to inputs, then the
/// netlist is swept. This is Fig 3(b)'s *"fetch controller removed"* step.
pub fn remove_module(src: &Netlist, module: &str) -> Netlist {
    abstract_latches(src, |_, l| l.module == module)
}

/// Bypasses the latches selected by `pred`: every use of the latch output
/// is replaced by the latch's next-state function (a one-cycle retiming).
/// This is Fig 3(b)'s *"no synchronizing latches for outputs"* step —
/// synchronizing latches only delay already-computed control signals.
///
/// # Panics
///
/// Panics if a bypassed latch's next function depends (combinationally,
/// through other bypassed latches) on itself.
pub fn bypass_latches(
    src: &Netlist,
    pred: impl Fn(LatchId, &crate::circuit::Latch) -> bool,
) -> Netlist {
    let plans = src
        .latches()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if pred(LatchId(i as u32), l) {
                Plan::Bypass
            } else {
                Plan::Keep
            }
        })
        .collect();
    apply_plans(src, plans, &[], |_| true)
}

/// Replaces the latches selected by `pred` with constants (their init
/// values), then sweeps. Used when an abstraction step proves a flag
/// redundant (e.g. the r0/link special-case flags once the register file
/// shrinks to 4 registers).
pub fn constant_fold_latches(
    src: &Netlist,
    pred: impl Fn(LatchId, &crate::circuit::Latch) -> bool,
) -> Netlist {
    let plans = src
        .latches()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if pred(LatchId(i as u32), l) {
                Plan::Constant(l.init)
            } else {
                Plan::Keep
            }
        })
        .collect();
    apply_plans(src, plans, &[], |_| true)
}

/// Drops every primary output for which `keep` returns `false`, then
/// sweeps — Fig 3(b)'s *"remove outputs not affecting control logic"*:
/// observation-only state feeding those outputs disappears with them.
pub fn remove_outputs(src: &Netlist, keep: impl Fn(&str) -> bool) -> Netlist {
    let plans = vec![Plan::Keep; src.num_latches()];
    apply_plans(src, plans, &[], keep)
}

/// Ties the named primary inputs to constant `value`, then sweeps. This
/// models input-space abstractions such as *"4 registers instead of 32"*:
/// under the restricted input format the upper register-address bits are
/// identically zero, so tying them is exact on the restricted space, and
/// latches whose cones collapse to constants fall away (combine with
/// [`fold_constant_latches`]).
///
/// Unknown names are ignored (tying an already-removed input is a no-op).
pub fn tie_inputs(src: &Netlist, names: &[&str], value: bool) -> Netlist {
    let tied: HashSet<&str> = names.iter().copied().collect();
    let mut dst = Netlist::new();
    let mut input_map: HashMap<u32, SignalId> = HashMap::new();
    for (i, name) in src.input_names().enumerate() {
        if tied.contains(name) {
            input_map.insert(i as u32, dst.constant(value));
        } else {
            input_map.insert(i as u32, dst.add_input(name.to_string()));
        }
    }
    let mut latch_out_map: HashMap<u32, SignalId> = HashMap::new();
    for l in src.latches() {
        let nl = dst.add_latch_in(l.name.clone(), l.init, l.module.clone());
        latch_out_map.insert(nl.0, dst.latch_output(nl));
    }
    let mut memo: HashMap<u32, SignalId> = HashMap::new();
    // Reuse the sweep mapper shape via a local recursive copy.
    fn map_sig(
        src: &Netlist,
        dst: &mut Netlist,
        sig: SignalId,
        input_map: &HashMap<u32, SignalId>,
        latch_out_map: &HashMap<u32, SignalId>,
        memo: &mut HashMap<u32, SignalId>,
    ) -> SignalId {
        if let Some(&m) = memo.get(&sig.0) {
            return m;
        }
        let r = match src.node(sig) {
            NodeKind::Const(v) => dst.constant(v),
            NodeKind::Input(InputId(i)) => input_map[&i],
            NodeKind::LatchOut(LatchId(l)) => latch_out_map[&l],
            NodeKind::Not(a) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                dst.not(a)
            }
            NodeKind::And(a, b) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                let b = map_sig(src, dst, b, input_map, latch_out_map, memo);
                dst.and(a, b)
            }
            NodeKind::Or(a, b) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                let b = map_sig(src, dst, b, input_map, latch_out_map, memo);
                dst.or(a, b)
            }
            NodeKind::Xor(a, b) => {
                let a = map_sig(src, dst, a, input_map, latch_out_map, memo);
                let b = map_sig(src, dst, b, input_map, latch_out_map, memo);
                dst.xor(a, b)
            }
            NodeKind::Mux(s, t, e) => {
                let s = map_sig(src, dst, s, input_map, latch_out_map, memo);
                let t = map_sig(src, dst, t, input_map, latch_out_map, memo);
                let e = map_sig(src, dst, e, input_map, latch_out_map, memo);
                dst.mux(s, t, e)
            }
        };
        memo.insert(sig.0, r);
        r
    }
    for (i, l) in src.latches().iter().enumerate() {
        let next = l.next.expect("latch has a next function");
        let mapped = map_sig(src, &mut dst, next, &input_map, &latch_out_map, &mut memo);
        dst.set_latch_next(LatchId(i as u32), mapped);
    }
    for (name, sig) in src.outputs() {
        let mapped = map_sig(src, &mut dst, *sig, &input_map, &latch_out_map, &mut memo);
        dst.add_output(name.clone(), mapped);
    }
    sweep(&dst)
}

/// Sequential constant sweeping: finds the *greatest* set of latches
/// provably stuck at their initial values and replaces them with
/// constants.
///
/// The analysis is co-inductive: start by assuming every latch stuck at
/// its init value, then repeatedly discard latches whose next-state cone
/// does not constant-propagate to the init value under that assumption
/// (inputs are unknown). The surviving set is sound by induction on time:
/// all members hold their init value at reset, and if they all hold it at
/// cycle `t` they all hold it at `t + 1`. This catches self-holding
/// registers (`next = mux(c, self, 0)`) and mutually-holding groups, not
/// just syntactically-constant next functions.
pub fn fold_constant_latches(src: &Netlist) -> Netlist {
    // assumed[l] = Some(init) while latch l is still assumed stuck.
    let mut assumed: Vec<Option<bool>> = src.latches().iter().map(|l| Some(l.init)).collect();
    loop {
        let mut changed = false;
        for l in 0..src.num_latches() {
            let Some(init) = assumed[l] else { continue };
            let next = src.latches()[l].next.expect("latch has a next function");
            let mut memo: HashMap<u32, Option<bool>> = HashMap::new();
            if const_eval(src, next, &assumed, &mut memo) != Some(init) {
                assumed[l] = None;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if assumed.iter().all(Option::is_none) {
        return src.clone();
    }
    constant_fold_latches(src, |id, _| assumed[id.index()].is_some())
}

/// Constant propagation over a cone with some latches assumed stuck at
/// known values; `None` = value depends on inputs or non-stuck latches.
fn const_eval(
    src: &Netlist,
    sig: SignalId,
    assumed: &[Option<bool>],
    memo: &mut HashMap<u32, Option<bool>>,
) -> Option<bool> {
    if let Some(&v) = memo.get(&sig.0) {
        return v;
    }
    let r = match src.node(sig) {
        NodeKind::Const(v) => Some(v),
        NodeKind::Input(_) => None,
        NodeKind::LatchOut(LatchId(l)) => assumed[l as usize],
        NodeKind::Not(a) => const_eval(src, a, assumed, memo).map(|v| !v),
        NodeKind::And(a, b) => {
            let va = const_eval(src, a, assumed, memo);
            let vb = const_eval(src, b, assumed, memo);
            match (va, vb) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        NodeKind::Or(a, b) => {
            let va = const_eval(src, a, assumed, memo);
            let vb = const_eval(src, b, assumed, memo);
            match (va, vb) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        }
        NodeKind::Xor(a, b) => {
            let va = const_eval(src, a, assumed, memo)?;
            let vb = const_eval(src, b, assumed, memo)?;
            Some(va ^ vb)
        }
        NodeKind::Mux(s, t, e) => {
            let vs = const_eval(src, s, assumed, memo);
            match vs {
                Some(true) => const_eval(src, t, assumed, memo),
                Some(false) => const_eval(src, e, assumed, memo),
                None => {
                    let vt = const_eval(src, t, assumed, memo)?;
                    let ve = const_eval(src, e, assumed, memo)?;
                    if vt == ve {
                        Some(vt)
                    } else {
                        None
                    }
                }
            }
        }
    };
    memo.insert(sig.0, r);
    r
}

/// Re-encodes a one-hot latch group as a binary register — Fig 3(b)'s
/// *"1-hot to binary encoding"* step.
///
/// `group` lists the one-hot latches in code order (member `i` is encoded
/// as binary value `i`). The caller asserts the one-hot invariant holds in
/// all reachable states; the transform preserves behaviour exactly under
/// that invariant.
///
/// # Errors
///
/// Returns [`ReencodeError`] if the group has fewer than two members,
/// contains duplicates, or does not initialise with exactly one hot bit.
pub fn reencode_onehot(
    src: &Netlist,
    group: &[LatchId],
    new_name: &str,
) -> Result<Netlist, ReencodeError> {
    if group.len() < 2 {
        return Err(ReencodeError::GroupTooSmall);
    }
    let mut seen = HashSet::new();
    for &m in group {
        if !seen.insert(m.0) {
            return Err(ReencodeError::DuplicateMember(m));
        }
    }
    let hot: Vec<usize> = group
        .iter()
        .enumerate()
        .filter(|&(_, &m)| src.latches()[m.index()].init)
        .map(|(i, _)| i)
        .collect();
    if hot.len() != 1 {
        return Err(ReencodeError::BadInit {
            hot_count: hot.len(),
        });
    }
    let module = src.latches()[group[0].index()].module.clone();
    let groups = vec![OneHotGroup {
        members: group.to_vec(),
        new_name: new_name.to_string(),
        module,
        init_index: hot[0] as u64,
    }];
    let member_set: HashSet<u32> = group.iter().map(|m| m.0).collect();
    let plans = src
        .latches()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            if member_set.contains(&(i as u32)) {
                Plan::OneHotMember
            } else {
                Plan::Keep
            }
        })
        .collect();
    Ok(apply_plans(src, plans, &groups, |_| true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SimState;
    use crate::Word;

    /// A small 2-module design: a "ctl" one-hot ring counter and an "obs"
    /// observation register fed from it.
    fn ring_design() -> Netlist {
        let mut n = Netlist::new();
        let en = n.add_input("en");
        let s0 = n.add_latch_in("s0", true, "ctl");
        let s1 = n.add_latch_in("s1", false, "ctl");
        let s2 = n.add_latch_in("s2", false, "ctl");
        let o0 = n.latch_output(s0);
        let o1 = n.latch_output(s1);
        let o2 = n.latch_output(s2);
        // Rotate when enabled, hold otherwise.
        let n0 = n.mux(en, o2, o0);
        let n1 = n.mux(en, o0, o1);
        let n2 = n.mux(en, o1, o2);
        n.set_latch_next(s0, n0);
        n.set_latch_next(s1, n1);
        n.set_latch_next(s2, n2);
        // Observation register (not feeding control).
        let obs = n.add_latch_in("obs", false, "obs");
        n.set_latch_next(obs, o2);
        let obso = n.latch_output(obs);
        n.add_output("state1", o1);
        n.add_output("watch", obso);
        n
    }

    #[test]
    fn sweep_is_identity_on_live_design() {
        let n = ring_design();
        let s = sweep(&n);
        assert_eq!(s.stats().latches, n.stats().latches);
        assert_eq!(s.stats().inputs, n.stats().inputs);
        assert_eq!(s.stats().outputs, n.stats().outputs);
    }

    #[test]
    fn remove_outputs_sweeps_observation_state() {
        let n = ring_design();
        let s = remove_outputs(&n, |name| name != "watch");
        assert_eq!(s.stats().latches, 3); // obs latch gone
        assert_eq!(s.stats().outputs, 1);
        assert!(s.latch_by_name("obs").is_none());
    }

    #[test]
    fn sweep_drops_unused_inputs() {
        let mut n = ring_design();
        let _dead = n.add_input("unused");
        let s = sweep(&n);
        assert_eq!(s.stats().inputs, 1);
        assert!(s.input_by_name("unused").is_none());
        assert!(s.input_by_name("en").is_some());
    }

    #[test]
    fn abstract_latches_cuts_to_inputs() {
        let n = ring_design();
        // Abstract the obs module away: its latch output becomes an input.
        // (The output `watch` still reads it, so the cut input survives.)
        let s = abstract_latches(&n, |_, l| l.module == "obs");
        assert_eq!(s.stats().latches, 3);
        assert!(s.input_by_name("cut:obs").is_some());
    }

    #[test]
    fn remove_module_equivalent_behaviour_on_kept_outputs() {
        let n = ring_design();
        let s = remove_module(&n, "obs");
        // Simulate both and compare the `state1` output (control behaviour
        // must be untouched). The cut input of `s` is driven arbitrarily.
        let mut sim_n = SimState::new(&n);
        let mut sim_s = SimState::new(&s);
        for cyc in 0..12 {
            let en = cyc % 2 == 0;
            let on = sim_n.step(&n, &[en]);
            let os = sim_s.step(&s, &[en, false]);
            assert_eq!(on[0], os[0], "cycle {cyc}");
        }
    }

    #[test]
    fn bypass_latches_retimes() {
        // out = latch(sig): after bypass, out == sig combinationally.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let sig = n.and(a, b);
        let sy = n.add_latch_in("sync", false, "sync_out");
        n.set_latch_next(sy, sig);
        let syo = n.latch_output(sy);
        n.add_output("o", syo);
        let s = bypass_latches(&n, |_, l| l.module == "sync_out");
        assert_eq!(s.stats().latches, 0);
        let vals = s.eval_all(&[], &[true, true]);
        let (_, osig) = s.outputs()[0].clone();
        assert!(vals[osig.index()]);
        let vals = s.eval_all(&[], &[true, false]);
        assert!(!vals[osig.index()]);
    }

    #[test]
    #[should_panic(expected = "bypass cycle")]
    fn bypass_self_loop_panics() {
        let mut n = Netlist::new();
        let q = n.add_latch("q", false);
        let qo = n.latch_output(q);
        let nq = n.not(qo);
        n.set_latch_next(q, nq);
        n.add_output("o", qo);
        let _ = bypass_latches(&n, |_, _| true);
    }

    #[test]
    fn constant_fold_removes_flag() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let flag = n.add_latch("flag", false);
        let f = n.constant(false);
        n.set_latch_next(flag, f);
        let fo = n.latch_output(flag);
        let gated = n.and(a, fo);
        n.add_output("o", gated);
        let s = constant_fold_latches(&n, |_, l| l.name == "flag");
        assert_eq!(s.stats().latches, 0);
        // Output folded to constant false — input `a` becomes unused too.
        assert_eq!(s.stats().inputs, 0);
    }

    #[test]
    fn reencode_onehot_preserves_behaviour() {
        let n = ring_design();
        let group: Vec<LatchId> = ["s0", "s1", "s2"]
            .iter()
            .map(|name| n.latch_by_name(name).unwrap())
            .collect();
        let s = reencode_onehot(&n, &group, "ring_bin").unwrap();
        // 3 one-hot latches -> 2 binary bits, obs kept: 3 latches total.
        assert_eq!(s.stats().latches, 3);
        let mut sim_n = SimState::new(&n);
        let mut sim_s = SimState::new(&s);
        for cyc in 0..16 {
            let en = cyc % 3 != 0;
            let on = sim_n.step(&n, &[en]);
            let os = sim_s.step(&s, &[en]);
            assert_eq!(on, os, "cycle {cyc}");
        }
    }

    #[test]
    fn tie_inputs_removes_dependent_logic() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let hi = n.add_input("addr_hi");
        let q = n.add_latch("q", false);
        let dep = n.and(a, hi);
        n.set_latch_next(q, dep);
        let qo = n.latch_output(q);
        n.add_output("o", qo);
        let t = tie_inputs(&n, &["addr_hi"], false);
        // q's next folded to const 0 == init, but tie_inputs alone keeps
        // the latch; the input is gone.
        assert_eq!(t.stats().inputs, 0); // `a` swept too (and(a,0)=0)
        let folded = fold_constant_latches(&t);
        assert_eq!(folded.stats().latches, 0);
    }

    #[test]
    fn tie_inputs_unknown_name_ignored() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.add_output("o", a);
        let t = tie_inputs(&n, &["missing"], true);
        assert_eq!(t.stats().inputs, 1);
    }

    #[test]
    fn fold_constant_latches_cascades() {
        // q1.next = const(init); q2.next = q1 (same init) -> both fold.
        let mut n = Netlist::new();
        let q1 = n.add_latch("q1", true);
        let q2 = n.add_latch("q2", true);
        let t = n.constant(true);
        n.set_latch_next(q1, t);
        let q1o = n.latch_output(q1);
        n.set_latch_next(q2, q1o);
        let q2o = n.latch_output(q2);
        n.add_output("o", q2o);
        let folded = fold_constant_latches(&n);
        assert_eq!(folded.stats().latches, 0);
        // Output is constant true.
        let vals = folded.eval_all(&[], &[]);
        let (_, sig) = folded.outputs()[0];
        assert!(vals[sig.index()]);
    }

    #[test]
    fn fold_constant_latches_catches_self_holding() {
        // next = mux(c, self, 0), init 0: stuck at 0 (co-inductive case).
        let mut n = Netlist::new();
        let c = n.add_input("c");
        let q = n.add_latch("q", false);
        let qo = n.latch_output(q);
        let zero = n.constant(false);
        let nx = n.mux(c, qo, zero);
        n.set_latch_next(q, nx);
        n.add_output("o", qo);
        let folded = fold_constant_latches(&n);
        assert_eq!(folded.stats().latches, 0);
    }

    #[test]
    fn fold_constant_latches_catches_mutual_holding() {
        // p.next = q, q.next = mux(c, p, q), both init 1: stuck together.
        let mut n = Netlist::new();
        let c = n.add_input("c");
        let p = n.add_latch("p", true);
        let q = n.add_latch("q", true);
        let po = n.latch_output(p);
        let qo = n.latch_output(q);
        n.set_latch_next(p, qo);
        let nx = n.mux(c, po, qo);
        n.set_latch_next(q, nx);
        n.add_output("o", po);
        let folded = fold_constant_latches(&n);
        assert_eq!(folded.stats().latches, 0);
        // Mixed inits break the group: p init 0, q init 1 -> p.next = q
        // does not hold 0.
        let mut n = Netlist::new();
        let c = n.add_input("c");
        let p = n.add_latch("p", false);
        let q = n.add_latch("q", true);
        let po = n.latch_output(p);
        let qo = n.latch_output(q);
        n.set_latch_next(p, qo);
        let nx = n.mux(c, po, qo);
        n.set_latch_next(q, nx);
        n.add_output("o", po);
        let folded = fold_constant_latches(&n);
        assert_eq!(folded.stats().latches, 2);
    }

    #[test]
    fn fold_constant_latches_keeps_toggling_latch() {
        let mut n = Netlist::new();
        let q = n.add_latch("q", false);
        let qo = n.latch_output(q);
        let nq = n.not(qo);
        n.set_latch_next(q, nq);
        n.add_output("o", qo);
        let folded = fold_constant_latches(&n);
        assert_eq!(folded.stats().latches, 1);
        // A latch whose next is constant but != init is NOT foldable
        // (it changes value after one cycle).
        let mut n = Netlist::new();
        let q = n.add_latch("q", false);
        let t = n.constant(true);
        n.set_latch_next(q, t);
        let qo = n.latch_output(q);
        n.add_output("o", qo);
        let folded = fold_constant_latches(&n);
        assert_eq!(folded.stats().latches, 1);
    }

    #[test]
    fn reencode_onehot_rejects_bad_groups() {
        let n = ring_design();
        let s0 = n.latch_by_name("s0").unwrap();
        let s1 = n.latch_by_name("s1").unwrap();
        assert_eq!(
            reencode_onehot(&n, &[s0], "x").unwrap_err(),
            ReencodeError::GroupTooSmall
        );
        assert_eq!(
            reencode_onehot(&n, &[s0, s0], "x").unwrap_err(),
            ReencodeError::DuplicateMember(s0)
        );
        // s1, s2 both init 0: no hot bit.
        let s2 = n.latch_by_name("s2").unwrap();
        assert_eq!(
            reencode_onehot(&n, &[s1, s2], "x").unwrap_err(),
            ReencodeError::BadInit { hot_count: 0 }
        );
    }

    #[test]
    fn reencode_larger_counter_matches() {
        // 5-state one-hot sequencer driven by a word comparator.
        let mut n = Netlist::new();
        let go = n.add_input("go");
        let mut latches = Vec::new();
        let mut outs = Vec::new();
        for i in 0..5 {
            let l = n.add_latch_in(format!("t{i}"), i == 0, "seq");
            latches.push(l);
        }
        for &l in &latches {
            outs.push(n.latch_output(l));
        }
        for i in 0..5 {
            let prev = outs[(i + 4) % 5];
            let stay = outs[i];
            let nx = n.mux(go, prev, stay);
            n.set_latch_next(latches[i], nx);
        }
        let w = Word::from_bits(vec![outs[2], outs[4]]);
        let flag = w.any(&mut n);
        n.add_output("in_2_or_4", flag);
        let s = reencode_onehot(&n, &latches, "seq_bin").unwrap();
        assert_eq!(s.stats().latches, 3); // ceil(log2 5)
        let mut a = SimState::new(&n);
        let mut b = SimState::new(&s);
        for cyc in 0..20 {
            let go_v = cyc % 4 != 1;
            assert_eq!(a.step(&n, &[go_v]), b.step(&s, &[go_v]), "cycle {cyc}");
        }
    }
}

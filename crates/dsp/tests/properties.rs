//! Property-based tests: the serial MAC against the convolution oracle.

use proptest::prelude::*;
use simcov_dsp::{DspFault, FirMac, FirSpec};

proptest! {
    /// The golden MAC equals direct convolution on arbitrary streams and
    /// coefficient sets.
    #[test]
    fn mac_equals_convolution(
        coeffs in proptest::array::uniform4(-1000..1000i32),
        xs in proptest::collection::vec(-10_000..10_000i32, 0..40),
    ) {
        let mut spec = FirSpec::new(coeffs);
        let mut mac = FirMac::new(coeffs);
        for &x in &xs {
            prop_assert_eq!(mac.run_sample(x), spec.process(x));
        }
    }

    /// Oracle cross-check: the MAC output equals a directly computed dot
    /// product over the last four samples.
    #[test]
    fn mac_equals_dot_product(
        coeffs in proptest::array::uniform4(-100..100i32),
        xs in proptest::collection::vec(-1000..1000i32, 4..24),
    ) {
        let mut mac = FirMac::new(coeffs);
        let mut ys = Vec::new();
        for &x in &xs {
            ys.push(mac.run_sample(x));
        }
        for n in 3..xs.len() {
            let expect: i32 = (0..4)
                .map(|k| coeffs[k].wrapping_mul(xs[n - k]))
                .fold(0i32, |a, b| a.wrapping_add(b));
            prop_assert_eq!(ys[n], expect, "n={}", n);
        }
    }

    /// Every injected fault either leaves a given stream's results intact
    /// (unexcited) or produces a divergence — and for streams with at
    /// least four nonzero samples, SkipTap2 always diverges.
    #[test]
    fn faults_diverge_when_excited(
        xs in proptest::collection::vec(1..100i32, 4..16),
    ) {
        let coeffs = [1, 3, 3, 1];
        let golden: Vec<i32> = {
            let mut m = FirMac::new(coeffs);
            xs.iter().map(|&x| m.run_sample(x)).collect()
        };
        for fault in [DspFault::SkipTap2, DspFault::OutValidEarly, DspFault::NoAccClear] {
            let bad: Vec<i32> = {
                let mut m = FirMac::new(coeffs).with_fault(fault);
                xs.iter().map(|&x| m.run_sample(x)).collect()
            };
            prop_assert_ne!(&bad, &golden, "{:?} must corrupt positive streams", fault);
        }
    }

    /// Time-invariance: prepending zeros only delays the response.
    #[test]
    fn time_invariance(xs in proptest::collection::vec(-500..500i32, 1..12),
                       delay in 1..4usize) {
        let coeffs = [1, 3, 3, 1];
        let mut direct = FirMac::new(coeffs);
        let ys_direct: Vec<i32> = xs.iter().map(|&x| direct.run_sample(x)).collect();
        let mut delayed = FirMac::new(coeffs);
        for _ in 0..delay {
            prop_assert_eq!(delayed.run_sample(0), 0);
        }
        let ys_delayed: Vec<i32> = xs.iter().map(|&x| delayed.run_sample(x)).collect();
        prop_assert_eq!(ys_direct, ys_delayed);
    }
}

//! Engine-equivalence on the flagship fixture: the differential
//! fault-simulation engine must produce bit-identical `FaultOutcome`
//! vectors and merged `CampaignStats` to the naive clone-and-replay
//! engine on the reduced DLX control model, at every job count — the
//! integration-level counterpart of the random-machine property test in
//! `crates/core/tests/properties.rs` and of the CI equivalence gate.

use simcov::core::{
    enumerate_single_faults, extend_cyclically, DiffStats, Engine, FaultCampaign, FaultSpace,
    ResilientCampaign,
};
use simcov::dlx::testmodel::{reduced_control_netlist_observable, reduced_valid_inputs};
use simcov::fsm::{enumerate_netlist, ExplicitMealy};
use simcov::tour::{transition_tour, TestSet};

fn dlx_fixture() -> (ExplicitMealy, Vec<simcov::core::Fault>, TestSet) {
    let n = reduced_control_netlist_observable();
    let opts = reduced_valid_inputs(&n);
    let m = enumerate_netlist(&n, &opts).expect("reduced model enumerates");
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: 1_500,
            seed: 7,
            ..FaultSpace::default()
        },
    );
    let tour = transition_tour(&m).expect("DLX model is strongly connected");
    let tests = TestSet::single(extend_cyclically(&tour.inputs, 2));
    (m, faults, tests)
}

#[test]
fn dlx_campaign_is_engine_independent_at_any_job_count() {
    let (m, faults, tests) = dlx_fixture();
    let naive = FaultCampaign::new(&m, &faults, &tests)
        .engine(Engine::Naive)
        .jobs(2)
        .run();
    assert_eq!(naive.diff, DiffStats::default());
    for jobs in [1, 2, 8] {
        let differential = FaultCampaign::new(&m, &faults, &tests)
            .engine(Engine::Differential)
            .jobs(jobs)
            .run();
        assert_eq!(
            differential.report.outcomes, naive.report.outcomes,
            "per-fault outcomes must be engine-independent at jobs={jobs}"
        );
        assert_eq!(
            differential.stats, naive.stats,
            "merged stats must be engine-independent at jobs={jobs}"
        );
        // The tour traverses every transition, so every fault is excited:
        // the savings come from prefix sharing and index-only output
        // classification, not from skipping.
        assert!(differential.diff.prefix_steps_saved > 0);
    }
}

#[test]
fn dlx_supervised_campaign_is_engine_independent() {
    let (m, faults, tests) = dlx_fixture();
    let naive = ResilientCampaign::new(&m, &faults, &tests)
        .engine(Engine::Naive)
        .jobs(2)
        .run()
        .expect("no checkpoint: supervision cannot fail");
    let differential = ResilientCampaign::new(&m, &faults, &tests)
        .engine(Engine::Differential)
        .jobs(2)
        .run()
        .expect("no checkpoint: supervision cannot fail");
    assert!(naive.is_complete && differential.is_complete);
    assert_eq!(differential.report, naive.report);
    assert_eq!(differential.stats, naive.stats);
}

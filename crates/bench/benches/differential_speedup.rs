//! Differential vs naive fault-simulation engines on the reduced DLX
//! control model and a 10 000-state synthetic machine. Outcome
//! equivalence is asserted unconditionally (the differential engine is a
//! pure optimization); the >=5x median-speedup bar applies to the DLX
//! campaign, where golden-trace memoization, excitation indexing and
//! suffix-only replay avoid almost all of the naive clone-and-replay
//! work. Both engines run at jobs=1 so the ratio measures the algorithm,
//! not the thread pool.

use simcov_bench::timing::BenchReport;
use simcov_bench::{reduced_dlx_machine, ring_with_chords};
use simcov_core::{
    enumerate_single_faults, extend_cyclically, Engine, Fault, FaultCampaign, FaultSpace,
};
use simcov_fsm::{ExplicitMealy, InputSym};
use simcov_prng::Xoshiro256pp;
use simcov_tour::{transition_tour, TestSet};

fn sample_faults(m: &ExplicitMealy, max_faults: usize) -> Vec<Fault> {
    enumerate_single_faults(
        m,
        &FaultSpace {
            max_faults,
            ..FaultSpace::default()
        },
    )
}

/// Tour-driven test set (the methodology's own workload shape).
fn tour_tests(m: &ExplicitMealy, laps: usize) -> TestSet {
    let tour = transition_tour(m).expect("fixture is strongly connected");
    TestSet::single(extend_cyclically(&tour.inputs, tour.inputs.len() * laps))
}

/// Seeded random-walk test set for machines too large for the postman
/// tour (min-cost Eulerian augmentation is super-linear in imbalance).
/// Walks follow *defined* golden transitions so partial machines do not
/// truncate the sequences after a handful of vectors.
fn random_tests(m: &ExplicitMealy, sequences: usize, len: usize, seed: u64) -> TestSet {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let ni = m.num_inputs() as u32;
    let sequences = (0..sequences)
        .map(|_| {
            let mut cur = m.reset();
            let mut seq = Vec::with_capacity(len);
            while seq.len() < len {
                let i = InputSym(rng.bounded_u64(ni as u64) as u32);
                if let Some((next, _)) = m.step(cur, i) {
                    seq.push(i);
                    cur = next;
                }
            }
            seq
        })
        .collect();
    TestSet { sequences }
}

/// Times one campaign per engine at jobs=1, asserts bit-identical
/// results, records both entries plus a `speedup_x100` counter, and
/// returns the naive/differential median ratio.
fn compare(
    rep: &mut BenchReport,
    case: &str,
    m: &ExplicitMealy,
    faults: &[Fault],
    tests: &TestSet,
) -> f64 {
    eprintln!(
        "  case {case}: {} states, {} faults, {} test vectors",
        m.num_states(),
        faults.len(),
        tests.total_vectors()
    );
    let run_with = |engine: Engine| {
        FaultCampaign::new(m, faults, tests)
            .engine(engine)
            .jobs(1)
            .run()
    };
    let naive = run_with(Engine::Naive);
    let differential = run_with(Engine::Differential);
    assert_eq!(
        differential.report.outcomes, naive.report.outcomes,
        "{case}: per-fault outcomes must be engine-independent"
    );
    assert_eq!(
        differential.stats, naive.stats,
        "{case}: merged stats must be engine-independent"
    );

    let tn = rep.bench(&format!("differential_speedup/{case}_naive"), || {
        run_with(Engine::Naive)
    });
    let td = rep.bench(&format!("differential_speedup/{case}_differential"), || {
        run_with(Engine::Differential)
    });
    let speedup = tn.as_secs_f64() / td.as_secs_f64().max(f64::EPSILON);
    eprintln!("  {case}: {speedup:.2}x median speedup ({tn:.2?} naive vs {td:.2?} differential)");

    rep.counter(
        &format!("differential_speedup/{case}_faults"),
        faults.len() as u64,
    );
    rep.counter(
        &format!("differential_speedup/{case}_skipped_by_index"),
        differential.diff.faults_skipped_by_index as u64,
    );
    rep.counter(
        &format!("differential_speedup/{case}_prefix_steps_saved"),
        differential.diff.prefix_steps_saved as u64,
    );
    rep.counter(
        &format!("differential_speedup/{case}_divergence_replays"),
        differential.diff.divergence_replays as u64,
    );
    rep.counter(
        &format!("differential_speedup/{case}_speedup_x100"),
        (speedup * 100.0) as u64,
    );
    speedup
}

fn main() {
    eprintln!("== Differential fault-simulation speedup ==");
    let mut rep = BenchReport::new("differential_speedup");

    // Flagship case: the reduced DLX control model with a two-lap
    // extended transition tour — the paper's own validation workload.
    let dlx = reduced_dlx_machine();
    let dlx_speedup = compare(
        &mut rep,
        "dlx",
        &dlx,
        &sample_faults(&dlx, 4_000),
        &tour_tests(&dlx, 2),
    );

    // Scale case: 10 000 states under seeded random walks (the postman
    // tour is intractable at this imbalance). The sampled fault list
    // keeps the naive engine honest but tractable; most faults are
    // never excited, so the excitation index dominates.
    let ring = ring_with_chords(10_000);
    compare(
        &mut rep,
        "ring10k",
        &ring,
        &sample_faults(&ring, 400),
        &random_tests(&ring, 16, 2_500, 42),
    );

    rep.write().expect("write bench report");

    assert!(
        dlx_speedup >= 5.0,
        "expected >=5x median speedup over the naive engine on the DLX \
         campaign, measured {dlx_speedup:.2}x"
    );
}

//! Extraction of an [`ExplicitMealy`] machine from a netlist by forward
//! enumeration of the reachable state graph.
//!
//! This is the bridge from the structural/symbolic world to the explicit
//! algorithms (tour generation, ∀k-distinguishability, fault injection):
//! small test models — the reduced DLX control models, the Figure 2
//! example — are enumerated exactly.

use crate::explicit::{ExplicitMealy, MealyBuilder, StateId};
use simcov_netlist::Netlist;
use std::collections::HashMap;

/// Options for [`enumerate_netlist`].
#[derive(Debug, Clone)]
pub struct EnumerateOptions {
    /// The valid input vectors (the paper's input don't-cares): each entry
    /// is one input symbol of the resulting machine.
    pub inputs: Vec<Vec<bool>>,
    /// Optional labels for the input symbols (defaults to bit strings).
    pub input_labels: Option<Vec<String>>,
    /// Abort if the reachable state count exceeds this bound.
    pub max_states: usize,
}

impl EnumerateOptions {
    /// Options enumerating *all* `2^n` input vectors of an `n`-input
    /// netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 20 inputs (2^20 symbols is the
    /// sanity bound for exhaustive alphabets).
    pub fn exhaustive(n: &Netlist) -> Self {
        Self::filtered(n, |_| true)
    }

    /// Options enumerating the input vectors satisfying `pred`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 20 inputs.
    pub fn filtered(n: &Netlist, pred: impl Fn(&[bool]) -> bool) -> Self {
        let k = n.num_inputs();
        assert!(k <= 20, "exhaustive input enumeration limited to 20 inputs");
        let mut inputs = Vec::new();
        for v in 0..(1u64 << k) {
            let vec: Vec<bool> = (0..k).map(|b| (v >> b) & 1 == 1).collect();
            if pred(&vec) {
                inputs.push(vec);
            }
        }
        EnumerateOptions {
            inputs,
            input_labels: None,
            max_states: 1 << 20,
        }
    }
}

/// Errors from [`enumerate_netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumerateError {
    /// The reachable state count exceeded `max_states`.
    TooManyStates {
        /// The configured bound that was exceeded.
        bound: usize,
    },
    /// An input vector has the wrong width.
    BadInputWidth {
        /// Index of the offending vector in `options.inputs`.
        index: usize,
        /// Its length.
        got: usize,
        /// The netlist's input count.
        want: usize,
    },
    /// No input vectors were supplied.
    EmptyAlphabet,
}

impl std::fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumerateError::TooManyStates { bound } => {
                write!(f, "reachable state count exceeds bound {bound}")
            }
            EnumerateError::BadInputWidth { index, got, want } => write!(
                f,
                "input vector #{index} has width {got}, netlist expects {want}"
            ),
            EnumerateError::EmptyAlphabet => write!(f, "no valid input vectors supplied"),
        }
    }
}

impl std::error::Error for EnumerateError {}

fn bits_label(bits: &[bool]) -> String {
    bits.iter()
        .rev()
        .map(|&b| if b { '1' } else { '0' })
        .collect()
}

/// Enumerates the reachable state graph of `n` under the given valid input
/// vectors into an explicit Mealy machine.
///
/// States are labelled with their latch-value bit strings (latch 0 is the
/// rightmost character); outputs are interned per distinct output vector.
///
/// # Errors
///
/// See [`EnumerateError`].
///
/// # Example
///
/// ```
/// use simcov_netlist::Netlist;
/// use simcov_fsm::{enumerate_netlist, EnumerateOptions};
///
/// let mut n = Netlist::new();
/// let q = n.add_latch("q", false);
/// let qo = n.latch_output(q);
/// let nq = n.not(qo);
/// n.set_latch_next(q, nq);
/// n.add_output("q", qo);
/// let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).unwrap();
/// assert_eq!(m.num_states(), 2);
/// ```
pub fn enumerate_netlist(
    n: &Netlist,
    options: &EnumerateOptions,
) -> Result<ExplicitMealy, EnumerateError> {
    if options.inputs.is_empty() {
        return Err(EnumerateError::EmptyAlphabet);
    }
    for (index, v) in options.inputs.iter().enumerate() {
        if v.len() != n.num_inputs() {
            return Err(EnumerateError::BadInputWidth {
                index,
                got: v.len(),
                want: n.num_inputs(),
            });
        }
    }
    let mut b = MealyBuilder::new();
    for (k, v) in options.inputs.iter().enumerate() {
        let label = options
            .input_labels
            .as_ref()
            .map(|ls| ls[k].clone())
            .unwrap_or_else(|| bits_label(v));
        b.add_input(label);
    }
    let mut out_syms: HashMap<Vec<bool>, crate::explicit::OutputSym> = HashMap::new();
    let mut state_ids: HashMap<Vec<bool>, StateId> = HashMap::new();
    let init = n.initial_state();
    let s0 = b.add_state(bits_label(&init));
    state_ids.insert(init.clone(), s0);
    let mut worklist = vec![init];
    while let Some(state) = worklist.pop() {
        let sid = state_ids[&state];
        for (k, inp) in options.inputs.iter().enumerate() {
            let (next, outs) = n.step(&state, inp);
            let osym = *out_syms
                .entry(outs.clone())
                .or_insert_with(|| b.add_output(bits_label(&outs)));
            let nid = match state_ids.get(&next) {
                Some(&id) => id,
                None => {
                    if state_ids.len() >= options.max_states {
                        return Err(EnumerateError::TooManyStates {
                            bound: options.max_states,
                        });
                    }
                    let id = b.add_state(bits_label(&next));
                    state_ids.insert(next.clone(), id);
                    worklist.push(next.clone());
                    id
                }
            };
            b.add_transition(sid, crate::explicit::InputSym(k as u32), nid, osym);
        }
    }
    Ok(b.build(s0)
        .expect("enumeration is deterministic by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_netlist::Netlist;

    fn counter2() -> Netlist {
        let mut n = Netlist::new();
        let en = n.add_input("en");
        let b0 = n.add_latch("b0", false);
        let b1 = n.add_latch("b1", false);
        let o0 = n.latch_output(b0);
        let o1 = n.latch_output(b1);
        let n0 = n.xor(o0, en);
        let c = n.and(o0, en);
        let n1 = n.xor(o1, c);
        n.set_latch_next(b0, n0);
        n.set_latch_next(b1, n1);
        n.add_output("o0", o0);
        n.add_output("o1", o1);
        n
    }

    #[test]
    fn enumerates_counter() {
        let n = counter2();
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).unwrap();
        assert_eq!(m.num_states(), 4);
        assert_eq!(m.num_inputs(), 2);
        assert_eq!(m.num_transitions(), 8);
        assert!(m.is_complete());
        assert!(m.is_strongly_connected());
    }

    #[test]
    fn filtered_alphabet_restricts_reachability() {
        let n = counter2();
        // Only en=0 is valid: the counter never moves.
        let opts = EnumerateOptions::filtered(&n, |v| !v[0]);
        let m = enumerate_netlist(&n, &opts).unwrap();
        assert_eq!(m.num_states(), 1);
        assert_eq!(m.num_inputs(), 1);
    }

    #[test]
    fn state_labels_are_bitstrings() {
        let n = counter2();
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).unwrap();
        assert_eq!(m.state_label(m.reset()), "00");
        assert!(m.state_by_label("10").is_some());
    }

    #[test]
    fn output_symbols_interned() {
        let n = counter2();
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).unwrap();
        // Outputs mirror the 4 state values (outputs sampled pre-clock).
        assert_eq!(m.num_outputs(), 4);
    }

    #[test]
    fn error_on_empty_alphabet() {
        let n = counter2();
        let opts = EnumerateOptions {
            inputs: vec![],
            input_labels: None,
            max_states: 10,
        };
        assert_eq!(
            enumerate_netlist(&n, &opts).unwrap_err(),
            EnumerateError::EmptyAlphabet
        );
    }

    #[test]
    fn error_on_bad_width() {
        let n = counter2();
        let opts = EnumerateOptions {
            inputs: vec![vec![true, false]],
            input_labels: None,
            max_states: 10,
        };
        assert!(matches!(
            enumerate_netlist(&n, &opts).unwrap_err(),
            EnumerateError::BadInputWidth {
                want: 1,
                got: 2,
                ..
            }
        ));
    }

    #[test]
    fn error_on_state_blowup() {
        let n = counter2();
        let mut opts = EnumerateOptions::exhaustive(&n);
        opts.max_states = 2;
        assert_eq!(
            enumerate_netlist(&n, &opts).unwrap_err(),
            EnumerateError::TooManyStates { bound: 2 }
        );
    }

    #[test]
    fn agrees_with_symbolic_reachability() {
        let n = counter2();
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).unwrap();
        let mut fsm = crate::SymbolicFsm::from_netlist(&n);
        let r = fsm.reachable();
        assert_eq!(m.num_states() as u128, fsm.count_states(r.reached));
        assert_eq!(
            m.num_transitions() as u128,
            fsm.count_transitions(r.reached)
        );
    }
}

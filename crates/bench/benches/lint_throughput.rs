//! Wall-clock throughput of the static-diagnostics pass: the flagship
//! DLX model (netlist + enumerated machine) and a 10k-state random
//! machine, timing the structural passes and the ∀1-distinguishability
//! sweep separately (the latter dominates on large state spaces).

use simcov_bench::reduced_dlx_machine;
use simcov_bench::timing::BenchReport;
use simcov_fsm::{ExplicitMealy, MealyBuilder};
use simcov_lint::{lint_model, lint_netlist, LintConfig, ModelTarget};

/// A complete, strongly connected 2-input machine: a ring plus a chord
/// input, outputs cycling through a 256-symbol alphabet. Distinct
/// outputs per state keep Requirement 3 clean; the small alphabet still
/// leaves ∀1-indistinguishable pairs for SC008 to find, so the bench
/// exercises the witness path too.
fn random_machine(n: usize) -> ExplicitMealy {
    let mut b = MealyBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    let step = b.add_input("step");
    let jump = b.add_input("jump");
    let outs: Vec<_> = (0..256.min(n))
        .map(|i| b.add_output(format!("o{i}")))
        .collect();
    for i in 0..n {
        b.add_transition(states[i], step, states[(i + 1) % n], outs[i % outs.len()]);
        b.add_transition(
            states[i],
            jump,
            states[(i * 7 + 3) % n],
            outs[(i + 1) % outs.len()],
        );
    }
    b.build(states[0]).expect("complete machine")
}

fn main() {
    eprintln!("== Lint throughput ==");
    let mut rep = BenchReport::new("lint_throughput");
    let cfg = LintConfig::new();

    let netlist = simcov_dlx::testmodel::reduced_control_netlist_observable();
    rep.bench("lint/dlx_netlist", || lint_netlist(&netlist, &cfg));

    let dlx = reduced_dlx_machine();
    let dlx_target = ModelTarget::new(&dlx);
    let d = lint_model(&dlx_target, &cfg);
    eprintln!(
        "  (dlx model: {} states, {} findings, {} deny)",
        dlx.num_states(),
        d.items().len(),
        d.deny_count()
    );
    rep.counter("lint/dlx_findings", d.items().len() as u64);
    rep.bench("lint/dlx_model_forall1", || lint_model(&dlx_target, &cfg));

    let big = random_machine(10_000);
    let mut structural = ModelTarget::new(&big).with_stall_output_labels(&["o0"]);
    structural.k = 0; // SC001..SC006 only
    rep.bench("lint/random_10k_structural", || {
        lint_model(&structural, &cfg)
    });

    let full = ModelTarget::new(&big).with_stall_output_labels(&["o0"]);
    let d = lint_model(&full, &cfg);
    eprintln!(
        "  (10k model: {} findings, {} deny)",
        d.items().len(),
        d.deny_count()
    );
    rep.counter("lint/random_10k_findings", d.items().len() as u64);
    rep.bench("lint/random_10k_forall1", || lint_model(&full, &cfg));
    rep.write().expect("write bench report");
}

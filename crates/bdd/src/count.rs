//! Exact satisfying-assignment counting.

use crate::manager::{Bdd, BddManager, TERMINAL_LEVEL};
use crate::util::U32Map64;

impl BddManager {
    /// Counts satisfying assignments of `f` over the variable levels
    /// `0..num_vars` (i.e. minterms of an `num_vars`-ary function).
    ///
    /// This is how the paper's model statistics are computed: reachable
    /// states as `sat_count(reached)` over the state variables, and the
    /// number of transitions as `sat_count(T ∧ reached ∧ valid)` over state
    /// and input variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` contains a variable at or above level `num_vars`, or if
    /// the count overflows `u128` (impossible for `num_vars < 128`).
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> u128 {
        assert!(num_vars <= 127, "sat_count supports at most 127 variables");
        // The recursion counts over the sub-order below each node; scale by
        // the gap between the root and level 0.
        let mut cache = U32Map64::new();
        // We store counts scaled to fit u64 only when possible; for safety
        // use a u128-valued recursion with a HashMap fallback when counts
        // are large. In practice (≤ 64 vars) u128 never overflows.
        let mut big: std::collections::HashMap<u32, u128> = std::collections::HashMap::new();
        let c = self.count_rec(f, num_vars, &mut cache, &mut big);
        let top = self.level_of(f);
        let gap = if top == TERMINAL_LEVEL {
            num_vars
        } else {
            top.min(num_vars)
        };
        c << gap
    }

    fn count_rec(
        &self,
        f: Bdd,
        num_vars: u32,
        cache: &mut U32Map64,
        big: &mut std::collections::HashMap<u32, u128>,
    ) -> u128 {
        if f.is_false() {
            return 0;
        }
        if f.is_true() {
            return 1;
        }
        if let Some(v) = cache.get(f.0) {
            return v as u128;
        }
        if let Some(&v) = big.get(&f.0) {
            return v;
        }
        let level = self.level_of(f);
        assert!(
            level < num_vars,
            "sat_count: variable out of declared range"
        );
        let (f0, f1) = self.cofactors(f, level);
        let c0 = self.count_rec(f0, num_vars, cache, big);
        let c1 = self.count_rec(f1, num_vars, cache, big);
        let l0 = self.level_of(f0);
        let l1 = self.level_of(f1);
        let gap0 = l0.min(num_vars) - level - 1;
        let gap1 = l1.min(num_vars) - level - 1;
        let total = (c0 << gap0) + (c1 << gap1);
        if total <= u64::MAX as u128 {
            cache.insert(f.0, total as u64);
        } else {
            big.insert(f.0, total);
        }
        total
    }

    /// Fraction of the full space `2^num_vars` that satisfies `f`.
    pub fn density(&self, f: Bdd, num_vars: u32) -> f64 {
        self.sat_count(f, num_vars) as f64 / 2f64.powi(num_vars as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Var;

    #[test]
    fn count_terminals() {
        let m = BddManager::new(4);
        assert_eq!(m.sat_count(Bdd::FALSE, 4), 0);
        assert_eq!(m.sat_count(Bdd::TRUE, 4), 16);
        assert_eq!(m.sat_count(Bdd::TRUE, 0), 1);
    }

    #[test]
    fn count_single_var() {
        let mut m = BddManager::new(4);
        let a = m.var(1);
        assert_eq!(m.sat_count(a, 4), 8);
        let na = m.not(a);
        assert_eq!(m.sat_count(na, 4), 8);
    }

    #[test]
    fn count_conjunction_and_disjunction() {
        let mut m = BddManager::new(5);
        let a = m.var(0);
        let b = m.var(3);
        let f = m.and(a, b);
        assert_eq!(m.sat_count(f, 5), 8); // 2^3 free vars
        let g = m.or(a, b);
        assert_eq!(m.sat_count(g, 5), 24); // 32 - 8 unsatisfying
    }

    #[test]
    fn count_xor_chain() {
        // Parity of n variables has exactly 2^(n-1) satisfying assignments.
        let n = 10u32;
        let mut m = BddManager::new(n);
        let mut f = Bdd::FALSE;
        for i in 0..n {
            let v = m.var(i);
            f = m.xor(f, v);
        }
        assert_eq!(m.sat_count(f, n), 1 << (n - 1));
    }

    #[test]
    fn count_complement_sums_to_space() {
        let mut m = BddManager::new(6);
        let a = m.var(0);
        let b = m.var(2);
        let c = m.var(5);
        let t = m.and(a, b);
        let f = m.or(t, c);
        let nf = m.not(f);
        assert_eq!(m.sat_count(f, 6) + m.sat_count(nf, 6), 64);
    }

    #[test]
    fn density_matches_count() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        assert!((m.density(a, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_respects_cube() {
        let mut m = BddManager::new(8);
        let cube = m.cube_from_vars(&[Var(0), Var(3), Var(7)]);
        assert_eq!(m.sat_count(cube, 8), 1 << 5);
    }
}

//! Minimal wall-clock benchmarking, replacing the external criterion
//! harness so the workspace builds offline with zero dependencies.
//!
//! Methodology: one untimed warm-up call sizes the iteration count to a
//! ~0.5 s budget (clamped to [5, 10_000] iterations), then the measured
//! loop is split into up to [`GROUPS`] groups; each group's mean wall
//! time per iteration is one *sample*, and the entry reports the median
//! and p90 over samples. `std::hint::black_box` keeps the optimizer from
//! deleting the benchmarked computation.
//!
//! Beyond the human-readable stderr lines, a [`BenchReport`] collects
//! every entry (plus raw one-shot [`BenchReport::sample`] measurements
//! and counter snapshots) and writes a machine-readable
//! `BENCH_<name>.json` per bench binary — schema `simcov-bench` v1 —
//! into `$SIMCOV_BENCH_DIR` (default `target/bench-reports/`). The CI
//! perf job feeds those files to the `simcov-bench --check` comparator
//! (see [`crate::check`]) to gate >25% median regressions against the
//! committed `ci/bench-baseline.json`.

use simcov_obs::json::escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Target total measured time per benchmark entry.
const BUDGET: Duration = Duration::from_millis(500);

/// Maximum number of sample groups the measured loop is split into.
pub const GROUPS: usize = 16;

/// Report-format identifier written into every `BENCH_<name>.json`.
pub const BENCH_SCHEMA: &str = "simcov-bench";
/// Report-format version written into every `BENCH_<name>.json`.
pub const BENCH_VERSION: u64 = 1;

/// One finished benchmark entry: per-group samples in ns/iteration.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Entry name, conventionally `<bench>/<case>`.
    pub name: String,
    /// Mean ns/iteration of each sample group, in measurement order.
    pub samples_ns: Vec<u64>,
    /// Total measured iterations across all groups (1 for one-shot
    /// [`BenchReport::sample`] entries).
    pub iters: u32,
}

impl Entry {
    /// Median of the per-group samples (nearest rank).
    pub fn median_ns(&self) -> u64 {
        percentile_ns(&self.samples_ns, 50)
    }

    /// 90th percentile of the per-group samples (nearest rank).
    pub fn p90_ns(&self) -> u64 {
        percentile_ns(&self.samples_ns, 90)
    }
}

/// Nearest-rank percentile over a non-empty sample set.
fn percentile_ns(samples: &[u64], pct: usize) -> u64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[((sorted.len() - 1) * pct + 50) / 100]
}

/// Directory that bench reports are written to: `$SIMCOV_BENCH_DIR`,
/// defaulting to `target/bench-reports` relative to the working
/// directory. Note that `cargo bench` runs bench binaries with the
/// *package* directory as cwd, so CI and scripts should export an
/// absolute `SIMCOV_BENCH_DIR` to collect every report in one place.
pub fn report_dir() -> PathBuf {
    std::env::var_os("SIMCOV_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/bench-reports"))
}

/// Warm up, size the iteration count, and time `f` in sample groups.
/// Returns the per-group samples (ns/iter) and total iterations.
fn measure<R>(mut f: impl FnMut() -> R) -> (Vec<u64>, u32) {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed();
    let iters = if once.is_zero() {
        10_000
    } else {
        (BUDGET.as_nanos() / once.as_nanos().max(1)).clamp(5, 10_000) as u32
    };
    let groups = (iters as usize).min(GROUPS) as u32;
    let per_group = (iters / groups).max(1);
    let mut samples = Vec::with_capacity(groups as usize);
    for _ in 0..groups {
        let t0 = Instant::now();
        for _ in 0..per_group {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos() / u128::from(per_group);
        samples.push(u64::try_from(ns).unwrap_or(u64::MAX));
    }
    (samples, per_group * groups)
}

/// Times `f` and prints `name: <median>/iter (<iters> iters)` to stderr.
/// Returns the median duration so callers can assert on relative timings.
///
/// Standalone variant of [`BenchReport::bench`] for callers that do not
/// need a machine-readable report.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Duration {
    let (samples, iters) = measure(f);
    let median = Duration::from_nanos(percentile_ns(&samples, 50));
    eprintln!("  {name:<44} {median:>12.2?}/iter ({iters} iters)");
    median
}

/// A per-binary benchmark session accumulating entries, one-shot
/// samples and counters, then serialized as `BENCH_<name>.json`.
///
/// ```
/// let mut report = simcov_bench::timing::BenchReport::new("doc_example");
/// report.bench("doc_example/sum", || (0..1000u64).sum::<u64>());
/// report.counter("doc_example/n", 1000);
/// let json = report.to_json();
/// assert!(json.starts_with("{\"schema\":\"simcov-bench\",\"version\":1,"));
/// ```
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    entries: Vec<Entry>,
    counters: BTreeMap<String, u64>,
}

impl BenchReport {
    /// Starts an empty report for the bench binary `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            entries: Vec::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Times `f` like [`bench`](fn@bench), records the entry, and
    /// returns the median duration per iteration.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> Duration {
        let (samples, iters) = measure(f);
        let entry = Entry {
            name: name.to_string(),
            samples_ns: samples,
            iters,
        };
        let median = Duration::from_nanos(entry.median_ns());
        eprintln!("  {name:<44} {median:>12.2?}/iter ({iters} iters)");
        self.entries.push(entry);
        median
    }

    /// Records an externally timed one-shot measurement (e.g. a single
    /// campaign wall-clock) as an entry with one sample.
    pub fn sample(&mut self, name: &str, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.entries.push(Entry {
            name: name.to_string(),
            samples_ns: vec![ns],
            iters: 1,
        });
    }

    /// Records a scalar context value (fault counts, journal bytes,
    /// speedup × 100, ...) under `name`. Last write wins.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Copies every counter out of a telemetry snapshot, prefixing each
    /// with this report's name (`<bench>/<counter>`).
    pub fn counters_from(&mut self, snapshot: &simcov_obs::Snapshot) {
        for (k, v) in &snapshot.counters {
            self.counters.insert(format!("{}/{k}", self.name), *v);
        }
    }

    /// Recorded entries, in measurement order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Serializes the report as a single-line `simcov-bench` v1 JSON
    /// document (trailing newline included). Counters are name-sorted
    /// so the layout is deterministic for a given set of measurements.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{BENCH_SCHEMA}\",\"version\":{BENCH_VERSION},\"name\":\"{}\",\"entries\":[",
            escape(&self.name)
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"iters\":{},\"median_ns\":{},\"p90_ns\":{},\"samples_ns\":[",
                escape(&e.name),
                e.iters,
                e.median_ns(),
                e.p90_ns()
            );
            for (j, s) in e.samples_ns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{s}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push_str("}}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into [`report_dir`], creating the
    /// directory if needed, and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = report_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        eprintln!("  report: {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_obs::json;

    #[test]
    fn bench_returns_positive_median_for_real_work() {
        let median = bench("timing/self_test", || {
            std::hint::black_box((0..10_000u64).sum::<u64>())
        });
        assert!(median < Duration::from_secs(1));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = [40u64, 10, 30, 20, 50];
        assert_eq!(percentile_ns(&s, 50), 30);
        assert_eq!(percentile_ns(&s, 90), 50);
        assert_eq!(percentile_ns(&[7], 50), 7);
        assert_eq!(percentile_ns(&[7], 90), 7);
    }

    #[test]
    fn report_json_round_trips_through_the_obs_parser() {
        let mut r = BenchReport::new("unit");
        r.bench("unit/sum", || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        r.sample("unit/one_shot", Duration::from_micros(42));
        r.counter("unit/faults", 123);
        let doc = json::parse(&r.to_json()).expect("report is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("name").and_then(|s| s.as_str()), Some("unit"));
        let entries = doc.get("entries").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1].get("name").and_then(|s| s.as_str()),
            Some("unit/one_shot")
        );
        assert_eq!(
            entries[1].get("median_ns").and_then(|v| v.as_u64()),
            Some(42_000)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("unit/faults"))
                .and_then(|v| v.as_u64()),
            Some(123)
        );
    }

    #[test]
    fn counters_from_snapshot_are_prefixed() {
        let tel = simcov_obs::Telemetry::new();
        tel.counter_add("campaign.faults_simulated", 7);
        let mut r = BenchReport::new("unit");
        r.counters_from(&tel.snapshot());
        let doc = json::parse(&r.to_json()).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("unit/campaign.faults_simulated"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
    }
}

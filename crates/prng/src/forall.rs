//! A miniature property-based testing driver.
//!
//! `proptest`-style workflow with a fraction of the machinery: a property
//! is a closure over a [`Gen`] handle that draws a pseudo-random test
//! case and asserts with the standard `assert!` family. [`forall`](fn@forall) runs
//! the closure over a deterministic seed schedule derived from the
//! property name; on failure it *shrinks by halving* — the same seed is
//! replayed with every ranged draw's width cut in half, quartered, and
//! so on, pulling the case toward the smallest machines / shortest
//! vectors / least extreme values that still fail — and reports the
//! seed + shrink denominator of the minimal failing case so it can be
//! replayed with [`Gen::with_shrink`].
//!
//! ```
//! use simcov_prng::{forall, Gen};
//!
//! forall("addition_commutes", |g: &mut Gen| {
//!     let a = g.int_in(0..1000u32);
//!     let b = g.int_in(0..1000u32);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Case generation is fully deterministic: no clocks, no global state,
//! no environment. Re-running a test binary replays the identical case
//! schedule, which keeps CI hermetic and failures reproducible.

use crate::{Prng, SplitMix64, UniformInt};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Driver configuration for [`forall_cfg`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of pseudo-random cases to run (default 64).
    pub cases: usize,
    /// Maximum number of halvings attempted while shrinking (default 16,
    /// i.e. ranged widths shrink down to 1/65536 of their span).
    pub max_halvings: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_halvings: 16,
        }
    }
}

impl Config {
    /// A configuration running `cases` cases (shorthand used by the
    /// workspace's property tests, mirroring
    /// `ProptestConfig::with_cases`).
    pub fn with_cases(cases: usize) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// The per-case generation handle handed to properties.
///
/// Raw draws ([`bool`](Gen::bool), [`u16`](Gen::u16), …) are full-width
/// entropy; ranged draws ([`int_in`](Gen::int_in)) respect the current
/// shrink denominator, collapsing toward the range start as the driver
/// halves the case.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: Prng,
    shrink_den: u64,
}

impl Gen {
    /// A fresh unshrunk generator (shrink denominator 1).
    pub fn new(seed: u64) -> Self {
        Gen::with_shrink(seed, 1)
    }

    /// Replays the case `seed` at a specific shrink denominator, exactly
    /// as the driver does — use with the values printed in a failure
    /// message to reproduce a minimal counterexample under a debugger.
    pub fn with_shrink(seed: u64, shrink_den: u64) -> Self {
        Gen {
            rng: Prng::seed_from_u64(seed),
            shrink_den: shrink_den.max(1),
        }
    }

    /// The active shrink denominator (1 = the original, unshrunk case).
    pub fn shrink_den(&self) -> u64 {
        self.shrink_den
    }

    /// Direct access to the underlying generator for distributions the
    /// handle doesn't wrap (shuffles, Bernoulli draws, …).
    pub fn rng(&mut self) -> &mut Prng {
        &mut self.rng
    }

    /// Full-entropy boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Full-entropy `u8`.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// Full-entropy `u16`.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }

    /// Full-entropy `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Full-entropy `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from `[range.start, range.end)`, with the width
    /// divided by the shrink denominator (never below 1): shrunk replays
    /// draw from a narrower band hugging the range start, so collection
    /// lengths and magnitudes fall as the driver halves the case.
    pub fn int_in<T: UniformInt + ShrinkBound>(&mut self, range: std::ops::Range<T>) -> T {
        let hi = T::shrunk_hi(range.start, range.end, self.shrink_den);
        self.rng.gen_range(range.start..hi)
    }

    /// A vector of `int_in(len_range)` elements, each produced by `f`.
    pub fn vec_of<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.int_in(len_range);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Integer types that know how to halve their range width for shrinking.
pub trait ShrinkBound: Copy {
    /// `lo + max(1, (hi - lo) / den)`, saturating at `hi`.
    fn shrunk_hi(lo: Self, hi: Self, den: u64) -> Self;
}

macro_rules! impl_shrink_bound {
    ($($t:ty => $u:ty),*) => {$(
        impl ShrinkBound for $t {
            fn shrunk_hi(lo: Self, hi: Self, den: u64) -> Self {
                assert!(lo < hi, "int_in called with an empty range");
                let width = (hi as $u).wrapping_sub(lo as $u) as u64;
                let shrunk = (width / den).max(1);
                lo.wrapping_add(shrunk as $t)
            }
        }
    )*};
}

impl_shrink_bound!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                   i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Runs `prop` over [`Config::default`]'s worth of cases. See the module
/// docs for the workflow; panics (failing the enclosing `#[test]`) with
/// the minimal shrunk case on the first property violation.
pub fn forall(name: &str, prop: impl Fn(&mut Gen)) {
    forall_cfg(name, Config::default(), prop);
}

/// [`forall`](fn@forall) with an explicit [`Config`].
pub fn forall_cfg(name: &str, cfg: Config, prop: impl Fn(&mut Gen)) {
    let base = fnv1a(name.as_bytes());
    for case in 0..cfg.cases {
        // One SplitMix64 step decorrelates consecutive case indices.
        let seed = SplitMix64::new(base.wrapping_add(case as u64)).next_u64();
        let Some(original) = run_case(&prop, seed, 1) else {
            continue;
        };
        // Shrink by halving: replay the same seed with ranged widths
        // divided by 2, 4, 8, … while the property still fails.
        let mut minimal = (1u64, original);
        let mut den = 2u64;
        for _ in 0..cfg.max_halvings {
            match run_case(&prop, seed, den) {
                Some(msg) => {
                    minimal = (den, msg);
                    den *= 2;
                }
                None => break,
            }
        }
        panic!(
            "property `{name}` failed at case {case}/{} \
             (seed {seed:#018x}, shrink denominator {})\n\
             replay with: Gen::with_shrink({seed:#018x}, {})\n{}",
            cfg.cases, minimal.0, minimal.0, minimal.1
        );
    }
}

/// Runs one case; `Some(message)` if the property panicked.
fn run_case(prop: &impl Fn(&mut Gen), seed: u64, den: u64) -> Option<String> {
    let mut g = Gen::with_shrink(seed, den);
    catch_unwind(AssertUnwindSafe(|| prop(&mut g)))
        .err()
        .map(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            }
        })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        forall_cfg("always_true", Config::with_cases(10), |g| {
            count.set(count.get() + 1);
            let x = g.int_in(0..100u32);
            assert!(x < 100);
        });
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn failing_property_panics_with_replay_info() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            forall_cfg("always_false", Config::with_cases(5), |g| {
                let _ = g.u16();
                panic!("intentional");
            });
        }));
        let msg = r.unwrap_err();
        let msg = msg.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_false"), "{msg}");
        assert!(msg.contains("replay with"), "{msg}");
        assert!(msg.contains("intentional"), "{msg}");
    }

    #[test]
    fn shrinking_reduces_the_counterexample() {
        // Property failing for any v >= 10: the shrunk case must report a
        // much smaller width than an unshrunk draw from 0..10_000 would
        // typically produce.
        let r = catch_unwind(AssertUnwindSafe(|| {
            forall_cfg("shrinks", Config::with_cases(20), |g| {
                let v = g.int_in(0..10_000u32);
                assert!(v < 10, "v={v}");
            });
        }));
        let msg = r.unwrap_err();
        let msg = msg.downcast_ref::<String>().expect("string panic");
        // With width/den < 10 the property passes, so the minimal failing
        // denominator leaves a width in [10, 20): v is at most 19.
        let v: u32 = msg
            .rsplit("v=")
            .next()
            .and_then(|s| s.trim().parse().ok())
            .expect("message carries v");
        assert!(
            v < 20,
            "shrinking should land just above the threshold: {msg}"
        );
    }

    #[test]
    fn int_in_respects_shrink_denominator() {
        let mut g = Gen::with_shrink(99, 1 << 20);
        for _ in 0..100 {
            // Width 1000 / 2^20 floors to 0, clamps to 1: always lo.
            assert_eq!(g.int_in(5..1005i32), 5);
        }
    }

    #[test]
    fn deterministic_schedule() {
        let first: std::cell::RefCell<Vec<u64>> = Default::default();
        forall_cfg("schedule", Config::with_cases(4), |g| {
            first.borrow_mut().push(g.u64())
        });
        let second: std::cell::RefCell<Vec<u64>> = Default::default();
        forall_cfg("schedule", Config::with_cases(4), |g| {
            second.borrow_mut().push(g.u64())
        });
        assert_eq!(first.into_inner(), second.into_inner());
    }

    #[test]
    fn vec_of_length_within_range() {
        let mut g = Gen::new(1);
        for _ in 0..50 {
            let v = g.vec_of(2..9, |g| g.bool());
            assert!((2..9).contains(&v.len()));
        }
    }
}

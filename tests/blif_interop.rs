//! BLIF interoperability on the real case-study models: export, re-parse,
//! and verify behavioural equivalence cycle by cycle.

use simcov::netlist::{from_blif, to_blif, SimState};

fn roundtrip_equal(n: &simcov::netlist::Netlist, cycles: usize, seed: u64) {
    let blif = to_blif(n, "model");
    let back = from_blif(&blif).expect("exported BLIF parses");
    assert_eq!(back.stats().latches, n.stats().latches);
    assert_eq!(back.stats().inputs, n.stats().inputs);
    assert_eq!(back.stats().outputs, n.stats().outputs);
    let mut a = SimState::new(n);
    let mut b = SimState::new(&back);
    let mut rng = seed;
    for cyc in 0..cycles {
        let inputs: Vec<bool> = (0..n.num_inputs())
            .map(|_| {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (rng >> 41) & 1 == 1
            })
            .collect();
        assert_eq!(a.step(n, &inputs), b.step(&back, &inputs), "cycle {cyc}");
    }
}

#[test]
fn fig3a_initial_model_roundtrips() {
    let n = simcov::dlx::control::initial_control_netlist();
    roundtrip_equal(&n, 64, 0xABCD);
}

#[test]
fn final_test_model_roundtrips() {
    let (n, _) = simcov::dlx::testmodel::derive_test_model();
    roundtrip_equal(&n, 128, 0x1234);
}

#[test]
fn dsp_models_roundtrip() {
    let n = simcov::dsp::control::initial_control_netlist();
    roundtrip_equal(&n, 64, 7);
    let obs = simcov::dsp::control::derive_test_model_observable();
    roundtrip_equal(&obs, 64, 9);
}

#[test]
fn reduced_models_roundtrip() {
    roundtrip_equal(&simcov::dlx::testmodel::reduced_control_netlist(), 64, 1);
    roundtrip_equal(
        &simcov::dlx::testmodel::reduced_control_netlist_observable(),
        64,
        2,
    );
}

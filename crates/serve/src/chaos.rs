//! Deterministic service-layer failure injection (feature `chaos`).
//!
//! Extends [`simcov_core::resilient::chaos`]'s shard-level plan to the
//! server's failure surface: dropped connections, slow clients, mid-job
//! panics, journal-write failures and forced engine-audit trips. Every
//! decision is a pure function of `(seed, site, job fingerprint,
//! attempt)` with distinct FNV-derived streams per site, so raising one
//! probability never reshuffles another site's decisions — the same
//! property the core plan guarantees, which is what lets the load-test
//! harness assert *byte-identical results under chaos* instead of merely
//! "no crash".

use simcov_obs::fnv::Fnv64;
use simcov_prng::Prng;
use std::time::Duration;

pub use simcov_core::resilient::chaos::silence_chaos_panics;

/// The service chaos schedule: independent probabilities per site.
#[derive(Debug, Clone)]
pub struct ServeChaosPlan {
    /// Seed all decisions derive from.
    pub seed: u64,
    /// Probability a job's result write is replaced by a dropped
    /// connection (the client must reconnect and `query`).
    pub drop_connection_prob: f64,
    /// Probability (and bound) of an injected delay before a result is
    /// written — a slow client on the other end of the write.
    pub slow_client_prob: f64,
    /// Maximum injected slow-client delay.
    pub max_delay: Duration,
    /// Probability a `(job, attempt)` panics inside the worker *before*
    /// executing (the job body itself stays deterministic — injecting
    /// into the engines would change results, which core chaos covers).
    pub job_panic_prob: f64,
    /// Probability a job's engine audit is forced to fail, tripping the
    /// degradation ladder.
    pub audit_fail_prob: f64,
    /// Number of journal records that succeed before writes start
    /// failing (`usize::MAX` = never fail).
    pub journal_fail_after: usize,
}

impl ServeChaosPlan {
    /// A plan with every probability at zero (inject nothing).
    pub fn new(seed: u64) -> Self {
        ServeChaosPlan {
            seed,
            drop_connection_prob: 0.0,
            slow_client_prob: 0.0,
            max_delay: Duration::from_millis(2),
            job_panic_prob: 0.0,
            audit_fail_prob: 0.0,
            journal_fail_after: usize::MAX,
        }
    }

    fn rng(&self, site: u64, fingerprint: u64, attempt: usize) -> Prng {
        let mut h = Fnv64::new();
        h.u64(self.seed);
        h.u64(site);
        h.u64(fingerprint);
        h.u64(attempt as u64);
        Prng::seed_from_u64(h.finish())
    }

    /// Deterministic: drop the connection instead of writing this job's
    /// result?
    pub fn should_drop_connection(&self, fingerprint: u64) -> bool {
        self.drop_connection_prob > 0.0
            && self
                .rng(1, fingerprint, 0)
                .gen_bool(self.drop_connection_prob)
    }

    /// Deterministic: injected slow-client delay before this job's
    /// result write.
    pub fn slow_client_delay(&self, fingerprint: u64) -> Option<Duration> {
        if self.slow_client_prob <= 0.0 {
            return None;
        }
        let mut rng = self.rng(2, fingerprint, 0);
        if !rng.gen_bool(self.slow_client_prob) {
            return None;
        }
        let nanos = self.max_delay.as_nanos().max(1) as u64;
        Some(Duration::from_nanos(rng.gen_range(0..nanos)))
    }

    /// Deterministic: should this `(job, attempt)` panic in the worker?
    pub fn should_panic(&self, fingerprint: u64, attempt: usize) -> bool {
        self.job_panic_prob > 0.0
            && self
                .rng(3, fingerprint, attempt)
                .gen_bool(self.job_panic_prob)
    }

    /// Deterministic: force this job's engine audit to fail?
    pub fn should_fail_audit(&self, fingerprint: u64) -> bool {
        self.audit_fail_prob > 0.0 && self.rng(4, fingerprint, 0).gen_bool(self.audit_fail_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_site_independent() {
        let a = ServeChaosPlan {
            job_panic_prob: 0.5,
            audit_fail_prob: 0.5,
            ..ServeChaosPlan::new(42)
        };
        let b = a.clone();
        for fp in 0..64u64 {
            assert_eq!(a.should_panic(fp, 0), b.should_panic(fp, 0));
            assert_eq!(a.should_fail_audit(fp), b.should_fail_audit(fp));
        }
        // Raising one site's probability must not reshuffle another's.
        let c = ServeChaosPlan {
            drop_connection_prob: 0.9,
            ..a.clone()
        };
        for fp in 0..64u64 {
            assert_eq!(a.should_panic(fp, 1), c.should_panic(fp, 1));
        }
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let plan = ServeChaosPlan::new(7);
        for fp in 0..32u64 {
            assert!(!plan.should_drop_connection(fp));
            assert!(plan.slow_client_delay(fp).is_none());
            assert!(!plan.should_panic(fp, 0));
            assert!(!plan.should_fail_audit(fp));
        }
    }

    #[test]
    fn nonzero_probabilities_fire_sometimes_but_not_always() {
        let plan = ServeChaosPlan {
            job_panic_prob: 0.5,
            ..ServeChaosPlan::new(9)
        };
        let fired = (0..128u64).filter(|&fp| plan.should_panic(fp, 0)).count();
        assert!(fired > 16 && fired < 112, "p=0.5 fired {fired}/128");
    }
}

//! The whole-model collapse analysis: from `(machine, fault list)` to a
//! validated [`CollapseCertificate`].
//!
//! Equivalence is only ever claimed between faults at the *same*
//! `(state, input)` cell (plus one global class for faults on unreachable
//! states): a fault's excitation time on any sequence is determined by
//! the cell alone — the faulty walk equals the golden walk until the
//! cell's first traversal — so faults at different cells can be told
//! apart by a test set that traverses one cell and not the other.
//! Within a cell, four facts drive the partition (DESIGN.md §13):
//!
//! 1. **Unreachable** — a fault on a state unreachable from reset is
//!    never excited (patching a state's outgoing edge cannot make the
//!    state reachable), so its outcome is `{not detected, not excited,
//!    not masked}` under every test set: one global class.
//! 2. **Ineffective** — a no-op fault (original destination or original
//!    output) patches the machine into itself; only excitation is
//!    observable, and that is cell-determined: one class per cell,
//!    covering both kinds.
//! 3. **Output** — every effective output fault at a cell is detected at
//!    the cell's first traversal inside the compared output prefix,
//!    whatever the wrong label; the state walk never diverges, so
//!    masking is impossible: one class per cell.
//! 4. **Transfer** — two effective transfer faults at a cell are
//!    equivalent iff their post-excitation *joint* walks (faulty state
//!    `p` stepped under the patch, golden state `q`) are bisimilar with
//!    respect to the labels the simulator observes: per-step output
//!    difference, per-side truncation, and state re-convergence
//!    (`p == q`, which is what [`simcov_core::is_masked_on`] reads).
//!    Computed by [`refine_partition`] over the union of every target's
//!    joint-config graph, with three absorbing truncation sinks; cells
//!    whose graph exceeds the node budget degrade soundly to singletons
//!    and are reported as ambiguous (`SC050`).
//!
//! Dominance: detecting an effective transfer fault at a cell requires
//! the faulty walk to diverge, which requires the cell to be traversed
//! inside the compared output prefix — exactly the condition under which
//! every effective output fault at that cell is detected. Hence every
//! effective transfer class *dominates* its cell's output class: any
//! test set detecting the former detects the latter.

use simcov_core::error_model::{Fault, FaultKind};
use simcov_core::{ClassKind, CollapseCertificate};
use simcov_fsm::{partition_by_rows, refine_partition, ExplicitMealy, InputSym, StateId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Tuning knobs for [`analyze_collapse`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Per-cell cap on joint-config nodes explored by the transfer-fault
    /// bisimulation (the union graph has at most `targets × states²`
    /// configs). A cell exceeding the cap keeps its faults as singletons
    /// — sound, just not collapsed — and is reported as ambiguous.
    pub max_nodes_per_cell: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            max_nodes_per_cell: 1 << 16,
        }
    }
}

/// A fault list the analysis (and any campaign) cannot process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeError {
    /// A fault sits on an undefined or out-of-range `(state, input)`
    /// cell — [`Fault::inject`] would panic on it, so no campaign could
    /// simulate it either.
    UndefinedFaultCell {
        /// Index of the offending fault.
        fault: usize,
    },
    /// A transfer fault's destination or an output fault's label is
    /// outside the machine's alphabets.
    InvalidFaultTarget {
        /// Index of the offending fault.
        fault: usize,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::UndefinedFaultCell { fault } => {
                write!(f, "fault {fault} sits on an undefined (state, input) cell")
            }
            AnalyzeError::InvalidFaultTarget { fault } => {
                write!(
                    f,
                    "fault {fault} targets a state or output outside the machine"
                )
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Aggregate accounting of one analysis run (rendered by `simcov
/// analyze` and fed to telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Faults analysed.
    pub faults: usize,
    /// Equivalence classes produced.
    pub classes: usize,
    /// Faults a `--collapse on` campaign skips (`faults - classes`).
    pub collapsed_faults: usize,
    /// Faults on unreachable states (all in the one global class).
    pub unreachable_faults: usize,
    /// No-op faults (grouped per cell).
    pub ineffective_faults: usize,
    /// Classes of kind [`ClassKind::Output`].
    pub output_classes: usize,
    /// Classes of kind [`ClassKind::Transfer`].
    pub transfer_classes: usize,
    /// Classes of kind [`ClassKind::Ineffective`].
    pub ineffective_classes: usize,
    /// Classes of kind [`ClassKind::Singleton`] (budget-exceeded cells).
    pub singleton_classes: usize,
    /// Dominance edges (transfer class over same-cell output class).
    pub dominance_edges: usize,
    /// Cells whose bisimulation exceeded the node budget.
    pub ambiguous_cells: usize,
}

/// The full analysis result: the certificate plus everything the lint
/// passes and reports surface about how it was obtained.
#[derive(Debug, Clone)]
pub struct CollapseAnalysis {
    /// The validated, campaign-consumable partition.
    pub certificate: CollapseCertificate,
    /// Cells whose transfer bisimulation exceeded the node budget (their
    /// faults stay singletons; surfaced as `SC050`).
    pub ambiguous_cells: Vec<(StateId, InputSym)>,
    /// Aggregate accounting.
    pub stats: AnalyzeStats,
}

/// Distinguishes the class-key variants when assigning canonical IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Unreachable,
    Ineffective(usize),
    Output(usize),
    Transfer(usize, u32),
    Ambiguous(usize, u32),
}

/// Computes the fault-equivalence partition of `faults` over `m` and
/// packages it as a bound [`CollapseCertificate`].
///
/// Classes are numbered canonically (first appearance in fault order),
/// each class's representative is its first member, and the certificate
/// carries the dominance edges described in the module docs. The
/// analysis is deterministic: same machine, fault list and options ⇒
/// bit-identical certificate (and fingerprint).
///
/// # Errors
///
/// [`AnalyzeError`] if any fault references an undefined cell or an
/// out-of-range target — such a fault cannot be simulated at all
/// ([`Fault::inject`] panics), so there is no outcome to collapse.
pub fn analyze_collapse(
    m: &ExplicitMealy,
    faults: &[Fault],
    opts: &AnalyzeOptions,
) -> Result<CollapseAnalysis, AnalyzeError> {
    let ns = m.num_states();
    let ni = m.num_inputs();
    let no = m.num_outputs() as u32;
    for (idx, f) in faults.iter().enumerate() {
        if f.state.index() >= ns || f.input.index() >= ni || m.step(f.state, f.input).is_none() {
            return Err(AnalyzeError::UndefinedFaultCell { fault: idx });
        }
        match f.kind {
            FaultKind::Transfer { new_next } if new_next.index() >= ns => {
                return Err(AnalyzeError::InvalidFaultTarget { fault: idx });
            }
            FaultKind::Output { new_output } if new_output.0 >= no => {
                return Err(AnalyzeError::InvalidFaultTarget { fault: idx });
            }
            _ => {}
        }
    }

    let mut reachable = vec![false; ns];
    for s in m.reachable_states() {
        reachable[s.index()] = true;
    }

    // Distinct effective transfer targets per cell, in fault order
    // (BTreeMap so the per-cell work is iterated deterministically).
    let mut transfer_targets: BTreeMap<usize, Vec<StateId>> = BTreeMap::new();
    for f in faults {
        if !reachable[f.state.index()] || !f.is_effective(m) {
            continue;
        }
        if let FaultKind::Transfer { new_next } = f.kind {
            let cell = f.state.index() * ni + f.input.index();
            let targets = transfer_targets.entry(cell).or_default();
            if !targets.contains(&new_next) {
                targets.push(new_next);
            }
        }
    }

    // Per-cell bisimulation classes of the targets (None = budget hit).
    let mut cell_classes: HashMap<usize, Option<HashMap<u32, u32>>> = HashMap::new();
    let mut ambiguous_cells = Vec::new();
    for (&cell, targets) in &transfer_targets {
        let s = StateId((cell / ni) as u32);
        let i = InputSym((cell % ni) as u32);
        let classes = bisim_classes(m, s, i, targets, opts.max_nodes_per_cell);
        if classes.is_none() {
            ambiguous_cells.push((s, i));
        }
        cell_classes.insert(cell, classes);
    }

    // Canonical class assignment: IDs by first appearance in fault order.
    let mut class_ids: HashMap<Key, u32> = HashMap::new();
    let mut class_of: Vec<u32> = Vec::with_capacity(faults.len());
    let mut kinds: Vec<ClassKind> = Vec::new();
    // For dominance: the cell of each class and whether it holds
    // effective transfer faults.
    let mut class_cell: Vec<Option<(usize, bool)>> = Vec::new();
    let mut unreachable_faults = 0usize;
    let mut ineffective_faults = 0usize;
    for f in faults {
        let cell = f.state.index() * ni + f.input.index();
        let (key, kind, cell_info) = if !reachable[f.state.index()] {
            unreachable_faults += 1;
            (Key::Unreachable, ClassKind::Unreachable, None)
        } else if !f.is_effective(m) {
            ineffective_faults += 1;
            (Key::Ineffective(cell), ClassKind::Ineffective, None)
        } else {
            match f.kind {
                FaultKind::Output { .. } => {
                    (Key::Output(cell), ClassKind::Output, Some((cell, false)))
                }
                FaultKind::Transfer { new_next } => match &cell_classes[&cell] {
                    Some(by_target) => (
                        Key::Transfer(cell, by_target[&new_next.0]),
                        ClassKind::Transfer,
                        Some((cell, true)),
                    ),
                    // Budget exceeded: identical faults still share a
                    // class (trivial equivalence); distinct targets don't.
                    None => (
                        Key::Ambiguous(cell, new_next.0),
                        ClassKind::Singleton,
                        Some((cell, true)),
                    ),
                },
            }
        };
        let fresh = kinds.len() as u32;
        let c = *class_ids.entry(key).or_insert_with(|| {
            kinds.push(kind);
            class_cell.push(cell_info);
            fresh
        });
        class_of.push(c);
    }

    // Dominance: every effective transfer class over its cell's output
    // class, ascending by dominating class ID.
    let mut output_at_cell: HashMap<usize, u32> = HashMap::new();
    for (c, info) in class_cell.iter().enumerate() {
        if let Some((cell, false)) = info {
            output_at_cell.insert(*cell, c as u32);
        }
    }
    let mut dominance: Vec<(u32, u32)> = Vec::new();
    for (c, info) in class_cell.iter().enumerate() {
        if let Some((cell, true)) = info {
            if let Some(&oc) = output_at_cell.get(cell) {
                dominance.push((c as u32, oc));
            }
        }
    }

    let certificate = CollapseCertificate::new(m, faults, class_of, kinds, dominance)
        .expect("analysis emits canonical classes by construction");
    let count = |k: ClassKind| certificate.kinds().iter().filter(|&&x| x == k).count();
    let stats = AnalyzeStats {
        faults: faults.len(),
        classes: certificate.num_classes(),
        collapsed_faults: certificate.collapsed_faults(),
        unreachable_faults,
        ineffective_faults,
        output_classes: count(ClassKind::Output),
        transfer_classes: count(ClassKind::Transfer),
        ineffective_classes: count(ClassKind::Ineffective),
        singleton_classes: count(ClassKind::Singleton),
        dominance_edges: certificate.dominance().len(),
        ambiguous_cells: ambiguous_cells.len(),
    };
    Ok(CollapseAnalysis {
        certificate,
        ambiguous_cells,
        stats,
    })
}

/// Bisimulation classes of the transfer `targets` at cell `(s, i)`:
/// `target.0 -> class` with classes numbered by first appearance in
/// target order, or `None` when the union graph exceeds `max_nodes`.
///
/// Nodes are joint configs `(target index, faulty state p, golden state
/// q)` reachable from each target's post-excitation start `(τ, golden
/// next)`, where `p` steps under the patch (`(s, i) ↦ τ`) and `q` steps
/// in the golden machine, plus three absorbing truncation sinks
/// (faulty-side undefined, golden-side undefined, both). The initial
/// partition keys each node by everything the simulator observes in one
/// step — state re-convergence `p == q` plus, per input, truncation kind
/// or output (dis)agreement — and [`refine_partition`] closes it under
/// successors. Equal start-node classes ⇒ identical label streams on
/// every input word ⇒ identical `detects` / `is_masked_on` results on
/// every sequence.
fn bisim_classes(
    m: &ExplicitMealy,
    s: StateId,
    i: InputSym,
    targets: &[StateId],
    max_nodes: usize,
) -> Option<HashMap<u32, u32>> {
    if targets.len() == 1 {
        return Some(HashMap::from([(targets[0].0, 0u32)]));
    }
    let ni = m.num_inputs();
    let (_, cell_out) = m.step(s, i).expect("caller validated the cell");
    const SINKS: usize = 3; // ids 0 (f-trunc), 1 (g-trunc), 2 (both).

    let mut ids: HashMap<(u32, u32, u32), usize> = HashMap::new();
    let mut nodes: Vec<(u32, u32, u32)> = Vec::new();
    fn intern(
        key: (u32, u32, u32),
        nodes: &mut Vec<(u32, u32, u32)>,
        ids: &mut HashMap<(u32, u32, u32), usize>,
    ) -> usize {
        *ids.entry(key).or_insert_with(|| {
            nodes.push(key);
            SINKS + nodes.len() - 1
        })
    }
    let golden_next = m.step(s, i).expect("caller validated the cell").0;
    let starts: Vec<usize> = targets
        .iter()
        .enumerate()
        .map(|(ti, &t)| intern((ti as u32, t.0, golden_next.0), &mut nodes, &mut ids))
        .collect();

    // BFS in id order; per real node, one label row (width ni + 1) and
    // one successor row (width ni).
    let mut rows: Vec<u32> = Vec::new();
    let mut succ: Vec<u32> = Vec::new();
    let mut cursor = 0usize;
    while cursor < nodes.len() {
        if nodes.len() > max_nodes {
            return None;
        }
        let (ti, p, q) = nodes[cursor];
        cursor += 1;
        rows.push(u32::from(p == q));
        for x in 0..ni as u32 {
            let fstep = if p == s.0 && x == i.0 {
                // The patched cell: destination replaced, output kept.
                Some((targets[ti as usize].0, cell_out.0))
            } else {
                m.step(StateId(p), InputSym(x)).map(|(n, o)| (n.0, o.0))
            };
            let gstep = m.step(StateId(q), InputSym(x)).map(|(n, o)| (n.0, o.0));
            let (letter, next) = match (fstep, gstep) {
                (None, Some(_)) => (0, 0usize),
                (Some(_), None) => (1, 1usize),
                (None, None) => (2, 2usize),
                (Some((fp, fo)), Some((gq, go))) => (
                    3 + u32::from(fo != go),
                    intern((ti, fp, gq), &mut nodes, &mut ids),
                ),
            };
            rows.push(letter);
            succ.push(next as u32);
        }
    }
    if nodes.len() > max_nodes {
        return None;
    }

    // Assemble the full item space: sinks first (unique labels, self
    // loops on every input), then the real nodes.
    let width = ni + 1;
    let total = SINKS + nodes.len();
    let mut all_rows: Vec<u32> = Vec::with_capacity(total * width);
    let mut all_succ: Vec<u32> = Vec::with_capacity(total * ni);
    for sink in 0..SINKS as u32 {
        all_rows.push(2 + sink); // distinct from the {0, 1} node labels
        all_rows.extend(std::iter::repeat_n(9, ni));
        all_succ.extend(std::iter::repeat_n(sink, ni));
    }
    all_rows.extend_from_slice(&rows);
    all_succ.extend_from_slice(&succ);

    let initial = partition_by_rows(&all_rows, width);
    let part = refine_partition(&initial.class_of, ni, &all_succ);

    // Canonical target classes by first appearance in target order.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut out = HashMap::with_capacity(targets.len());
    for (ti, &t) in targets.iter().enumerate() {
        let raw = part.class_of[starts[ti]];
        let fresh = remap.len() as u32;
        out.insert(t.0, *remap.entry(raw).or_insert(fresh));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::testutil::figure2;
    use simcov_core::{enumerate_single_faults, FaultSpace};
    use simcov_fsm::{MealyBuilder, OutputSym};

    /// A machine with two bisimilar-but-distinct states `d1` / `d2` and
    /// a behaviourally different state `a`, all valid transfer targets
    /// for the cell `(a, x)` (golden next `b`).
    fn twin_targets() -> (ExplicitMealy, StateId, InputSym) {
        let mut b = MealyBuilder::new();
        let a = b.add_state("a");
        let bb = b.add_state("b");
        let d1 = b.add_state("d1");
        let d2 = b.add_state("d2");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let o0 = b.add_output("o0");
        let o1 = b.add_output("o1");
        b.add_transition(a, x, bb, o0);
        b.add_transition(a, y, a, o0);
        b.add_transition(bb, x, a, o1);
        b.add_transition(bb, y, bb, o0);
        b.add_transition(d1, x, a, o0);
        b.add_transition(d1, y, d1, o1);
        b.add_transition(d2, x, a, o0);
        b.add_transition(d2, y, d2, o1);
        let m = b.build(a).unwrap();
        (m, a, x)
    }

    fn transfer(s: StateId, i: InputSym, t: StateId) -> Fault {
        Fault {
            state: s,
            input: i,
            kind: FaultKind::Transfer { new_next: t },
        }
    }

    fn output(s: StateId, i: InputSym, o: u32) -> Fault {
        Fault {
            state: s,
            input: i,
            kind: FaultKind::Output {
                new_output: OutputSym(o),
            },
        }
    }

    #[test]
    fn bisimilar_transfer_targets_share_a_class() {
        let (m, a, x) = twin_targets();
        let faults = vec![
            transfer(a, x, StateId(2)), // -> d1
            transfer(a, x, StateId(3)), // -> d2
            transfer(a, x, a),          // -> a (behaviourally different)
        ];
        let r = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        let c = r.certificate.class_of();
        assert_eq!(c[0], c[1], "d1 and d2 are bisimilar targets");
        assert_ne!(c[0], c[2], "a is observably different");
        assert_eq!(r.certificate.num_classes(), 2);
        assert_eq!(r.certificate.kinds(), &[ClassKind::Transfer; 2]);
        assert!(r.ambiguous_cells.is_empty());
        assert_eq!(r.stats.collapsed_faults, 1);
    }

    #[test]
    fn output_faults_at_one_cell_collapse() {
        let (m, a, x) = twin_targets();
        // Three effective relabellings of (a, x) plus the no-op one.
        let faults = vec![
            output(a, x, 1),
            output(a, x, 0),            // golden output: ineffective
            transfer(a, x, StateId(1)), // golden next: ineffective
        ];
        let r = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        let c = r.certificate.class_of();
        assert_eq!(
            c[1], c[2],
            "no-op faults of both kinds share the cell's ineffective class"
        );
        assert_ne!(c[0], c[1]);
        assert_eq!(
            r.certificate.kinds(),
            &[ClassKind::Output, ClassKind::Ineffective]
        );
        assert_eq!(r.stats.ineffective_faults, 2);
    }

    #[test]
    fn unreachable_faults_form_one_global_class() {
        // d1/d2 are unreachable in twin_targets (nothing reaches them).
        let (m, a, x) = twin_targets();
        let y = InputSym(1);
        let faults = vec![
            transfer(StateId(2), x, a), // on unreachable d1
            output(StateId(3), y, 0),   // on unreachable d2
            output(a, x, 1),            // reachable, for contrast
        ];
        let r = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        let c = r.certificate.class_of();
        assert_eq!(
            c[0], c[1],
            "unreachable faults merge across cells and kinds"
        );
        assert_ne!(c[0], c[2]);
        assert_eq!(r.certificate.kinds()[0], ClassKind::Unreachable);
        assert_eq!(r.stats.unreachable_faults, 2);
    }

    #[test]
    fn budget_exceeded_degrades_to_singletons() {
        let (m, a, x) = twin_targets();
        let faults = vec![
            transfer(a, x, StateId(2)),
            transfer(a, x, StateId(3)),
            transfer(a, x, StateId(2)), // duplicate of fault 0
        ];
        let opts = AnalyzeOptions {
            max_nodes_per_cell: 1,
        };
        let r = analyze_collapse(&m, &faults, &opts).unwrap();
        let c = r.certificate.class_of();
        assert_ne!(c[0], c[1], "distinct targets stay apart under budget");
        assert_eq!(c[0], c[2], "identical faults still share trivially");
        assert_eq!(r.ambiguous_cells, vec![(a, x)]);
        assert_eq!(r.certificate.kinds(), &[ClassKind::Singleton; 2]);
        assert_eq!(r.stats.singleton_classes, 2);
    }

    #[test]
    fn dominance_edges_point_at_the_cells_output_class() {
        let (m, a, x) = twin_targets();
        let faults = vec![
            output(a, x, 1),            // class 0: output
            transfer(a, x, StateId(2)), // class 1: transfer
            transfer(a, x, a),          // class 2: transfer
        ];
        let r = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        assert_eq!(r.certificate.dominance(), &[(1, 0), (2, 0)]);
        assert_eq!(r.stats.dominance_edges, 2);
    }

    #[test]
    fn rejects_undefined_cells_and_bad_targets() {
        // A partial machine: (s0, j) has no transition.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let i = b.add_input("i");
        let j = b.add_input("j");
        let o = b.add_output("o");
        b.add_transition(s0, i, s0, o);
        let m = b.build(s0).unwrap();
        let err =
            analyze_collapse(&m, &[transfer(s0, j, s0)], &AnalyzeOptions::default()).unwrap_err();
        assert_eq!(err, AnalyzeError::UndefinedFaultCell { fault: 0 });

        let (m2, a, x) = twin_targets();
        let err = analyze_collapse(
            &m2,
            &[transfer(a, x, StateId(99))],
            &AnalyzeOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, AnalyzeError::InvalidFaultTarget { fault: 0 });
        let err =
            analyze_collapse(&m2, &[output(a, x, 99)], &AnalyzeOptions::default()).unwrap_err();
        assert_eq!(err, AnalyzeError::InvalidFaultTarget { fault: 0 });
    }

    #[test]
    fn analysis_is_deterministic_and_binds_the_campaign() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(&m, &FaultSpace::default());
        let a = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        let b = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        assert_eq!(a.certificate, b.certificate);
        assert_eq!(a.certificate.fingerprint(), b.certificate.fingerprint());
        assert!(a.certificate.check(&m, &faults).is_ok());
        assert!(
            a.stats.collapsed_faults > 0,
            "figure2's enumerated fault space must collapse somewhere"
        );
    }
}

//! Homomorphic test-model abstraction.
//!
//! Section 6 of the paper derives test models from implementations by a
//! *homomorphic*, many-to-one, transition-preserving mapping `A` over state
//! variables: remove observable / control-irrelevant state, cut signals
//! become inputs, and every concrete transition maps to an abstract one.
//! This crate provides both halves of that story:
//!
//! * **Structural pipelines** ([`Pipeline`]) — named sequences of
//!   netlist-level abstraction passes (the six steps of Fig 3(b)), with
//!   measured statistics after every step;
//! * **Semantic quotients** ([`Quotient`], [`build_quotient`]) — the
//!   state/input classification induced by an abstraction on an explicit
//!   machine, with checks that the mapping is transition-preserving and
//!   that abstract outputs are deterministic (the measure behind
//!   Requirement 1: non-deterministic abstract outputs are exactly the
//!   situations in which an output error may be *non-uniform*, i.e. the
//!   test model has abstracted too much — Section 6.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod quotient;

pub use pipeline::{Pipeline, Step, StepReport};
pub use quotient::{
    build_quotient, check_homomorphism, HomomorphismReport, OutputConflict, Quotient,
    QuotientError, QuotientResult, TransitionConflict,
};

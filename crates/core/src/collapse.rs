//! Collapse certificates: machine-checkable fault-equivalence partitions.
//!
//! Classic fault collapsing partitions the fault universe *before any
//! simulation runs*: faults proven to have identical outcomes under
//! **every** test set in the domain land in one class, a campaign
//! simulates only one representative per class, and the remaining
//! outcomes are expanded deterministically. This module defines the
//! artifact that carries such a partition — the [`CollapseCertificate`] —
//! together with the campaign-side machinery that consumes it: pruning to
//! representatives, outcome expansion, and the `verify` check that
//! re-simulates everything and fails on any member whose outcome diverges
//! from its representative's.
//!
//! The *analysis* that computes a certificate lives in the
//! `simcov-analyze` crate (it layers on top of this one); the certificate
//! type lives here so [`crate::FaultCampaign`] and
//! [`crate::ResilientCampaign`] can consume it without a dependency
//! cycle. A certificate is bound to its `(machine, fault list)` pair by
//! an FNV-1a fingerprint (same hash discipline as the checkpoint journal
//! and the telemetry traces, via [`crate::fingerprint`]); using a
//! certificate against a different machine or fault list is rejected by
//! [`CollapseCertificate::check`] instead of silently expanding garbage.
//!
//! Soundness is *not* re-established here — it is the analysis's theorem
//! (equivalence of the label streams that drive `detects` /
//! `excited_at` / `is_masked_on`, see DESIGN.md §13) — but it is
//! *auditable* here: `--collapse verify` simulates every fault and calls
//! [`CollapseCertificate::violations`], making the certificate checker a
//! fourth leg of the CI engine-equivalence gate.

use crate::error_model::Fault;
use crate::faults::FaultOutcome;
use simcov_fsm::ExplicitMealy;
use simcov_obs::fnv::Fnv64;
use std::fmt;
use std::str::FromStr;

/// How a campaign consumes a [`CollapseCertificate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollapseMode {
    /// Ignore the certificate: simulate every fault (the baseline).
    #[default]
    Off,
    /// Simulate only class representatives and expand per-class outcomes
    /// deterministically. Merged stats and the per-fault report are
    /// bit-identical to [`Off`](Self::Off) for a sound certificate.
    On,
    /// Simulate every fault (as `Off`) *and* check every class member's
    /// outcome against its representative's, reporting violations — the
    /// certificate audit.
    Verify,
}

impl CollapseMode {
    /// Stable lower-case name (CLI value and report token).
    pub fn name(self) -> &'static str {
        match self {
            CollapseMode::Off => "off",
            CollapseMode::On => "on",
            CollapseMode::Verify => "verify",
        }
    }
}

impl fmt::Display for CollapseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CollapseMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CollapseMode::Off),
            "on" => Ok(CollapseMode::On),
            "verify" => Ok(CollapseMode::Verify),
            other => Err(format!(
                "unknown collapse mode `{other}` (expected off|on|verify)"
            )),
        }
    }
}

/// Why a class's members are equivalent — the analysis that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassKind {
    /// Faults at states unreachable from reset: never excited, never
    /// detected, never masked, under any test set (one global class).
    Unreachable,
    /// Effective output faults sharing one `(state, input)` cell: all are
    /// detected at the cell's first traversal, whatever the relabelling.
    Output,
    /// Ineffective (no-op) faults sharing one cell: the patched machine
    /// *is* the golden machine, so only excitation is observable.
    Ineffective,
    /// Effective transfer faults sharing one cell whose post-excitation
    /// joint label streams are bisimilar (partition refinement over the
    /// fault-patched pair structure).
    Transfer,
    /// A fault provably equivalent to nothing else (or whose cell
    /// exceeded the analysis budget): simulated as-is.
    Singleton,
}

impl ClassKind {
    /// Stable lower-case name (report token).
    pub fn name(self) -> &'static str {
        match self {
            ClassKind::Unreachable => "unreachable",
            ClassKind::Output => "output",
            ClassKind::Ineffective => "ineffective",
            ClassKind::Transfer => "transfer",
            ClassKind::Singleton => "singleton",
        }
    }

    fn tag(self) -> u64 {
        match self {
            ClassKind::Unreachable => 1,
            ClassKind::Output => 2,
            ClassKind::Ineffective => 3,
            ClassKind::Transfer => 4,
            ClassKind::Singleton => 5,
        }
    }
}

/// A structural or binding problem that makes a certificate unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// `class_of` does not cover the fault list one-to-one.
    LengthMismatch {
        /// Faults in the list the certificate was offered for.
        faults: usize,
        /// Entries in the certificate's class assignment.
        classes_of: usize,
    },
    /// Class IDs are not canonical (`0..num_classes` in order of first
    /// appearance) — stable IDs are part of the certificate contract.
    NonCanonicalClasses {
        /// First offending fault index.
        fault: usize,
    },
    /// A `kinds` entry is missing or superfluous.
    KindCountMismatch {
        /// Classes implied by the assignment.
        classes: usize,
        /// Kind tags provided.
        kinds: usize,
    },
    /// A dominance edge references a class that does not exist or itself.
    BadDominanceEdge {
        /// The offending `(dominating, dominated)` pair.
        edge: (u32, u32),
    },
    /// The certificate was computed for a different machine or fault
    /// list (FNV binding fingerprint disagrees).
    BindingMismatch {
        /// Fingerprint the certificate carries.
        expected: u64,
        /// Fingerprint of the `(machine, faults)` it was offered for.
        found: u64,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::LengthMismatch { faults, classes_of } => write!(
                f,
                "certificate covers {classes_of} faults but the campaign has {faults}"
            ),
            CertificateError::NonCanonicalClasses { fault } => write!(
                f,
                "certificate class IDs are not canonical (first violation at fault {fault})"
            ),
            CertificateError::KindCountMismatch { classes, kinds } => {
                write!(f, "certificate has {classes} classes but {kinds} kind tags")
            }
            CertificateError::BadDominanceEdge { edge } => write!(
                f,
                "certificate dominance edge ({}, {}) is out of range or a self-loop",
                edge.0, edge.1
            ),
            CertificateError::BindingMismatch { expected, found } => write!(
                f,
                "certificate binds fingerprint {expected:016x} but this campaign is \
                 {found:016x} (different machine or fault list)"
            ),
        }
    }
}

impl std::error::Error for CertificateError {}

/// A class member whose simulated outcome diverged from its
/// representative's — produced by [`CollapseMode::Verify`]; a sound
/// certificate yields none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollapseViolation {
    /// The class in which the divergence occurred.
    pub class: u32,
    /// Fault index (into the campaign's fault list) of the representative.
    pub representative: u32,
    /// Fault index of the diverging member.
    pub member: u32,
}

impl fmt::Display for CollapseViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class {}: member fault {} diverged from representative fault {}",
            self.class, self.member, self.representative
        )
    }
}

/// `true` when two outcomes agree on everything a test set can observe
/// (the injected fault itself is of course allowed to differ).
pub fn same_observable_outcome(a: &FaultOutcome, b: &FaultOutcome) -> bool {
    a.detected == b.detected && a.excited == b.excited && a.masked_somewhere == b.masked_somewhere
}

/// A fault-equivalence partition bound to one `(machine, fault list)`
/// pair, with stable class IDs, a representative per class and class
/// dominance edges.
///
/// Invariants (established by [`new`](Self::new), relied on everywhere):
///
/// * `class_of.len()` = the fault-list length; class IDs are canonical
///   (`0..num_classes`, numbered by first appearance in fault order);
/// * every class is non-empty; its representative is its smallest member
///   (= first in fault order), so representatives ascend with class ID;
/// * `kinds[c]` tags class `c`; `dominance` holds `(dominating,
///   dominated)` class pairs (detecting any member of the dominating
///   class implies detecting every member of the dominated class, for
///   every test set in the domain);
/// * `fingerprint()` commits to the binding (machine + fault list) *and*
///   the partition content, so any tampering — or offering the
///   certificate to a different campaign — is detected by
///   [`check`](Self::check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseCertificate {
    class_of: Vec<u32>,
    kinds: Vec<ClassKind>,
    representative: Vec<u32>,
    members: Vec<Vec<u32>>,
    dominance: Vec<(u32, u32)>,
    binding: u64,
    fingerprint: u64,
}

fn binding_fingerprint(m: &ExplicitMealy, faults: &[Fault]) -> u64 {
    let mut h = Fnv64::new();
    crate::fingerprint::hash_machine(&mut h, m);
    crate::fingerprint::hash_faults(&mut h, faults);
    h.finish()
}

impl CollapseCertificate {
    /// Builds a certificate from a class assignment over `faults`,
    /// validating the structural invariants and computing the binding and
    /// content fingerprints. `kinds[c]` tags class `c`; `dominance` lists
    /// `(dominating, dominated)` class pairs.
    ///
    /// This constructor checks *structure*, not *soundness*: a
    /// structurally valid but semantically wrong partition passes `new`
    /// and [`check`](Self::check) — and is then caught by
    /// [`CollapseMode::Verify`]. Soundness is the producing analysis's
    /// obligation.
    pub fn new(
        m: &ExplicitMealy,
        faults: &[Fault],
        class_of: Vec<u32>,
        kinds: Vec<ClassKind>,
        dominance: Vec<(u32, u32)>,
    ) -> Result<Self, CertificateError> {
        if class_of.len() != faults.len() {
            return Err(CertificateError::LengthMismatch {
                faults: faults.len(),
                classes_of: class_of.len(),
            });
        }
        // Canonical numbering: class c must first appear only after every
        // class < c has appeared.
        let mut next_fresh = 0u32;
        let mut members: Vec<Vec<u32>> = Vec::new();
        for (idx, &c) in class_of.iter().enumerate() {
            if c > next_fresh {
                return Err(CertificateError::NonCanonicalClasses { fault: idx });
            }
            if c == next_fresh {
                next_fresh += 1;
                members.push(Vec::new());
            }
            members[c as usize].push(idx as u32);
        }
        let num_classes = members.len();
        if kinds.len() != num_classes {
            return Err(CertificateError::KindCountMismatch {
                classes: num_classes,
                kinds: kinds.len(),
            });
        }
        for &(a, b) in &dominance {
            if a as usize >= num_classes || b as usize >= num_classes || a == b {
                return Err(CertificateError::BadDominanceEdge { edge: (a, b) });
            }
        }
        let representative: Vec<u32> = members.iter().map(|ms| ms[0]).collect();
        let binding = binding_fingerprint(m, faults);
        let mut h = Fnv64::new();
        h.u64(binding);
        h.u64(class_of.len() as u64);
        for &c in &class_of {
            h.u64(u64::from(c));
        }
        h.u64(kinds.len() as u64);
        for k in &kinds {
            h.u64(k.tag());
        }
        h.u64(dominance.len() as u64);
        for &(a, b) in &dominance {
            h.u64(u64::from(a));
            h.u64(u64::from(b));
        }
        let fingerprint = h.finish();
        Ok(CollapseCertificate {
            class_of,
            kinds,
            representative,
            members,
            dominance,
            binding,
            fingerprint,
        })
    }

    /// Verifies this certificate binds exactly the `(machine, faults)`
    /// pair it is about to be used with.
    ///
    /// # Errors
    ///
    /// [`CertificateError::BindingMismatch`] (stale certificate) or
    /// [`CertificateError::LengthMismatch`].
    pub fn check(&self, m: &ExplicitMealy, faults: &[Fault]) -> Result<(), CertificateError> {
        if self.class_of.len() != faults.len() {
            return Err(CertificateError::LengthMismatch {
                faults: faults.len(),
                classes_of: self.class_of.len(),
            });
        }
        let found = binding_fingerprint(m, faults);
        if found != self.binding {
            return Err(CertificateError::BindingMismatch {
                expected: self.binding,
                found,
            });
        }
        Ok(())
    }

    /// Number of faults the certificate covers.
    pub fn num_faults(&self) -> usize {
        self.class_of.len()
    }

    /// Number of equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.representative.len()
    }

    /// Faults a [`CollapseMode::On`] campaign skips: members minus
    /// representatives.
    pub fn collapsed_faults(&self) -> usize {
        self.num_faults() - self.num_classes()
    }

    /// Class of each fault, in fault order.
    pub fn class_of(&self) -> &[u32] {
        &self.class_of
    }

    /// Kind tag of each class.
    pub fn kinds(&self) -> &[ClassKind] {
        &self.kinds
    }

    /// Representative fault index per class (ascending — class IDs are
    /// numbered by first appearance in fault order).
    pub fn representatives(&self) -> &[u32] {
        &self.representative
    }

    /// Member fault indices of class `c`, ascending.
    pub fn members(&self, c: u32) -> &[u32] {
        &self.members[c as usize]
    }

    /// Dominance edges `(dominating class, dominated class)`.
    pub fn dominance(&self) -> &[(u32, u32)] {
        &self.dominance
    }

    /// Content fingerprint: commits to the binding and the full partition.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The pruned fault list a [`CollapseMode::On`] campaign simulates:
    /// one representative per class, in fault order.
    pub fn representative_faults(&self, faults: &[Fault]) -> Vec<Fault> {
        self.representative
            .iter()
            .map(|&idx| faults[idx as usize])
            .collect()
    }

    /// Expands per-representative outcomes (in class order, as produced
    /// by simulating [`representative_faults`](Self::representative_faults))
    /// to the full fault list: each member receives its representative's
    /// observables with its own fault identity.
    ///
    /// # Panics
    ///
    /// Panics if `rep_outcomes.len() != self.num_classes()`.
    pub fn expand_outcomes(
        &self,
        faults: &[Fault],
        rep_outcomes: &[FaultOutcome],
    ) -> Vec<FaultOutcome> {
        assert_eq!(
            rep_outcomes.len(),
            self.num_classes(),
            "one outcome per representative"
        );
        self.class_of
            .iter()
            .enumerate()
            .map(|(idx, &c)| {
                let rep = &rep_outcomes[c as usize];
                FaultOutcome {
                    fault: faults[idx],
                    detected: rep.detected,
                    excited: rep.excited,
                    masked_somewhere: rep.masked_somewhere,
                }
            })
            .collect()
    }

    /// Audits a full (uncollapsed) campaign's outcomes against the
    /// partition: every member must observably equal its representative.
    /// Returns the divergences in `(class, member)` order — empty for a
    /// sound certificate.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes.len() != self.num_faults()`.
    pub fn violations(&self, outcomes: &[FaultOutcome]) -> Vec<CollapseViolation> {
        assert_eq!(
            outcomes.len(),
            self.num_faults(),
            "one outcome per fault, in fault order"
        );
        let mut found = Vec::new();
        for (c, ms) in self.members.iter().enumerate() {
            let rep_idx = ms[0];
            let rep = &outcomes[rep_idx as usize];
            for &m in &ms[1..] {
                if !same_observable_outcome(rep, &outcomes[m as usize]) {
                    found.push(CollapseViolation {
                        class: c as u32,
                        representative: rep_idx,
                        member: m,
                    });
                }
            }
        }
        found
    }
}

/// Per-run collapse accounting attached to campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseSummary {
    /// The mode the run used ([`CollapseMode::Off`] runs carry no
    /// summary).
    pub mode: CollapseMode,
    /// Classes in the certificate.
    pub classes: usize,
    /// Faults skipped by pruning (0 under [`CollapseMode::Verify`]).
    pub collapsed_faults: usize,
    /// Divergences found by [`CollapseMode::Verify`] (always empty under
    /// [`CollapseMode::On`], which simulates representatives only).
    pub violations: Vec<CollapseViolation>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{enumerate_single_faults, FaultSpace};
    use crate::testutil::figure2;

    fn trivial_cert(m: &ExplicitMealy, faults: &[Fault]) -> CollapseCertificate {
        // Every fault a singleton: always sound.
        let class_of: Vec<u32> = (0..faults.len() as u32).collect();
        let kinds = vec![ClassKind::Singleton; faults.len()];
        CollapseCertificate::new(m, faults, class_of, kinds, Vec::new()).unwrap()
    }

    #[test]
    fn canonical_numbering_enforced() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(&m, &FaultSpace::default());
        let mut class_of: Vec<u32> = vec![0; faults.len()];
        class_of[1] = 2; // skips class 1
        let err = CollapseCertificate::new(
            &m,
            &faults,
            class_of,
            vec![ClassKind::Singleton; 2],
            Vec::new(),
        )
        .unwrap_err();
        assert_eq!(err, CertificateError::NonCanonicalClasses { fault: 1 });
    }

    #[test]
    fn binding_rejects_other_machine_and_other_faults() {
        let (m, fault) = figure2();
        let faults = enumerate_single_faults(&m, &FaultSpace::default());
        let cert = trivial_cert(&m, &faults);
        assert!(cert.check(&m, &faults).is_ok());
        // Different machine.
        let mutated = fault.inject(&m);
        assert!(matches!(
            cert.check(&mutated, &faults),
            Err(CertificateError::BindingMismatch { .. })
        ));
        // Same machine, reordered fault list.
        let mut rev = faults.clone();
        rev.reverse();
        assert!(matches!(
            cert.check(&m, &rev),
            Err(CertificateError::BindingMismatch { .. })
        ));
        // Different length.
        assert!(matches!(
            cert.check(&m, &faults[1..]),
            Err(CertificateError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_commits_to_partition_content() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(&m, &FaultSpace::default());
        let singles = trivial_cert(&m, &faults);
        let merged = CollapseCertificate::new(
            &m,
            &faults,
            vec![0; faults.len()],
            vec![ClassKind::Singleton],
            Vec::new(),
        )
        .unwrap();
        assert_ne!(singles.fingerprint(), merged.fingerprint());
    }

    #[test]
    fn expand_restores_fault_identity() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(&m, &FaultSpace::default());
        // One big (unsound, but structurally fine) class.
        let cert = CollapseCertificate::new(
            &m,
            &faults,
            vec![0; faults.len()],
            vec![ClassKind::Singleton],
            Vec::new(),
        )
        .unwrap();
        let rep = FaultOutcome {
            fault: faults[0],
            detected: Some((0, 3)),
            excited: true,
            masked_somewhere: false,
        };
        let expanded = cert.expand_outcomes(&faults, &[rep]);
        assert_eq!(expanded.len(), faults.len());
        for (idx, o) in expanded.iter().enumerate() {
            assert_eq!(o.fault, faults[idx]);
            assert_eq!(o.detected, Some((0, 3)));
        }
    }

    #[test]
    fn violations_catch_divergent_members() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(&m, &FaultSpace::default());
        let cert = CollapseCertificate::new(
            &m,
            &faults,
            vec![0; faults.len()],
            vec![ClassKind::Singleton],
            Vec::new(),
        )
        .unwrap();
        let mut outcomes: Vec<FaultOutcome> = faults
            .iter()
            .map(|&f| FaultOutcome {
                fault: f,
                detected: None,
                excited: false,
                masked_somewhere: false,
            })
            .collect();
        assert!(cert.violations(&outcomes).is_empty());
        outcomes[2].detected = Some((1, 1));
        let v = cert.violations(&outcomes);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].member, 2);
        assert_eq!(v[0].representative, 0);
    }

    #[test]
    fn mode_parses_and_displays() {
        for (s, mode) in [
            ("off", CollapseMode::Off),
            ("on", CollapseMode::On),
            ("verify", CollapseMode::Verify),
        ] {
            assert_eq!(s.parse::<CollapseMode>().unwrap(), mode);
            assert_eq!(mode.name(), s);
        }
        assert!("ON".parse::<CollapseMode>().is_err());
    }
}

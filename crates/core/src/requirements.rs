//! Executable checkers for the paper's Requirements 1–5 (Sections 4–6).
//!
//! | Requirement | Statement | Checker |
//! |---|---|---|
//! | 1 | all output errors are uniform | [`check_req1_uniform_outputs`] (output-determinism of the abstraction) |
//! | 2 | processing completes in ≤ k transitions | [`check_req2_bounded_processing`] (no all-stall cycle) |
//! | 3 | unique input ⇒ unique output | [`check_req3_unique_outputs`] (per-state output injectivity) |
//! | 4 | transfer errors are not masked | assumption; per-sequence symptom detector in [`crate::error_model::is_masked_on`] |
//! | 5 | interaction state is observable | [`check_req5_observable`] (name-set containment) |

use simcov_abstraction::{build_quotient, OutputConflict, Quotient, QuotientError};
use simcov_fsm::{ExplicitMealy, InputSym, OutputSym, StateId};

/// Why [`check_req1_uniform_outputs`] rejected an abstraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Req1Violation {
    /// The quotient's class vectors do not fit the machine's dimensions —
    /// a malformed abstraction map, not an over-abstraction verdict.
    WidthMismatch(QuotientError),
    /// The requirement itself fails: these concrete transition pairs map
    /// to the same abstract transition but emit different outputs.
    OutputConflicts(Vec<OutputConflict>),
}

impl std::fmt::Display for Req1Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Req1Violation::WidthMismatch(e) => write!(f, "malformed abstraction map: {e}"),
            Req1Violation::OutputConflicts(c) => {
                write!(f, "{} non-uniform output conflicts", c.len())
            }
        }
    }
}

impl std::error::Error for Req1Violation {}

/// Requirement 1 — *"All output errors are uniform."*
///
/// The paper's measure of "did we abstract too much" (Section 6.3): if two
/// concrete transitions map to the same test-model transition but produce
/// different (abstract) outputs, then an output error on that test-model
/// transition would be exposed only for *some* preceding sequences — a
/// non-uniform output error. Returns the conflicting witnesses.
///
/// # Errors
///
/// [`Req1Violation::OutputConflicts`] with the witnesses (empty ⇔
/// requirement satisfied), or [`Req1Violation::WidthMismatch`] if the
/// quotient does not even fit the machine — a user-supplied malformed map
/// is reported, not panicked on.
pub fn check_req1_uniform_outputs(
    concrete: &ExplicitMealy,
    q: &Quotient,
) -> Result<(), Req1Violation> {
    let r = build_quotient(concrete, q).map_err(Req1Violation::WidthMismatch)?;
    if r.output_conflicts.is_empty() {
        Ok(())
    } else {
        Err(Req1Violation::OutputConflicts(r.output_conflicts))
    }
}

/// Evidence from [`check_req2_bounded_processing`]: the longest possible
/// run of consecutive "processing not complete" transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallBound {
    /// Maximum number of consecutive stalled transitions from any
    /// reachable state; processing of an input therefore completes within
    /// `bound + 1` transitions.
    pub bound: usize,
}

/// A cycle on which processing never completes — Requirement 2 violated
/// (`k` would have to be infinite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfiniteStallWitness {
    /// States of one offending cycle (each consecutive pair connected by
    /// a stalled transition, wrapping around).
    pub cycle: Vec<StateId>,
}

/// Requirement 2 — *"The processing required to generate the output for
/// each input completes in at most k transitions."*
///
/// `stalled(output)` marks transitions during which processing has not
/// completed (e.g. a pipeline `stall` output is asserted). The requirement
/// holds iff the stalled-transition subgraph is acyclic; the returned
/// [`StallBound`] is its longest path, so `k = bound + 1` bounds the
/// processing latency.
///
/// # Errors
///
/// [`InfiniteStallWitness`] with a concrete stall cycle if one exists.
pub fn check_req2_bounded_processing(
    m: &ExplicitMealy,
    stalled: impl Fn(OutputSym) -> bool,
) -> Result<StallBound, InfiniteStallWitness> {
    let reach = m.reachable_states();
    let n = reach.len();
    let mut idx_of = vec![usize::MAX; m.num_states()];
    for (i, &s) in reach.iter().enumerate() {
        idx_of[s.index()] = i;
    }
    // Stalled-edge adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, &s) in reach.iter().enumerate() {
        for i in m.inputs() {
            if let Some((nx, o)) = m.step(s, i) {
                if stalled(o) {
                    adj[u].push(idx_of[nx.index()]);
                }
            }
        }
    }
    // Detect a cycle / compute longest path by DFS with colours.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; n];
    let mut longest = vec![0usize; n];
    let mut on_path: Vec<usize> = Vec::new();
    // Iterative DFS (enter/exit events).
    for root in 0..n {
        if colour[root] != Colour::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = Colour::Grey;
        on_path.push(root);
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < adj[u].len() {
                let v = adj[u][*ei];
                *ei += 1;
                match colour[v] {
                    Colour::White => {
                        colour[v] = Colour::Grey;
                        on_path.push(v);
                        stack.push((v, 0));
                    }
                    Colour::Grey => {
                        // Found a stall cycle: extract it from on_path.
                        let pos = on_path
                            .iter()
                            .position(|&x| x == v)
                            .expect("grey node is on the DFS path");
                        let cycle = on_path[pos..].iter().map(|&x| reach[x]).collect();
                        return Err(InfiniteStallWitness { cycle });
                    }
                    Colour::Black => {}
                }
            } else {
                colour[u] = Colour::Black;
                on_path.pop();
                stack.pop();
                let best = adj[u].iter().map(|&v| longest[v] + 1).max().unwrap_or(0);
                longest[u] = best;
            }
        }
    }
    Ok(StallBound {
        bound: longest.iter().copied().max().unwrap_or(0),
    })
}

/// Requirement 3 — *"Each unique input results in a unique output."*
///
/// Checked per state (the form used in conformance testing and in the
/// proof of Case 1): from any reachable state, two distinct inputs must
/// not produce the same output. In practice this is *achieved* by data
/// selection during vector expansion (see [`crate::expand`]); this checker
/// verifies the achieved machine.
///
/// # Errors
///
/// The list of `(state, input, input)` collisions.
pub fn check_req3_unique_outputs(
    m: &ExplicitMealy,
) -> Result<(), Vec<(StateId, InputSym, InputSym)>> {
    let mut collisions = Vec::new();
    for s in m.reachable_states() {
        for i1 in m.inputs() {
            for i2 in m.inputs() {
                if i2.0 <= i1.0 {
                    continue;
                }
                if let (Some((_, o1)), Some((_, o2))) = (m.step(s, i1), m.step(s, i2)) {
                    if o1 == o2 {
                        collisions.push((s, i1, i2));
                    }
                }
            }
        }
    }
    if collisions.is_empty() {
        Ok(())
    } else {
        Err(collisions)
    }
}

/// Requirement 5 — *"The state associated with interactions between
/// processing of subsequent inputs is made observable."*
///
/// `interaction_state` names the `s2` state variables (in the paper's DLX
/// case: the destination-register addresses of the current and two
/// previous instructions, and the Processor Status Word); `observable`
/// names everything the functional simulation model exposes for
/// comparison. Containment check, by name.
///
/// # Errors
///
/// The interaction-state names that are not observable.
pub fn check_req5_observable(
    interaction_state: &[&str],
    observable: &[&str],
) -> Result<(), Vec<String>> {
    let obs: std::collections::HashSet<&str> = observable.iter().copied().collect();
    let missing: Vec<String> = interaction_state
        .iter()
        .filter(|s| !obs.contains(**s))
        .map(|s| s.to_string())
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_abstraction::Quotient;
    use simcov_fsm::MealyBuilder;

    #[test]
    fn req1_identity_quotient_uniform() {
        let (m, _) = crate::testutil::figure2();
        let q = Quotient::identity(&m);
        assert!(check_req1_uniform_outputs(&m, &q).is_ok());
    }

    #[test]
    fn req1_overabstraction_caught() {
        // Merge states 3 and 3' (which have different outputs on b): the
        // abstraction lost the state distinguishing them — exactly the
        // "interlock without destination register" situation of §6.3.
        let (m, _) = crate::testutil::figure2();
        let s3 = m.state_by_label("3").unwrap();
        let s3p = m.state_by_label("3'").unwrap();
        let q = Quotient::by_state_key(&m, |s| if s == s3 || s == s3p { u32::MAX } else { s.0 });
        match check_req1_uniform_outputs(&m, &q).unwrap_err() {
            Req1Violation::OutputConflicts(conflicts) => assert!(!conflicts.is_empty()),
            other => panic!("expected output conflicts, got {other:?}"),
        }
    }

    #[test]
    fn req1_malformed_quotient_rejected_not_panicked() {
        let (m, _) = crate::testutil::figure2();
        let mut q = Quotient::identity(&m);
        q.state_class.pop(); // wrong width: no longer covers every state
        match check_req1_uniform_outputs(&m, &q).unwrap_err() {
            Req1Violation::WidthMismatch(e) => {
                assert!(e.to_string().contains("state"), "{e}");
            }
            other => panic!("expected width mismatch, got {other:?}"),
        }
    }

    #[test]
    fn req2_bounded_when_stall_acyclic() {
        // s0 -stall-> s1 -stall-> s2 -ok-> s0 : bound 2.
        let mut b = MealyBuilder::new();
        let s: Vec<_> = (0..3).map(|i| b.add_state(format!("s{i}"))).collect();
        let i = b.add_input("i");
        let stall = b.add_output("stall");
        let ok = b.add_output("ok");
        b.add_transition(s[0], i, s[1], stall);
        b.add_transition(s[1], i, s[2], stall);
        b.add_transition(s[2], i, s[0], ok);
        let m = b.build(s[0]).unwrap();
        let bound = check_req2_bounded_processing(&m, |o| o == stall).unwrap();
        assert_eq!(bound.bound, 2);
    }

    #[test]
    fn req2_infinite_stall_detected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let i = b.add_input("i");
        let j = b.add_input("j");
        let stall = b.add_output("stall");
        let ok = b.add_output("ok");
        b.add_transition(s0, i, s1, stall);
        b.add_transition(s1, i, s0, stall); // stall cycle s0 <-> s1
        b.add_transition(s0, j, s0, ok);
        b.add_transition(s1, j, s0, ok);
        let m = b.build(s0).unwrap();
        let w = check_req2_bounded_processing(&m, |o| o == stall).unwrap_err();
        assert_eq!(w.cycle.len(), 2);
    }

    #[test]
    fn req2_self_loop_stall_detected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let i = b.add_input("i");
        let stall = b.add_output("stall");
        b.add_transition(s0, i, s0, stall);
        let m = b.build(s0).unwrap();
        let w = check_req2_bounded_processing(&m, |o| o == stall).unwrap_err();
        assert_eq!(w.cycle, vec![s0]);
    }

    #[test]
    fn req2_no_stalls_bound_zero() {
        let (m, _) = crate::testutil::figure2();
        let bound = check_req2_bounded_processing(&m, |_| false).unwrap();
        assert_eq!(bound.bound, 0);
    }

    #[test]
    fn req3_collisions_reported() {
        let (m, _) = crate::testutil::figure2();
        // figure2 has many same-output transitions per state (o0 loops).
        let collisions = check_req3_unique_outputs(&m).unwrap_err();
        assert!(!collisions.is_empty());
        // A machine with per-state unique outputs passes.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let oa = b.add_output("oa");
        let oc = b.add_output("oc");
        b.add_transition(s0, a, s0, oa);
        b.add_transition(s0, c, s0, oc);
        let m = b.build(s0).unwrap();
        assert!(check_req3_unique_outputs(&m).is_ok());
    }

    #[test]
    fn req5_containment() {
        assert!(check_req5_observable(
            &["ex.dest", "psw.zero"],
            &["ex.dest", "psw.zero", "regfile"]
        )
        .is_ok());
        let missing = check_req5_observable(&["ex.dest", "psw.zero"], &["regfile"]).unwrap_err();
        assert_eq!(missing, vec!["ex.dest".to_string(), "psw.zero".to_string()]);
    }
}

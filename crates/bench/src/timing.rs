//! Minimal wall-clock benchmarking, replacing the external criterion
//! harness so the workspace builds offline with zero dependencies.
//!
//! Methodology: one untimed warm-up call sizes the iteration count to a
//! ~0.5 s budget (clamped to [5, 10_000] iterations), then the measured
//! loop reports mean wall time per iteration. `std::hint::black_box`
//! keeps the optimizer from deleting the benchmarked computation.

use std::time::{Duration, Instant};

/// Target total measured time per benchmark.
const BUDGET: Duration = Duration::from_millis(500);

/// Times `f` and prints `name: <mean>/iter (<iters> iters)` to stderr.
/// Returns the mean duration so callers can assert on relative timings
/// (e.g. the parallel-speedup bench).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed();
    let iters = if once.is_zero() {
        10_000
    } else {
        (BUDGET.as_nanos() / once.as_nanos().max(1)).clamp(5, 10_000) as u32
    };
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mean = t0.elapsed() / iters;
    eprintln!("  {name:<44} {mean:>12.2?}/iter ({iters} iters)");
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean_for_real_work() {
        let mean = bench("timing/self_test", || {
            std::hint::black_box((0..10_000u64).sum::<u64>())
        });
        assert!(mean < Duration::from_secs(1));
    }
}

//! E3+E4 / Figure 3: the initial test model and the abstraction sequence
//! 160 -> 118 -> 110 -> 86 -> 54 -> 46 -> 22.

use simcov_bench::timing::BenchReport;
use simcov_dlx::control::initial_control_netlist;
use simcov_dlx::testmodel::{fig3b_pipeline, FIG3B_LATCH_SEQUENCE};

fn report() {
    let initial = initial_control_netlist();
    eprintln!("== Figure 3(a): initial abstract test model ==");
    eprintln!(
        "  {}   (paper: 160 latches, 41 PIs, 32 POs)",
        initial.stats()
    );
    eprintln!("== Figure 3(b): abstraction sequence ==");
    let (_, reports) = fig3b_pipeline().run(&initial);
    let mut prev = initial.stats().latches;
    for (r, expect) in reports.iter().zip(&FIG3B_LATCH_SEQUENCE[1..]) {
        eprintln!(
            "  {:<46} {:>4} -> {:<4} (paper: {})",
            r.label, prev, r.stats.latches, expect
        );
        prev = r.stats.latches;
    }
}

fn main() {
    report();
    let mut rep = BenchReport::new("fig3_abstraction");
    rep.bench("fig3/build_initial_model", initial_control_netlist);
    let initial = initial_control_netlist();
    rep.bench("fig3/run_abstraction_pipeline", || {
        fig3b_pipeline().run(&initial)
    });
    rep.counter("fig3/initial_latches", initial.stats().latches as u64);
    rep.write().expect("write bench report");
}

//! `report` — regenerates every table and figure of the paper's
//! evaluation in one run (no benchmarking noise; use `cargo bench` for
//! timings).
//!
//! ```text
//! report [fig2|fig3a|fig3b|sec72|completeness|coverage|overabstraction|tour|all]
//! ```

use simcov_abstraction::{build_quotient, Quotient};
use simcov_bench::{reduced_dlx_machine, reduced_dlx_machine_hidden, ring_with_chords};
use simcov_core::models::figure2;
use simcov_core::{
    certify_completeness, check_req1_uniform_outputs, detects, enumerate_single_faults, excited_at,
    extend_cyclically, forall_k_distinguishable, run_campaign, FaultCampaign, FaultSpace,
};
use simcov_dlx::control::initial_control_netlist;
use simcov_dlx::testmodel::{
    derive_test_model, derive_test_model_observable, fig3b_pipeline, valid_inputs_bdd,
    valid_inputs_constraint,
};
use simcov_fsm::{PairFsm, SymbolicFsm};
use simcov_tour::{
    coverage_set, greedy_transition_tour, random_test_set, state_tour, transition_tour,
    uio_test_set, w_method_test_set, TestSet,
};

fn fig2() {
    println!("================ E1 / Figure 2: limitations of transition tours ================");
    let (m, fault) = figure2();
    let faulty = fault.inject(&m);
    let a = m.input_by_label("a").unwrap();
    let b = m.input_by_label("b").unwrap();
    let c = m.input_by_label("c").unwrap();
    println!("fault: {fault}");
    for (name, seq) in [("<a,a,c>", vec![a, a, c]), ("<a,a,b>", vec![a, a, b])] {
        println!(
            "  {name}: excited at {:?}, exposed at {:?}",
            excited_at(&faulty, &fault, &seq),
            detects(&m, &faulty, &seq)
        );
    }
    let d = forall_k_distinguishable(&m, 1, 16).unwrap();
    println!("  forall-1 violations: {}", d.violations.len());
    for v in d.violations.iter().take(3) {
        println!(
            "    ({}, {}) witness {:?}",
            m.state_label(v.s1),
            m.state_label(v.s2),
            v.witness
                .iter()
                .map(|&i| m.input_label(i))
                .collect::<Vec<_>>()
        );
    }
    println!("  paper: the error is exposed only via <a,b>; tours choosing <a,c> miss it\n");
}

fn fig3a() {
    println!("================ E3 / Figure 3(a): initial abstract test model ================");
    let n = initial_control_netlist();
    println!("  {}   (paper: 160 latches, 41 PIs, 32 POs)", n.stats());
    println!("  {:<12} {:>7}", "module", "latches");
    for m in n.module_names() {
        println!("  {:<12} {:>7}", m, n.module_latches(&m).len());
    }
    println!();
}

fn fig3b() {
    println!("================ E4 / Figure 3(b): abstraction sequence ================");
    let initial = initial_control_netlist();
    let (_, reports) = fig3b_pipeline().run(&initial);
    println!(
        "  {:<46} {:>7} {:>5} {:>4}   paper",
        "step", "latches", "PIs", "POs"
    );
    println!(
        "  {:<46} {:>7} {:>5} {:>4}   160",
        "(initial)",
        initial.stats().latches,
        initial.stats().inputs,
        initial.stats().outputs
    );
    for (r, paper) in reports.iter().zip([118usize, 110, 86, 54, 46, 22]) {
        println!(
            "  {:<46} {:>7} {:>5} {:>4}   {}",
            r.label, r.stats.latches, r.stats.inputs, r.stats.outputs, paper
        );
    }
    println!();
}

fn sec72() {
    println!("================ E5 / Section 7.2: experimental results ================");
    let (fin, _) = derive_test_model();
    println!(
        "  final model: {}   (paper: 22 latches, 25 PIs, 4 POs)",
        fin.stats()
    );
    let mut fsm = SymbolicFsm::from_netlist(&fin);
    let valid = valid_inputs_bdd(&mut fsm);
    fsm.set_valid_inputs(valid);
    let t0 = std::time::Instant::now();
    let tr = fsm.transition_relation();
    let dt = t0.elapsed();
    println!(
        "  transition relation: built in {dt:?}, {} BDD nodes   (paper: ~10 s, 1997 UltraSparc)",
        fsm.mgr_ref().size(tr)
    );
    println!(
        "  valid input combinations: {:>12} of 2^25 = {}   (paper: 8228)",
        fsm.count_valid_inputs(),
        1u64 << 25
    );
    let t0 = std::time::Instant::now();
    let r = fsm.reachable();
    println!(
        "  reachable states:         {:>12} of 2^22 = {} in {} iterations, {:?}   (paper: 13720)",
        fsm.count_states(r.reached),
        1u64 << 22,
        r.iterations,
        t0.elapsed()
    );
    println!(
        "  transitions to cover:     {:>12}   (paper: 123,000,000; tour length 1,069,000,000)",
        fsm.count_transitions(r.reached)
    );
    // The full-model tour, via input don't-care classes (Section 7.2's
    // "taking input don't-cares into account").
    let t0 = std::time::Instant::now();
    let (class_machine, classes) = simcov_dlx::testmodel::full_model_class_machine();
    println!(
        "  input classes: {} (collapsing {} valid vectors) in {:?}",
        classes.len(),
        classes.total_valid(),
        t0.elapsed()
    );
    println!(
        "  class-quotient machine: {} states x {} classes = {} class-transitions",
        class_machine.num_states(),
        classes.len(),
        class_machine.num_transitions()
    );
    let t0 = std::time::Instant::now();
    match transition_tour(&class_machine) {
        Ok(tour) => {
            println!(
                "  FULL-MODEL transition tour: {} vectors ({} duplicates) in {:?}",
                tour.len(),
                tour.duplicates,
                t0.elapsed()
            );
            println!("  (covers every behaviourally distinct transition; the paper's 1069M tour");
            println!("   enumerated concrete vectors — scale by the class sizes for that view)");
        }
        Err(e) => println!("  full-model tour unavailable: {e}"),
    }
    println!();
}

fn completeness() {
    println!("================ E2 / Theorems 1-3: completeness ================");
    for (name, m, k) in [
        ("observable (Req 5 ok)", reduced_dlx_machine(), 1usize),
        ("hidden (Req 5 violated)", reduced_dlx_machine_hidden(), 4),
    ] {
        let cert = certify_completeness(&m, k, None);
        let tour = transition_tour(&m).unwrap();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tests = TestSet::single(extend_cyclically(&tour.inputs, k));
        let run = FaultCampaign::new(&m, &faults, &tests).run();
        println!(
            "  {:<26} certificate: {:<8} tour: {:>5} vectors   campaign: {}",
            name,
            if cert.is_ok() { "ISSUED" } else { "REJECTED" },
            tour.len() + k,
            run.report,
        );
        println!(
            "  {:<26} stats: {}   ({:.1} ms on {} worker thread(s))",
            "",
            run.stats,
            run.wall.as_secs_f64() * 1e3,
            run.jobs,
        );
    }
    println!("  (Theorem 3: certified => 100% detection; violated => escapes exist)\n");
}

fn coverage_table() {
    println!("================ E6: error coverage, tour vs baselines ================");
    let m = reduced_dlx_machine();
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: usize::MAX,
            ..FaultSpace::default()
        },
    );
    println!("  model {m:?}; {} faults", faults.len());
    let tt = transition_tour(&m).unwrap();
    let st = state_tour(&m).unwrap();
    let budget = tt.len() + 1;
    let suites: Vec<(String, TestSet)> = vec![
        (
            "transition tour + k".into(),
            TestSet::single(extend_cyclically(&tt.inputs, 1)),
        ),
        (
            "state tour + k".into(),
            TestSet::single(extend_cyclically(&st.inputs, 1)),
        ),
        (
            "random (equal budget)".into(),
            random_test_set(&m, 1, budget, 2024),
        ),
        (
            "random (10x budget)".into(),
            random_test_set(&m, 10, budget, 2024),
        ),
        (
            "random (100x budget)".into(),
            random_test_set(&m, 100, budget, 2024),
        ),
        (
            "UIO transition checking".into(),
            uio_test_set(&m, 4).expect("observable model has UIOs"),
        ),
        (
            "W-method (Chow)".into(),
            w_method_test_set(&m).expect("observable model is reduced"),
        ),
    ];
    println!(
        "  {:<28} {:>8} {:>10} {:>10} {:>8}",
        "test set", "vectors", "trans cov", "detection", "escapes"
    );
    for (name, tests) in &suites {
        let seqs: Vec<&[_]> = tests.sequences.iter().map(Vec::as_slice).collect();
        let cov = coverage_set(&m, seqs.iter().copied());
        let rep = run_campaign(&m, &faults, tests);
        println!(
            "  {:<28} {:>8} {:>9.1}% {:>9.1}% {:>8}",
            name,
            tests.total_vectors(),
            100.0 * cov.transition_fraction(),
            100.0 * rep.detection_rate(),
            rep.escapes().count()
        );
    }
    // The UIO method needs a *reduced* machine: on the hidden model 14 of
    // 18 states are output-equivalent and have no UIO at all.
    let hidden = reduced_dlx_machine_hidden();
    match uio_test_set(&hidden, 8) {
        Ok(_) => println!("  hidden model: UIOs unexpectedly exist"),
        Err(e) => println!("  hidden model (Req 5 violated): UIO method inapplicable — {e}"),
    }
    println!();
}

fn overabstraction() {
    println!("================ E7 / Section 6.3: abstracting too much ================");
    let n = simcov_dlx::testmodel::reduced_control_netlist_observable();
    let m = reduced_dlx_machine();
    println!(
        "  {:<16} {:>12} {:>16} {:>8}",
        "dropped state", "abs. states", "output conflicts", "Req 1"
    );
    for latch in [
        "ex.writes",
        "ex.is_load",
        "ex.is_branch",
        "ex.valid",
        "id.stallflag",
    ] {
        let bit = n.latch_by_name(latch).unwrap().index();
        let q = Quotient::by_state_key(&m, |s| {
            let label = m.state_label(s);
            let mut chars: Vec<char> = label.chars().collect();
            let pos = chars.len() - 1 - bit;
            chars[pos] = '_';
            chars.into_iter().collect::<String>()
        });
        let r = build_quotient(&m, &q).unwrap();
        let req1 = check_req1_uniform_outputs(&m, &q);
        println!(
            "  {:<16} {:>12} {:>16} {:>8}",
            latch,
            r.machine.num_states(),
            r.output_conflicts.len(),
            if req1.is_ok() { "ok" } else { "VIOLATED" }
        );
    }
    println!("  (paper: dropping the destination register makes interlock errors non-uniform)\n");
}

fn tour_quality() {
    println!("================ E8 / Section 6.5: tour quality ================");
    println!(
        "  {:<24} {:>6} {:>8} {:>8} {:>8} {:>7}",
        "model", "states", "edges", "postman", "greedy", "ratio"
    );
    for (name, m) in [
        ("ring16".to_string(), ring_with_chords(16)),
        ("ring64".to_string(), ring_with_chords(64)),
        ("ring256".to_string(), ring_with_chords(256)),
        ("ring1024".to_string(), ring_with_chords(1024)),
        ("reduced DLX control".to_string(), reduced_dlx_machine()),
    ] {
        let opt = transition_tour(&m).unwrap();
        let greedy = greedy_transition_tour(&m).unwrap();
        println!(
            "  {:<24} {:>6} {:>8} {:>8} {:>8} {:>7.2}",
            name,
            m.num_states(),
            m.num_transitions(),
            opt.len(),
            greedy.len(),
            greedy.len() as f64 / opt.len() as f64
        );
    }
    println!("  (paper's SIS tour: 1069M over 123M edges = ratio 8.69, \"not an optimal tour\")\n");
}

fn distinguishability() {
    println!("================ E9 (beyond the paper): symbolic forall-k on the full model ================");
    let make_pair = |n: &simcov_netlist::Netlist| -> PairFsm {
        let mut pf = PairFsm::from_netlist(n);
        let names: Vec<String> = n.input_names().map(str::to_string).collect();
        let vars: Vec<_> = names
            .iter()
            .map(|nm| pf.input_var_by_name(nm).expect("input present"))
            .collect();
        let valid = valid_inputs_constraint(pf.mgr(), &|name| {
            let i = names.iter().position(|nm| nm == name).expect("known input");
            vars[i]
        });
        pf.set_valid_inputs(valid);
        pf
    };
    let (bare, _) = derive_test_model();
    let mut pf = make_pair(&bare);
    for k in 1..=4 {
        let t0 = std::time::Instant::now();
        let r = pf.forall_k(&bare.initial_state(), k, true);
        println!(
            "  bare model (4 outputs)        k={k}: {:>7} violating pairs of {} states{} ({:?})",
            r.violating_pairs,
            r.reachable_states,
            if r.fixed_point { "  [fixed point]" } else { "" },
            t0.elapsed()
        );
        if r.fixed_point {
            break;
        }
    }
    let obs = derive_test_model_observable();
    let mut pf = make_pair(&obs);
    let t0 = std::time::Instant::now();
    let r = pf.forall_k(&obs.initial_state(), 1, true);
    println!(
        "  observable model (Req 5)      k=1: {:>7} violating pairs of {} states — holds={} ({:?})",
        r.violating_pairs,
        r.reachable_states,
        r.holds,
        t0.elapsed()
    );
    println!("  (Theorem 2's conclusion, verified mechanically at the case study's full scale)\n");
}

fn full_scale_coverage() {
    println!(
        "================ E10 (beyond the paper): random coverage at full scale ================"
    );
    let (fin, _) = derive_test_model();
    let mut fsm = SymbolicFsm::from_netlist(&fin);
    let valid = valid_inputs_bdd(&mut fsm);
    fsm.set_valid_inputs(valid);
    let r = fsm.reachable();
    let total = fsm.count_transitions(r.reached);
    let in_vars: Vec<simcov_bdd::Var> = (0..fsm.num_inputs()).map(|k| fsm.input_var(k)).collect();
    // Constrained-random simulation: inputs sampled uniformly from the
    // valid-input BDD; transition coverage accumulated symbolically.
    let mut acc = simcov_fsm::CoverageAccumulator::new();
    let mut state = fin.initial_state();
    let mut rng_state: u128 = 0x2545F4914F6CDD1D;
    let mut states_seen = std::collections::HashSet::new();
    states_seen.insert(state.clone());
    let budget = 50_000usize;
    let t0 = std::time::Instant::now();
    for _ in 0..budget {
        let mt = fsm
            .mgr_ref()
            .sample_minterm(fsm.valid_inputs(), &in_vars, |bound| {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state % bound
            })
            .expect("valid inputs are satisfiable");
        let assignment = mt.to_assignment((2 * fsm.num_latches() + fsm.num_inputs()) as u32);
        let inputs: Vec<bool> = (0..fsm.num_inputs())
            .map(|k| assignment[fsm.input_var(k).0 as usize])
            .collect();
        fsm.record_visit(&mut acc, &state, &inputs);
        let (next, _) = fin.step(&state, &inputs);
        states_seen.insert(next.clone());
        state = next;
    }
    let covered = fsm.coverage_count(&acc);
    println!(
        "  constrained-random simulation: {budget} cycles in {:?}",
        t0.elapsed()
    );
    println!(
        "  states visited: {} of {} reachable ({:.1}%)",
        states_seen.len(),
        fsm.count_states(r.reached),
        100.0 * states_seen.len() as f64 / fsm.count_states(r.reached) as f64
    );
    println!(
        "  transitions covered: {covered} of {total} ({:.5}%)",
        100.0 * covered as f64 / total as f64
    );
    println!("  (the motivating gap: random simulation cannot approach transition");
    println!("   coverage at this scale — the tour-based methodology guarantees it)\n");
}

fn full_scale_theorem3() {
    println!("================ E11 (beyond the paper): Theorem 3 at full scale ================");
    // The observable full model (Requirement 5 applied), collapsed over
    // its input don't-care classes, certified, toured, and attacked.
    let t0 = std::time::Instant::now();
    let (m, classes) = simcov_dlx::testmodel::full_model_class_machine_observable();
    println!(
        "  observable class machine: {} states x {} classes ({} transitions) in {:?}",
        m.num_states(),
        classes.len(),
        m.num_transitions(),
        t0.elapsed()
    );
    let t0 = std::time::Instant::now();
    let cert = certify_completeness(&m, 1, None);
    println!(
        "  completeness certificate at k=1: {} ({:?})",
        if cert.is_ok() { "ISSUED" } else { "REJECTED" },
        t0.elapsed()
    );
    let t0 = std::time::Instant::now();
    let tour = transition_tour(&m).expect("full model tours");
    println!(
        "  transition tour: {} vectors ({:?})",
        tour.len(),
        t0.elapsed()
    );
    let k = cert.as_ref().map(|c| c.k).unwrap_or(1);
    let faults = simcov_core::sample_faults(&m, 200, 42);
    let tests = TestSet::single(extend_cyclically(&tour.inputs, k));
    let t0 = std::time::Instant::now();
    let rep = run_campaign(&m, &faults, &tests);
    println!(
        "  sampled-fault campaign (200 faults): {rep} ({:?})",
        t0.elapsed()
    );
    // The bare model for contrast: escapes exist.
    let t0 = std::time::Instant::now();
    let (mb, _) = simcov_dlx::testmodel::full_model_class_machine();
    let tour_b = transition_tour(&mb).expect("bare model tours");
    let faults_b = simcov_core::sample_faults(&mb, 200, 42);
    let tests_b = TestSet::single(extend_cyclically(&tour_b.inputs, 4));
    let rep_b = run_campaign(&mb, &faults_b, &tests_b);
    println!(
        "  bare model (Req 5 violated), same budget: {rep_b} ({:?})",
        t0.elapsed()
    );
    println!("  (Theorem 3 at the case study's full scale: the observable model is");
    println!("   CERTIFIED — every fault is provably caught. The bare model usually");
    println!("   catches random samples too, but E9's 63k indistinguishable pairs mean");
    println!("   escaping faults exist and no certificate can be issued.)\n");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "fig2" => fig2(),
        "fig3a" => fig3a(),
        "fig3b" => fig3b(),
        "sec72" => sec72(),
        "completeness" => completeness(),
        "coverage" => coverage_table(),
        "overabstraction" => overabstraction(),
        "tour" => tour_quality(),
        "distinguish" => distinguishability(),
        "fullcov" => full_scale_coverage(),
        "fullscale" => full_scale_theorem3(),
        "all" => {
            fig2();
            completeness();
            fig3a();
            fig3b();
            sec72();
            coverage_table();
            overabstraction();
            tour_quality();
            full_scale_coverage();
            distinguishability();
            full_scale_theorem3();
        }
        other => {
            eprintln!("unknown report `{other}`");
            eprintln!(
                "usage: report [fig2|fig3a|fig3b|sec72|completeness|coverage|overabstraction|tour|distinguish|fullcov|fullscale|all]"
            );
            std::process::exit(2);
        }
    }
}

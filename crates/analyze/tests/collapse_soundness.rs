//! Collapse soundness, property-tested end to end: on random machines,
//! every certificate the analysis produces must be *invisible* to the
//! campaign — `--collapse on` reproduces the uncollapsed report bit for
//! bit, `--collapse verify` finds zero violations, and every class
//! member's outcome equals its representative's — under all three
//! engines at 1, 2 and 8 workers. Plus tamper detection: a certificate
//! must reject foreign machines and fault lists, and a forged partition
//! must be caught by the verify audit.

use simcov_analyze::{analyze_collapse, AnalyzeOptions};
use simcov_core::testutil::{forall_cfg, Config, Gen};
use simcov_core::{
    enumerate_single_faults, CollapseCertificate, CollapseMode, Engine, Fault, FaultCampaign,
    FaultKind, FaultSpace,
};
use simcov_fsm::{ExplicitMealy, InputSym, MealyBuilder, OutputSym, StateId};
use simcov_tour::TestSet;

/// A random (possibly partial, possibly not strongly connected) machine:
/// 2–7 states, 1–3 inputs, 1–4 outputs, ~10% undefined cells.
fn random_machine(g: &mut Gen) -> ExplicitMealy {
    let ns = g.int_in(2..8usize);
    let ni = g.int_in(1..4usize);
    let no = g.int_in(1..5usize);
    let mut b = MealyBuilder::new();
    let states: Vec<StateId> = (0..ns).map(|k| b.add_state(format!("s{k}"))).collect();
    let inputs: Vec<InputSym> = (0..ni).map(|k| b.add_input(format!("i{k}"))).collect();
    let outputs: Vec<OutputSym> = (0..no).map(|k| b.add_output(format!("o{k}"))).collect();
    for &s in &states {
        for &i in &inputs {
            if g.int_in(0..10u32) == 0 {
                continue;
            }
            let t = states[g.int_in(0..ns)];
            let o = outputs[g.int_in(0..no)];
            b.add_transition(s, i, t, o);
        }
    }
    b.build(states[0]).unwrap()
}

/// The enumerated fault universe plus hand-made faults on unreachable
/// states (enumeration only covers reachable ones, and the global
/// unreachable class deserves coverage too).
fn random_faults(g: &mut Gen, m: &ExplicitMealy) -> Vec<Fault> {
    let mut faults = enumerate_single_faults(
        m,
        &FaultSpace {
            transfer: true,
            output: true,
            max_faults: 120,
            seed: g.u64(),
        },
    );
    let mut reachable = vec![false; m.num_states()];
    for s in m.reachable_states() {
        reachable[s.index()] = true;
    }
    for s in m.states().filter(|s| !reachable[s.index()]) {
        if let Some(i) = m.inputs().find(|&i| m.step(s, i).is_some()) {
            let t = StateId(g.int_in(0..m.num_states() as u32));
            faults.push(Fault {
                state: s,
                input: i,
                kind: FaultKind::Transfer { new_next: t },
            });
        }
    }
    faults
}

fn random_tests(g: &mut Gen, m: &ExplicitMealy) -> TestSet {
    let ni = m.num_inputs() as u32;
    let sequences = g.vec_of(1..5, |g| {
        g.vec_of(0..12, |g| InputSym(g.int_in(0..ni)))
            .into_iter()
            .collect()
    });
    TestSet { sequences }
}

#[test]
fn collapse_is_invisible_under_every_engine_and_worker_count() {
    forall_cfg(
        "collapse_invisible_random_machines",
        Config::with_cases(48),
        |g| {
            let m = random_machine(g);
            let faults = random_faults(g, &m);
            let tests = random_tests(g, &m);
            let analysis =
                analyze_collapse(&m, &faults, &AnalyzeOptions::default()).expect("valid universe");
            let cert = &analysis.certificate;
            cert.check(&m, &faults).expect("fresh certificate binds");

            for engine in [Engine::Naive, Engine::Differential, Engine::Packed] {
                for jobs in [1usize, 2, 8] {
                    let off = FaultCampaign::new(&m, &faults, &tests)
                        .engine(engine)
                        .jobs(jobs)
                        .run();
                    // Member outcomes equal their representative's.
                    assert!(
                        cert.violations(&off.report.outcomes).is_empty(),
                        "{engine:?}/jobs={jobs}: member diverged from representative"
                    );
                    // Pruned simulation expands to the identical report.
                    let on = FaultCampaign::new(&m, &faults, &tests)
                        .engine(engine)
                        .jobs(jobs)
                        .collapse(cert, CollapseMode::On)
                        .run();
                    assert_eq!(
                        on.report.outcomes, off.report.outcomes,
                        "{engine:?}/jobs={jobs}: collapse on must be invisible"
                    );
                    assert_eq!(on.stats, off.stats, "{engine:?}/jobs={jobs}");
                    // The built-in audit agrees.
                    let verify = FaultCampaign::new(&m, &faults, &tests)
                        .engine(engine)
                        .jobs(jobs)
                        .collapse(cert, CollapseMode::Verify)
                        .run();
                    let summary = verify.collapse.expect("verify carries a summary");
                    assert!(
                        summary.violations.is_empty(),
                        "{engine:?}/jobs={jobs}: {:?}",
                        summary.violations
                    );
                }
            }
        },
    );
}

/// Exhaustive short test set for the deterministic tamper checks: every
/// input word of length 1..=3.
fn exhaustive_tests(m: &ExplicitMealy, max_len: usize) -> TestSet {
    let mut sequences: Vec<Vec<InputSym>> = vec![Vec::new()];
    let mut all = Vec::new();
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &sequences {
            for i in m.inputs() {
                let mut s = seq.clone();
                s.push(i);
                next.push(s);
            }
        }
        all.extend(next.iter().cloned());
        sequences = next;
    }
    TestSet { sequences: all }
}

#[test]
fn certificate_rejects_foreign_machine_and_fault_list() {
    let (m, seeded_fault) = simcov_core::testutil::figure2();
    let faults = enumerate_single_faults(&m, &FaultSpace::default());
    let analysis = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
    let cert = analysis.certificate;
    assert!(cert.check(&m, &faults).is_ok());
    let mutated = seeded_fault.inject(&m);
    assert!(cert.check(&mutated, &faults).is_err(), "foreign machine");
    let mut reordered = faults.clone();
    reordered.swap(0, 1);
    assert!(cert.check(&m, &reordered).is_err(), "foreign fault list");
}

#[test]
#[should_panic(expected = "collapse certificate must bind this campaign")]
fn campaign_refuses_a_stale_certificate() {
    let (m, seeded_fault) = simcov_core::testutil::figure2();
    let faults = enumerate_single_faults(&m, &FaultSpace::default());
    let analysis = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
    let mutated = seeded_fault.inject(&m);
    let tests = exhaustive_tests(&mutated, 2);
    let _ = FaultCampaign::new(&mutated, &faults, &tests)
        .collapse(&analysis.certificate, CollapseMode::On)
        .run();
}

#[test]
fn forged_partition_is_caught_by_verify() {
    let (m, _) = simcov_core::testutil::figure2();
    let faults = enumerate_single_faults(&m, &FaultSpace::default());
    let tests = exhaustive_tests(&m, 3);
    // Forge "every fault is equivalent": structurally valid, semantically
    // wrong.
    let forged = CollapseCertificate::new(
        &m,
        &faults,
        vec![0; faults.len()],
        vec![simcov_core::ClassKind::Singleton],
        Vec::new(),
    )
    .unwrap();
    let run = FaultCampaign::new(&m, &faults, &tests)
        .collapse(&forged, CollapseMode::Verify)
        .run();
    let summary = run.collapse.expect("verify carries a summary");
    assert!(
        !summary.violations.is_empty(),
        "a one-class partition over figure2's fault universe cannot be sound"
    );
}

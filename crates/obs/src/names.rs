//! Well-known telemetry counter names shared between producers and
//! consumers.
//!
//! Counter names are part of the byte-stable trace surface (see the
//! [determinism contract](crate)): a renamed counter silently breaks
//! every downstream trace diff, metrics reader and bench baseline. The
//! names used from more than one crate therefore live here as constants
//! instead of string literals scattered across the engines.
//!
//! Only the differential- and packed-engine counters are declared so far
//! — the
//! campaign counters that predate this module (`campaign.faults_simulated`
//! and friends) keep their literal spellings at their single emission
//! site; move them here if a second producer ever appears.

/// Faults classified with zero simulation because their transition never
/// appears in the golden trace's excitation index (differential engine;
/// see `simcov_core::differential::DiffStats::faults_skipped_by_index`).
pub const CAMPAIGN_FAULTS_SKIPPED_BY_INDEX: &str = "campaign.faults_skipped_by_index";

/// Golden-trace vectors whose faulty-machine execution was skipped by
/// prefix sharing (differential engine; see
/// `simcov_core::differential::DiffStats::prefix_steps_saved`).
pub const CAMPAIGN_PREFIX_STEPS_SAVED: &str = "campaign.prefix_steps_saved";

/// Suffix replays performed from a first divergence point (differential
/// engine; see `simcov_core::differential::DiffStats::divergence_replays`).
pub const CAMPAIGN_DIVERGENCE_REPLAYS: &str = "campaign.divergence_replays";

/// Fault words replayed by the bit-parallel engine, each batching up to
/// 64 effective transfer faults (packed engine; see
/// `simcov_core::packed::PackedStats::packed_words`).
pub const CAMPAIGN_PACKED_WORDS: &str = "campaign.packed_words";

/// Lanes occupied across all fault words (packed engine; see
/// `simcov_core::packed::PackedStats::lanes_active`).
pub const CAMPAIGN_LANES_ACTIVE: &str = "campaign.lanes_active";

/// Faults whose simulation was skipped because a collapse certificate
/// proved them equivalent to an already-simulated class representative
/// (`--collapse on`; see `simcov_core::collapse::CollapseCertificate`).
pub const CAMPAIGN_COLLAPSED_FAULTS: &str = "campaign.collapsed_faults";

/// Equivalence classes in the active collapse certificate (emitted only
/// when a campaign runs with `--collapse on` or `--collapse verify`).
pub const CAMPAIGN_CLASSES: &str = "campaign.classes";

/// Class members whose simulated outcome diverged from their
/// representative's under `--collapse verify` (0 for a sound
/// certificate).
pub const CAMPAIGN_COLLAPSE_VIOLATIONS: &str = "campaign.collapse_violations";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_share_the_campaign_prefix() {
        for n in [
            CAMPAIGN_FAULTS_SKIPPED_BY_INDEX,
            CAMPAIGN_PREFIX_STEPS_SAVED,
            CAMPAIGN_DIVERGENCE_REPLAYS,
            CAMPAIGN_PACKED_WORDS,
            CAMPAIGN_LANES_ACTIVE,
            CAMPAIGN_COLLAPSED_FAULTS,
            CAMPAIGN_CLASSES,
            CAMPAIGN_COLLAPSE_VIOLATIONS,
        ] {
            assert!(n.starts_with("campaign."), "{n}");
        }
    }
}

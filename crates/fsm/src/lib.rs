//! Explicit and symbolic Mealy machines.
//!
//! The paper treats both the design implementation and the derived test
//! model as Mealy machines. This crate provides:
//!
//! * [`ExplicitMealy`] — a dense, enumerated machine used by the tour
//!   algorithms, the error model, and as a brute-force oracle in tests;
//! * [`SymbolicFsm`] — a machine represented by BDD next-state and output
//!   functions built from a [`simcov_netlist::Netlist`], with implicit
//!   reachability analysis and exact state/transition counting in the style
//!   of Touati et al. (ICCAD 1990) — the machinery behind Section 7.2's
//!   statistics;
//! * [`enumerate`] — extraction of an [`ExplicitMealy`] from a netlist by
//!   forward enumeration of the reachable state graph under a declared set
//!   of valid input vectors (the paper's input don't-cares);
//! * [`PackedMealy`] — word-packed struct-of-arrays transition tables
//!   stepping up to [`LANES`] independent machines per round, with
//!   [`LanePatch`] one-cell overlays: the substrate of the bit-parallel
//!   fault-simulation engine.
//!
//! # Example
//!
//! ```
//! use simcov_fsm::MealyBuilder;
//!
//! let mut b = MealyBuilder::new();
//! let s0 = b.add_state("idle");
//! let s1 = b.add_state("busy");
//! let go = b.add_input("go");
//! let stay = b.add_input("stay");
//! let none = b.add_output("none");
//! let ack = b.add_output("ack");
//! b.add_transition(s0, go, s1, ack);
//! b.add_transition(s0, stay, s0, none);
//! b.add_transition(s1, go, s1, none);
//! b.add_transition(s1, stay, s0, none);
//! let m = b.build(s0).unwrap();
//! assert!(m.is_complete());
//! assert_eq!(m.num_transitions(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
mod explicit;
mod input_classes;
mod minimize;
mod packed;
mod product;
pub mod refine;
mod symbolic;

pub use enumerate::{enumerate_netlist, EnumerateError, EnumerateOptions};
pub use explicit::{
    BuildError, ExplicitMealy, InputSym, MealyBuilder, OutputSym, PatchedMealy, StateId, Transition,
};
pub use input_classes::{input_equivalence_classes, InputClasses};
pub use minimize::{minimize, Minimized};
pub use packed::{LanePatch, PackedMealy, LANES, UNDEFINED_NARROW, UNDEFINED_RECORD};
pub use product::{forall_k_symbolic, PairAnalysisResult, PairFsm, TransferDetectPrep};
pub use refine::{partition_by_rows, refine_partition, Partition};
pub use symbolic::{CoverageAccumulator, ReachResult, SymbolicFsm, SymbolicStats};

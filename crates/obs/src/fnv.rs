//! FNV-1a 64-bit hashing: the workspace's fingerprint/checksum
//! discipline.
//!
//! Tiny, stable across platforms and fast enough to checksum journal
//! records and trace files — corruption detection, not cryptographic
//! integrity. The checkpoint journal (`simcov_core::resilient`) and the
//! telemetry trace footer both use this exact function, so a consumer
//! can verify either artifact with the same ~10 lines of code.

/// Incremental FNV-1a 64-bit hasher.
///
/// ```
/// use simcov_obs::fnv::Fnv64;
/// let mut h = Fnv64::new();
/// h.bytes(b"hello");
/// assert_eq!(h.finish(), Fnv64::hash(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    /// The digest so far (the hasher can keep absorbing afterwards).
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot convenience: the digest of `b`.
    pub fn hash(b: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.bytes(b);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64.
        assert_eq!(Fnv64::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.bytes(b"foo");
        h.bytes(b"bar");
        assert_eq!(h.finish(), Fnv64::hash(b"foobar"));
    }

    #[test]
    fn u64_feeds_le_bytes() {
        let mut a = Fnv64::new();
        a.u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}

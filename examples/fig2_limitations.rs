//! Figure 2 of the paper: the limitation of transition tours.
//!
//! The transfer error `2 —a→ 3'` is *excited* by any tour (tours cover
//! every transition) but *exposed* only if the tour happens to continue
//! with input `b` from the faulty state — continuing with `c` leads back
//! to the correct path with identical outputs. The fix is Theorem 1's
//! hypothesis: every state pair must be ∀k-distinguishable.
//!
//! Run with: `cargo run --example fig2_limitations`

use simcov::core::models::figure2;
use simcov::core::{
    certify_completeness, detects, excited_at, forall_k_distinguishable, is_masked_on,
};

fn main() {
    let (machine, fault) = figure2();
    let faulty = fault.inject(&machine);
    let a = machine.input_by_label("a").expect("input a");
    let b = machine.input_by_label("b").expect("input b");
    let c = machine.input_by_label("c").expect("input c");

    println!("golden machine:\n{}", machine.to_dot());
    println!("injected fault: {fault}");

    // The two continuations of the paper.
    for (name, seq) in [("<a,a,c>", vec![a, a, c]), ("<a,a,b>", vec![a, a, b])] {
        let excited = excited_at(&faulty, &fault, &seq);
        let exposed = detects(&machine, &faulty, &seq);
        let masked = is_masked_on(&machine, &faulty, &seq);
        println!(
            "sequence {name}: excited at {excited:?}, exposed at {exposed:?}, \
             masked excursion: {masked}"
        );
    }

    // Why: states 3 and 3' are not ∀1-distinguishable (witness: c).
    let d = forall_k_distinguishable(&machine, 1, 16).expect("machine is complete");
    println!("\n∀1-distinguishability violations:");
    for v in &d.violations {
        let w: Vec<&str> = v.witness.iter().map(|&i| machine.input_label(i)).collect();
        println!(
            "  ({}, {}) not distinguished by all length-1 sequences; witness {:?}",
            machine.state_label(v.s1),
            machine.state_label(v.s2),
            w
        );
    }

    // Consequently no completeness certificate can be issued.
    let err = certify_completeness(&machine, 1, None).expect_err("must be rejected");
    println!("\ncompleteness certification: REJECTED — {err}");
    println!("(the paper's remedy: keep enough state in the test model — Requirement 1 —");
    println!(" and make interaction state observable — Requirement 5)");
}

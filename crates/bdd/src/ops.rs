//! Boolean operations: ITE, connectives, quantification, relational
//! product, composition and renaming.

use crate::manager::{Bdd, BddManager, Var, TERMINAL_LEVEL};

/// Tag values distinguishing operations that share the ternary cache.
const TAG_EXISTS: u32 = 0;
const TAG_FORALL: u32 = 1;

impl BddManager {
    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// This is the universal connective; all binary operations are derived
    /// from it (Brace/Rudell/Bryant, DAC 1990).
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(r) = self.ite_cache.get(f.0, g.0, h.0) {
            self.stats.ite_cache_hits += 1;
            return Bdd(r);
        }
        self.stats.ite_cache_misses += 1;
        let lf = self.level_of(f);
        let lg = self.level_of(g);
        let lh = self.level_of(h);
        let top = lf.min(lg).min(lh);
        debug_assert_ne!(top, TERMINAL_LEVEL);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let r0 = self.ite(f0, g0, h0);
        let r1 = self.ite(f1, g1, h1);
        let r = self.mk_node(top, r0, r1);
        self.ite_cache.insert(f.0, g.0, h.0, r.0);
        r
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Logical conjunction.
    ///
    /// Dedicated binary apply rather than `ite(f, g, FALSE)`: conjunction
    /// is the workhorse of transition-relation construction, and the
    /// two-operand recursion (no third cofactor set) with a *commutative*
    /// cache key — operands sorted, so `f ∧ g` and `g ∧ f` share one entry
    /// — measurably cuts both per-call cost and cache misses. The cache
    /// namespace is shared with `ite(f, g, FALSE)`, whose entries mean the
    /// same thing.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g || g.is_true() {
            return f;
        }
        if f.is_true() {
            return g;
        }
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(r) = self.ite_cache.get(f.0, g.0, Bdd::FALSE.0) {
            self.stats.ite_cache_hits += 1;
            return Bdd(r);
        }
        self.stats.ite_cache_misses += 1;
        let (lf, fl, fh) = self.expand(f);
        let (lg, gl, gh) = self.expand(g);
        let top = lf.min(lg);
        let (f0, f1) = if lf == top { (fl, fh) } else { (f, f) };
        let (g0, g1) = if lg == top { (gl, gh) } else { (g, g) };
        let r0 = self.and(f0, g0);
        let r1 = self.and(f1, g1);
        let r = self.mk_node(top, r0, r1);
        self.ite_cache.insert(f.0, g.0, Bdd::FALSE.0, r.0);
        r
    }

    /// Logical disjunction. Like [`BddManager::and`], a dedicated binary
    /// apply with a commutative cache key, sharing the `ite(f, TRUE, g)`
    /// cache namespace.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g || g.is_false() {
            return f;
        }
        if f.is_false() {
            return g;
        }
        if f.is_true() || g.is_true() {
            return Bdd::TRUE;
        }
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(r) = self.ite_cache.get(f.0, Bdd::TRUE.0, g.0) {
            self.stats.ite_cache_hits += 1;
            return Bdd(r);
        }
        self.stats.ite_cache_misses += 1;
        let (lf, fl, fh) = self.expand(f);
        let (lg, gl, gh) = self.expand(g);
        let top = lf.min(lg);
        let (f0, f1) = if lf == top { (fl, fh) } else { (f, f) };
        let (g0, g1) = if lg == top { (gl, gh) } else { (g, g) };
        let r0 = self.or(f0, g0);
        let r1 = self.or(f1, g1);
        let r = self.mk_node(top, r0, r1);
        self.ite_cache.insert(f.0, Bdd::TRUE.0, g.0, r.0);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Logical equivalence (XNOR). The workhorse of transition-relation
    /// construction: `T = ∧_j (y_j ⇔ f_j(x, i))`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Logical implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Conjunction of a sequence of functions (empty input yields `TRUE`).
    pub fn and_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                return acc;
            }
        }
        acc
    }

    /// Disjunction of a sequence of functions (empty input yields `FALSE`).
    pub fn or_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                return acc;
            }
        }
        acc
    }

    /// Builds the positive cube `∧ vars` used as the variable set of
    /// quantification operations.
    pub fn cube_from_vars(&mut self, vars: &[Var]) -> Bdd {
        let mut sorted: Vec<u32> = vars.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        // Build bottom-up so each mk_node call is O(1).
        let mut acc = Bdd::TRUE;
        for &v in sorted.iter().rev() {
            acc = self.mk_node(v, Bdd::FALSE, acc);
        }
        acc
    }

    /// Existential quantification `∃ vars . f`, with `vars` given as a
    /// positive cube (see [`BddManager::cube_from_vars`]).
    pub fn exists(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        self.quantify(f, cube, TAG_EXISTS)
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        self.quantify(f, cube, TAG_FORALL)
    }

    fn quantify(&mut self, f: Bdd, cube: Bdd, tag: u32) -> Bdd {
        if f.is_const() || cube.is_true() {
            return f;
        }
        // Skip cube variables above f's top variable: they do not occur in f.
        let lf = self.level_of(f);
        let mut cube = cube;
        while !cube.is_true() && self.level_of(cube) < lf {
            let (_, hi) = {
                let l = self.level_of(cube);
                self.cofactors(cube, l)
            };
            cube = hi;
        }
        if cube.is_true() {
            return f;
        }
        // The ternary cache is shared between EXISTS and FORALL via the tag
        // packed into the third key slot's high bit-space: we instead keep
        // one cache and shift the tag into the cube key. Cube indices are
        // node indices (< 2^31 in practice), so stealing the MSB is safe.
        let key_c = cube.0 | (tag << 31);
        if let Some(r) = self.quant_cache.get(f.0, key_c, tag) {
            return Bdd(r);
        }
        let lc = self.level_of(cube);
        let (f0, f1) = self.cofactors(f, lf);
        let r = if lc == lf {
            let (_, cube_rest) = self.cofactors(cube, lc);
            let r0 = self.quantify(f0, cube_rest, tag);
            let r1 = self.quantify(f1, cube_rest, tag);
            if tag == TAG_EXISTS {
                self.or(r0, r1)
            } else {
                self.and(r0, r1)
            }
        } else {
            let r0 = self.quantify(f0, cube, tag);
            let r1 = self.quantify(f1, cube, tag);
            self.mk_node(lf, r0, r1)
        };
        self.quant_cache.insert(f.0, key_c, tag, r.0);
        r
    }

    /// Relational product `∃ vars . (f ∧ g)`, computed without building the
    /// intermediate conjunction — the core of symbolic image computation
    /// (Touati et al., ICCAD 1990).
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Bdd {
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        if cube.is_true() {
            return self.and(f, g);
        }
        if f.is_true() {
            return self.exists(g, cube);
        }
        if g.is_true() {
            return self.exists(f, cube);
        }
        if let Some(r) = self.and_exists_cache.get(f.0, g.0, cube.0) {
            return Bdd(r);
        }
        let lf = self.level_of(f);
        let lg = self.level_of(g);
        let top = lf.min(lg);
        // Skip cube variables strictly above `top`.
        let mut cube_here = cube;
        while !cube_here.is_true() && self.level_of(cube_here) < top {
            let l = self.level_of(cube_here);
            let (_, hi) = self.cofactors(cube_here, l);
            cube_here = hi;
        }
        if cube_here.is_true() {
            return self.and(f, g);
        }
        let lc = self.level_of(cube_here);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let r = if lc == top {
            let (_, cube_rest) = self.cofactors(cube_here, lc);
            let r0 = self.and_exists(f0, g0, cube_rest);
            if r0.is_true() {
                Bdd::TRUE
            } else {
                let r1 = self.and_exists(f1, g1, cube_rest);
                self.or(r0, r1)
            }
        } else {
            let r0 = self.and_exists(f0, g0, cube_here);
            let r1 = self.and_exists(f1, g1, cube_here);
            self.mk_node(top, r0, r1)
        };
        self.and_exists_cache.insert(f.0, g.0, cube.0, r.0);
        r
    }

    /// Substitutes function `g` for variable `v` in `f` (Shannon-style
    /// composition `f[v := g]`).
    pub fn compose(&mut self, f: Bdd, v: Var, g: Bdd) -> Bdd {
        let lf = self.level_of(f);
        if lf > v.0 || f.is_const() {
            // `v` cannot occur in f (all its variables are below v's level
            // or f is terminal).
            return f;
        }
        if let Some(r) = self.compose_cache.get(f.0, v.0, g.0) {
            return Bdd(r);
        }
        let (f0, f1) = self.cofactors(f, lf);
        let r = if lf == v.0 {
            self.ite(g, f1, f0)
        } else {
            let r0 = self.compose(f0, v, g);
            let r1 = self.compose(f1, v, g);
            let x = self.var(lf);
            self.ite(x, r1, r0)
        };
        self.compose_cache.insert(f.0, v.0, g.0, r.0);
        r
    }

    /// Renames variables of `f` according to `map` (pairs `(from, to)`).
    ///
    /// The mapping must be *monotone with respect to levels*: if
    /// `from_a < from_b` then `to_a < to_b`. This is the common case of
    /// next-state → current-state renaming with interleaved orders, and it
    /// allows a direct linear rebuild.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the mapping is not monotone, which would
    /// silently produce an unordered diagram.
    pub fn rename(&mut self, f: Bdd, map: &[(Var, Var)]) -> Bdd {
        let mut pairs: Vec<(u32, u32)> = map.iter().map(|&(a, b)| (a.0, b.0)).collect();
        pairs.sort_unstable();
        debug_assert!(
            pairs.windows(2).all(|w| w[0].1 < w[1].1),
            "rename mapping must be monotone in levels"
        );
        let mut table = vec![u32::MAX; self.num_vars() as usize];
        for &(from, to) in &pairs {
            table[from as usize] = to;
        }
        let mut cache = std::collections::HashMap::new();
        self.rename_rec(f, &table, &mut cache)
    }

    fn rename_rec(
        &mut self,
        f: Bdd,
        table: &[u32],
        cache: &mut std::collections::HashMap<u32, u32>,
    ) -> Bdd {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = cache.get(&f.0) {
            return Bdd(r);
        }
        let lf = self.level_of(f);
        let (f0, f1) = self.cofactors(f, lf);
        let r0 = self.rename_rec(f0, table, cache);
        let r1 = self.rename_rec(f1, table, cache);
        let new_level = if table[lf as usize] == u32::MAX {
            lf
        } else {
            table[lf as usize]
        };
        let r = self.mk_node(new_level, r0, r1);
        cache.insert(f.0, r.0);
        r
    }

    /// Cofactor of `f` under the partial assignment `lits`
    /// (`(var, polarity)` pairs).
    pub fn restrict(&mut self, f: Bdd, lits: &[(Var, bool)]) -> Bdd {
        let mut acc = f;
        for &(v, pol) in lits {
            acc = self.compose(acc, v, self.constant(pol));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(6)
    }

    #[test]
    fn basic_connectives_truth_tables() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        let and = m.and(a, b);
        let or = m.or(a, b);
        let xor = m.xor(a, b);
        let iff = m.iff(a, b);
        let imp = m.implies(a, b);
        for (va, vb) in cases {
            let asg = [va, vb, false, false, false, false];
            assert_eq!(m.eval(and, &asg), va && vb);
            assert_eq!(m.eval(or, &asg), va || vb);
            assert_eq!(m.eval(xor, &asg), va ^ vb);
            assert_eq!(m.eval(iff, &asg), va == vb);
            assert_eq!(m.eval(imp, &asg), !va || vb);
        }
    }

    #[test]
    fn not_is_involutive() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(3);
        let f = m.xor(a, b);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn ite_canonical() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        // ite(a, b, b) == b
        assert_eq!(m.ite(a, b, b), b);
        // ite(a, 1, 0) == a
        assert_eq!(m.ite(a, Bdd::TRUE, Bdd::FALSE), a);
    }

    #[test]
    fn and_many_or_many() {
        let mut m = mgr();
        let vs: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let all = m.and_many(vs.iter().copied());
        let any = m.or_many(vs.iter().copied());
        assert!(m.eval(all, &[true, true, true, true, false, false]));
        assert!(!m.eval(all, &[true, true, false, true, false, false]));
        assert!(m.eval(any, &[false, false, true, false, false, false]));
        assert!(!m.eval(any, &[false; 6]));
        assert_eq!(m.and_many(std::iter::empty()), Bdd::TRUE);
        assert_eq!(m.or_many(std::iter::empty()), Bdd::FALSE);
    }

    #[test]
    fn exists_removes_variable() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let cube = m.cube_from_vars(&[Var(0)]);
        let ex = m.exists(f, cube);
        // ∃a. a∧b == b
        assert_eq!(ex, b);
        let fa = m.forall(f, cube);
        // ∀a. a∧b == false
        assert_eq!(fa, Bdd::FALSE);
    }

    #[test]
    fn exists_over_disjoint_var_is_identity() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        let cube = m.cube_from_vars(&[Var(5)]);
        assert_eq!(m.exists(f, cube), f);
    }

    #[test]
    fn and_exists_matches_unfused() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let nb = m.not(b);
        let f = m.or(a, b);
        let g = m.or(nb, c);
        let cube = m.cube_from_vars(&[Var(1)]);
        let fused = m.and_exists(f, g, cube);
        let conj = m.and(f, g);
        let unfused = m.exists(conj, cube);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn and_exists_exhaustive_small() {
        // Exhaustively compare fused vs unfused over random functions of 4
        // variables, quantifying each subset of a 2-variable cube.
        let mut m = BddManager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        // Two deterministic "random" functions.
        let t1 = m.and(vars[0], vars[2]);
        let t2 = m.xor(vars[1], vars[3]);
        let f = m.or(t1, t2);
        let t3 = m.iff(vars[0], vars[3]);
        let g = m.and(t3, vars[1]);
        for vs in [
            vec![],
            vec![Var(0)],
            vec![Var(1), Var(2)],
            vec![Var(0), Var(3)],
        ] {
            let cube = m.cube_from_vars(&vs);
            let fused = m.and_exists(f, g, cube);
            let conj = m.and(f, g);
            let unfused = m.exists(conj, cube);
            assert_eq!(fused, unfused, "cube {vs:?}");
        }
    }

    #[test]
    fn compose_substitutes() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.xor(a, b);
        // f[b := c] = a ^ c
        let g = m.compose(f, Var(1), c);
        let expect = m.xor(a, c);
        assert_eq!(g, expect);
        // Substituting a var not in f is the identity.
        assert_eq!(m.compose(f, Var(4), c), f);
    }

    #[test]
    fn compose_with_overlapping_support() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        // f[b := ¬a] = a ∧ ¬a = false
        let na = m.not(a);
        assert_eq!(m.compose(f, Var(1), na), Bdd::FALSE);
    }

    #[test]
    fn rename_monotone() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let r = m.rename(f, &[(Var(0), Var(2)), (Var(1), Var(3))]);
        let c = m.var(2);
        let d = m.var(3);
        let expect = m.and(c, d);
        assert_eq!(r, expect);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let fa = m.restrict(f, &[(Var(0), true)]);
        let nb = m.not(b);
        assert_eq!(fa, nb);
        let fab = m.restrict(f, &[(Var(0), true), (Var(1), true)]);
        assert_eq!(fab, Bdd::FALSE);
    }

    #[test]
    fn cube_from_vars_dedups_and_sorts() {
        let mut m = mgr();
        let c1 = m.cube_from_vars(&[Var(3), Var(1), Var(3)]);
        let c2 = m.cube_from_vars(&[Var(1), Var(3)]);
        assert_eq!(c1, c2);
        assert!(m.eval(c1, &[false, true, false, true, false, false]));
        assert!(!m.eval(c1, &[false, true, false, false, false, false]));
    }

    #[test]
    fn demorgan_property() {
        let mut m = mgr();
        let a = m.var(2);
        let b = m.var(4);
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }
}

//! Bit-level sequential circuit intermediate representation.
//!
//! This crate models the *structural* level at which the DAC'97 paper's
//! test-model derivation operates (Section 6): a synchronous netlist of
//! single-bit latches and combinational logic, organised into named
//! modules. Test-model abstraction is then a sequence of *topological*
//! operations — removing state elements and the logic associated only with
//! them, turning cut signals into primary inputs, re-encoding one-hot
//! registers — exactly the operations of Figure 3(b).
//!
//! The IR is deliberately small:
//!
//! * [`Netlist`] owns a hash-consed DAG of [`NodeKind`] gates,
//!   a list of [`Latch`]es (each with an init value and a next-state
//!   signal), named primary inputs, and named primary outputs.
//! * [`Word`] provides multi-bit convenience builders (adders are not
//!   needed — control logic is bit-level).
//! * Structural transforms live in [`transform`]: cone-of-influence
//!   analysis, sweeping, latch/module removal with cut-signals-to-inputs
//!   semantics, one-hot → binary re-encoding.
//!
//! # Example
//!
//! ```
//! use simcov_netlist::Netlist;
//!
//! let mut n = Netlist::new();
//! let a = n.add_input("a");
//! let en = n.add_input("en");
//! let q = n.add_latch("q", false);
//! let qo = n.latch_output(q);
//! let next = n.mux(en, a, qo); // en ? a : hold
//! n.set_latch_next(q, next);
//! n.add_output("q_out", qo);
//! assert_eq!(n.stats().latches, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
mod build;
mod circuit;
mod packed;
pub mod transform;

pub use blif::{from_blif, to_blif, BlifError};
pub use build::Word;
pub use circuit::{InputId, Latch, LatchId, Netlist, NetlistStats, NodeKind, SignalId, SimState};

//! Test-model derivation: the abstraction sequence of Fig 3(b), the
//! abstract input format, the valid-input constraint, and reduced models
//! for explicit end-to-end experiments.
//!
//! The paper's sequence (numbers are latch counts after each step):
//!
//! ```text
//! 160 ──no synchronizing latches for outputs──▶ 118
//!     ──4 registers instead of 32────────────▶ 110
//!     ──fetch controller removed─────────────▶  86
//!     ──remove outputs not affecting control─▶  54
//!     ──1-hot to binary encoding─────────────▶  46
//!     ──remove interlock registers───────────▶  22
//! ```
//!
//! The final model has 22 latches, 25 primary inputs (the 18-bit abstract
//! instruction format + 7 status signals) and 4 primary outputs.

use crate::control;
use simcov_abstraction::{Pipeline, Step, StepReport};
use simcov_bdd::Bdd;
use simcov_fsm::{EnumerateOptions, SymbolicFsm};
use simcov_netlist::{transform, Netlist, Word};

/// The latch counts of Fig 3(b), including the initial model.
pub const FIG3B_LATCH_SEQUENCE: [usize; 7] = [160, 118, 110, 86, 54, 46, 22];

/// The six abstraction-step labels of Fig 3(b), in application order.
pub const FIG3B_LABELS: [&str; 6] = [
    "no synchronizing latches for outputs",
    "4 registers instead of 32",
    "fetch controller removed",
    "remove outputs not affecting control logic",
    "1-hot to binary encoding",
    "remove interlock registers",
];

/// Builds the Fig 3(b) abstraction pipeline.
pub fn fig3b_pipeline() -> Pipeline {
    let mut p = Pipeline::new();
    p.push(
        FIG3B_LABELS[0],
        Step::Bypass(Box::new(|_, l| l.module == "sync_out")),
    );
    p.push(
        FIG3B_LABELS[1],
        Step::Custom(Box::new(|n| {
            let names = control::upper_addr_bit_names();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let tied = transform::tie_inputs(n, &refs, false);
            transform::fold_constant_latches(&tied)
        })),
    );
    p.push(
        FIG3B_LABELS[2],
        Step::ConstantFold(Box::new(|_, l| l.module == "fetch")),
    );
    p.push(
        FIG3B_LABELS[3],
        Step::KeepOutputs(Box::new(|name| control::FINAL_OUTPUTS.contains(&name))),
    );
    p.push(
        FIG3B_LABELS[4],
        Step::Custom(Box::new(|n| {
            let ex_group: Vec<_> = control::ex_class_names()
                .iter()
                .map(|nm| n.latch_by_name(nm).expect("ex class latch present"))
                .collect();
            let n = transform::reencode_onehot(n, &ex_group, "ex.class_bin")
                .expect("ex class group is one-hot");
            let mem_group: Vec<_> = control::mem_class_names()
                .iter()
                .map(|nm| n.latch_by_name(nm).expect("mem class latch present"))
                .collect();
            transform::reencode_onehot(&n, &mem_group, "mem.class_bin")
                .expect("mem class group is one-hot")
        })),
    );
    p.push(
        FIG3B_LABELS[5],
        Step::ConstantFold(Box::new(|_, l| l.module == "interlock")),
    );
    p
}

/// Runs the full derivation: initial model → six abstraction steps.
/// Returns the final 22-latch test model and the per-step reports.
pub fn derive_test_model() -> (Netlist, Vec<StepReport>) {
    let initial = control::initial_control_netlist();
    fig3b_pipeline().run(&initial)
}

/// The final test model with every latch exported as an `obs:` output —
/// Requirement 5 applied at full scale. On this variant the symbolic pair
/// analysis proves ∀1-distinguishability of all reachable state pairs
/// (Theorem 2's conclusion, verified mechanically), whereas the bare
/// 4-output model has tens of thousands of indistinguishable pairs.
pub fn derive_test_model_observable() -> Netlist {
    let (mut fin, _) = derive_test_model();
    for l in fin.latch_ids().collect::<Vec<_>>() {
        let name = fin.latches()[l.index()].name.clone();
        let o = fin.latch_output(l);
        fin.add_output(format!("obs:{name}"), o);
    }
    fin
}

/// Builds the valid-input constraint of the final test model (the input
/// don't-cares of Section 7.2) as a BDD over the model's input variables.
///
/// Encodes the 18-bit abstract instruction format: 6-bit opcode, 6-bit
/// func (zero except for R-type, where only the 16 defined functions are
/// legal), and three 2-bit register fields with per-format canonical-zero
/// constraints. The 7 status inputs are unconstrained.
pub fn valid_inputs_bdd(fsm: &mut SymbolicFsm) -> Bdd {
    let vars: Vec<Option<simcov_bdd::Var>> = fsm
        .input_names_owned()
        .iter()
        .map(|n| fsm.input_var_by_name(n))
        .collect();
    let names = fsm.input_names_owned();
    valid_inputs_constraint(fsm.mgr(), &|name| {
        names
            .iter()
            .position(|n| n == name)
            .and_then(|i| vars[i])
            .unwrap_or_else(|| panic!("final model lost input `{name}`"))
    })
}

/// The same constraint, parameterised over the variable assignment — used
/// by both [`valid_inputs_bdd`] and the symbolic pair analysis (which
/// lays out variables differently).
pub fn valid_inputs_constraint(
    mgr: &mut simcov_bdd::BddManager,
    input_var: &dyn Fn(&str) -> simcov_bdd::Var,
) -> Bdd {
    use crate::isa::opcode::*;
    fn bit(mgr: &mut simcov_bdd::BddManager, v: simcov_bdd::Var) -> Bdd {
        mgr.var(v.0)
    }
    let field = |mgr: &mut simcov_bdd::BddManager, lo: usize, width: usize| -> Vec<Bdd> {
        (0..width)
            .map(|i| {
                let v = input_var(&format!("instr[{}]", lo + i));
                bit(mgr, v)
            })
            .collect()
    };
    fn eq_const(mgr: &mut simcov_bdd::BddManager, bits: &[Bdd], val: u64) -> Bdd {
        let mut acc = Bdd::TRUE;
        for (i, &b) in bits.iter().enumerate() {
            let lit = if (val >> i) & 1 == 1 { b } else { mgr.not(b) };
            acc = mgr.and(acc, lit);
        }
        acc
    }
    let op = field(mgr, control::fields::OP.0, 6);
    let func = field(mgr, control::fields::FUNC.0, 6);
    let rs1 = field(mgr, control::fields::RS1.0, 2);
    let rfield = field(mgr, control::fields::RFIELD.0, 2);
    let rd_r = field(mgr, control::fields::RD_R.0, 2);

    let func_zero = eq_const(mgr, &func, 0);
    let func_legal = {
        // func < 16: top two bits zero.
        let n4 = mgr.not(func[4]);
        let n5 = mgr.not(func[5]);
        mgr.and(n4, n5)
    };
    let rs1_zero = eq_const(mgr, &rs1, 0);
    let rf_zero = eq_const(mgr, &rfield, 0);
    let rf_link = eq_const(mgr, &rfield, 3);
    let rd_zero = eq_const(mgr, &rd_r, 0);

    let mut valid = Bdd::FALSE;
    let add_case =
        |mgr: &mut simcov_bdd::BddManager, valid: &mut Bdd, opc: u32, constraint: Bdd| {
            let this_op = eq_const(mgr, &op, opc as u64);
            let case = mgr.and(this_op, constraint);
            *valid = mgr.or(*valid, case);
        };
    // R-type: 16 legal funcs, all register fields free.
    add_case(mgr, &mut valid, OP_RTYPE, func_legal);
    // I-type ALU + LHI + loads + stores: func zero, R-type rd field zero.
    let itype = mgr.and(func_zero, rd_zero);
    for opc in [
        OP_ADDI, OP_ADDUI, OP_SUBI, OP_SUBUI, OP_ANDI, OP_ORI, OP_XORI, OP_LHI, OP_SLLI, OP_SRLI,
        OP_SRAI, OP_SEQI, OP_SNEI, OP_SLTI, OP_SGTI, OP_SLEI, OP_SGEI, OP_LB, OP_LH, OP_LW, OP_LBU,
        OP_LHU, OP_SB, OP_SH, OP_SW,
    ] {
        add_case(mgr, &mut valid, opc, itype);
    }
    // Branches: rd fields zero, rs1 free.
    let branch_c = mgr.and(itype, rf_zero);
    for opc in [OP_BEQZ, OP_BNEZ] {
        add_case(mgr, &mut valid, opc, branch_c);
    }
    // J / NOP / HALT: every field zero. JAL: link register in rd field.
    let all_zero = mgr.and(branch_c, rs1_zero);
    add_case(mgr, &mut valid, OP_J, all_zero);
    let jal_c = {
        let t = mgr.and(itype, rf_link);
        mgr.and(t, rs1_zero)
    };
    add_case(mgr, &mut valid, OP_JAL, jal_c);
    // JR: rs1 free, rest zero. JALR: rs1 free, link in rd field.
    add_case(mgr, &mut valid, OP_JR, branch_c);
    let jalr_c = mgr.and(itype, rf_link);
    add_case(mgr, &mut valid, OP_JALR, jalr_c);
    add_case(mgr, &mut valid, OP_NOP, all_zero);
    add_case(mgr, &mut valid, OP_HALT, all_zero);
    valid
}

/// Collapses the final model's valid input space to its behavioural
/// equivalence classes (two vectors are equivalent when they drive every
/// reachable state to the same successor with the same outputs) and
/// enumerates the resulting *class-quotient machine* explicitly.
///
/// This is what makes the paper's Section 7.2 tour tractable here: the
/// 184,832 valid vectors collapse to a few hundred classes, turning the
/// 287-million-transition model into an explicitly tourable machine of
/// ~500k class-transitions. Expect roughly a minute of computation in
/// release builds.
pub fn full_model_class_machine() -> (simcov_fsm::ExplicitMealy, simcov_fsm::InputClasses) {
    let (fin, _) = derive_test_model();
    let classes = simcov_fsm::input_equivalence_classes(
        &fin,
        |mgr, lookup| valid_inputs_constraint(mgr, &|name| lookup(name)),
        true,
        1_000_000,
    )
    .expect("class count is far below the bound");
    let opts = EnumerateOptions {
        inputs: classes.representatives.clone(),
        input_labels: Some(
            (0..classes.representatives.len())
                .map(|i| format!("c{i}"))
                .collect(),
        ),
        max_states: 1 << 20,
    };
    let m = simcov_fsm::enumerate_netlist(&fin, &opts).expect("class-quotient machine enumerates");
    (m, classes)
}

/// The class-quotient machine of the *observable* full model
/// (Requirement 5 applied): same input-class analysis as
/// [`full_model_class_machine`], over the netlist whose 22 latches are
/// exported as outputs. This is the machine on which Theorem 3 is
/// exercised at full scale: certifiable at k = 1, tourable, and
/// attackable with fault campaigns.
pub fn full_model_class_machine_observable() -> (simcov_fsm::ExplicitMealy, simcov_fsm::InputClasses)
{
    let fin = derive_test_model_observable();
    let classes = simcov_fsm::input_equivalence_classes(
        &fin,
        |mgr, lookup| valid_inputs_constraint(mgr, &|name| lookup(name)),
        true,
        1_000_000,
    )
    .expect("class count is far below the bound");
    let opts = EnumerateOptions {
        inputs: classes.representatives.clone(),
        input_labels: Some(
            (0..classes.representatives.len())
                .map(|i| format!("c{i}"))
                .collect(),
        ),
        max_states: 1 << 20,
    };
    let m = simcov_fsm::enumerate_netlist(&fin, &opts).expect("class-quotient machine enumerates");
    (m, classes)
}

/// A reduced pipeline-control model, small enough for explicit
/// enumeration, tour generation and exhaustive fault campaigns: 2-bit
/// opcode (`nop`/`alu`/`load`/`branch`), two architectural registers (1
/// destination bit), one-deep interlock and squash logic.
///
/// Inputs: `op[0..2]`, `rs1`, `rd`, `zero_flag` (5 bits).
/// Outputs: `stall`, `squash`, `rf_wen`.
pub fn reduced_control_netlist() -> Netlist {
    let mut n = Netlist::new();
    let op = Word::inputs(&mut n, "op", 2);
    let rs1 = n.add_input("rs1");
    let rd = n.add_input("rd");
    let zero_flag = n.add_input("zero_flag");

    let is_alu = op.eq_const(&mut n, 1);
    let is_load = op.eq_const(&mut n, 2);
    let is_branch = op.eq_const(&mut n, 3);
    let uses_rs1 = {
        let t = n.or(is_alu, is_load);
        n.or(t, is_branch)
    };
    let writes = {
        let t = n.or(is_alu, is_load);
        n.and(t, rd) // writes only when rd = r1 (r0 is discarded)
    };

    // State.
    let id_stallflag = n.add_latch_in("id.stallflag", false, "id");
    let id_stallflag_o = n.latch_output(id_stallflag);
    let ex_valid = n.add_latch_in("ex.valid", false, "ex");
    let ex_valid_o = n.latch_output(ex_valid);
    let ex_is_load = n.add_latch_in("ex.is_load", false, "ex");
    let ex_is_load_o = n.latch_output(ex_is_load);
    let ex_is_branch = n.add_latch_in("ex.is_branch", false, "ex");
    let ex_is_branch_o = n.latch_output(ex_is_branch);
    let ex_writes = n.add_latch_in("ex.writes", false, "ex");
    let ex_writes_o = n.latch_output(ex_writes);
    let mem_valid = n.add_latch_in("mem.valid", false, "mem");
    let mem_valid_o = n.latch_output(mem_valid);
    let mem_writes = n.add_latch_in("mem.writes", false, "mem");
    let mem_writes_o = n.latch_output(mem_writes);
    let br_squash = n.add_latch_in("branch.squash", false, "branch");
    let br_squash_o = n.latch_output(br_squash);

    // Control equations (one-destination-register design: a hazard exists
    // when the EX instruction writes r1 and the incoming one reads r1).
    let mut load_stall = n.and(ex_is_load_o, ex_valid_o);
    load_stall = n.and(load_stall, ex_writes_o);
    let reads_r1 = n.and(uses_rs1, rs1);
    load_stall = n.and(load_stall, reads_r1);
    let nsf = n.not(id_stallflag_o);
    load_stall = n.and(load_stall, nsf);
    let stall = load_stall;

    let taken = {
        let t = n.and(ex_is_branch_o, ex_valid_o);
        n.and(t, zero_flag)
    };
    let squash = n.or(taken, br_squash_o);

    let not_stall = n.not(stall);
    let not_squash = n.not(squash);
    let issue = n.and(not_stall, not_squash);

    // Next state.
    n.set_latch_next(id_stallflag, stall);
    n.set_latch_next(ex_valid, issue);
    let ldn = n.and(is_load, issue);
    n.set_latch_next(ex_is_load, ldn);
    let brn = n.and(is_branch, issue);
    n.set_latch_next(ex_is_branch, brn);
    let wrn = n.and(writes, issue);
    n.set_latch_next(ex_writes, wrn);
    n.set_latch_next(mem_valid, ex_valid_o);
    let mwn = n.and(ex_writes_o, ex_valid_o);
    n.set_latch_next(mem_writes, mwn);
    n.set_latch_next(br_squash, taken);

    // Outputs.
    n.add_output("stall", stall);
    n.add_output("squash", squash);
    let rf_wen = n.and(mem_valid_o, mem_writes_o);
    n.add_output("rf_wen", rf_wen);

    debug_assert!(n.check().is_empty());
    n
}

/// The reduced control model with its interaction state made observable —
/// the paper's Requirement 5 construction (*"the state associated with
/// interactions between processing of subsequent inputs is made
/// observable"*).
///
/// Every latch is exported as an `obs:<name>` output. Without these
/// outputs the reduced model is **not** ∀k-distinguishable for any `k`
/// (pairs differing only in interaction state produce identical output
/// streams along some input sequences); with them it is
/// ∀1-distinguishable and [`simcov_core::certify_completeness`] issues a
/// certificate.
pub fn reduced_control_netlist_observable() -> Netlist {
    let mut n = reduced_control_netlist();
    for l in n.latch_ids().collect::<Vec<_>>() {
        let name = n.latches()[l.index()].name.clone();
        let o = n.latch_output(l);
        n.add_output(format!("obs:{name}"), o);
    }
    n
}

/// The reduced control model extended with a memory-wait path: a
/// `mem_ready` input and `stall = load_stall | mem_stall` (the exact
/// structure the paper's Figure 1 snippet shows). Used for the
/// Requirement 2 experiment: with `mem_ready` free, the model has an
/// infinite-stall cycle (processing time unbounded — Requirement 2
/// violated); constraining `mem_ready = 1` (the perfect-memory
/// environment assumption) restores a finite bound.
pub fn reduced_control_netlist_with_memory() -> Netlist {
    let mut n = Netlist::new();
    let op = Word::inputs(&mut n, "op", 2);
    let rs1 = n.add_input("rs1");
    let rd = n.add_input("rd");
    let zero_flag = n.add_input("zero_flag");
    let mem_ready = n.add_input("mem_ready");

    let is_alu = op.eq_const(&mut n, 1);
    let is_load = op.eq_const(&mut n, 2);
    let is_branch = op.eq_const(&mut n, 3);
    let uses_rs1 = {
        let t = n.or(is_alu, is_load);
        n.or(t, is_branch)
    };
    let writes = {
        let t = n.or(is_alu, is_load);
        n.and(t, rd)
    };

    let id_stallflag = n.add_latch_in("id.stallflag", false, "id");
    let id_stallflag_o = n.latch_output(id_stallflag);
    let ex_valid = n.add_latch_in("ex.valid", false, "ex");
    let ex_valid_o = n.latch_output(ex_valid);
    let ex_is_load = n.add_latch_in("ex.is_load", false, "ex");
    let ex_is_load_o = n.latch_output(ex_is_load);
    let ex_is_branch = n.add_latch_in("ex.is_branch", false, "ex");
    let ex_is_branch_o = n.latch_output(ex_is_branch);
    let ex_writes = n.add_latch_in("ex.writes", false, "ex");
    let ex_writes_o = n.latch_output(ex_writes);
    let mem_is_load = n.add_latch_in("mem.is_load", false, "mem");
    let mem_is_load_o = n.latch_output(mem_is_load);
    let mem_valid = n.add_latch_in("mem.valid", false, "mem");
    let mem_valid_o = n.latch_output(mem_valid);
    let mem_writes = n.add_latch_in("mem.writes", false, "mem");
    let mem_writes_o = n.latch_output(mem_writes);
    let br_squash = n.add_latch_in("branch.squash", false, "branch");
    let br_squash_o = n.latch_output(br_squash);

    let mut load_stall = n.and(ex_is_load_o, ex_valid_o);
    load_stall = n.and(load_stall, ex_writes_o);
    let reads_r1 = n.and(uses_rs1, rs1);
    load_stall = n.and(load_stall, reads_r1);
    let nsf = n.not(id_stallflag_o);
    load_stall = n.and(load_stall, nsf);
    // The paper's own structure: stall = load_stall | mem_stall.
    let nready = n.not(mem_ready);
    let mut mem_stall = n.and(mem_is_load_o, mem_valid_o);
    mem_stall = n.and(mem_stall, nready);
    let stall = n.or(load_stall, mem_stall);

    let taken = {
        let t = n.and(ex_is_branch_o, ex_valid_o);
        n.and(t, zero_flag)
    };
    let squash = n.or(taken, br_squash_o);

    let not_stall = n.not(stall);
    let not_squash = n.not(squash);
    let issue = n.and(not_stall, not_squash);

    n.set_latch_next(id_stallflag, stall);
    n.set_latch_next(ex_valid, issue);
    let ldn = n.and(is_load, issue);
    n.set_latch_next(ex_is_load, ldn);
    let brn = n.and(is_branch, issue);
    n.set_latch_next(ex_is_branch, brn);
    let wrn = n.and(writes, issue);
    n.set_latch_next(ex_writes, wrn);
    // MEM holds while waiting for memory.
    let to_mem_load = n.and(ex_is_load_o, ex_valid_o);
    let mln = n.mux(mem_stall, mem_is_load_o, to_mem_load);
    n.set_latch_next(mem_is_load, mln);
    let mvn = n.mux(mem_stall, mem_valid_o, ex_valid_o);
    n.set_latch_next(mem_valid, mvn);
    let mwn2 = n.and(ex_writes_o, ex_valid_o);
    let mwn = n.mux(mem_stall, mem_writes_o, mwn2);
    n.set_latch_next(mem_writes, mwn);
    n.set_latch_next(br_squash, taken);

    n.add_output("stall", stall);
    n.add_output("squash", squash);
    let rf_wen = n.and(mem_valid_o, mem_writes_o);
    n.add_output("rf_wen", rf_wen);

    debug_assert!(n.check().is_empty());
    n
}

/// Valid input vectors of the memory variant: the reduced-model rules
/// plus a policy for `mem_ready` (`None` = free, `Some(v)` = tied).
pub fn reduced_memory_valid_inputs(n: &Netlist, mem_ready: Option<bool>) -> EnumerateOptions {
    EnumerateOptions::filtered(n, move |v| {
        let op = (v[0] as u8) | ((v[1] as u8) << 1);
        let rs1 = v[2];
        let rd = v[3];
        let ready = v[5];
        let class_ok = match op {
            0 => !rs1 && !rd,
            1 | 2 => true,
            3 => !rd,
            _ => unreachable!(),
        };
        class_ok && mem_ready.map(|want| ready == want).unwrap_or(true)
    })
}

/// Valid input vectors of the reduced model: `nop` carries zero register
/// fields; `branch` carries no destination.
pub fn reduced_valid_inputs(n: &Netlist) -> EnumerateOptions {
    EnumerateOptions::filtered(n, |v| {
        let op = (v[0] as u8) | ((v[1] as u8) << 1);
        let rs1 = v[2];
        let rd = v[3];
        match op {
            0 => !rs1 && !rd, // nop
            1 | 2 => true,    // alu / load
            3 => !rd,         // branch
            _ => unreachable!(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::enumerate_netlist;

    #[test]
    fn fig3b_latch_sequence_matches_paper() {
        let initial = control::initial_control_netlist();
        assert_eq!(initial.stats().latches, FIG3B_LATCH_SEQUENCE[0]);
        let (_, reports) = fig3b_pipeline().run(&initial);
        let measured: Vec<usize> = reports.iter().map(|r| r.stats.latches).collect();
        assert_eq!(measured, FIG3B_LATCH_SEQUENCE[1..].to_vec());
    }

    #[test]
    fn final_model_interface_matches_paper() {
        let (fin, _) = derive_test_model();
        let s = fin.stats();
        assert_eq!(s.latches, 22, "final test model: 22 latches");
        assert_eq!(s.inputs, 25, "final test model: 25 primary inputs");
        assert_eq!(s.outputs, 4, "final test model: 4 primary outputs");
    }

    #[test]
    fn final_model_has_18_bit_instruction_format() {
        let (fin, _) = derive_test_model();
        let instr_bits = fin
            .input_names()
            .filter(|n| n.starts_with("instr["))
            .count();
        assert_eq!(instr_bits, 18, "18-bit abstract instruction format");
        let status_bits = fin
            .input_names()
            .filter(|n| !n.starts_with("instr["))
            .count();
        assert_eq!(status_bits, 7);
    }

    #[test]
    fn valid_input_count_is_small_fraction() {
        let (fin, _) = derive_test_model();
        let mut fsm = SymbolicFsm::from_netlist(&fin);
        let valid = valid_inputs_bdd(&mut fsm);
        fsm.set_valid_inputs(valid);
        let count = fsm.count_valid_inputs();
        // 1444 legal instruction encodings × 2^7 free status bits.
        assert_eq!(count, 1444 * 128);
        // A small fraction of the 2^25 input space, as in the paper
        // (8228 of 2^25 there).
        assert!(count < (1u128 << 25) / 100);
    }

    #[test]
    fn reduced_model_enumerates() {
        let n = reduced_control_netlist();
        assert_eq!(n.stats().latches, 8);
        let opts = reduced_valid_inputs(&n);
        assert_eq!(opts.inputs.len(), 22); // (1 + 4 + 4 + 2) × 2
        let m = enumerate_netlist(&n, &opts).unwrap();
        assert!(m.num_states() >= 8, "{} states", m.num_states());
        assert!(m.is_complete());
        assert!(m.is_strongly_connected());
    }

    #[test]
    fn requirement5_gates_distinguishability() {
        use simcov_core::forall_k_distinguishable;
        // Without observable interaction state: stuck indistinguishable
        // pairs at every depth (the violation Requirement 5 repairs).
        let base = reduced_control_netlist();
        let mb = enumerate_netlist(&base, &reduced_valid_inputs(&base)).unwrap();
        let d = forall_k_distinguishable(&mb, 4, 0).unwrap();
        assert!(!d.holds(), "base reduced model must violate forall-k");
        // With it: forall-1-distinguishable.
        let obs = reduced_control_netlist_observable();
        let mo = enumerate_netlist(&obs, &reduced_valid_inputs(&obs)).unwrap();
        let d = forall_k_distinguishable(&mo, 1, 0).unwrap();
        assert!(
            d.holds(),
            "observable model must be forall-1-distinguishable"
        );
    }

    #[test]
    fn reduced_model_stalls_on_load_use() {
        use simcov_netlist::SimState;
        let n = reduced_control_netlist();
        let mut sim = SimState::new(&n);
        // load r1; alu reading r1 -> stall.
        let load_rd1 = [false, true, false, true, false]; // op=2, rd=1
        let alu_rs1 = [true, false, true, true, false]; // op=1, rs1=1
        let nop = [false, false, false, false, false];
        sim.step(&n, &load_rd1);
        let o = sim.step(&n, &alu_rs1);
        assert!(o[0], "stall must assert during load-use");
        let o = sim.step(&n, &nop);
        assert!(!o[0]);
    }

    #[test]
    fn reduced_model_squashes_on_taken_branch() {
        use simcov_netlist::SimState;
        let n = reduced_control_netlist();
        let mut sim = SimState::new(&n);
        let branch = [true, true, false, false, true]; // op=3, zero_flag=1
        let nop = [false, false, false, false, false];
        sim.step(&n, &branch);
        let o = sim.step(&n, &[false, false, false, false, true]); // zf still 1
        assert!(o[1], "squash during branch resolve");
        let o = sim.step(&n, &nop);
        assert!(o[1], "squash extends one cycle via br_squash");
        let o = sim.step(&n, &nop);
        assert!(!o[1]);
    }
}

//! A small blocking client for the `simcov-serve v1` protocol.
//!
//! Used by `simcov submit`, the load-test harness and the CI gates. The
//! interesting part is [`Client::run_job`]: it rides out every failure
//! the chaos plan injects — a dropped connection is answered by
//! reconnecting and polling `query` (the server stores every result
//! before it attempts delivery), a `rejected` ack by sleeping out the
//! server's retry-after hint and resubmitting.

use crate::protocol::{read_frame, write_frame, FrameError};
use simcov_obs::json::Json;
use std::net::TcpStream;
use std::time::Duration;

/// A blocking protocol client over one TCP connection (reconnecting
/// where the protocol allows it).
pub struct Client {
    addr: String,
    stream: TcpStream,
}

/// A client-side failure: socket errors plus protocol violations.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with something the protocol does not allow
    /// here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to a server at `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            addr: addr.to_string(),
            stream,
        })
    }

    /// Sends one raw request frame.
    pub fn send(&mut self, payload: &str) -> std::io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> Result<Json, FrameError> {
        read_frame(&mut self.stream)
    }

    /// Sends one request and returns the next frame — for requests with
    /// exactly one response (`stats`, `query`, `shutdown`).
    pub fn request(&mut self, payload: &str) -> Result<Json, ClientError> {
        self.send(payload)?;
        self.recv()
            .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        self.stream = TcpStream::connect(&self.addr)?;
        Ok(())
    }

    /// Submits a job request and blocks until its `result` frame (or a
    /// terminal `error`/`quarantined` answer) arrives. Handles rejection
    /// backoff, out-of-order frames for other ids, dropped connections
    /// (reconnect + `query`) and `pending` polls.
    pub fn run_job(&mut self, payload: &str, id: &str) -> Result<Json, ClientError> {
        self.send(payload)?;
        loop {
            match self.recv() {
                Ok(frame) => {
                    let ftype = frame.get("type").and_then(Json::as_str).unwrap_or("");
                    let fid = frame.get("id").and_then(Json::as_str).unwrap_or("");
                    match ftype {
                        "result" if fid == id => return Ok(frame),
                        "error" => {
                            return Err(ClientError::Protocol(
                                frame
                                    .get("error")
                                    .and_then(Json::as_str)
                                    .unwrap_or("unspecified error")
                                    .to_string(),
                            ))
                        }
                        "ack" if fid == id => {
                            let status = frame.get("status").and_then(Json::as_str).unwrap_or("");
                            match status {
                                "admitted" => {}
                                "pending" => {
                                    // Poll again shortly; the job is in
                                    // flight on the server.
                                    std::thread::sleep(Duration::from_millis(5));
                                    self.send(&query(id))?;
                                }
                                "rejected" => {
                                    let retry = frame
                                        .get("retry_after_ms")
                                        .and_then(Json::as_u64)
                                        .unwrap_or(25)
                                        .min(250);
                                    std::thread::sleep(Duration::from_millis(retry));
                                    self.send(payload)?;
                                }
                                "quarantined" => {
                                    return Err(ClientError::Protocol(format!(
                                        "job `{id}` is quarantined"
                                    )))
                                }
                                other => {
                                    return Err(ClientError::Protocol(format!(
                                        "unexpected ack status `{other}`"
                                    )))
                                }
                            }
                        }
                        // Frames for other ids (pipelined siblings on a
                        // shared connection) are not ours to consume
                        // authoritatively — but by protocol each request
                        // has a dedicated client here, so skip.
                        _ => {}
                    }
                }
                Err(FrameError::Closed) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => {
                    // Chaos (or a real fault) dropped the connection.
                    // Every result is stored before delivery is
                    // attempted, so reconnect-and-query converges.
                    std::thread::sleep(Duration::from_millis(2));
                    self.reconnect()?;
                    self.send(&query(id))?;
                }
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
        }
    }
}

/// Builds a `query` request for `id`.
pub fn query(id: &str) -> String {
    format!(
        r#"{{"type":"query","id":"{}"}}"#,
        simcov_obs::json::escape(id)
    )
}

/// Builds a `stats` request.
pub fn stats() -> String {
    r#"{"type":"stats"}"#.to_string()
}

/// Builds a `shutdown` request.
pub fn shutdown() -> String {
    r#"{"type":"shutdown"}"#.to_string()
}

//! Model lints (`SC001`–`SC008`): static checks over explicit Mealy
//! machines — reachability, completeness, strong connectivity, and the
//! paper's Requirements 2, 3 and 5 plus ∀k-distinguishability, wrapping
//! the executable checkers of `simcov_core::requirements` into the
//! unified diagnostic format.

use crate::codes::*;
use crate::diag::{Diagnostics, LintCode, LintConfig, LintPass, Location};
use simcov_core::{check_req2_bounded_processing, check_req3_unique_outputs};
use simcov_fsm::{BuildError, ExplicitMealy};

/// What the model passes run over: the machine plus the optional context
/// the requirement checkers need (which outputs mean "processing has not
/// completed", which state names must be observable, and the `k` for the
/// distinguishability analysis).
pub struct ModelTarget<'a> {
    /// The machine under lint.
    pub machine: &'a ExplicitMealy,
    /// `stalled[o]` marks output symbol `o` as a stalled transition
    /// (Requirement 2). `None` skips SC005.
    pub stalled: Option<Vec<bool>>,
    /// Names of the interaction-state variables (Requirement 5).
    /// Empty skips SC007.
    pub interaction_state: Vec<String>,
    /// Names the model exposes for comparison (Requirement 5).
    pub observable: Vec<String>,
    /// Depth for the ∀k-distinguishability analysis; `0` skips SC008.
    pub k: usize,
}

impl<'a> ModelTarget<'a> {
    /// A target with no stall/observability context and `k = 1`.
    pub fn new(machine: &'a ExplicitMealy) -> Self {
        ModelTarget {
            machine,
            stalled: None,
            interaction_state: Vec::new(),
            observable: Vec::new(),
            k: 1,
        }
    }

    /// Marks every output symbol whose label equals one of `names` as a
    /// stalled transition (enables SC005).
    pub fn with_stall_output_labels(mut self, names: &[&str]) -> Self {
        let m = self.machine;
        self.stalled = Some(
            (0..m.num_outputs())
                .map(|o| names.contains(&m.output_label(simcov_fsm::OutputSym(o as u32))))
                .collect(),
        );
        self
    }
}

fn state_loc(m: &ExplicitMealy, s: simcov_fsm::StateId) -> Location {
    Location::State {
        id: s.0,
        label: m.state_label(s).to_string(),
    }
}

/// SC001: states never reached from reset.
pub struct UnreachableStates;

impl LintPass<ModelTarget<'_>> for UnreachableStates {
    fn code(&self) -> &'static LintCode {
        &SC001_UNREACHABLE_STATE
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        let m = t.machine;
        let mut reachable = vec![false; m.num_states()];
        for s in m.reachable_states() {
            reachable[s.index()] = true;
        }
        for s in m.states().filter(|s| !reachable[s.index()]) {
            out.emit(
                self.code(),
                state_loc(m, s),
                "state can never be reached from reset; a tour will not exercise it",
            );
        }
    }
}

/// SC002: reachable `(state, input)` slots with no transition.
pub struct IncompleteAlphabet;

impl LintPass<ModelTarget<'_>> for IncompleteAlphabet {
    fn code(&self) -> &'static LintCode {
        &SC002_INCOMPLETE_ALPHABET
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        let m = t.machine;
        for s in m.reachable_states() {
            for i in m.inputs() {
                if m.step(s, i).is_none() {
                    out.emit(
                        self.code(),
                        Location::Transition {
                            state: m.state_label(s).to_string(),
                            input: m.input_label(i).to_string(),
                        },
                        "no transition defined; restrict the valid-input alphabet or \
                         complete the machine",
                    );
                }
            }
        }
    }
}

/// SC004: the reachable sub-graph is not strongly connected.
pub struct StronglyConnected;

impl LintPass<ModelTarget<'_>> for StronglyConnected {
    fn code(&self) -> &'static LintCode {
        &SC004_NOT_STRONGLY_CONNECTED
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        if !t.machine.is_strongly_connected() {
            out.emit(
                self.code(),
                Location::Model,
                "some reachable state cannot return to reset, so no single \
                 transition tour covers every transition",
            );
        }
    }
}

/// SC005 (Requirement 2): a cycle of stalled transitions means processing
/// is unbounded.
pub struct BoundedProcessing;

impl LintPass<ModelTarget<'_>> for BoundedProcessing {
    fn code(&self) -> &'static LintCode {
        &SC005_INFINITE_STALL
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        let Some(stalled) = &t.stalled else { return };
        let m = t.machine;
        if let Err(w) = check_req2_bounded_processing(m, |o| stalled[o.index()]) {
            let cycle: Vec<&str> = w.cycle.iter().map(|&s| m.state_label(s)).collect();
            out.emit(
                self.code(),
                state_loc(m, w.cycle[0]),
                format!(
                    "stall cycle `{}` never completes processing (Requirement 2 \
                     needs a finite k)",
                    cycle.join(" -> ")
                ),
            );
        }
    }
}

/// SC006 (Requirement 3): distinct inputs with identical outputs.
///
/// One diagnostic per offending state (with a witness pair and the
/// collision count) rather than one per pair — large models otherwise
/// drown the report.
pub struct UniqueOutputs;

impl LintPass<ModelTarget<'_>> for UniqueOutputs {
    fn code(&self) -> &'static LintCode {
        &SC006_NON_UNIQUE_OUTPUTS
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        let m = t.machine;
        let Err(collisions) = check_req3_unique_outputs(m) else {
            return;
        };
        let mut by_state: Vec<(simcov_fsm::StateId, usize, String)> = Vec::new();
        for (s, i1, i2) in collisions {
            match by_state.last_mut() {
                Some((ls, n, _)) if *ls == s => *n += 1,
                _ => by_state.push((
                    s,
                    1,
                    format!(
                        "inputs `{}` and `{}` both emit `{}`",
                        m.input_label(i1),
                        m.input_label(i2),
                        m.output_label(m.step(s, i1).expect("collision transition exists").1)
                    ),
                )),
            }
        }
        for (s, n, witness) in by_state {
            out.emit_with_notes(
                self.code(),
                state_loc(m, s),
                format!(
                    "{n} input pair{} share an output; e.g. {witness}",
                    if n == 1 { "" } else { "s" }
                ),
                vec![
                    "Requirement 3 is normally achieved by data selection during \
                     vector expansion, not by the abstract model itself"
                        .to_string(),
                ],
            );
        }
    }
}

/// SC007 (Requirement 5): declared interaction state must be observable.
pub struct ObservableInteraction;

impl LintPass<ModelTarget<'_>> for ObservableInteraction {
    fn code(&self) -> &'static LintCode {
        &SC007_UNOBSERVABLE_INTERACTION
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        if t.interaction_state.is_empty() {
            return;
        }
        let interaction: Vec<&str> = t.interaction_state.iter().map(String::as_str).collect();
        let observable: Vec<&str> = t.observable.iter().map(String::as_str).collect();
        if let Err(missing) = simcov_core::check_req5_observable(&interaction, &observable) {
            for name in missing {
                out.emit(
                    self.code(),
                    Location::Signal { name: name.clone() },
                    format!(
                        "interaction-state variable `{name}` is not among the {} \
                         observable signals",
                        observable.len()
                    ),
                );
            }
        }
    }
}

/// SC008: ∀k-distinguishability with witness pairs (the hypothesis of
/// Theorem 1). Skipped when the machine is incomplete on its reachable
/// part — SC002 already denies, and the ∀ quantification is undefined.
pub struct ForallKDistinguishable;

/// Witness pairs rendered before collapsing to a count.
const MAX_PAIR_WITNESSES: usize = 4;

impl LintPass<ModelTarget<'_>> for ForallKDistinguishable {
    fn code(&self) -> &'static LintCode {
        &SC008_FORALL_K_FAILURE
    }

    fn run(&self, t: &ModelTarget<'_>, out: &mut Diagnostics) {
        let m = t.machine;
        if t.k == 0 || !m.is_complete_on_reachable() {
            return;
        }
        // One shared level chain: the pair-relation sweep runs once and
        // every witness (and any k ≤ t.k) is read off the memoized
        // levels, instead of re-traversing the machine per witness.
        let d = simcov_core::DistinguishLevels::build(m, t.k)
            .expect("completeness checked above")
            .analyze(t.k, MAX_PAIR_WITNESSES);
        if d.holds() {
            return;
        }
        let total = d.violations.len();
        for v in d.violations.iter().take(MAX_PAIR_WITNESSES) {
            let seq: Vec<&str> = v.witness.iter().map(|&i| m.input_label(i)).collect();
            out.emit_with_notes(
                self.code(),
                Location::StatePair {
                    s1: m.state_label(v.s1).to_string(),
                    s2: m.state_label(v.s2).to_string(),
                },
                format!(
                    "pair is not forall-{}-distinguishable: inputs [{}] keep all \
                     outputs equal",
                    t.k,
                    seq.join(", ")
                ),
                vec![format!(
                    "{total} violating pair{} in total; a transfer error landing in \
                     either state can escape the tour (Theorem 1 hypothesis broken)",
                    if total == 1 { "" } else { "s" }
                )],
            );
        }
    }
}

/// The registered model passes, in code order.
pub fn model_passes<'a>() -> Vec<Box<dyn LintPass<ModelTarget<'a>>>> {
    vec![
        Box::new(UnreachableStates),
        Box::new(IncompleteAlphabet),
        Box::new(StronglyConnected),
        Box::new(BoundedProcessing),
        Box::new(UniqueOutputs),
        Box::new(ObservableInteraction),
        Box::new(ForallKDistinguishable),
    ]
}

/// Runs every model pass over `target` under `config`.
pub fn lint_model(target: &ModelTarget<'_>, config: &LintConfig) -> Diagnostics {
    let mut out = Diagnostics::new(config.clone());
    UnreachableStates.run(target, &mut out);
    IncompleteAlphabet.run(target, &mut out);
    StronglyConnected.run(target, &mut out);
    BoundedProcessing.run(target, &mut out);
    UniqueOutputs.run(target, &mut out);
    ObservableInteraction.run(target, &mut out);
    ForallKDistinguishable.run(target, &mut out);
    out.sort_by_severity();
    out
}

/// SC003: maps a [`BuildError`] from machine construction into the
/// diagnostic format — the lint-level answer to nondeterministic
/// transition definitions, which [`simcov_fsm::MealyBuilder`] rejects
/// before an [`ExplicitMealy`] can exist.
pub fn lint_build_error(e: &BuildError, out: &mut Diagnostics) {
    let (loc, msg) = match e {
        BuildError::Nondeterministic { state, input } => (
            Location::Transition {
                state: format!("#{}", state.0),
                input: format!("#{}", input.0),
            },
            "two conflicting transitions defined for the same (state, input)".to_string(),
        ),
        BuildError::BadReset(s) => (
            Location::State {
                id: s.0,
                label: format!("#{}", s.0),
            },
            "designated reset state does not exist".to_string(),
        ),
        BuildError::Empty => (Location::Model, "machine has no states".to_string()),
    };
    out.emit(&SC003_MALFORMED_MACHINE, loc, msg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use simcov_fsm::{MealyBuilder, StateId};

    /// Two-state machine, complete, strongly connected, with per-state
    /// unique outputs and forall-1-distinguishable states: lint-clean.
    fn clean_machine() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o0 = b.add_output("o0");
        let o1 = b.add_output("o1");
        let o2 = b.add_output("o2");
        let o3 = b.add_output("o3");
        b.add_transition(s0, a, s1, o0);
        b.add_transition(s0, c, s0, o1);
        b.add_transition(s1, a, s0, o2);
        b.add_transition(s1, c, s1, o3);
        b.build(s0).unwrap()
    }

    #[test]
    fn clean_machine_is_clean() {
        let m = clean_machine();
        let d = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        assert!(d.items().is_empty(), "{}", d.render_text());
    }

    #[test]
    fn unreachable_state_warned() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let dead = b.add_state("dead");
        let i = b.add_input("i");
        let o = b.add_output("o");
        b.add_transition(s0, i, s0, o);
        b.add_transition(dead, i, s0, o);
        let m = b.build(s0).unwrap();
        let d = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        assert!(d.has_code("SC001"));
        assert_eq!(d.with_code("SC001").count(), 1);
        assert_eq!(d.items()[0].severity, Severity::Warn);
    }

    #[test]
    fn incomplete_alphabet_denied_and_skips_forall_k() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let i = b.add_input("i");
        let j = b.add_input("j");
        let o = b.add_output("o");
        b.add_transition(s0, i, s1, o);
        b.add_transition(s1, i, s0, o);
        b.add_transition(s0, j, s0, o);
        // (s1, j) missing.
        let m = b.build(s0).unwrap();
        let d = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        assert!(d.has_code("SC002"));
        assert!(d.has_denials());
        assert!(
            !d.has_code("SC008"),
            "forall-k must skip incomplete machines"
        );
    }

    #[test]
    fn sink_state_breaks_connectivity() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let sink = b.add_state("sink");
        let i = b.add_input("i");
        let o = b.add_output("o");
        let o2 = b.add_output("o2");
        b.add_transition(s0, i, sink, o);
        b.add_transition(sink, i, sink, o2);
        let m = b.build(s0).unwrap();
        let d = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        assert!(d.has_code("SC004"));
    }

    #[test]
    fn stall_cycle_denied_only_with_stall_context() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let i = b.add_input("i");
        let stall = b.add_output("stall");
        b.add_transition(s0, i, s0, stall);
        let m = b.build(s0).unwrap();
        let quiet = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        assert!(!quiet.has_code("SC005"));
        let t = ModelTarget::new(&m).with_stall_output_labels(&["stall"]);
        let d = lint_model(&t, &LintConfig::new());
        assert!(d.has_code("SC005"));
        assert!(d.items()[0].message.contains("s0"));
    }

    #[test]
    fn shared_outputs_warned_once_per_state() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let i1 = b.add_input("i1");
        let i2 = b.add_input("i2");
        let i3 = b.add_input("i3");
        let o = b.add_output("o");
        b.add_transition(s0, i1, s0, o);
        b.add_transition(s0, i2, s0, o);
        b.add_transition(s0, i3, s0, o);
        let m = b.build(s0).unwrap();
        let d = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        // 3 colliding pairs collapse to one diagnostic on s0.
        assert_eq!(d.with_code("SC006").count(), 1);
        assert!(d
            .items()
            .iter()
            .any(|x| x.message.contains("3 input pairs")));
    }

    #[test]
    fn req5_names_checked_when_declared() {
        let m = clean_machine();
        let mut t = ModelTarget::new(&m);
        t.interaction_state = vec!["ex.dest".into(), "psw".into()];
        t.observable = vec!["psw".into()];
        let d = lint_model(&t, &LintConfig::new());
        assert_eq!(d.with_code("SC007").count(), 1);
        assert!(d.items().iter().any(|x| x.message.contains("ex.dest")));
    }

    #[test]
    fn forall_k_failure_carries_witness_pair() {
        // Identical outputs everywhere: no pair is distinguishable.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let i = b.add_input("i");
        let o = b.add_output("o");
        b.add_transition(s0, i, s1, o);
        b.add_transition(s1, i, s0, o);
        let m = b.build(s0).unwrap();
        let d = lint_model(&ModelTarget::new(&m), &LintConfig::new());
        let f: Vec<_> = d.with_code("SC008").collect();
        assert_eq!(f.len(), 1);
        assert!(matches!(f[0].location, Location::StatePair { .. }));
        assert!(f[0].message.contains("forall-1"));
        // k = 0 disables the check.
        let mut t = ModelTarget::new(&m);
        t.k = 0;
        assert!(!lint_model(&t, &LintConfig::new()).has_code("SC008"));
    }

    #[test]
    fn build_errors_map_to_sc003() {
        let mut b = MealyBuilder::new();
        let s = b.add_state("s");
        let i = b.add_input("i");
        let o = b.add_output("o");
        let o2 = b.add_output("o2");
        b.add_transition(s, i, s, o);
        b.add_transition(s, i, s, o2);
        let err = b.build(s).unwrap_err();
        let mut d = Diagnostics::with_defaults();
        lint_build_error(&err, &mut d);
        lint_build_error(&BuildError::Empty, &mut d);
        lint_build_error(&BuildError::BadReset(StateId(7)), &mut d);
        assert_eq!(d.with_code("SC003").count(), 3);
        assert!(d.has_denials());
    }

    #[test]
    fn overrides_flip_severities() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let dead = b.add_state("dead");
        let i = b.add_input("i");
        let o = b.add_output("o");
        b.add_transition(s0, i, s0, o);
        b.add_transition(dead, i, s0, o);
        let m = b.build(s0).unwrap();
        let deny = lint_model(&ModelTarget::new(&m), &LintConfig::new().deny("SC001"));
        assert!(deny.has_denials());
        let allow = lint_model(&ModelTarget::new(&m), &LintConfig::new().allow("SC001"));
        assert!(allow.items().is_empty());
        assert_eq!(allow.suppressed(), 1);
    }

    #[test]
    fn pass_list_matches_direct_runner() {
        let m = clean_machine();
        let t = ModelTarget::new(&m);
        let passes = model_passes();
        let refs: Vec<&dyn LintPass<ModelTarget<'_>>> =
            passes.iter().map(|p| p.as_ref() as _).collect();
        let via_trait = crate::diag::run_passes(&refs, &t, &LintConfig::new());
        let direct = lint_model(&t, &LintConfig::new());
        assert_eq!(via_trait.items().len(), direct.items().len());
    }
}

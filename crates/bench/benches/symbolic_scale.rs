//! Symbolic-scale fault campaigns: the implicit (BDD fault-family)
//! engine on the full-width 22-latch / 25-input DLX test model — the
//! workload no explicit engine can enumerate — plus the
//! explicit-comparable symbolic shard engine on the reduced-observable
//! control model. Gated by the CI perf job through the committed
//! baseline like every other entry.

use simcov_bench::timing::BenchReport;
use simcov_core::{
    enumerate_single_faults, extend_cyclically, run_implicit_campaign, simulate_shard_symbolic,
    FaultSpace, ImplicitConfig, ImplicitReport, SymbolicContext, SymbolicEngineStats,
};
use simcov_dlx::testmodel::{
    derive_test_model, reduced_control_netlist_observable, reduced_valid_inputs,
    valid_inputs_constraint,
};
use simcov_fsm::enumerate_netlist;
use simcov_tour::{transition_tour, TestSet};

/// The implicit campaign on the full-width DLX under the abstract-ISA
/// valid-input constraint, serial so the timing is scheduler-free.
fn implicit_full_dlx(k: usize) -> ImplicitReport {
    let (fin, _) = derive_test_model();
    let names: Vec<String> = fin.input_names().map(str::to_string).collect();
    run_implicit_campaign(
        &fin,
        |pf| {
            let vars: Vec<_> = names
                .iter()
                .map(|n| pf.input_var_by_name(n).expect("input present"))
                .collect();
            valid_inputs_constraint(pf.mgr(), &|name| {
                vars[names
                    .iter()
                    .position(|n| n == name)
                    .expect("known input name")]
            })
        },
        &ImplicitConfig { k, jobs: 1 },
    )
}

fn main() {
    let mut rep = BenchReport::new("symbolic_scale");

    let r = implicit_full_dlx(1);
    eprintln!("== symbolic scale: full-width DLX (implicit) ==");
    eprintln!("{r}");
    rep.counter(
        "symbolic/full_dlx_reachable_states",
        u64::try_from(r.reachable_states).unwrap_or(u64::MAX),
    );
    rep.counter(
        "symbolic/full_dlx_reachable_cells",
        u64::try_from(r.reachable_cells).unwrap_or(u64::MAX),
    );
    rep.counter(
        "symbolic/full_dlx_valid_inputs",
        u64::try_from(r.valid_inputs).unwrap_or(u64::MAX),
    );
    rep.bench("symbolic/implicit_full_dlx", || implicit_full_dlx(1));

    let n = reduced_control_netlist_observable();
    let opts = reduced_valid_inputs(&n);
    let m = enumerate_netlist(&n, &opts).expect("reduced model enumerates");
    let ctx = SymbolicContext::new(&n, &m, &opts.inputs).expect("netlist bridges the machine");
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: 64,
            seed: 7,
            ..FaultSpace::default()
        },
    );
    let tour = transition_tour(&m).expect("DLX model is strongly connected");
    let tests = TestSet::single(extend_cyclically(&tour.inputs, 2));
    rep.bench("symbolic/shard_engine_reduced_obs", || {
        let mut stats = SymbolicEngineStats::default();
        simulate_shard_symbolic(&ctx, &m, &faults, &tests, &mut stats)
    });

    rep.write().expect("write bench report");
}

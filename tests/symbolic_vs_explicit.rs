//! Cross-validation of the two FSM representations: explicit enumeration
//! and BDD-based implicit traversal must agree on every model both can
//! handle.

use simcov::dlx::testmodel::{
    reduced_control_netlist, reduced_control_netlist_observable, reduced_valid_inputs,
};
use simcov::fsm::{enumerate_netlist, EnumerateOptions, SymbolicFsm};
use simcov::netlist::{Netlist, Word};

/// Builds the symbolic valid-input constraint matching an explicit
/// alphabet given as vectors.
fn valid_bdd_from_vectors(fsm: &mut SymbolicFsm, vectors: &[Vec<bool>]) -> simcov::bdd::Bdd {
    let mut valid = simcov::bdd::Bdd::FALSE;
    for v in vectors {
        let mut cube = simcov::bdd::Bdd::TRUE;
        for (k, &bit) in v.iter().enumerate() {
            let var = fsm.input_var(k);
            let lit = if bit {
                fsm.mgr().var(var.0)
            } else {
                let x = fsm.mgr().var(var.0);
                fsm.mgr().not(x)
            };
            cube = fsm.mgr().and(cube, lit);
        }
        valid = fsm.mgr().or(valid, cube);
    }
    valid
}

fn check_agreement(n: &Netlist, opts: &EnumerateOptions) {
    let m = enumerate_netlist(n, opts).expect("explicit enumeration");
    let mut fsm = SymbolicFsm::from_netlist(n);
    let valid = valid_bdd_from_vectors(&mut fsm, &opts.inputs);
    fsm.set_valid_inputs(valid);
    assert_eq!(fsm.count_valid_inputs(), opts.inputs.len() as u128);
    let r = fsm.reachable();
    assert_eq!(
        fsm.count_states(r.reached),
        m.num_states() as u128,
        "reachable state counts must agree"
    );
    assert_eq!(
        fsm.count_transitions(r.reached),
        m.num_transitions() as u128,
        "transition counts must agree"
    );
}

#[test]
fn reduced_models_agree() {
    let n = reduced_control_netlist();
    check_agreement(&n, &reduced_valid_inputs(&n));
    let n = reduced_control_netlist_observable();
    check_agreement(&n, &reduced_valid_inputs(&n));
}

#[test]
fn random_netlists_agree() {
    use simcov::prng::Prng;
    // Random 6-latch, 3-input netlists with random gate structure.
    for seed in 0..20u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let mut n = Netlist::new();
        let inputs: Vec<_> = (0..3).map(|i| n.add_input(format!("i{i}"))).collect();
        let latches: Vec<_> = (0..6)
            .map(|i| n.add_latch(format!("q{i}"), rng.gen_bool(0.5)))
            .collect();
        let louts: Vec<_> = latches.iter().map(|&l| n.latch_output(l)).collect();
        let mut pool: Vec<_> = inputs.iter().chain(louts.iter()).copied().collect();
        for _ in 0..20 {
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            let g = match rng.gen_range(0..4u32) {
                0 => n.and(a, b),
                1 => n.or(a, b),
                2 => n.xor(a, b),
                _ => n.not(a),
            };
            pool.push(g);
        }
        for &l in &latches {
            let s = pool[rng.gen_range(0..pool.len())];
            n.set_latch_next(l, s);
        }
        // A couple of outputs.
        let o1 = pool[rng.gen_range(0..pool.len())];
        let o2 = pool[rng.gen_range(0..pool.len())];
        n.add_output("o1", o1);
        n.add_output("o2", o2);
        let n = simcov::netlist::transform::sweep(&n);
        if n.num_latches() == 0 || n.num_inputs() == 0 {
            continue; // swept to combinational; nothing to compare
        }
        check_agreement(&n, &EnumerateOptions::exhaustive(&n));
    }
}

/// The image operator agrees with one explicit BFS level.
#[test]
fn image_matches_bfs_level() {
    let n = reduced_control_netlist();
    let opts = reduced_valid_inputs(&n);
    let mut fsm = SymbolicFsm::from_netlist(&n);
    let valid = valid_bdd_from_vectors(&mut fsm, &opts.inputs);
    fsm.set_valid_inputs(valid);
    // Explicit frontier from the initial state.
    let init = n.initial_state();
    let mut next_states = std::collections::HashSet::new();
    for v in &opts.inputs {
        let (nx, _) = n.step(&init, v);
        next_states.insert(nx);
    }
    let init_bdd = fsm.init();
    let img = fsm.image(init_bdd);
    assert_eq!(fsm.count_states(img), next_states.len() as u128);
}

/// Tours generated on the explicit machine replay exactly on the netlist
/// simulator (the expansion path used for functional simulation).
#[test]
fn tour_replays_on_netlist() {
    use simcov::netlist::SimState;
    use simcov::tour::transition_tour;
    let n = reduced_control_netlist_observable();
    let opts = reduced_valid_inputs(&n);
    let m = enumerate_netlist(&n, &opts).expect("enumerates");
    let tour = transition_tour(&m).expect("tour");
    let mut sim = SimState::new(&n);
    let mut machine_outputs = Vec::new();
    let mut netlist_outputs = Vec::new();
    let mut cur = m.reset();
    for &i in &tour.inputs {
        let (nx, o) = m.step(cur, i).expect("tour follows defined transitions");
        machine_outputs.push(m.output_label(o).to_string());
        cur = nx;
        let vec = &opts.inputs[i.index()];
        let outs = sim.step(&n, vec);
        let label: String = outs
            .iter()
            .rev()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        netlist_outputs.push(label);
    }
    assert_eq!(machine_outputs, netlist_outputs);
}

/// Word-level helper consistency: a netlist built with `Word` mirrors
/// bit-level construction under both representations.
#[test]
fn word_built_counter_agrees() {
    let mut n = Netlist::new();
    let en = n.add_input("en");
    let (q, h) = Word::register(&mut n, "cnt", 4, 0, "m");
    // increment-when-enabled via ripple logic
    let mut carry = en;
    let mut bits = Vec::new();
    for i in 0..4 {
        let b = q.bit(i);
        bits.push(n.xor(b, carry));
        carry = n.and(carry, b);
    }
    h.set_next(&mut n, &Word::from_bits(bits));
    let msb = q.bit(3);
    n.add_output("msb", msb);
    check_agreement(&n, &EnumerateOptions::exhaustive(&n));
}

//! Generic Moore-style partition refinement over dense successor tables.
//!
//! Both Mealy minimization ([`crate::minimize`]) and the static
//! fault-collapsing analysis (`simcov-analyze`) solve the same abstract
//! problem: given `n` items, an initial partition by local observations,
//! and a deterministic successor function per input symbol, compute the
//! coarsest refinement of the initial partition that is a *congruence* —
//! two items land in the same final class iff no input sequence ever
//! drives them to differently-labelled classes. This module hosts the one
//! shared fixpoint loop, operating over dense `u32` tables (the packed
//! representation every caller in this workspace already materialises) so
//! the inner loop is a flat array walk with no hashing of machine state.
//!
//! The loop is the signature-refinement formulation of Moore's algorithm:
//! each round re-keys every item by `(current class, successor classes)`;
//! because the signature embeds the current class, classes only ever
//! split, and the partition is stable exactly when the class count stops
//! growing. Worst case `O(n² · |I|)` (one split per round), typical
//! `O(r · n · |I|)` for `r` rounds — the Hopcroft-style worklist variant
//! is deliberately not used: at this repo's scales the constant factor of
//! the dense re-key loop wins, and the output is identical.

use std::collections::HashMap;

/// A partition of `n` items into classes `0..num_classes`.
///
/// Class IDs are *canonical*: classes are numbered by first appearance in
/// item order, so the same input always produces the same numbering —
/// which is what lets downstream certificates treat class IDs as stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `class_of[item]` = the item's class.
    pub class_of: Vec<u32>,
    /// Number of distinct classes (`0` only for zero items).
    pub num_classes: u32,
}

impl Partition {
    /// Renumbers an arbitrary class assignment canonically (classes by
    /// first appearance in item order) and counts the classes.
    pub fn canonicalize(raw: &[u32]) -> Partition {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(raw.len());
        for &c in raw {
            let next = remap.len() as u32;
            class_of.push(*remap.entry(c).or_insert(next));
        }
        let num_classes = remap.len() as u32;
        Partition {
            class_of,
            num_classes,
        }
    }
}

/// Partitions `n` items by their observation rows: items `a` and `b`
/// share a class iff `rows[a*width..][..width] == rows[b*width..][..width]`.
///
/// The usual way to build the *initial* partition for
/// [`refine_partition`]: pack whatever is locally observable about an
/// item (output row, label bits, edge tags) into a fixed-width `u32` row.
pub fn partition_by_rows(rows: &[u32], width: usize) -> Partition {
    assert!(width > 0, "row width must be nonzero");
    assert_eq!(rows.len() % width, 0, "rows must be a multiple of width");
    let n = rows.len() / width;
    let mut seen: HashMap<&[u32], u32> = HashMap::new();
    let mut class_of = Vec::with_capacity(n);
    for item in 0..n {
        let row = &rows[item * width..(item + 1) * width];
        let next = seen.len() as u32;
        class_of.push(*seen.entry(row).or_insert(next));
    }
    Partition {
        num_classes: seen.len() as u32,
        class_of,
    }
}

/// Refines `initial` to the coarsest congruence w.r.t. the dense
/// successor table `succ` (`succ[item * num_inputs + x]` = successor of
/// `item` on input `x`): after refinement, equivalent items have, for
/// every input, successors in equivalent classes — and, transitively, no
/// input sequence separates them.
///
/// Class IDs in the result are canonical (first appearance in item
/// order). The initial partition is honoured exactly: the result is
/// always a refinement of it, never a coarsening.
///
/// # Panics
///
/// Panics if `succ.len() != initial.len() * num_inputs` or a successor
/// index is out of range.
pub fn refine_partition(initial: &[u32], num_inputs: usize, succ: &[u32]) -> Partition {
    let n = initial.len();
    assert_eq!(
        succ.len(),
        n * num_inputs,
        "successor table must be items x inputs"
    );
    let mut part = Partition::canonicalize(initial);
    if n == 0 {
        return part;
    }
    loop {
        let before = part.num_classes;
        let mut seen: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut next_class = vec![0u32; n];
        for item in 0..n {
            let mut sig = Vec::with_capacity(num_inputs + 1);
            sig.push(part.class_of[item]);
            for x in 0..num_inputs {
                let s = succ[item * num_inputs + x] as usize;
                sig.push(part.class_of[s]);
            }
            let next = seen.len() as u32;
            next_class[item] = *seen.entry(sig).or_insert(next);
        }
        let after = seen.len() as u32;
        part = Partition {
            class_of: next_class,
            num_classes: after,
        };
        if after == before {
            return part;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_renumbers_by_first_appearance() {
        let p = Partition::canonicalize(&[7, 3, 7, 9, 3]);
        assert_eq!(p.class_of, vec![0, 1, 0, 2, 1]);
        assert_eq!(p.num_classes, 3);
    }

    #[test]
    fn rows_partition_groups_identical_rows() {
        // Rows of width 2: items 0 and 2 identical.
        let rows = [1, 2, 3, 4, 1, 2];
        let p = partition_by_rows(&rows, 2);
        assert_eq!(p.class_of, vec![0, 1, 0]);
        assert_eq!(p.num_classes, 2);
    }

    #[test]
    fn refine_splits_on_successor_classes() {
        // 4 items, 1 input, ring 0->1->2->3->0; initial: {0,2} vs {1,3}
        // by label, but item 2's successor (3) and item 0's successor (1)
        // share a class, so the partition is already stable.
        let initial = [0, 1, 0, 1];
        let succ = [1, 2, 3, 0];
        let p = refine_partition(&initial, 1, &succ);
        assert_eq!(p.num_classes, 2);
        assert_eq!(p.class_of[0], p.class_of[2]);
        assert_eq!(p.class_of[1], p.class_of[3]);
    }

    #[test]
    fn refine_separates_deep_differences() {
        // Chain 0->1->2->3->3 where only item 3 is labelled differently:
        // every item is a distinct class (distance-to-3 differs).
        let initial = [0, 0, 0, 1];
        let succ = [1, 2, 3, 3];
        let p = refine_partition(&initial, 1, &succ);
        assert_eq!(p.num_classes, 4);
    }

    #[test]
    fn refinement_never_coarsens_the_initial_partition() {
        // Same dynamics, different initial labels: labels must persist.
        let initial = [0, 1, 0, 1];
        let succ = [0, 1, 2, 3]; // self-loops: nothing to split on.
        let p = refine_partition(&initial, 1, &succ);
        assert_eq!(p.num_classes, 2);
        assert_ne!(p.class_of[0], p.class_of[1]);
        assert_eq!(p.class_of[0], p.class_of[2]);
    }

    #[test]
    fn empty_and_single_item() {
        let p = refine_partition(&[], 3, &[]);
        assert_eq!(p.num_classes, 0);
        let p = refine_partition(&[5], 2, &[0, 0]);
        assert_eq!(p.num_classes, 1);
        assert_eq!(p.class_of, vec![0]);
    }

    #[test]
    fn multi_input_refinement() {
        // 2 inputs; items 0,1 same label but input 1 leads to different
        // labels -> split.
        let initial = [0, 0, 1, 2];
        let succ = [
            0, 2, // item 0
            1, 3, // item 1
            2, 2, // item 2
            3, 3, // item 3
        ];
        let p = refine_partition(&initial, 2, &succ);
        assert_ne!(p.class_of[0], p.class_of[1]);
    }
}

//! `SC05x` lint passes over a completed collapse analysis.
//!
//! The analysis itself never fails on a degenerate fault universe — it
//! just produces a weaker (or misleadingly strong) partition. These
//! passes surface the conditions a campaign author should know about
//! through the standard `simcov-lint` pipeline, with the same severity
//! policy, text/JSON rendering and CI-gating story as the model and
//! netlist families:
//!
//! * `SC050` — a cell's transfer-fault bisimulation exceeded the node
//!   budget, so its faults stay singletons (collapse-blocking
//!   ambiguity: raise `max_nodes_per_cell` or shrink the model);
//! * `SC051` — a class of no-op faults: the patched machine *is* the
//!   golden machine, so the faults are undetectable by construction and
//!   inflate escape counts;
//! * `SC052` — faults on unreachable states: never excited, never
//!   detected — dead weight in the fault universe.

use crate::collapse::CollapseAnalysis;
use simcov_core::error_model::{Fault, FaultKind};
use simcov_core::ClassKind;
use simcov_fsm::ExplicitMealy;
use simcov_lint::codes::{
    SC050_COLLAPSE_AMBIGUITY, SC051_INEFFECTIVE_FAULT_CLASS, SC052_UNREACHABLE_FAULT_CLASS,
};
use simcov_lint::{Diagnostics, LintCode, LintConfig, LintPass, Location};

/// What the `SC05x` passes lint: a machine, its fault universe and the
/// collapse analysis computed over them.
pub struct AnalyzeTarget<'a> {
    /// The golden machine the analysis ran over.
    pub machine: &'a ExplicitMealy,
    /// The fault universe, in certificate order.
    pub faults: &'a [Fault],
    /// The completed analysis.
    pub analysis: &'a CollapseAnalysis,
}

/// SC050: cells whose bisimulation exceeded the node budget.
pub struct CollapseAmbiguity;

impl LintPass<AnalyzeTarget<'_>> for CollapseAmbiguity {
    fn code(&self) -> &'static LintCode {
        &SC050_COLLAPSE_AMBIGUITY
    }

    fn run(&self, t: &AnalyzeTarget<'_>, out: &mut Diagnostics) {
        for &(s, i) in &t.analysis.ambiguous_cells {
            let stuck = t
                .faults
                .iter()
                .filter(|f| {
                    f.state == s
                        && f.input == i
                        && matches!(f.kind, FaultKind::Transfer { .. })
                        && f.is_effective(t.machine)
                })
                .count();
            out.emit(
                self.code(),
                Location::Transition {
                    state: t.machine.state_label(s).to_string(),
                    input: t.machine.input_label(i).to_string(),
                },
                format!(
                    "transfer-fault bisimulation exceeded the node budget; \
                     {stuck} fault(s) stay singletons"
                ),
            );
        }
    }
}

/// SC051: classes of no-op faults.
pub struct IneffectiveFaultClasses;

impl LintPass<AnalyzeTarget<'_>> for IneffectiveFaultClasses {
    fn code(&self) -> &'static LintCode {
        &SC051_INEFFECTIVE_FAULT_CLASS
    }

    fn run(&self, t: &AnalyzeTarget<'_>, out: &mut Diagnostics) {
        let cert = &t.analysis.certificate;
        for (c, &kind) in cert.kinds().iter().enumerate() {
            if kind != ClassKind::Ineffective {
                continue;
            }
            let members = cert.members(c as u32);
            let f = &t.faults[members[0] as usize];
            out.emit(
                self.code(),
                Location::Transition {
                    state: t.machine.state_label(f.state).to_string(),
                    input: t.machine.input_label(f.input).to_string(),
                },
                format!(
                    "{} no-op fault(s) at this cell: the patched machine equals \
                     the golden machine, so no test set can detect them",
                    members.len()
                ),
            );
        }
    }
}

/// SC052: the global class of faults on unreachable states.
pub struct UnreachableFaultClasses;

impl LintPass<AnalyzeTarget<'_>> for UnreachableFaultClasses {
    fn code(&self) -> &'static LintCode {
        &SC052_UNREACHABLE_FAULT_CLASS
    }

    fn run(&self, t: &AnalyzeTarget<'_>, out: &mut Diagnostics) {
        let cert = &t.analysis.certificate;
        let Some(c) = cert
            .kinds()
            .iter()
            .position(|&k| k == ClassKind::Unreachable)
        else {
            return;
        };
        let members = cert.members(c as u32);
        let mut states: Vec<&str> = Vec::new();
        for &idx in members {
            let label = t.machine.state_label(t.faults[idx as usize].state);
            if !states.contains(&label) {
                states.push(label);
            }
        }
        let mut listed: Vec<String> = states.iter().take(4).map(|s| format!("`{s}`")).collect();
        if states.len() > 4 {
            listed.push(format!("... {} more", states.len() - 4));
        }
        out.emit_with_notes(
            self.code(),
            Location::Model,
            format!(
                "{} fault(s) target unreachable states and can never be \
                 excited, detected or masked",
                members.len()
            ),
            vec![format!("states: {}", listed.join(", "))],
        );
    }
}

/// The `SC05x` pass family, in code order.
pub fn analyze_passes<'a>() -> Vec<Box<dyn LintPass<AnalyzeTarget<'a>>>> {
    vec![
        Box::new(CollapseAmbiguity),
        Box::new(IneffectiveFaultClasses),
        Box::new(UnreachableFaultClasses),
    ]
}

/// Runs every `SC05x` pass over `target` under `config`, returning the
/// deny-first sorted findings.
pub fn lint_analysis(target: &AnalyzeTarget<'_>, config: &LintConfig) -> Diagnostics {
    let mut out = Diagnostics::new(config.clone());
    CollapseAmbiguity.run(target, &mut out);
    IneffectiveFaultClasses.run(target, &mut out);
    UnreachableFaultClasses.run(target, &mut out);
    out.sort_by_severity();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::{analyze_collapse, AnalyzeOptions};
    use simcov_fsm::{InputSym, MealyBuilder, OutputSym, StateId};

    /// Reset `a` with a self-loop cell, plus two unreachable states.
    fn fixture() -> (ExplicitMealy, Vec<Fault>) {
        let mut b = MealyBuilder::new();
        let a = b.add_state("a");
        let bb = b.add_state("b");
        let u1 = b.add_state("u1");
        let u2 = b.add_state("u2");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let o0 = b.add_output("o0");
        let o1 = b.add_output("o1");
        b.add_transition(a, x, bb, o0);
        b.add_transition(a, y, a, o0);
        b.add_transition(bb, x, a, o1);
        b.add_transition(bb, y, bb, o0);
        b.add_transition(u1, x, a, o0);
        b.add_transition(u1, y, u1, o1);
        b.add_transition(u2, x, a, o0);
        b.add_transition(u2, y, u2, o1);
        let m = b.build(a).unwrap();
        let faults = vec![
            // Effective transfers at (a, x): targets u1 / u2 / a.
            Fault {
                state: a,
                input: x,
                kind: FaultKind::Transfer { new_next: u1 },
            },
            Fault {
                state: a,
                input: x,
                kind: FaultKind::Transfer { new_next: u2 },
            },
            Fault {
                state: a,
                input: x,
                kind: FaultKind::Transfer { new_next: a },
            },
            // No-op at (a, y).
            Fault {
                state: a,
                input: y,
                kind: FaultKind::Transfer { new_next: a },
            },
            // On unreachable states.
            Fault {
                state: u1,
                input: x,
                kind: FaultKind::Output {
                    new_output: OutputSym(1),
                },
            },
            Fault {
                state: u2,
                input: y,
                kind: FaultKind::Transfer { new_next: a },
            },
        ];
        (m, faults)
    }

    #[test]
    fn passes_fire_on_each_degenerate_condition() {
        let (m, faults) = fixture();
        let opts = AnalyzeOptions {
            max_nodes_per_cell: 1, // force SC050 on (a, x)
        };
        let analysis = analyze_collapse(&m, &faults, &opts).unwrap();
        let target = AnalyzeTarget {
            machine: &m,
            faults: &faults,
            analysis: &analysis,
        };
        let report = lint_analysis(&target, &LintConfig::new());
        assert!(report.has_code("SC050"));
        assert!(report.has_code("SC051"));
        assert!(report.has_code("SC052"));
        assert!(!report.has_denials(), "all SC05x default to warn");
        let sc050 = report.with_code("SC050").next().unwrap();
        assert!(sc050.message.contains("3 fault(s)"), "{}", sc050.message);
        let sc052 = report.with_code("SC052").next().unwrap();
        assert!(sc052.notes[0].contains("`u1`"), "{:?}", sc052.notes);
        assert!(sc052.notes[0].contains("`u2`"), "{:?}", sc052.notes);
    }

    #[test]
    fn clean_universe_yields_no_findings() {
        let (m, _) = fixture();
        // Only effective faults on reachable states, generous budget.
        let faults = vec![
            Fault {
                state: StateId(0),
                input: InputSym(0),
                kind: FaultKind::Output {
                    new_output: OutputSym(1),
                },
            },
            Fault {
                state: StateId(1),
                input: InputSym(0),
                kind: FaultKind::Transfer {
                    new_next: StateId(1),
                },
            },
        ];
        let analysis = analyze_collapse(&m, &faults, &AnalyzeOptions::default()).unwrap();
        let target = AnalyzeTarget {
            machine: &m,
            faults: &faults,
            analysis: &analysis,
        };
        let report = lint_analysis(&target, &LintConfig::new());
        assert!(report.items().is_empty(), "{}", report.render_text());
    }

    #[test]
    fn family_is_registered_and_ordered() {
        let passes = analyze_passes();
        let codes: Vec<&str> = passes.iter().map(|p| p.code().code).collect();
        assert_eq!(codes, ["SC050", "SC051", "SC052"]);
        for c in &codes {
            assert!(
                simcov_lint::find_code(c).is_some(),
                "{c} must be registered"
            );
        }
    }
}

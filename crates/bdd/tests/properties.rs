//! Property-based tests: the BDD package against a brute-force
//! truth-table oracle, on the workspace's hermetic `forall` driver.

use simcov_bdd::{Bdd, BddManager, Var};
use simcov_core::testutil::{forall, Gen};

const NVARS: u32 = 5;

/// A random Boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Random expression of depth at most `depth`. Branching choices are
/// ranged draws, so shrinking collapses cases toward small leaf-heavy
/// expressions.
fn gen_expr(g: &mut Gen, depth: u32) -> Expr {
    let kind = if depth == 0 {
        g.int_in(0..2u8)
    } else {
        g.int_in(0..7u8)
    };
    match kind {
        0 => Expr::Var(g.int_in(0..NVARS)),
        1 => Expr::Const(g.bool()),
        2 => Expr::Not(Box::new(gen_expr(g, depth - 1))),
        3 => Expr::And(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        4 => Expr::Or(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        5 => Expr::Xor(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        _ => Expr::Ite(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
    }
}

fn expr(g: &mut Gen) -> Expr {
    gen_expr(g, 4)
}

fn build(m: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Const(b) => m.constant(*b),
        Expr::Not(a) => {
            let a = build(m, a);
            m.not(a)
        }
        Expr::And(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.and(a, b)
        }
        Expr::Or(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.or(a, b)
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.xor(a, b)
        }
        Expr::Ite(a, b, c) => {
            let (a, b, c) = (build(m, a), build(m, b), build(m, c));
            m.ite(a, b, c)
        }
    }
}

fn eval(e: &Expr, asg: &[bool]) -> bool {
    match e {
        Expr::Var(v) => asg[*v as usize],
        Expr::Const(b) => *b,
        Expr::Not(a) => !eval(a, asg),
        Expr::And(a, b) => eval(a, asg) && eval(b, asg),
        Expr::Or(a, b) => eval(a, asg) || eval(b, asg),
        Expr::Xor(a, b) => eval(a, asg) ^ eval(b, asg),
        Expr::Ite(a, b, c) => {
            if eval(a, asg) {
                eval(b, asg)
            } else {
                eval(c, asg)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|code| (0..NVARS).map(|b| (code >> b) & 1 == 1).collect())
}

/// The BDD of an expression evaluates identically to the expression.
#[test]
fn bdd_matches_truth_table() {
    forall("bdd_matches_truth_table", |g| {
        let e = expr(g);
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        for asg in assignments() {
            assert_eq!(m.eval(f, &asg), eval(&e, &asg));
        }
    });
}

/// Canonicity: semantically equal expressions share the same node.
#[test]
fn bdd_is_canonical() {
    forall("bdd_is_canonical", |g| {
        let e = expr(g);
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        // Rebuild through double negation and De Morgan-style reshaping.
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
        // XOR with itself is false; XOR with constant false is identity.
        let z = m.xor(f, f);
        assert_eq!(z, Bdd::FALSE);
        let same = m.xor(f, Bdd::FALSE);
        assert_eq!(same, f);
    });
}

/// sat_count equals brute-force model counting.
#[test]
fn sat_count_matches_enumeration() {
    forall("sat_count_matches_enumeration", |g| {
        let e = expr(g);
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let expect = assignments().filter(|a| eval(&e, a)).count() as u128;
        assert_eq!(m.sat_count(f, NVARS), expect);
    });
}

/// Quantification agrees with expansion: ∃v.f = f[v:=0] | f[v:=1],
/// ∀v.f = f[v:=0] & f[v:=1].
#[test]
fn quantification_matches_expansion() {
    forall("quantification_matches_expansion", |g| {
        let e = expr(g);
        let v = g.int_in(0..NVARS);
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let cube = m.cube_from_vars(&[Var(v)]);
        let f0 = m.restrict(f, &[(Var(v), false)]);
        let f1 = m.restrict(f, &[(Var(v), true)]);
        let ex = m.exists(f, cube);
        let expect_ex = m.or(f0, f1);
        assert_eq!(ex, expect_ex);
        let fa = m.forall(f, cube);
        let expect_fa = m.and(f0, f1);
        assert_eq!(fa, expect_fa);
    });
}

/// The fused relational product equals quantify-after-conjoin.
#[test]
fn and_exists_is_sound() {
    forall("and_exists_is_sound", |g| {
        let a = expr(g);
        let b = expr(g);
        let vars: Vec<Var> = g.vec_of(0..3usize, |g| Var(g.int_in(0..NVARS)));
        let mut m = BddManager::new(NVARS);
        let fa = build(&mut m, &a);
        let fb = build(&mut m, &b);
        let cube = m.cube_from_vars(&vars);
        let fused = m.and_exists(fa, fb, cube);
        let conj = m.and(fa, fb);
        let unfused = m.exists(conj, cube);
        assert_eq!(fused, unfused);
    });
}

/// compose agrees with semantic substitution.
#[test]
fn compose_is_substitution() {
    forall("compose_is_substitution", |gen| {
        let e = expr(gen);
        let g = expr(gen);
        let v = gen.int_in(0..NVARS);
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        let gg = build(&mut m, &g);
        let composed = m.compose(f, Var(v), gg);
        for asg in assignments() {
            let mut modified = asg.clone();
            modified[v as usize] = eval(&g, &asg);
            assert_eq!(m.eval(composed, &asg), eval(&e, &modified));
        }
    });
}

/// pick_cube returns satisfying cubes; cube iteration is exact.
#[test]
fn cubes_are_satisfying_and_exhaustive() {
    forall("cubes_are_satisfying_and_exhaustive", |g| {
        let e = expr(g);
        let mut m = BddManager::new(NVARS);
        let f = build(&mut m, &e);
        match m.pick_cube(f) {
            None => assert_eq!(f, Bdd::FALSE),
            Some(c) => assert!(m.eval(f, &c.to_assignment(NVARS))),
        }
        let vars: Vec<Var> = (0..NVARS).map(Var).collect();
        let count = m.cubes(f, &vars).count() as u128;
        assert_eq!(count, m.sat_count(f, NVARS));
    });
}

/// Renaming to fresh variables then back is the identity.
#[test]
fn rename_roundtrip() {
    forall("rename_roundtrip", |g| {
        let e = expr(g);
        let mut m = BddManager::new(2 * NVARS);
        let f = build(&mut m, &e);
        let fwd: Vec<(Var, Var)> = (0..NVARS).map(|i| (Var(i), Var(i + NVARS))).collect();
        let bwd: Vec<(Var, Var)> = (0..NVARS).map(|i| (Var(i + NVARS), Var(i))).collect();
        let shifted = m.rename(f, &fwd);
        let back = m.rename(shifted, &bwd);
        assert_eq!(back, f);
    });
}

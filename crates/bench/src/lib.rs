//! Shared fixtures for the benchmark harness (see `benches/` and the
//! `report` binary, which regenerate every table and figure of the
//! paper's evaluation).

use simcov_fsm::{ExplicitMealy, MealyBuilder};

pub mod check;
pub mod timing;

/// A strongly connected ring machine with *unevenly distributed* chord
/// edges, parameterised by size — the synthetic workload for tour-quality
/// scaling. The uneven chords unbalance vertex degrees, so a minimum
/// transition tour must duplicate edges (the non-trivial Chinese-postman
/// case) and the greedy heuristic pays a visible penalty.
pub fn ring_with_chords(n: usize) -> ExplicitMealy {
    assert!(n >= 4, "ring needs at least 4 states");
    let mut b = MealyBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    let step = b.add_input("step");
    let jump = b.add_input("jump");
    let back = b.add_input("back");
    let outs: Vec<_> = (0..n).map(|i| b.add_output(format!("o{i}"))).collect();
    for i in 0..n {
        b.add_transition(states[i], step, states[(i + 1) % n], outs[i]);
        // Chords exist only from every third state, all converging near
        // the ring's origin: heavy in-degree imbalance.
        if i % 3 == 0 {
            b.add_transition(states[i], jump, states[(i * 7 + 1) % n], outs[(i + 1) % n]);
            b.add_transition(states[i], back, states[i % 5], outs[i]);
        }
    }
    b.build(states[0]).expect("ring machine is well-formed")
}

/// A large pseudo-random *complete* machine whose transition table
/// defeats the cache: every `(state, input)` cell maps to a hash-mixed
/// successor, so consecutive steps load from unrelated table lines and
/// the hardware prefetcher gets nothing. Outputs are deliberately dim —
/// a `beacon` symbol is emitted only when a transition lands on one of
/// ~32 evenly spaced beacon states, everything else emits `dull` — so an
/// injected transfer fault rarely produces an immediate output
/// difference and its divergence replay runs deep into the suffix.
/// This is the workload where bit-parallel fault simulation earns its
/// keep: long, latency-bound scalar replays that 64 packed lanes
/// overlap.
pub fn scatter_machine(n: usize) -> ExplicitMealy {
    assert!(n >= 2, "scatter machine needs at least 2 states");
    // SplitMix64 finalizer: deterministic, well-mixed successor choice.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let beacon_period = (n / 32).max(1);
    let mut b = MealyBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    let inputs: Vec<_> = ["a", "b", "c"].iter().map(|&l| b.add_input(l)).collect();
    let dull = b.add_output("dull");
    let beacon = b.add_output("beacon");
    for s in 0..n {
        for (i, &inp) in inputs.iter().enumerate() {
            let next = (mix((s * inputs.len() + i + 1) as u64) % n as u64) as usize;
            let out = if next.is_multiple_of(beacon_period) {
                beacon
            } else {
                dull
            };
            b.add_transition(states[s], inp, states[next], out);
        }
    }
    b.build(states[0]).expect("scatter machine is well-formed")
}

/// Transfer faults drawn only from transitions the test set actually
/// exercises, so (unlike blind sampling over the whole fault space)
/// every fault is excited and triggers a divergence replay. Benches
/// that price the replay path use this to keep replays — not fault
/// classification — the dominant cost in both engines. The wrong
/// successor is hash-derived from the faulted state, deterministic for
/// a given machine, test set and seed.
pub fn excited_transfer_faults(
    m: &ExplicitMealy,
    tests: &simcov_tour::TestSet,
    count: usize,
    seed: u64,
) -> Vec<simcov_core::Fault> {
    use simcov_fsm::StateId;
    let n = m.num_states() as u32;
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for seq in &tests.sequences {
        let mut cur = m.reset();
        for &i in seq {
            if seen.insert((cur, i)) {
                pairs.push((cur, i));
            }
            let Some((next, _)) = m.step(cur, i) else {
                break;
            };
            cur = next;
        }
    }
    let mut rng = simcov_prng::Xoshiro256pp::seed_from_u64(seed);
    rng.shuffle(&mut pairs);
    pairs.truncate(count);
    pairs
        .into_iter()
        .map(|(s, i)| {
            let golden = m.step(s, i).expect("pair was walked above").0;
            let mut t = (s.0 ^ 0x9e37_79b9) % n;
            if t == golden.0 {
                t = (t + 1) % n;
            }
            simcov_core::Fault {
                state: s,
                input: i,
                kind: simcov_core::FaultKind::Transfer {
                    new_next: StateId(t),
                },
            }
        })
        .collect()
}

/// A strongly connected two-input ring with a *wide* output alphabet —
/// the collapse-rich workload for static fault collapsing. Output-fault
/// enumeration produces `outputs - 1` wrong labels per `(state, input)`
/// cell, and every one of them is detected at the cell's first traversal
/// whatever the wrong label is, so the whole cell folds into a single
/// equivalence class: the certificate prunes an output-fault campaign by
/// a factor approaching `outputs - 1`. The `skip` chords keep vertex
/// degrees balanced enough for the postman tour to stay cheap.
pub fn wide_output_ring(n: usize, outputs: usize) -> ExplicitMealy {
    assert!(n >= 4, "ring needs at least 4 states");
    assert!(outputs >= 2, "collapsing needs at least 2 output symbols");
    let mut b = MealyBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    let step = b.add_input("step");
    let skip = b.add_input("skip");
    let outs: Vec<_> = (0..outputs)
        .map(|i| b.add_output(format!("o{i}")))
        .collect();
    for i in 0..n {
        b.add_transition(states[i], step, states[(i + 1) % n], outs[i % outputs]);
        b.add_transition(
            states[i],
            skip,
            states[(i + 2) % n],
            outs[(i * 7 + 3) % outputs],
        );
    }
    b.build(states[0]).expect("wide-output ring is well-formed")
}

/// The reduced DLX control model (observable variant) as an explicit
/// machine — the standard fixture for completeness and coverage
/// experiments.
pub fn reduced_dlx_machine() -> ExplicitMealy {
    let n = simcov_dlx::testmodel::reduced_control_netlist_observable();
    let opts = simcov_dlx::testmodel::reduced_valid_inputs(&n);
    simcov_fsm::enumerate_netlist(&n, &opts).expect("reduced model enumerates")
}

/// The reduced DLX control model without observability (the
/// requirement-violating baseline).
pub fn reduced_dlx_machine_hidden() -> ExplicitMealy {
    let n = simcov_dlx::testmodel::reduced_control_netlist();
    let opts = simcov_dlx::testmodel::reduced_valid_inputs(&n);
    simcov_fsm::enumerate_netlist(&n, &opts).expect("reduced model enumerates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let r = ring_with_chords(10);
        assert_eq!(r.num_states(), 10);
        assert!(r.is_strongly_connected());
        let s = scatter_machine(512);
        assert_eq!(s.num_states(), 512);
        assert!(s.is_complete());
        assert_eq!(s.num_outputs(), 2);
        // Determinism: the same size builds the same machine.
        let s2 = scatter_machine(512);
        for st in s.states() {
            for i in s.inputs() {
                assert_eq!(s.step(st, i), s2.step(st, i));
            }
        }
        let m = reduced_dlx_machine();
        assert!(m.is_complete());
        let h = reduced_dlx_machine_hidden();
        assert_eq!(m.num_states(), h.num_states());
        let w = wide_output_ring(64, 16);
        assert!(w.is_strongly_connected());
        assert!(w.is_complete());
        assert_eq!(w.num_outputs(), 16);
    }
}

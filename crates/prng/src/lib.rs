//! Deterministic, zero-dependency pseudo-random generation.
//!
//! Every stochastic component of the workspace — fault sampling, random
//! test-set generation, property-based testing — must be reproducible
//! from a single `u64` seed and must not pull external crates, so the
//! whole workspace builds and tests offline. This crate provides:
//!
//! * [`SplitMix64`] — the seed expander (Steele, Lea & Flood 2014); also
//!   a fine standalone generator for non-critical uses;
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna 2019), the
//!   workhorse generator, seeded from a `u64` via SplitMix64;
//! * [`Prng`] — an alias for the workhorse with distribution helpers:
//!   unbiased integer ranges, Bernoulli draws, Fisher–Yates
//!   [`shuffle`](Prng::shuffle), [`choose`](Prng::choose) and
//!   [`choose_multiple`](Prng::choose_multiple) (the `SliceRandom`-style
//!   surface the workspace previously got from the `rand` crate);
//! * [`forall`](fn@forall) — a miniature property-test driver with seeded case
//!   generation and shrinking-by-halving, replacing `proptest`.
//!
//! All algorithms are sequence-stable: the same seed yields the same
//! stream on every platform and every thread count, which the parallel
//! fault-simulation engine relies on for bit-identical campaign results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forall;

pub use forall::{forall, forall_cfg, Config, Gen};

/// SplitMix64: a tiny 64-bit generator with a single `u64` of state.
///
/// Used to expand user seeds into full generator states (its output is
/// equidistributed over `u64`, so it cannot hand a degenerate all-zero
/// state to xoshiro), and as a cheap standalone stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: 256 bits of state, period 2^256 − 1, excellent
/// statistical quality; the workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator from a single `u64` by expanding it through
    /// [`SplitMix64`] (the seeding procedure recommended by the authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits, which have the best quality).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero. Uses rejection
    /// sampling, so the result is exactly uniform (no modulo bias).
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded_u64 needs a nonzero bound");
        // Threshold below which a draw would be biased: reject and redraw.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % n;
            }
        }
    }

    /// Uniform draw from a half-open integer range, e.g.
    /// `rng.gen_range(0..faults.len())`. Panics on an empty range.
    pub fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// `amount` distinct elements in random order (all of them, shuffled,
    /// if `amount >= slice.len()`), via a partial Fisher–Yates over
    /// indices.
    pub fn choose_multiple<'a, T>(&mut self, slice: &'a [T], amount: usize) -> Vec<&'a T> {
        let n = slice.len();
        let amount = amount.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..amount {
            let j = i + self.bounded_u64((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| &slice[i]).collect()
    }
}

/// The workspace's default generator.
pub type Prng = Xoshiro256pp;

/// Integer types [`Prng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample(rng: &mut Xoshiro256pp, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Xoshiro256pp, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                lo + rng.bounded_u64((hi - lo) as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Xoshiro256pp, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let width = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.bounded_u64(width as u64) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_per_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        let mut c = Prng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-50..50i32);
            assert!((-50..50).contains(&y));
            let z = rng.gen_range(0..1u64);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_covers_whole_range() {
        let mut rng = Prng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = Prng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut v1: Vec<u32> = (0..100).collect();
        let mut v2: Vec<u32> = (0..100).collect();
        Prng::seed_from_u64(9).shuffle(&mut v1);
        Prng::seed_from_u64(9).shuffle(&mut v2);
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v1, sorted,
            "a 100-element shuffle virtually never fixes everything"
        );
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut rng = Prng::seed_from_u64(3);
        assert!(rng.choose::<u32>(&[]).is_none());
        let v = [10, 20, 30];
        assert!(v.contains(rng.choose(&v).unwrap()));
        let picked = rng.choose_multiple(&v, 2);
        assert_eq!(picked.len(), 2);
        let mut seen: Vec<i32> = picked.into_iter().copied().collect();
        seen.dedup();
        assert_eq!(seen.len(), 2, "choices must be distinct");
        assert_eq!(rng.choose_multiple(&v, 99).len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).gen_range(5..5usize);
    }
}

//! Coverage measurement: which transitions and states does a test
//! sequence exercise?

use simcov_fsm::{ExplicitMealy, InputSym};
use std::collections::HashSet;

/// Transition/state coverage achieved by an input sequence (from reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Distinct `(state, input)` transitions exercised.
    pub transitions_covered: usize,
    /// Total transitions defined on the reachable part of the machine.
    pub transitions_total: usize,
    /// Distinct states visited (including the reset state).
    pub states_covered: usize,
    /// Total reachable states.
    pub states_total: usize,
    /// Length of the (possibly truncated) applied sequence.
    pub applied_length: usize,
}

impl CoverageReport {
    /// `true` if every reachable transition was exercised — the paper's
    /// transition-coverage criterion.
    pub fn all_transitions_covered(&self) -> bool {
        self.transitions_covered == self.transitions_total
    }

    /// `true` if every reachable state was visited — the weaker
    /// state-coverage criterion.
    pub fn all_states_covered(&self) -> bool {
        self.states_covered == self.states_total
    }

    /// Fraction of transitions covered in `[0, 1]`.
    pub fn transition_fraction(&self) -> f64 {
        if self.transitions_total == 0 {
            1.0
        } else {
            self.transitions_covered as f64 / self.transitions_total as f64
        }
    }

    /// Fraction of states covered in `[0, 1]`.
    pub fn state_fraction(&self) -> f64 {
        if self.states_total == 0 {
            1.0
        } else {
            self.states_covered as f64 / self.states_total as f64
        }
    }
}

impl std::fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} transitions, {}/{} states over {} vectors",
            self.transitions_covered,
            self.transitions_total,
            self.states_covered,
            self.states_total,
            self.applied_length
        )
    }
}

/// Measures the transition and state coverage of `inputs` applied from
/// the reset state of `m`. The walk stops at the first undefined
/// transition.
pub fn coverage(m: &ExplicitMealy, inputs: &[InputSym]) -> CoverageReport {
    coverage_set(m, std::iter::once(inputs))
}

/// Measures joint coverage of several sequences, each applied from reset.
pub fn coverage_set<'a, I>(m: &ExplicitMealy, sequences: I) -> CoverageReport
where
    I: IntoIterator<Item = &'a [InputSym]>,
{
    let reach = m.reachable_states();
    let transitions_total = reach
        .iter()
        .map(|&s| m.inputs().filter(|&i| m.step(s, i).is_some()).count())
        .sum();
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    let mut states: HashSet<u32> = HashSet::new();
    states.insert(m.reset().0);
    let mut applied_length = 0;
    for seq in sequences {
        let mut cur = m.reset();
        for &i in seq {
            match m.step(cur, i) {
                Some((n, _)) => {
                    edges.insert((cur.0 * m.num_inputs() as u32 + i.0, 0));
                    states.insert(n.0);
                    applied_length += 1;
                    cur = n;
                }
                None => break,
            }
        }
    }
    CoverageReport {
        transitions_covered: edges.len(),
        transitions_total,
        states_covered: states.len(),
        states_total: reach.len(),
        applied_length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    fn machine() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s0, c, s0, o);
        b.add_transition(s1, a, s0, o);
        b.add_transition(s1, c, s1, o);
        b.build(s0).unwrap()
    }

    #[test]
    fn empty_sequence_covers_reset_only() {
        let m = machine();
        let r = coverage(&m, &[]);
        assert_eq!(r.transitions_covered, 0);
        assert_eq!(r.states_covered, 1);
        assert_eq!(r.applied_length, 0);
        assert!(!r.all_transitions_covered());
        assert!(!r.all_states_covered());
    }

    #[test]
    fn full_tour_covers_everything() {
        let m = machine();
        let a = m.input_by_label("a").unwrap();
        let c = m.input_by_label("c").unwrap();
        let r = coverage(&m, &[c, a, c, a]);
        assert!(r.all_transitions_covered());
        assert!(r.all_states_covered());
        assert!((r.transition_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_edges_counted_once() {
        let m = machine();
        let c = m.input_by_label("c").unwrap();
        let r = coverage(&m, &[c, c, c]);
        assert_eq!(r.transitions_covered, 1);
        assert_eq!(r.applied_length, 3);
    }

    #[test]
    fn multiple_sequences_reset_between() {
        let m = machine();
        let a = m.input_by_label("a").unwrap();
        let c = m.input_by_label("c").unwrap();
        // Each restarts at s0: covers (s0,a),(s1,c) then (s0,c).
        let s1: &[_] = &[a, c];
        let s2: &[_] = &[c];
        let r = coverage_set(&m, [s1, s2]);
        assert_eq!(r.transitions_covered, 3);
        assert_eq!(r.states_covered, 2);
    }

    #[test]
    fn fractions_on_empty_machine_edge_case() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let _ = b.add_input("i");
        let m = b.build(s0).unwrap();
        let r = coverage(&m, &[]);
        assert!((r.transition_fraction() - 1.0).abs() < 1e-12);
        assert!(r.all_states_covered());
    }
}

//! Test-set expansion: abstract test-model vectors → concrete simulation
//! vectors.
//!
//! Section 6.5: *"Since the inputs to the test model are abstracted from
//! those for the actual design, appropriate input values must be filled in
//! before the generated test set can be used for simulation."* Two things
//! must be filled in:
//!
//! 1. **Removed fields** (e.g. immediate data): chosen so that
//!    Requirement 3 holds — each instruction produces a unique observable
//!    output. The stock strategy [`DistinctData`] hands out a distinct
//!    data value per expanded vector.
//! 2. **Datapath-sourced inputs** (e.g. the Processor Status Word): the
//!    test model treats them as free inputs; during functional simulation
//!    the harness *takes control of these signals* (the Ho et al.
//!    solution adopted in Section 6.1), forcing them to the values the
//!    test sequence assumed.

/// Strategy for filling in the input fields the abstraction removed.
pub trait InputExpander {
    /// The concrete vector type (e.g. a 32-bit DLX instruction).
    type Concrete;

    /// Expands the `index`-th abstract vector of a sequence into a
    /// concrete one. `index` lets strategies hand out distinct data values
    /// per position (Requirement 3).
    fn expand(&mut self, abstract_bits: &[bool], index: usize) -> Self::Concrete;
}

/// A data-selection strategy producing pairwise-distinct filler values:
/// vector `i` of a sequence receives `base + i * stride`, truncated to the
/// requested width. With `stride` odd and width ≥ log2(sequence length),
/// all values in a sequence are distinct — the cheap way to satisfy
/// Requirement 3's "appropriately picking data values".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistinctData {
    /// First value handed out.
    pub base: u64,
    /// Increment between consecutive vectors (choose odd).
    pub stride: u64,
}

impl Default for DistinctData {
    fn default() -> Self {
        DistinctData {
            base: 1,
            stride: 0x9e37_79b1,
        } // odd golden-ratio step
    }
}

impl DistinctData {
    /// The filler value for vector `index`, truncated to `bits` bits.
    pub fn value(&self, index: usize, bits: u32) -> u64 {
        let v = self
            .base
            .wrapping_add(self.stride.wrapping_mul(index as u64));
        if bits >= 64 {
            v
        } else {
            v & ((1u64 << bits) - 1)
        }
    }
}

/// Expands a whole abstract sequence with an [`InputExpander`].
pub fn expand_sequence<E: InputExpander>(
    expander: &mut E,
    abstract_vectors: &[Vec<bool>],
) -> Vec<E::Concrete> {
    abstract_vectors
        .iter()
        .enumerate()
        .map(|(i, v)| expander.expand(v, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_data_is_distinct() {
        let d = DistinctData::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(d.value(i, 32)), "collision at {i}");
        }
    }

    #[test]
    fn distinct_data_truncates() {
        let d = DistinctData {
            base: 0xffff,
            stride: 1,
        };
        assert_eq!(d.value(0, 8), 0xff);
        assert_eq!(d.value(1, 64), 0x10000);
    }

    #[test]
    fn expand_sequence_passes_indices() {
        struct Tagger;
        impl InputExpander for Tagger {
            type Concrete = (usize, usize);
            fn expand(&mut self, bits: &[bool], index: usize) -> (usize, usize) {
                (bits.len(), index)
            }
        }
        let out = expand_sequence(&mut Tagger, &[vec![true], vec![false, true]]);
        assert_eq!(out, vec![(1, 0), (2, 1)]);
    }
}

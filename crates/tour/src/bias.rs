//! Bias-aware stimulus generation: the feedback half of the
//! coverage-directed closure loop.
//!
//! One-shot tours cover every transition blindly; the adaptive driver in
//! `simcov-core` instead harvests campaign telemetry (cold `(state,
//! input)` cells from the excitation index, cells of surviving faults)
//! and asks this module for stimulus aimed at exactly those cells:
//!
//! * [`targeted_tour`] — a deterministic greedy walk that covers a given
//!   *target* cell set and nothing more, restarting from reset when the
//!   walk strands itself (so non-strongly-connected machines degrade to
//!   a multi-sequence test set instead of an error);
//! * [`biased_random_test_set`] — constrained-random walks whose input
//!   choice is weighted toward target cells instead of uniform, the
//!   cold-region biasing of coverage-directed constrained-random
//!   verification.
//!
//! Both are pure functions of `(machine, targets, parameters, seed)`, so
//! the closure loop's round schedule is reproducible bit-for-bit.

use crate::random::TestSet;
use simcov_fsm::{ExplicitMealy, InputSym, StateId};
use simcov_prng::Prng;
use std::collections::VecDeque;

/// Dense index of a `(state, input)` cell.
fn cell(m: &ExplicitMealy, s: StateId, i: InputSym) -> usize {
    s.0 as usize * m.num_inputs() + i.0 as usize
}

/// Generates a test set that traverses every *defined and reachable*
/// target cell at least once — a transition tour restricted to the
/// targets.
///
/// The walk starts at reset and greedily takes the nearest uncovered
/// target (smallest input symbol first when several leave the current
/// state, BFS over defined transitions otherwise). When no uncovered
/// target is reachable from the current state the sequence ends and a
/// fresh one starts from reset; targets unreachable from reset are
/// dropped silently (they cannot be excited by any resettable test).
/// Each finished sequence is extended by `propagate` seeded random
/// defined steps — the exposure window that lets a fault excited at the
/// tail still propagate to an output (the role `k` plays for cyclic
/// tour extension).
///
/// Undefined target cells are ignored. An empty target set yields an
/// empty test set.
pub fn targeted_tour(
    m: &ExplicitMealy,
    targets: &[(StateId, InputSym)],
    propagate: usize,
    seed: u64,
) -> TestSet {
    let ni = m.num_inputs();
    let ns = m.num_states();
    let mut wanted = vec![false; ns * ni];
    let mut remaining = 0usize;
    for &(s, i) in targets {
        let idx = cell(m, s, i);
        if m.step(s, i).is_some() && !wanted[idx] {
            wanted[idx] = true;
            remaining += 1;
        }
    }
    let mut rng = Prng::seed_from_u64(seed);
    let mut sequences: Vec<Vec<InputSym>> = Vec::new();
    while remaining > 0 {
        let mut seq: Vec<InputSym> = Vec::new();
        let mut cur = m.reset();
        let mut progressed = false;
        loop {
            // Take an uncovered target here if one exists (smallest input
            // first, for determinism).
            let local = (0..ni as u32)
                .map(InputSym)
                .find(|&i| wanted[cell(m, cur, i)]);
            if let Some(i) = local {
                wanted[cell(m, cur, i)] = false;
                remaining -= 1;
                progressed = true;
                seq.push(i);
                cur = m.step(cur, i).expect("target cells are defined").0;
                continue;
            }
            // BFS over defined transitions to the nearest state with an
            // uncovered target edge.
            let mut parent: Vec<Option<(StateId, InputSym)>> = vec![None; ns];
            let mut seen = vec![false; ns];
            seen[cur.0 as usize] = true;
            let mut q = VecDeque::from([cur]);
            let mut goal = None;
            'bfs: while let Some(u) = q.pop_front() {
                for i in m.inputs() {
                    let Some((v, _)) = m.step(u, i) else { continue };
                    if !seen[v.0 as usize] {
                        seen[v.0 as usize] = true;
                        parent[v.0 as usize] = Some((u, i));
                        if (0..ni as u32).any(|j| wanted[cell(m, v, InputSym(j))]) {
                            goal = Some(v);
                            break 'bfs;
                        }
                        q.push_back(v);
                    }
                }
            }
            let Some(t) = goal else { break };
            let mut path = Vec::new();
            let mut walk = t;
            while let Some((p, i)) = parent[walk.0 as usize] {
                path.push((p, i));
                walk = p;
            }
            path.reverse();
            for (u, i) in path {
                // Edges traversed en route may themselves be targets.
                if wanted[cell(m, u, i)] {
                    wanted[cell(m, u, i)] = false;
                    remaining -= 1;
                    progressed = true;
                }
                seq.push(i);
                cur = m.step(u, i).expect("BFS follows defined edges").0;
            }
        }
        extend_random(m, &mut seq, cur, propagate, &mut rng);
        if !seq.is_empty() {
            sequences.push(seq);
        }
        if !progressed {
            // Everything still wanted is unreachable from reset.
            break;
        }
    }
    TestSet { sequences }
}

/// Appends up to `steps` random defined steps to `seq`, walking from
/// `cur`.
fn extend_random(
    m: &ExplicitMealy,
    seq: &mut Vec<InputSym>,
    mut cur: StateId,
    steps: usize,
    rng: &mut Prng,
) {
    for _ in 0..steps {
        let defined: Vec<InputSym> = m.inputs().filter(|&i| m.step(cur, i).is_some()).collect();
        if defined.is_empty() {
            break;
        }
        let i = defined[rng.gen_range(0..defined.len())];
        seq.push(i);
        cur = m.step(cur, i).expect("chosen from defined inputs").0;
    }
}

/// Generates `num_sequences` constrained-random walks of up to `length`
/// steps, each from reset, deterministically from `seed`.
///
/// At every state the next input is drawn from the *defined* inputs with
/// weight `weight` for target cells and 1 otherwise — so the walk is
/// `weight`× likelier to enter a cold region when one borders the
/// current state, and behaves exactly like a defined-input uniform walk
/// when no target is local. `weight` is clamped to at least 1; an empty
/// target set therefore degenerates to an unbiased walk. A state with no
/// defined inputs truncates its sequence.
pub fn biased_random_test_set(
    m: &ExplicitMealy,
    targets: &[(StateId, InputSym)],
    num_sequences: usize,
    length: usize,
    weight: u32,
    seed: u64,
) -> TestSet {
    let ni = m.num_inputs();
    let mut hot = vec![false; m.num_states() * ni];
    for &(s, i) in targets {
        if m.step(s, i).is_some() {
            hot[cell(m, s, i)] = true;
        }
    }
    let weight = u64::from(weight.max(1));
    let mut rng = Prng::seed_from_u64(seed);
    let mut sequences = Vec::with_capacity(num_sequences);
    for _ in 0..num_sequences {
        let mut seq = Vec::with_capacity(length);
        let mut cur = m.reset();
        for _ in 0..length {
            let mut total = 0u64;
            for i in m.inputs() {
                if m.step(cur, i).is_some() {
                    total += if hot[cell(m, cur, i)] { weight } else { 1 };
                }
            }
            if total == 0 {
                break;
            }
            let mut pick = rng.gen_range(0..total);
            let mut chosen = None;
            for i in m.inputs() {
                if m.step(cur, i).is_none() {
                    continue;
                }
                let w = if hot[cell(m, cur, i)] { weight } else { 1 };
                if pick < w {
                    chosen = Some(i);
                    break;
                }
                pick -= w;
            }
            let i = chosen.expect("pick < total over the same weights");
            seq.push(i);
            cur = m.step(cur, i).expect("chosen from defined inputs").0;
        }
        sequences.push(seq);
    }
    TestSet { sequences }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::coverage_set;
    use simcov_fsm::MealyBuilder;

    fn ring(n: usize) -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
        let step = b.add_input("step");
        let jump = b.add_input("jump");
        let o = b.add_output("o");
        for i in 0..n {
            b.add_transition(states[i], step, states[(i + 1) % n], o);
            b.add_transition(states[i], jump, states[(i + n / 2) % n], o);
        }
        b.build(states[0]).unwrap()
    }

    fn covers(m: &ExplicitMealy, ts: &TestSet, s: StateId, i: InputSym) -> bool {
        ts.sequences.iter().any(|seq| {
            let mut cur = m.reset();
            for &x in seq {
                if cur == s && x == i {
                    return true;
                }
                match m.step(cur, x) {
                    Some((n, _)) => cur = n,
                    None => return false,
                }
            }
            false
        })
    }

    #[test]
    fn targeted_tour_covers_exactly_the_requested_cells() {
        let m = ring(8);
        let step = m.input_by_label("step").unwrap();
        let jump = m.input_by_label("jump").unwrap();
        let targets = vec![(StateId(3), jump), (StateId(6), step), (StateId(1), jump)];
        let ts = targeted_tour(&m, &targets, 0, 0);
        for &(s, i) in &targets {
            assert!(covers(&m, &ts, s, i), "target ({s:?},{i:?}) uncovered");
        }
        // Restricted: far fewer steps than a full tour of 16 transitions
        // would need — the walk only detours for its targets.
        assert!(ts.total_vectors() < 16, "{}", ts.total_vectors());
    }

    #[test]
    fn targeted_tour_is_deterministic_and_propagate_extends() {
        let m = ring(6);
        let jump = m.input_by_label("jump").unwrap();
        let targets = vec![(StateId(2), jump), (StateId(5), jump)];
        let a = targeted_tour(&m, &targets, 3, 7);
        let b = targeted_tour(&m, &targets, 3, 7);
        assert_eq!(a, b);
        let bare = targeted_tour(&m, &targets, 0, 7);
        assert_eq!(
            a.total_vectors(),
            bare.total_vectors() + 3 * a.len(),
            "each sequence gains exactly `propagate` defined steps on a \
             complete machine"
        );
    }

    #[test]
    fn targeted_tour_ignores_undefined_and_empty_targets() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s1, a, s0, o);
        // (s0, c) and (s1, c) are undefined.
        let m = b.build(s0).unwrap();
        assert!(targeted_tour(&m, &[], 2, 0).is_empty());
        assert!(targeted_tour(&m, &[(StateId(0), c)], 2, 0).is_empty());
    }

    #[test]
    fn targeted_tour_restarts_from_reset_on_one_way_branches() {
        // root -> s1 (absorbing), root -> s2 (absorbing): no single walk
        // covers targets in both branches, but two sequences do.
        let mut b = MealyBuilder::new();
        let root = b.add_state("root");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(root, a, s1, o);
        b.add_transition(root, c, s2, o);
        b.add_transition(s1, a, s1, o);
        b.add_transition(s2, a, s2, o);
        let m = b.build(root).unwrap();
        let targets = vec![(s1, a), (s2, a)];
        let ts = targeted_tour(&m, &targets, 0, 0);
        assert_eq!(ts.len(), 2, "{ts:?}");
        for &(s, i) in &targets {
            assert!(covers(&m, &ts, s, i));
        }
    }

    #[test]
    fn biased_walks_hit_targets_more_often_than_uniform() {
        let m = ring(16);
        let jump = m.input_by_label("jump").unwrap();
        let targets: Vec<_> = (0..16).map(|s| (StateId(s), jump)).collect();
        let hits = |w: u32| -> usize {
            let ts = biased_random_test_set(&m, &targets, 20, 50, w, 11);
            ts.sequences
                .iter()
                .map(|seq| seq.iter().filter(|&&i| i == jump).count())
                .sum()
        };
        // Uniform picks `jump` ~50% of the time; weight 16 pushes it to
        // 16/17 ≈ 94%, so demand at least a 1.5× lift.
        assert!(
            hits(16) * 2 > hits(1) * 3,
            "weight 16 should clearly lift the jump rate: {} vs {}",
            hits(16),
            hits(1)
        );
    }

    #[test]
    fn biased_walks_are_deterministic_and_weight_one_is_uniform_shape() {
        let m = ring(5);
        let step = m.input_by_label("step").unwrap();
        let targets = vec![(StateId(0), step)];
        let a = biased_random_test_set(&m, &targets, 4, 12, 8, 3);
        let b = biased_random_test_set(&m, &targets, 4, 12, 8, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.total_vectors(), 48, "complete machine never truncates");
        // Weight 0 clamps to 1 (unbiased): still well-formed.
        let c = biased_random_test_set(&m, &targets, 2, 9, 0, 3);
        assert_eq!(c.total_vectors(), 18);
    }

    #[test]
    fn biased_walks_follow_only_defined_transitions() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s0, c, s0, o);
        b.add_transition(s1, a, s0, o);
        // (s1, c) undefined: a uniform draw could pick it; the biased
        // walk never does.
        let m = b.build(s0).unwrap();
        let ts = biased_random_test_set(&m, &[(s0, c)], 8, 30, 4, 5);
        assert_eq!(ts.total_vectors(), 240);
        let rep = coverage_set(&m, ts.sequences.iter().map(Vec::as_slice));
        assert_eq!(rep.applied_length, 240, "no walk stepped off the machine");
    }
}

//! Coverage measurement: which transitions and states does a test
//! sequence exercise?

use simcov_fsm::{ExplicitMealy, InputSym};
use std::collections::HashSet;

/// Transition/state coverage achieved by an input sequence (from reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Distinct `(state, input)` transitions exercised.
    pub transitions_covered: usize,
    /// Total transitions defined on the reachable part of the machine.
    pub transitions_total: usize,
    /// Distinct states visited (including the reset state).
    pub states_covered: usize,
    /// Total reachable states.
    pub states_total: usize,
    /// Length of the (possibly truncated) applied sequence.
    pub applied_length: usize,
}

impl CoverageReport {
    /// `true` if every reachable transition was exercised — the paper's
    /// transition-coverage criterion.
    pub fn all_transitions_covered(&self) -> bool {
        self.transitions_covered == self.transitions_total
    }

    /// `true` if every reachable state was visited — the weaker
    /// state-coverage criterion.
    pub fn all_states_covered(&self) -> bool {
        self.states_covered == self.states_total
    }

    /// Fraction of transitions covered in `[0, 1]`.
    pub fn transition_fraction(&self) -> f64 {
        if self.transitions_total == 0 {
            1.0
        } else {
            self.transitions_covered as f64 / self.transitions_total as f64
        }
    }

    /// Fraction of states covered in `[0, 1]`.
    pub fn state_fraction(&self) -> f64 {
        if self.states_total == 0 {
            1.0
        } else {
            self.states_covered as f64 / self.states_total as f64
        }
    }
}

impl std::fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} transitions, {}/{} states over {} vectors",
            self.transitions_covered,
            self.transitions_total,
            self.states_covered,
            self.states_total,
            self.applied_length
        )
    }
}

/// Measures the transition and state coverage of `inputs` applied from
/// the reset state of `m`. The walk stops at the first undefined
/// transition.
pub fn coverage(m: &ExplicitMealy, inputs: &[InputSym]) -> CoverageReport {
    coverage_set(m, std::iter::once(inputs))
}

/// Measures joint coverage of several sequences, each applied from reset.
pub fn coverage_set<'a, I>(m: &ExplicitMealy, sequences: I) -> CoverageReport
where
    I: IntoIterator<Item = &'a [InputSym]>,
{
    let seqs: Vec<&[InputSym]> = sequences.into_iter().collect();
    coverage_set_jobs(m, &seqs, 1)
}

/// Per-sequence walk results; merged by set union / sum, both commutative
/// and associative, so the merged coverage is independent of how the
/// sequences were partitioned across workers.
#[derive(Debug, Default)]
struct WalkCoverage {
    edges: HashSet<(u32, u32)>,
    states: HashSet<u32>,
    applied_length: usize,
}

impl WalkCoverage {
    fn absorb(&mut self, other: WalkCoverage) {
        self.edges.extend(other.edges);
        self.states.extend(other.states);
        self.applied_length += other.applied_length;
    }
}

/// [`coverage_set`] on a worker pool of `jobs` scoped threads (0 =
/// available parallelism). Each worker walks a contiguous shard of the
/// sequences and collects shard-local edge/state sets; shards are merged
/// by set union, so the report is bit-identical to the single-threaded
/// walk for any job count. This mirrors the deterministic sharded-merge
/// design of the fault-campaign engine in `simcov-core` (which this crate
/// sits below in the dependency stack, hence the local pool).
pub fn coverage_set_jobs(
    m: &ExplicitMealy,
    sequences: &[&[InputSym]],
    jobs: usize,
) -> CoverageReport {
    let reach = m.reachable_states();
    let transitions_total = reach
        .iter()
        .map(|&s| m.inputs().filter(|&i| m.step(s, i).is_some()).count())
        .sum();
    let walk_shard = |shard: &[&[InputSym]]| {
        let mut cov = WalkCoverage::default();
        for seq in shard {
            let mut cur = m.reset();
            for &i in *seq {
                match m.step(cur, i) {
                    Some((n, _)) => {
                        cov.edges.insert((cur.0 * m.num_inputs() as u32 + i.0, 0));
                        cov.states.insert(n.0);
                        cov.applied_length += 1;
                        cur = n;
                    }
                    None => break,
                }
            }
        }
        cov
    };
    let jobs = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    // Shard size depends only on the sequence count, never on `jobs`.
    let shard_size = sequences.len().div_ceil(64).max(1);
    let workers = jobs.min(sequences.len().div_ceil(shard_size)).max(1);
    let mut merged = WalkCoverage::default();
    merged.states.insert(m.reset().0);
    if workers <= 1 {
        for shard in sequences.chunks(shard_size) {
            merged.absorb(walk_shard(shard));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let shards: Vec<&[&[InputSym]]> = sequences.chunks(shard_size).collect();
        let results: std::sync::Mutex<Vec<WalkCoverage>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(shard) = shards.get(i) else { break };
                    let cov = walk_shard(shard);
                    results.lock().expect("no worker panics").push(cov);
                });
            }
        });
        for cov in results.into_inner().expect("scope joined all workers") {
            merged.absorb(cov);
        }
    }
    CoverageReport {
        transitions_covered: merged.edges.len(),
        transitions_total,
        states_covered: merged.states.len(),
        states_total: reach.len(),
        applied_length: merged.applied_length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    fn machine() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s0, c, s0, o);
        b.add_transition(s1, a, s0, o);
        b.add_transition(s1, c, s1, o);
        b.build(s0).unwrap()
    }

    #[test]
    fn empty_sequence_covers_reset_only() {
        let m = machine();
        let r = coverage(&m, &[]);
        assert_eq!(r.transitions_covered, 0);
        assert_eq!(r.states_covered, 1);
        assert_eq!(r.applied_length, 0);
        assert!(!r.all_transitions_covered());
        assert!(!r.all_states_covered());
    }

    #[test]
    fn full_tour_covers_everything() {
        let m = machine();
        let a = m.input_by_label("a").unwrap();
        let c = m.input_by_label("c").unwrap();
        let r = coverage(&m, &[c, a, c, a]);
        assert!(r.all_transitions_covered());
        assert!(r.all_states_covered());
        assert!((r.transition_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_edges_counted_once() {
        let m = machine();
        let c = m.input_by_label("c").unwrap();
        let r = coverage(&m, &[c, c, c]);
        assert_eq!(r.transitions_covered, 1);
        assert_eq!(r.applied_length, 3);
    }

    #[test]
    fn multiple_sequences_reset_between() {
        let m = machine();
        let a = m.input_by_label("a").unwrap();
        let c = m.input_by_label("c").unwrap();
        // Each restarts at s0: covers (s0,a),(s1,c) then (s0,c).
        let s1: &[_] = &[a, c];
        let s2: &[_] = &[c];
        let r = coverage_set(&m, [s1, s2]);
        assert_eq!(r.transitions_covered, 3);
        assert_eq!(r.states_covered, 2);
    }

    #[test]
    fn coverage_set_jobs_identical_across_thread_counts() {
        let m = machine();
        let a = m.input_by_label("a").unwrap();
        let c = m.input_by_label("c").unwrap();
        let seqs: Vec<Vec<_>> = (0..200)
            .map(|k| {
                if k % 2 == 0 {
                    vec![a, c, a]
                } else {
                    vec![c, c]
                }
            })
            .collect();
        let refs: Vec<&[_]> = seqs.iter().map(Vec::as_slice).collect();
        let baseline = coverage_set_jobs(&m, &refs, 1);
        for jobs in [0, 2, 8] {
            assert_eq!(coverage_set_jobs(&m, &refs, jobs), baseline, "jobs={jobs}");
        }
        assert_eq!(coverage_set(&m, refs.iter().copied()), baseline);
    }

    #[test]
    fn fractions_on_empty_machine_edge_case() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let _ = b.add_input("i");
        let m = b.build(s0).unwrap();
        let r = coverage(&m, &[]);
        assert!((r.transition_fraction() - 1.0).abs() < 1e-12);
        assert!(r.all_states_covered());
    }
}

//! The methodology on a fixed-program processor (the paper's second
//! design class): a 4-tap FIR-filter ASIC with a serial MAC datapath.
//!
//! Run with: `cargo run --example dsp_asic`

use simcov::core::{
    certify_completeness, enumerate_single_faults, extend_cyclically, run_campaign, validate,
    FaultSpace,
};
use simcov::dsp::control::{derive_test_model, derive_test_model_observable, valid_inputs};
use simcov::dsp::{DspFault, FirMac, FirSpec, COEFFS};
use simcov::fsm::enumerate_netlist;
use simcov::tour::{transition_tour, TestSet};

fn main() {
    // 1. Spec vs implementation on a sample stream (Figure 1 flow).
    let samples: Vec<i32> = vec![3, -1, 4, 1, -5, 9, 2, 6, 5, 3];
    let mut spec = FirSpec::new(COEFFS);
    let mut imp = FirMac::new(COEFFS);
    let n = validate(&mut spec, &mut imp, &samples).expect("golden MAC validates");
    println!("golden MAC: {n} checkpoints compared, no mismatch ✔");
    for fault in DspFault::ALL {
        let mut bad = FirMac::new(COEFFS).with_fault(fault);
        match validate(&mut spec, &mut bad, &samples) {
            Ok(_) => println!("{fault:?}: ESCAPED ✘"),
            Err(m) => println!("{fault:?}: caught at checkpoint {}", m.index),
        }
    }

    // 2. Test-model derivation (the Fig 3(b) recipe in miniature).
    let (_, counts) = derive_test_model();
    println!("\nabstraction sequence (latches): {counts:?}");

    // 3. Certify + tour + exhaustive campaign on the observable model.
    let model = derive_test_model_observable();
    let m = enumerate_netlist(&model, &valid_inputs(&model)).expect("enumerates");
    let cert = certify_completeness(&m, 1, None).expect("certifiable");
    let tour = transition_tour(&m).expect("strongly connected");
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: usize::MAX,
            ..FaultSpace::default()
        },
    );
    let tests = TestSet::single(extend_cyclically(&tour.inputs, cert.k));
    let report = run_campaign(&m, &faults, &tests);
    println!("test model: {m:?}");
    println!("certificate at k = {}; {tour}; campaign: {report}", cert.k);
    assert!(report.complete());
}

//! The `simcov-bench` binary: perf-regression gate over the
//! `BENCH_<name>.json` reports that the bench binaries emit.
//!
//! ```text
//! simcov-bench --check ci/bench-baseline.json [--dir DIR] [--tolerance PCT]
//! simcov-bench --emit-baseline ci/bench-baseline.json [--dir DIR]
//! ```
//!
//! `--check` exits 0 when every entry's current median is within
//! tolerance (default 25%) of the committed baseline, 1 on regressions
//! or vanished entries, 2 on usage/IO errors. `--emit-baseline` merges
//! the reports into a fresh baseline document (what
//! `scripts/bench-baseline.sh` commits).

use simcov_bench::check::{
    baseline_medians, collect_reports, compare, render_baseline, DEFAULT_TOLERANCE,
};
use simcov_bench::timing::report_dir;
use simcov_obs::json;
use std::path::PathBuf;

const USAGE: &str = "\
usage:
  simcov-bench --check <baseline.json> [--dir <reports-dir>] [--tolerance <pct>]
  simcov-bench --emit-baseline <out.json> [--dir <reports-dir>]

Reads every BENCH_*.json in the reports directory ($SIMCOV_BENCH_DIR or
target/bench-reports by default) and either gates medians against a
committed baseline (--check; >pct% growth or vanished entries fail) or
writes a fresh baseline document (--emit-baseline).
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check: Option<PathBuf> = None;
    let mut emit: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => die(&format!("{flag} needs a value")),
            }
        };
        match arg.as_str() {
            "--check" => check = Some(PathBuf::from(value("--check"))),
            "--emit-baseline" => emit = Some(PathBuf::from(value("--emit-baseline"))),
            "--dir" => dir = Some(PathBuf::from(value("--dir"))),
            "--tolerance" => {
                let raw = value("--tolerance");
                match raw.parse::<f64>() {
                    Ok(pct) if pct >= 0.0 => tolerance = pct / 100.0,
                    _ => die(&format!(
                        "--tolerance wants a non-negative percent, got `{raw}`"
                    )),
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let dir = dir.unwrap_or_else(report_dir);
    let current = match collect_reports(&dir) {
        Ok(c) => c,
        Err(e) => die(&e),
    };

    match (check, emit) {
        (Some(baseline_path), None) => {
            let text = match std::fs::read_to_string(&baseline_path) {
                Ok(t) => t,
                Err(e) => die(&format!("cannot read {}: {e}", baseline_path.display())),
            };
            let doc = match json::parse(&text) {
                Ok(d) => d,
                Err(e) => die(&format!("{}: {e}", baseline_path.display())),
            };
            let baseline = match baseline_medians(&doc) {
                Ok(b) => b,
                Err(e) => die(&format!("{}: {e}", baseline_path.display())),
            };
            let outcome = compare(&baseline, &current, tolerance);
            print!("{}", outcome.render());
            std::process::exit(if outcome.passed() { 0 } else { 1 });
        }
        (None, Some(out_path)) => {
            let text = render_baseline(&current);
            if let Err(e) = std::fs::write(&out_path, &text) {
                die(&format!("cannot write {}: {e}", out_path.display()));
            }
            eprintln!("wrote {} ({} entries)", out_path.display(), current.len());
        }
        _ => die("pass exactly one of --check or --emit-baseline"),
    }
}

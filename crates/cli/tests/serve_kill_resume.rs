//! Crash-safety gate: SIGKILL a `simcov serve --journal` process
//! mid-flight, restart it with `--resume`, and require that every
//! admitted job — finished or not at the moment of the kill — ends up
//! with a result byte-identical to an uninterrupted single-shot run.

use simcov_obs::json::{self, Json};
use simcov_serve::client;
use simcov_serve::jobs::{self, ExecCtx};
use simcov_serve::protocol::{parse_request, Request};
use simcov_serve::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// Spawns `simcov serve` and parses the `listening HOST:PORT` line.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_simcov"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn simcov serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("serve prints a line")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected first line: {first}"))
        .to_string();
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn job_payload(id: &str, seed: u64) -> String {
    format!(
        r#"{{"type":"campaign","id":"{id}","model":{{"dlx":"reduced-obs"}},"max_faults":800,"seed":{seed},"k":1,"engine":"differential"}}"#
    )
}

/// Strips the wall-clock line: the only intentionally non-deterministic
/// part of a campaign report.
fn strip_wall(text: &str) -> String {
    text.lines()
        .filter(|l| !l.starts_with("wall:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// What an uninterrupted single-shot CLI run of `payload` prints.
fn single_shot(payload: &str) -> String {
    let frame = json::parse(payload).expect("valid payload");
    let Request::Submit { spec, .. } = parse_request(&frame).expect("payload parses") else {
        panic!("not a submit");
    };
    let tel = simcov_obs::Telemetry::new();
    jobs::execute(&spec, &tel, &ExecCtx::default())
        .expect("single-shot run succeeds")
        .text
}

#[test]
fn sigkill_then_resume_recovers_every_admitted_job() {
    let dir = std::env::temp_dir().join(format!("simcov-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let journal = dir.join("serve.journal");
    let journal_arg = journal.to_str().expect("utf-8 path");

    let ids: Vec<String> = (0..8).map(|i| format!("kr-{i}")).collect();

    // Phase 1: admit all jobs, then SIGKILL the server once at least one
    // (but not every) job has journaled a `done` record.
    let (mut child, addr) = spawn_serve(&["--journal", journal_arg]);
    let mut cl = Client::connect(&addr).expect("connect");
    for (i, id) in ids.iter().enumerate() {
        cl.send(&job_payload(id, i as u64)).expect("submit");
    }
    let mut admitted = 0;
    while admitted < ids.len() {
        let frame = cl.recv().expect("ack");
        if frame.get("type").and_then(Json::as_str) == Some("ack") {
            assert_eq!(
                frame.get("status").and_then(Json::as_str),
                Some("admitted"),
                "all eight jobs fit the default queue"
            );
            admitted += 1;
        }
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let text = std::fs::read_to_string(&journal).unwrap_or_default();
        let done = text.lines().filter(|l| l.starts_with("done ")).count();
        if done >= 1 {
            assert!(done < ids.len(), "kill window closed: all jobs finished");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no job journaled `done` in time"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Phase 2: resume. Finished jobs are restored from the journal;
    // admitted-but-unfinished ones re-run. Either way, `query`
    // converges on results byte-identical to uninterrupted runs.
    let (mut child, addr) = spawn_serve(&["--journal", journal_arg, "--resume"]);
    let mut cl = Client::connect(&addr).expect("connect after resume");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    for (i, id) in ids.iter().enumerate() {
        let frame = loop {
            let frame = cl.request(&client::query(id)).expect("query");
            match frame.get("type").and_then(Json::as_str) {
                Some("result") => break frame,
                Some("ack") | Some("error") => {
                    // `pending` while the re-run is in flight; `unknown
                    // job id` must not happen for an admitted job.
                    assert_ne!(
                        frame.get("type").and_then(Json::as_str),
                        Some("error"),
                        "job {id} was admitted (fsynced) and must survive the crash: {frame:?}"
                    );
                    assert!(
                        std::time::Instant::now() < deadline,
                        "job {id} never completed after resume"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                other => panic!("unexpected frame type {other:?}"),
            }
        };
        assert_eq!(
            strip_wall(frame.get("output").and_then(Json::as_str).unwrap()),
            strip_wall(&single_shot(&job_payload(id, i as u64))),
            "job {id} must be byte-identical to an uninterrupted run"
        );
        assert_eq!(frame.get("exit").and_then(Json::as_u64), Some(0));
    }

    // The restored-results counter proves phase 2 recovered journaled
    // state rather than recomputing everything.
    let stats = cl.request(&client::stats()).expect("stats");
    let restored = stats
        .get("counters")
        .and_then(|c| c.get("serve.jobs_restored"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(restored >= 1, "at least the finished job must be restored");

    let ack = cl.request(&client::shutdown()).expect("shutdown ack");
    assert_eq!(ack.get("status").and_then(Json::as_str), Some("draining"));
    let status = child.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "clean resume run exits 0");

    let _ = std::fs::remove_dir_all(&dir);
}

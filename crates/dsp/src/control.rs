//! The DSP control test model and its derivation — the same recipe as
//! the DLX study, applied to a fixed-program processor.
//!
//! The initial control model keeps everything the real controller has:
//! the one-hot tap sequencer, the busy and output-valid flags, a pair of
//! synchronizing latches on the outgoing control signals, and a sample
//! counter kept only for a trace port. The abstraction pipeline then
//! mirrors Fig 3(b) in miniature:
//!
//! ```text
//! 11 ──no synchronizing latches for outputs──▶ 9
//!    ──remove outputs not affecting control──▶ 6
//!    ──1-hot to binary encoding─────────────▶ 4
//! ```
//!
//! and the 4-latch final model is small enough to certify, tour and
//! attack exhaustively.

use simcov_fsm::EnumerateOptions;
use simcov_netlist::{transform, Netlist};

/// The expected latch counts of the miniature derivation, including the
/// initial model.
pub const DERIVATION_LATCH_SEQUENCE: [usize; 4] = [11, 9, 6, 4];

/// Builds the initial control model of the MAC unit: datapath (delay
/// line, multiplier, accumulator) abstracted away; its status arrives as
/// inputs, its control leaves as outputs.
///
/// Inputs: `in_valid`, `flush`. Outputs: `ready`, `out_valid`, `mac_en`,
/// `shift_en`, `acc_clr`, `trace_parity`.
pub fn initial_control_netlist() -> Netlist {
    let mut n = Netlist::new();
    let in_valid = n.add_input("in_valid");
    let flush = n.add_input("flush");

    // One-hot tap sequencer (tap 0 hot at reset).
    let mut tap = Vec::new();
    for i in 0..4 {
        tap.push(n.add_latch_in(format!("tap[{i}]"), i == 0, "seq"));
    }
    let tap_o: Vec<_> = tap.iter().map(|&l| n.latch_output(l)).collect();
    let busy = n.add_latch_in("busy", false, "seq");
    let busy_o = n.latch_output(busy);
    let ov = n.add_latch_in("out_valid_r", false, "seq");
    let ov_o = n.latch_output(ov);

    // Control equations.
    let not_busy = n.not(busy_o);
    let accept = n.and(in_valid, not_busy);
    let last_tap = tap_o[3];
    let finishing = n.and(busy_o, last_tap);
    // busy: set on accept, cleared when the last tap completes or on flush.
    let not_flush = n.not(flush);
    let mut busy_next = n.or(accept, busy_o);
    let not_finishing = n.not(finishing);
    busy_next = n.and(busy_next, not_finishing);
    busy_next = n.and(busy_next, not_flush);
    n.set_latch_next(busy, busy_next);
    // Tap ring: reset to 0 on accept/flush, rotate while busy.
    for i in 0..4 {
        let prev = tap_o[(i + 3) % 4];
        let rot = n.mux(busy_o, prev, tap_o[i]);
        let reset_val = n.constant(i == 0);
        let reset_cond = n.or(accept, flush);
        let nx = n.mux(reset_cond, reset_val, rot);
        n.set_latch_next(tap[i], nx);
    }
    n.set_latch_next(ov, finishing);

    // Raw control signals (out_valid is a registered output, as in the
    // real design: the result register is written the cycle the last MAC
    // completes and flagged valid the next).
    let ready = not_busy;
    let out_valid = ov_o;
    let mac_en = busy_o;
    let shift_en = accept;
    let acc_clr = accept;

    // Synchronizing latches on the two datapath-bound strobes.
    let sy1 = n.add_latch_in("sync.mac_en", false, "sync_out");
    n.set_latch_next(sy1, mac_en);
    let sy1_o = n.latch_output(sy1);
    let sy2 = n.add_latch_in("sync.acc_clr", false, "sync_out");
    n.set_latch_next(sy2, acc_clr);
    let sy2_o = n.latch_output(sy2);

    // Observation-only sample counter (3 bits) feeding a trace port.
    let mut cnt = Vec::new();
    for i in 0..3 {
        cnt.push(n.add_latch_in(format!("trace.cnt[{i}]"), false, "obs"));
    }
    let cnt_o: Vec<_> = cnt.iter().map(|&l| n.latch_output(l)).collect();
    let mut carry = accept;
    for i in 0..3 {
        let nx = n.xor(cnt_o[i], carry);
        n.set_latch_next(cnt[i], nx);
        carry = n.and(carry, cnt_o[i]);
    }
    let mut parity = n.constant(false);
    for &c in &cnt_o {
        parity = n.xor(parity, c);
    }

    n.add_output("ready", ready);
    n.add_output("out_valid", out_valid);
    n.add_output("mac_en", sy1_o);
    n.add_output("shift_en", shift_en);
    n.add_output("acc_clr", sy2_o);
    n.add_output("trace_parity", parity);

    debug_assert!(n.check().is_empty());
    n
}

/// Runs the miniature derivation, returning the final 4-latch test model
/// and the measured latch counts after each step (including the initial
/// model).
pub fn derive_test_model() -> (Netlist, Vec<usize>) {
    let initial = initial_control_netlist();
    let mut counts = vec![initial.stats().latches];
    // Step 1: bypass the synchronizing latches.
    let s1 = transform::bypass_latches(&initial, |_, l| l.module == "sync_out");
    counts.push(s1.stats().latches);
    // Step 2: remove outputs not affecting control (the trace port).
    let s2 = transform::remove_outputs(&s1, |name| name != "trace_parity");
    counts.push(s2.stats().latches);
    // Step 3: one-hot -> binary re-encoding of the tap sequencer.
    let group: Vec<_> = (0..4)
        .map(|i| {
            s2.latch_by_name(&format!("tap[{i}]"))
                .expect("tap latch present")
        })
        .collect();
    let s3 = transform::reencode_onehot(&s2, &group, "tap_bin").expect("tap ring is one-hot");
    counts.push(s3.stats().latches);
    (s3, counts)
}

/// The final test model with its state observable (Requirement 5) —
/// certifiable at k = 1.
pub fn derive_test_model_observable() -> Netlist {
    let (mut n, _) = derive_test_model();
    for l in n.latch_ids().collect::<Vec<_>>() {
        let name = n.latches()[l.index()].name.clone();
        let o = n.latch_output(l);
        n.add_output(format!("obs:{name}"), o);
    }
    n
}

/// All four input vectors are legal stimuli (the handshake permits any
/// `in_valid`/`flush` combination).
pub fn valid_inputs(n: &Netlist) -> EnumerateOptions {
    EnumerateOptions::exhaustive(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::{
        certify_completeness, enumerate_single_faults, extend_cyclically, run_campaign, FaultSpace,
    };
    use simcov_fsm::enumerate_netlist;
    use simcov_netlist::SimState;
    use simcov_tour::{transition_tour, TestSet};

    #[test]
    fn derivation_latch_counts() {
        let (fin, counts) = derive_test_model();
        assert_eq!(counts, DERIVATION_LATCH_SEQUENCE.to_vec());
        assert_eq!(fin.stats().latches, 4);
        // busy, out_valid_r, tap_bin[0..2]
        assert!(fin.latch_by_name("busy").is_some());
        assert!(fin.latch_by_name("tap_bin[0]").is_some());
    }

    #[test]
    fn control_matches_mac_timing() {
        // Drive the initial control model alongside the real MAC and
        // compare the handshake signals. `ready` is combinational (same
        // cycle); `out_valid` is registered (one cycle after the MAC
        // produces its result).
        let n = initial_control_netlist();
        let mut sim = SimState::new(&n);
        let mut mac = crate::FirMac::new(crate::COEFFS);
        let mut offered = false;
        let mut prev_done = false;
        for cyc in 0..12 {
            let mac_ready_now = mac.ready();
            let offer = !offered && mac_ready_now;
            let outs = sim.step(&n, &[offer, false]);
            assert_eq!(outs[0], mac_ready_now, "cycle {cyc}: ready mismatch");
            assert_eq!(outs[1], prev_done, "cycle {cyc}: out_valid mismatch");
            let y = mac.step(if offer { Some(5) } else { None });
            prev_done = y.is_some();
            if offer {
                offered = true;
            }
        }
        assert!(offered);
    }

    #[test]
    fn full_methodology_on_the_dsp_model() {
        // Certify, tour, and exhaustively attack the observable model.
        let n = derive_test_model_observable();
        let m = enumerate_netlist(&n, &valid_inputs(&n)).expect("enumerates");
        assert!(m.is_strongly_connected());
        let cert = certify_completeness(&m, 1, None).expect("observable model certifies");
        let tour = transition_tour(&m).expect("tour");
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tests = TestSet::single(extend_cyclically(&tour.inputs, cert.k));
        let report = run_campaign(&m, &faults, &tests);
        assert!(report.complete(), "{report}");
        assert!(faults.len() > 100);
    }

    #[test]
    fn bare_model_not_certifiable() {
        // With only the handshake outputs, lookalike states exist (the
        // mid-run tap states produce identical output streams along some
        // input sequences).
        let (n, _) = derive_test_model();
        let m = enumerate_netlist(&n, &valid_inputs(&n)).expect("enumerates");
        let mut certified = false;
        for k in 1..=4 {
            if certify_completeness(&m, k, None).is_ok() {
                certified = true;
                break;
            }
        }
        assert!(
            !certified,
            "bare DSP control should not certify without Req 5"
        );
    }

    #[test]
    fn flush_resets_the_sequencer() {
        let n = initial_control_netlist();
        let mut sim = SimState::new(&n);
        sim.step(&n, &[true, false]); // accept
        sim.step(&n, &[false, false]); // MAC 0
        let o = sim.step(&n, &[false, true]); // flush mid-run
        assert!(!o[1], "no out_valid during the flushed run");
        let o = sim.step(&n, &[false, false]);
        assert!(o[0], "ready again after flush");
    }
}

//! The job-execution layer shared by the single-shot CLI and the server.
//!
//! Every job kind the server accepts (campaign, lint, tour, analyze,
//! close) is
//! executed by [`execute`], and the CLI subcommands delegate to the very
//! same function — so a served job's report text, exit status and
//! telemetry trace are byte-identical to the single-shot `simcov` run of
//! the same options *by construction*. The server-only extras (the
//! cross-request [`TraceCache`] and the engine-degradation audit) enter
//! through [`ExecCtx`] and are disabled on the CLI path; both are
//! invisible to a job's telemetry, which is what keeps the traces
//! identical.

use crate::cache::TraceCache;
use crate::ExitStatus;
use simcov_analyze::{analyze_collapse, lint_analysis, AnalyzeOptions, AnalyzeTarget};
use simcov_core::differential::simulate_fault_differential;
use simcov_core::fingerprint::machine_fingerprint;
use simcov_core::packed::simulate_shard_packed;
use simcov_core::{
    default_jobs, enumerate_single_faults, extend_cyclically, run_implicit_campaign,
    simulate_fault, simulate_shard_symbolic, ClosureConfig, ClosureDriver, CollapseMode, DiffStats,
    Engine, Fault, FaultSpace, GoldenTrace, ImplicitConfig, PackedStats, ReplayScript,
    ResilientCampaign, SymbolicContext, SymbolicEngineStats,
};
use simcov_fsm::{enumerate_netlist, EnumerateOptions, ExplicitMealy, PackedMealy};
use simcov_netlist::Netlist;
use simcov_obs::fnv::Fnv64;
use simcov_obs::Telemetry;
use simcov_prng::Prng;
use simcov_tour::{coverage, generate_tour_traced, TestSet, TourKind};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A job failure: message plus the exit status it maps to (usage errors
/// are the client's fault, runtime errors the model's).
#[derive(Debug)]
pub struct JobError {
    /// Human-readable message.
    pub message: String,
    /// [`ExitStatus::Usage`] or [`ExitStatus::Error`].
    pub status: ExitStatus,
}

impl JobError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        JobError {
            message: message.into(),
            status: ExitStatus::Usage,
        }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        JobError {
            message: message.into(),
            status: ExitStatus::Error,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JobError {}

/// The model a job runs over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSource {
    /// Sequential BLIF text; `name` labels parse errors (the CLI passes
    /// the file path, the wire protocol a client-chosen label).
    Blif {
        /// Label used in error messages.
        name: String,
        /// The BLIF source itself.
        text: String,
    },
    /// A built-in case-study model by name
    /// (`fig3a|fig3b|final|reduced|reduced-obs`).
    Dlx(String),
}

impl ModelSource {
    fn netlist(&self) -> Result<Netlist, JobError> {
        match self {
            ModelSource::Blif { name, text } => simcov_netlist::from_blif(text)
                .map_err(|e| JobError::runtime(format!("cannot parse {name}: {e}"))),
            ModelSource::Dlx(which) => dlx_netlist(which),
        }
    }

    /// The DLX model name, when the source is one.
    fn dlx_name(&self) -> Option<&str> {
        match self {
            ModelSource::Dlx(which) => Some(which),
            ModelSource::Blif { .. } => None,
        }
    }
}

/// Resolves a built-in case-study model by name.
pub fn dlx_netlist(which: &str) -> Result<Netlist, JobError> {
    Ok(match which {
        "fig3a" => simcov_dlx::control::initial_control_netlist(),
        "fig3b" | "final" => simcov_dlx::testmodel::derive_test_model().0,
        "reduced" => simcov_dlx::testmodel::reduced_control_netlist(),
        "reduced-obs" => simcov_dlx::testmodel::reduced_control_netlist_observable(),
        other => {
            return Err(JobError::usage(format!(
                "unknown dlx model `{other}` (fig3a|fig3b|final|reduced|reduced-obs)"
            )))
        }
    })
}

/// Enumerates a netlist under the explicit-command guard (≤ 16 primary
/// inputs).
pub fn enumerate(n: &Netlist) -> Result<ExplicitMealy, JobError> {
    if n.num_inputs() > 16 {
        return Err(JobError::runtime(format!(
            "model has {} primary inputs; explicit commands are limited to 16 \
             (use `stats`/`distinguish`, which work symbolically)",
            n.num_inputs()
        )));
    }
    enumerate_netlist(n, &EnumerateOptions::exhaustive(n))
        .map_err(|e| JobError::runtime(format!("enumeration failed: {e}")))
}

/// Options for a campaign job (`simcov campaign`'s flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOpts {
    /// Fault-sample cap (`--max-faults`).
    pub max_faults: usize,
    /// Fault-sampling seed (`--seed`).
    pub seed: u64,
    /// Cyclic tour extension (`--k`).
    pub k: usize,
    /// Worker threads; 0 = all available cores (`--jobs`).
    pub jobs: usize,
    /// Retry budget per panicking shard (`--max-retries`).
    pub max_retries: usize,
    /// Wall-clock budget in milliseconds (`--deadline`).
    pub deadline_ms: Option<u64>,
    /// Total simulation-step budget (`--max-steps`).
    pub max_steps: Option<u64>,
    /// Checkpoint-journal path (`--checkpoint`); CLI-only — the wire
    /// protocol rejects it (the server journal owns durability).
    pub checkpoint: Option<String>,
    /// Restore journaled shards before simulating (`--resume`).
    pub resume: bool,
    /// Fault-simulation engine (`--engine`). All engines produce
    /// bit-identical reports; `naive` exists as the differential
    /// engine's oracle for equivalence gates.
    pub engine: Engine,
    /// Static fault collapsing (`--collapse`): `off` simulates every
    /// fault, `on` prunes to class representatives (bit-identical
    /// report), `verify` audits the certificate against a full run.
    pub collapse: CollapseMode,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            max_faults: 2000,
            seed: 0,
            k: 2,
            jobs: 0,
            max_retries: 2,
            deadline_ms: None,
            max_steps: None,
            checkpoint: None,
            resume: false,
            engine: Engine::default(),
            collapse: CollapseMode::Off,
        }
    }
}

/// Options for an analyze job (`simcov analyze`'s flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOpts {
    /// Fault-sample cap (`--max-faults`), matching `campaign`'s default
    /// so the analyzed universe is the one a campaign would simulate.
    pub max_faults: usize,
    /// Fault-sampling seed (`--seed`).
    pub seed: u64,
    /// Per-cell node budget for the transfer-fault bisimulation
    /// (`--max-nodes`).
    pub max_nodes: usize,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            max_faults: 2000,
            seed: 0,
            max_nodes: AnalyzeOptions::default().max_nodes_per_cell,
        }
    }
}

/// Options for a closure job (`simcov close`'s flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloseOpts {
    /// Fault-sample cap (`--max-faults`).
    pub max_faults: usize,
    /// Seed for fault sampling *and* stimulus generation (`--seed`).
    pub seed: u64,
    /// Feedback-round budget (`--rounds`).
    pub rounds: usize,
    /// Soft test-step budget across all rounds (`--budget`).
    pub budget: Option<u64>,
    /// Worker threads; 0 = all available cores (`--jobs`). The closure
    /// schedule and report are identical for any value.
    pub jobs: usize,
    /// Fault-simulation engine for every round (`--engine`).
    pub engine: Engine,
    /// Run rounds over collapse-class representatives (`--collapse`).
    pub collapse: bool,
    /// Report format: `text` or `json`.
    pub format: String,
}

impl Default for CloseOpts {
    fn default() -> Self {
        CloseOpts {
            max_faults: 2000,
            seed: 0,
            rounds: 8,
            budget: None,
            jobs: 0,
            engine: Engine::default(),
            collapse: false,
            format: "text".to_string(),
        }
    }
}

/// Severity overrides as `(code, severity)` string pairs — the
/// wire-transportable form of `--deny/--warn/--allow` flags. Validated
/// into a [`simcov_lint::LintConfig`] at execution time.
pub type SeverityOverrides = Vec<(String, String)>;

/// Builds a lint config from override pairs, rejecting unknown codes and
/// severities with the same messages the CLI flags produce.
pub fn lint_config(overrides: &SeverityOverrides) -> Result<simcov_lint::LintConfig, JobError> {
    let mut config = simcov_lint::LintConfig::new();
    for (code, severity) in overrides {
        let sev = simcov_lint::Severity::parse(severity)
            .ok_or_else(|| JobError::usage(format!("unknown severity `{severity}`")))?;
        if simcov_lint::find_code(code).is_none() {
            return Err(JobError::usage(format!("unknown lint code `{code}`")));
        }
        config.set(code, sev);
    }
    Ok(config)
}

/// Validates a report format (`text` or `json`).
pub fn report_format(format: &str) -> Result<(), JobError> {
    if format != "text" && format != "json" {
        return Err(JobError::usage(format!(
            "unknown lint format `{format}` (text|json)"
        )));
    }
    Ok(())
}

/// What a job does. Paired with a [`ModelSource`] in a [`JobSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Tour-driven fault campaign on the supervised parallel engine.
    Campaign(CampaignOpts),
    /// Static `SC0xx` diagnostics.
    Lint {
        /// Report format: `text` or `json`.
        format: String,
        /// Forall-k depth for the model lints.
        k: usize,
        /// `--deny/--warn/--allow` pairs.
        overrides: SeverityOverrides,
    },
    /// Tour generation (`postman`, `greedy` or `state`).
    Tour {
        /// The tour kind name.
        kind: String,
    },
    /// Whole-model static fault collapsing.
    Analyze {
        /// Report format: `text` or `json`.
        format: String,
        /// Analysis options.
        opts: AnalyzeOpts,
        /// `--deny/--warn/--allow` pairs.
        overrides: SeverityOverrides,
    },
    /// Coverage-directed closure: the adaptive feedback loop of
    /// `simcov_core::adaptive`.
    Close(CloseOpts),
}

impl JobKind {
    /// The wire spelling of the kind.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Campaign(_) => "campaign",
            JobKind::Lint { .. } => "lint",
            JobKind::Tour { .. } => "tour",
            JobKind::Analyze { .. } => "analyze",
            JobKind::Close(_) => "close",
        }
    }
}

/// One job: a client-chosen id, a model and what to do with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen identifier (unique per tenant by convention).
    pub id: String,
    /// The model the job runs over.
    pub model: ModelSource,
    /// What to do.
    pub kind: JobKind,
}

impl JobSpec {
    /// FNV-64 fingerprint of the spec's canonical encoding — the
    /// identity under which the server quarantines repeatedly-failing
    /// jobs and journals admissions. Two submissions of the same work
    /// (same id, model, kind, options) collide deliberately; jobs that
    /// differ anywhere do not (beyond the 2^-64 hash-collision floor,
    /// which is the same floor every fingerprint in this workspace —
    /// journal, certificate, trace — already accepts).
    pub fn fingerprint(&self) -> u64 {
        Fnv64::hash(format!("{self:?}").as_bytes())
    }
}

/// The outcome of an executed job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The report text (exactly what the single-shot CLI prints).
    pub text: String,
    /// The exit status (exactly the single-shot CLI's exit code).
    pub status: ExitStatus,
    /// The engine the job actually ran with (campaign jobs only) —
    /// differs from the requested engine when the degradation ladder
    /// stepped down.
    pub engine_used: Option<Engine>,
    /// Rungs descended on the degradation ladder (0 = no degradation).
    pub degraded: u32,
    /// Whether the golden trace came from the cross-request cache
    /// (`None` when the job never consulted it).
    pub cache_hit: Option<bool>,
}

/// Server-side execution context. [`ExecCtx::default`] is the CLI path:
/// no cache, no audit — byte-for-byte the historical subcommand
/// behavior.
#[derive(Default)]
pub struct ExecCtx<'a> {
    /// Cross-request golden-trace cache.
    pub cache: Option<&'a TraceCache>,
    /// Engine-equivalence sampling audit; `Some` enables the
    /// `packed → differential → naive` degradation ladder.
    pub audit: Option<AuditPolicy>,
    /// Chaos hook: force an audit verdict per engine (`true` = fail the
    /// audit). `None` audits honestly.
    pub force_audit_fail: Option<&'a (dyn Fn(Engine) -> bool + Sync)>,
}

/// How the engine-equivalence audit samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditPolicy {
    /// Faults sampled per audit (clamped to the fault count).
    pub sample: usize,
    /// Sampling seed (deterministic per server).
    pub seed: u64,
}

impl Default for AuditPolicy {
    fn default() -> Self {
        AuditPolicy { sample: 8, seed: 0 }
    }
}

/// Audits `engine` against the naive oracle on a seeded fault sample;
/// `true` means every sampled outcome agreed. Runs entirely outside the
/// job's telemetry so a passed audit leaves no trace in the job's trace.
/// `sym` is the netlist bridge for [`Engine::Symbolic`] (auditing that
/// engine without one fails the audit, descending the ladder).
pub fn audit_engine(
    m: &ExplicitMealy,
    trace: &GoldenTrace,
    faults: &[Fault],
    tests: &TestSet,
    engine: Engine,
    policy: AuditPolicy,
    sym: Option<&SymbolicContext<'_>>,
) -> bool {
    if faults.is_empty() || engine == Engine::Naive {
        return true;
    }
    let mut rng = Prng::seed_from_u64(policy.seed);
    let sample: Vec<Fault> = rng
        .choose_multiple(faults, policy.sample.clamp(1, faults.len()))
        .into_iter()
        .copied()
        .collect();
    let expected: Vec<_> = sample.iter().map(|f| simulate_fault(m, f, tests)).collect();
    let got = match engine {
        Engine::Naive => unreachable!("checked above"),
        Engine::Differential => {
            let mut diff = DiffStats::default();
            sample
                .iter()
                .map(|f| simulate_fault_differential(m, trace, f, tests, &mut diff))
                .collect::<Vec<_>>()
        }
        Engine::Packed => {
            let tables = PackedMealy::from_explicit(m);
            let script = ReplayScript::build(trace, tests);
            let mut diff = DiffStats::default();
            let mut packed = PackedStats::default();
            simulate_shard_packed(
                m,
                &tables,
                trace,
                &script,
                &sample,
                tests,
                &mut diff,
                &mut packed,
            )
        }
        Engine::Symbolic => {
            let Some(ctx) = sym else { return false };
            let mut stats = SymbolicEngineStats::default();
            simulate_shard_symbolic(ctx, m, &sample, tests, &mut stats)
        }
    };
    got == expected
}

/// One rung down the degradation ladder.
fn degrade(engine: Engine) -> Engine {
    match engine {
        Engine::Symbolic => Engine::Differential,
        Engine::Packed => Engine::Differential,
        Engine::Differential | Engine::Naive => Engine::Naive,
    }
}

/// Executes a job. `tel` is the job's telemetry sink — the caller owns
/// trace rendering, exactly as the CLI's `--trace-out` does.
pub fn execute(spec: &JobSpec, tel: &Telemetry, ctx: &ExecCtx<'_>) -> Result<JobOutcome, JobError> {
    match &spec.kind {
        JobKind::Campaign(opts) => execute_campaign(&spec.model, opts, tel, ctx),
        JobKind::Lint {
            format,
            k,
            overrides,
        } => {
            report_format(format)?;
            let config = lint_config(overrides)?;
            execute_lint(&spec.model, format, &config, *k, tel)
        }
        JobKind::Tour { kind } => execute_tour(&spec.model, kind, tel),
        JobKind::Analyze {
            format,
            opts,
            overrides,
        } => {
            report_format(format)?;
            let config = lint_config(overrides)?;
            execute_analyze(&spec.model, format, &config, opts, tel)
        }
        JobKind::Close(opts) => execute_close(&spec.model, opts, tel),
    }
}

/// Campaign execution: the body of `simcov campaign`, plus the
/// server-side cache and degradation hooks. The report prints the engine
/// the job *actually ran with*, so a degraded job's output is
/// byte-identical to a single-shot CLI run requesting that engine.
fn execute_campaign(
    model: &ModelSource,
    opts: &CampaignOpts,
    tel: &Telemetry,
    ctx: &ExecCtx<'_>,
) -> Result<JobOutcome, JobError> {
    if opts.resume && opts.checkpoint.is_none() {
        return Err(JobError::usage("--resume requires --checkpoint <FILE>"));
    }
    let n = model.netlist()?;
    if opts.engine == Engine::Symbolic && n.num_inputs() > 16 {
        // Too wide to enumerate: run the implicit (fault-family) campaign
        // instead of the explicit-comparable shard engine.
        return execute_campaign_implicit(model, &n, opts, tel);
    }
    let m = enumerate(&n)?;
    let tour = generate_tour_traced(&m, TourKind::Postman, tel)
        .map_err(|e| JobError::runtime(format!("tour generation failed: {e}")))?;
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: opts.max_faults,
            seed: opts.seed,
            ..FaultSpace::default()
        },
    );
    let tests = TestSet::single(extend_cyclically(&tour.inputs, opts.k));
    tel.counter_add("campaign.faults_enumerated", faults.len() as u64);
    tel.gauge_set("campaign.test_vectors", tests.total_vectors() as u64);

    // The symbolic shard engine needs the netlist bridge; building it
    // revalidates the netlist against the enumerated machine.
    let exhaustive_inputs = EnumerateOptions::exhaustive(&n).inputs;
    let sym_ctx = match opts.engine {
        Engine::Symbolic => Some(
            SymbolicContext::new(&n, &m, &exhaustive_inputs)
                .map_err(|e| JobError::runtime(format!("symbolic context: {e}")))?,
        ),
        _ => None,
    };

    // Server-side extras, both invisible to the job's telemetry: fetch
    // the golden trace (cache or local build) once, audit the requested
    // engine on it, and descend the ladder until an engine passes.
    let mut engine = opts.engine;
    let mut degraded = 0u32;
    let needs_trace = engine != Engine::Naive && (ctx.audit.is_some() || ctx.cache.is_some());
    let (shared_trace, cache_hit) = if needs_trace {
        match ctx.cache {
            Some(cache) => {
                let (trace, hit) = cache.get_or_build(&m, &tests);
                (Some(trace), Some(hit))
            }
            None => (Some(Arc::new(GoldenTrace::build(&m, &tests))), None),
        }
    } else {
        (None, None)
    };
    if let (Some(policy), Some(trace)) = (ctx.audit, shared_trace.as_deref()) {
        while engine != Engine::Naive {
            let fail = match ctx.force_audit_fail {
                Some(force) => force(engine),
                None => !audit_engine(&m, trace, &faults, &tests, engine, policy, sym_ctx.as_ref()),
            };
            if !fail {
                break;
            }
            engine = degrade(engine);
            degraded += 1;
        }
    }

    // Static collapsing runs the whole-model analysis up front; the
    // certificate binds exactly this (machine, fault list) pair.
    let analysis = match opts.collapse {
        CollapseMode::Off => None,
        _ => Some(
            analyze_collapse(&m, &faults, &AnalyzeOptions::default())
                .map_err(|e| JobError::runtime(format!("collapse analysis failed: {e}")))?,
        ),
    };
    // The supervisor clamps jobs(0) to serial, so the CLI's "0 = all
    // cores" convention is resolved here.
    let jobs = if opts.jobs == 0 {
        default_jobs()
    } else {
        opts.jobs
    };
    let mut campaign = ResilientCampaign::new(&m, &faults, &tests)
        .engine(engine)
        .jobs(jobs)
        .max_retries(opts.max_retries)
        .telemetry(tel.clone());
    if let (Some(trace), true) = (
        &shared_trace,
        matches!(engine, Engine::Differential | Engine::Packed),
    ) {
        campaign = campaign.golden_trace(Arc::clone(trace));
    }
    if let (Some(ctx), Engine::Symbolic) = (&sym_ctx, engine) {
        campaign = campaign.symbolic(ctx);
    }
    if let Some(a) = &analysis {
        campaign = campaign.collapse(&a.certificate, opts.collapse);
    }
    if let Some(ms) = opts.deadline_ms {
        campaign = campaign.deadline(Duration::from_millis(ms));
    }
    if let Some(steps) = opts.max_steps {
        campaign = campaign.max_steps(steps);
    }
    if let Some(path) = &opts.checkpoint {
        campaign = campaign.checkpoint(path).resume(opts.resume);
    }
    let run = campaign
        .run()
        .map_err(|e| JobError::runtime(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "model: {m:?}");
    let _ = writeln!(out, "tour: {tour} (extended by k={})", opts.k);
    let _ = writeln!(out, "engine: {engine}");
    let _ = writeln!(out, "campaign: {}", run.report);
    let _ = writeln!(out, "stats: {}", run.stats);
    if let Some(c) = &run.collapse {
        let _ = writeln!(
            out,
            "collapse: {} ({} classes, {} faults pruned, {} violations)",
            c.mode,
            c.classes,
            c.collapsed_faults,
            c.violations.len()
        );
        for v in c.violations.iter().take(8) {
            let _ = writeln!(out, "  violation: {v}");
        }
    }
    if run.is_complete {
        let _ = writeln!(out, "status: complete ({} shards)", run.total_shards);
    } else {
        let missing = run.skipped.len() + run.failures.len();
        let reason = match run.stopped {
            Some(r) => r.to_string(),
            None => "shards quarantined".to_string(),
        };
        let _ = writeln!(
            out,
            "status: partial ({reason}): {missing} of {} shards missing",
            run.total_shards
        );
        let _ = writeln!(out, "bounds: {}", run.bounds);
    }
    if run.restored_shards > 0 {
        let _ = writeln!(
            out,
            "restored: {} of {} shards from checkpoint",
            run.restored_shards, run.total_shards
        );
    }
    for note in &run.journal_notes {
        let _ = writeln!(out, "note: {note}");
    }
    for f in run.failures.iter().take(8) {
        let _ = writeln!(out, "failure: {f}");
    }
    let _ = writeln!(
        out,
        "wall: {:.1} ms on {} worker thread{}",
        run.wall.as_secs_f64() * 1e3,
        run.jobs,
        if run.jobs == 1 { "" } else { "s" }
    );
    for esc in run.report.escapes().take(8) {
        let _ = writeln!(out, "  escape: {}", esc.fault);
    }
    let audit_failed = run
        .collapse
        .as_ref()
        .is_some_and(|c| !c.violations.is_empty());
    let status = if audit_failed {
        ExitStatus::Error
    } else if run.is_complete {
        ExitStatus::Ok
    } else {
        ExitStatus::Partial
    };
    Ok(JobOutcome {
        text: out,
        status,
        engine_used: Some(engine),
        degraded,
        cache_hit,
    })
}

/// Implicit symbolic campaign: models too wide to enumerate (the
/// full-width DLX) get their single-bit-flip fault families analysed
/// over BDDs instead of an explicit fault list. Full-width DLX models
/// carry the abstract-ISA valid-input constraint; anything else runs
/// unconstrained.
fn execute_campaign_implicit(
    model: &ModelSource,
    n: &Netlist,
    opts: &CampaignOpts,
    tel: &Telemetry,
) -> Result<JobOutcome, JobError> {
    let started = Instant::now();
    let constrained = matches!(model.dlx_name(), Some("fig3b") | Some("final"));
    let names: Vec<String> = n.input_names().map(str::to_string).collect();
    let jobs = if opts.jobs == 0 {
        default_jobs()
    } else {
        opts.jobs
    };
    let cfg = ImplicitConfig {
        k: opts.k.max(1),
        jobs,
    };
    let report = run_implicit_campaign(
        n,
        |pf| {
            if constrained {
                let vars: Vec<_> = names
                    .iter()
                    .map(|nm| pf.input_var_by_name(nm).expect("netlist input present"))
                    .collect();
                simcov_dlx::testmodel::valid_inputs_constraint(pf.mgr(), &|name| {
                    let i = names
                        .iter()
                        .position(|nm| nm == name)
                        .unwrap_or_else(|| panic!("model lost input `{name}`"));
                    vars[i]
                })
            } else {
                pf.mgr().constant(true)
            }
        },
        &cfg,
    );
    tel.counter_add(
        "campaign.faults_enumerated",
        u64::try_from(report.output_faults.saturating_add(report.transfer_faults))
            .unwrap_or(u64::MAX),
    );
    tel.counter_add(simcov_obs::names::BDD_UNIQUE_NODES, report.sym.unique_nodes);
    tel.counter_add(
        simcov_obs::names::BDD_ITE_CACHE_HITS,
        report.sym.ite_cache_hits,
    );
    tel.counter_add(
        simcov_obs::names::BDD_ITE_CACHE_MISSES,
        report.sym.ite_cache_misses,
    );
    tel.counter_add(
        simcov_obs::names::BDD_GC_COLLECTIONS,
        report.sym.gc_collections,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model: {} ({} inputs, {} latches, {} outputs; implicit)",
        match model {
            ModelSource::Blif { name, .. } => name.as_str(),
            ModelSource::Dlx(which) => which.as_str(),
        },
        n.num_inputs(),
        report.num_latches,
        report.num_outputs
    );
    let _ = writeln!(
        out,
        "engine: symbolic (implicit; {})",
        if constrained {
            "abstract-ISA valid inputs"
        } else {
            "all inputs valid"
        }
    );
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "status: {}",
        if report.fixed_point {
            "complete (fixed point)"
        } else {
            "complete (horizon-bounded)"
        }
    );
    let _ = writeln!(
        out,
        "wall: {:.1} ms on {} worker thread{}",
        started.elapsed().as_secs_f64() * 1e3,
        jobs,
        if jobs == 1 { "" } else { "s" }
    );
    Ok(JobOutcome {
        text: out,
        status: ExitStatus::Ok,
        engine_used: Some(Engine::Symbolic),
        degraded: 0,
        cache_hit: None,
    })
}

/// Closure execution: the body of `simcov close` — the adaptive
/// feedback loop driven to coverage closure.
///
/// The `json` report is a single line with no wall-clock field, so it is
/// byte-identical across `--jobs` values and machines — that is what the
/// CI closure gate diffs. The `text` report ends with a `wall:` line and
/// is for humans.
fn execute_close(
    model: &ModelSource,
    opts: &CloseOpts,
    tel: &Telemetry,
) -> Result<JobOutcome, JobError> {
    report_format(&opts.format)?;
    let n = model.netlist()?;
    let m = enumerate(&n)?;
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: opts.max_faults,
            seed: opts.seed,
            ..FaultSpace::default()
        },
    );
    tel.counter_add("campaign.faults_enumerated", faults.len() as u64);
    let analysis = if opts.collapse {
        Some(
            analyze_collapse(&m, &faults, &AnalyzeOptions::default())
                .map_err(|e| JobError::runtime(format!("collapse analysis failed: {e}")))?,
        )
    } else {
        None
    };
    let config = ClosureConfig {
        max_rounds: opts.rounds,
        max_steps: opts.budget,
        seed: opts.seed,
        engine: opts.engine,
        jobs: opts.jobs,
        ..ClosureConfig::default()
    };
    let mut driver = ClosureDriver::new(&m, &faults, config).telemetry(tel.clone());
    if let Some(a) = &analysis {
        driver = driver.collapse(&a.certificate);
    }
    let started = std::time::Instant::now();
    let run = driver.run();
    let wall = started.elapsed();

    let mut out = String::new();
    if opts.format == "json" {
        let _ = write!(
            out,
            "{{\"schema\":\"simcov-close\",\"version\":1,\
             \"fingerprint\":\"{:#018x}\",\"engine\":\"{}\",\"seed\":{},\
             \"faults\":{},\"classes\":{},\"rounds\":[",
            machine_fingerprint(&m),
            opts.engine,
            opts.seed,
            faults.len(),
            analysis
                .as_ref()
                .map_or(faults.len(), |a| a.certificate.num_classes()),
        );
        for (idx, r) in run.rounds.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"round\":{},\"tests_added\":{},\"steps_added\":{},\
                 \"new_detections\":{},\"detected_total\":{},\"survivors\":{},\
                 \"undetectable\":{},\"transitions_covered\":{},\
                 \"transitions_total\":{},\"cold_cells\":{}}}",
                if idx == 0 { "" } else { "," },
                r.round,
                r.tests_added,
                r.steps_added,
                r.new_detections,
                r.detected_total,
                r.survivors,
                r.undetectable,
                r.transitions_covered,
                r.transitions_total,
                r.cold_cells,
            );
        }
        let _ = writeln!(
            out,
            "],\"closed\":{},\"undetectable\":{},\"total_steps\":{},\
             \"stats\":{{\"faults_simulated\":{},\"detected\":{},\"excited\":{},\
             \"masked\":{},\"escapes\":{}}}}}",
            run.closed,
            run.undetectable,
            run.total_steps,
            run.stats.faults_simulated,
            run.stats.detected,
            run.stats.excited,
            run.stats.masked,
            run.stats.escapes,
        );
    } else {
        let _ = writeln!(out, "model: {m:?}");
        let _ = writeln!(out, "engine: {}", opts.engine);
        match &analysis {
            Some(a) => {
                let _ = writeln!(
                    out,
                    "faults: {} in {} classes (rounds target representatives)",
                    faults.len(),
                    a.certificate.num_classes()
                );
            }
            None => {
                let _ = writeln!(out, "faults: {}", faults.len());
            }
        }
        for r in &run.rounds {
            let _ = writeln!(
                out,
                "round {}: +{} tests (+{} steps), detected {} (+{}), survivors {}, \
                 undetectable {}, coverage {}/{}",
                r.round,
                r.tests_added,
                r.steps_added,
                r.detected_total,
                r.new_detections,
                r.survivors,
                r.undetectable,
                r.transitions_covered,
                r.transitions_total,
            );
        }
        if run.closed {
            let _ = writeln!(
                out,
                "closure: reached after {} round{}{}",
                run.rounds.len(),
                if run.rounds.len() == 1 { "" } else { "s" },
                if run.undetectable > 0 {
                    format!(
                        " ({} provably undetectable faults excluded)",
                        run.undetectable
                    )
                } else {
                    String::new()
                }
            );
        } else {
            // With an empty round budget nothing was ever targeted, so
            // every undetected fault is a survivor.
            let survivors = run.rounds.last().map_or(
                run.stats
                    .faults_simulated
                    .saturating_sub(run.stats.detected),
                |r| r.survivors,
            );
            let _ = writeln!(
                out,
                "closure: NOT reached after {} rounds ({survivors} survivors)",
                run.rounds.len()
            );
        }
        let _ = writeln!(out, "stats: {}", run.stats);
        let _ = writeln!(out, "wall: {:.1} ms", wall.as_secs_f64() * 1e3);
    }
    Ok(JobOutcome {
        text: out,
        status: if run.closed {
            ExitStatus::Ok
        } else {
            ExitStatus::Partial
        },
        engine_used: Some(opts.engine),
        degraded: 0,
        cache_hit: None,
    })
}

/// Tour execution: the body of `simcov tour`.
fn execute_tour(model: &ModelSource, kind: &str, tel: &Telemetry) -> Result<JobOutcome, JobError> {
    let kind: TourKind = kind.parse().map_err(JobError::usage)?;
    let n = model.netlist()?;
    let m = enumerate(&n)?;
    let tour = generate_tour_traced(&m, kind, tel)
        .map_err(|e| JobError::runtime(format!("tour generation failed: {e}")))?;
    let report = coverage(&m, &tour.inputs);
    let mut out = String::new();
    let _ = writeln!(out, "# {} tour: {tour}; coverage: {report}", kind.name());
    for &i in &tour.inputs {
        let _ = writeln!(out, "{}", m.input_label(i));
    }
    Ok(JobOutcome {
        text: out,
        status: ExitStatus::Ok,
        engine_used: None,
        degraded: 0,
        cache_hit: None,
    })
}

fn lint_outcome(d: &simcov_lint::Diagnostics, format: &str) -> JobOutcome {
    let text = match format {
        "json" => {
            let mut s = d.render_json();
            s.push('\n');
            s
        }
        _ => d.render_text(),
    };
    JobOutcome {
        text,
        status: if d.has_denials() {
            ExitStatus::Error
        } else {
            ExitStatus::Ok
        },
        engine_used: None,
        degraded: 0,
        cache_hit: None,
    }
}

/// Lint execution: the body of `simcov lint`. A BLIF parse failure is
/// itself reported as a lint (`SC028`–`SC030`) rather than a hard error,
/// so `--format json` output stays machine-readable for malformed
/// inputs.
fn execute_lint(
    model: &ModelSource,
    format: &str,
    config: &simcov_lint::LintConfig,
    k: usize,
    tel: &Telemetry,
) -> Result<JobOutcome, JobError> {
    use simcov_lint::{
        lint_blif_error, lint_model_traced, lint_netlist_traced, Diagnostics, ModelTarget,
    };
    let n = match model {
        ModelSource::Blif { name: _, text } => match simcov_netlist::from_blif(text) {
            Ok(n) => n,
            Err(e) => {
                let mut d = Diagnostics::new(config.clone());
                lint_blif_error(&e, &mut d);
                d.sort_by_severity();
                return Ok(lint_outcome(&d, format));
            }
        },
        ModelSource::Dlx(which) => dlx_netlist(which)?,
    };
    let dlx_name = model.dlx_name();
    let mut diags = lint_netlist_traced(&n, config, tel);
    if n.num_inputs() <= 16 {
        let opts = match dlx_name {
            // The DLX alphabet carries input don't-cares: exhaustive
            // vectors would include invalid instructions the methodology
            // never expands, wrongly failing the forall-k lint.
            Some("reduced") | Some("reduced-obs") => {
                simcov_dlx::testmodel::reduced_valid_inputs(&n)
            }
            _ => EnumerateOptions::exhaustive(&n),
        };
        let m = enumerate_netlist(&n, &opts)
            .map_err(|e| JobError::runtime(format!("enumeration failed: {e}")))?;
        diags.set_fingerprint(machine_fingerprint(&m));
        let mut target = ModelTarget::new(&m);
        target.k = k;
        // Output labels are latch-order-reversed bit strings; map the
        // `stall` port through that convention to the stalled-output
        // predicate of Requirement 2.
        if let Some(j) = n.outputs().iter().position(|(name, _)| name == "stall") {
            target.stalled = Some(
                (0..m.num_outputs())
                    .map(|o| {
                        let label = m.output_label(simcov_fsm::OutputSym(o as u32)).as_bytes();
                        label[label.len() - 1 - j] == b'1'
                    })
                    .collect(),
            );
        }
        diags.merge(lint_model_traced(&target, config, tel));
    } else {
        // Too wide to enumerate: bind the report to the normalized
        // source instead of the machine fingerprint.
        diags.set_fingerprint(Fnv64::hash(simcov_netlist::to_blif(&n, "model").as_bytes()));
    }
    diags.sort_by_severity();
    Ok(lint_outcome(&diags, format))
}

/// Analyze execution: the body of `simcov analyze`.
fn execute_analyze(
    model: &ModelSource,
    format: &str,
    config: &simcov_lint::LintConfig,
    opts: &AnalyzeOpts,
    tel: &Telemetry,
) -> Result<JobOutcome, JobError> {
    let n = model.netlist()?;
    let m = enumerate(&n)?;
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: opts.max_faults,
            seed: opts.seed,
            ..FaultSpace::default()
        },
    );
    let analysis = analyze_collapse(
        &m,
        &faults,
        &AnalyzeOptions {
            max_nodes_per_cell: opts.max_nodes,
        },
    )
    .map_err(|e| JobError::runtime(format!("collapse analysis failed: {e}")))?;
    let stats = &analysis.stats;
    tel.counter_add("analyze.faults", stats.faults as u64);
    tel.counter_add("analyze.classes", stats.classes as u64);
    tel.counter_add("analyze.collapsed_faults", stats.collapsed_faults as u64);
    let mut diags = lint_analysis(
        &AnalyzeTarget {
            machine: &m,
            faults: &faults,
            analysis: &analysis,
        },
        config,
    );
    diags.set_fingerprint(machine_fingerprint(&m));
    if format == "json" {
        return Ok(lint_outcome(&diags, format));
    }
    let mut text = String::new();
    let _ = writeln!(text, "model: {m:?}");
    let _ = writeln!(text, "fingerprint: {:#018x}", machine_fingerprint(&m));
    let _ = writeln!(
        text,
        "faults: {} in {} classes ({} collapsed away)",
        stats.faults, stats.classes, stats.collapsed_faults
    );
    let _ = writeln!(
        text,
        "classes: {} output, {} transfer, {} ineffective, {} singleton{}",
        stats.output_classes,
        stats.transfer_classes,
        stats.ineffective_classes,
        stats.singleton_classes,
        if stats.unreachable_faults > 0 {
            format!(" (+1 unreachable, {} faults)", stats.unreachable_faults)
        } else {
            String::new()
        }
    );
    let _ = writeln!(text, "dominance: {} edge(s)", stats.dominance_edges);
    let _ = writeln!(
        text,
        "certificate: {:#018x}",
        analysis.certificate.fingerprint()
    );
    text.push_str(&diags.render_text());
    Ok(JobOutcome {
        text,
        status: if diags.has_denials() {
            ExitStatus::Error
        } else {
            ExitStatus::Ok
        },
        engine_used: None,
        degraded: 0,
        cache_hit: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign_spec(seed: u64, engine: Engine) -> JobSpec {
        JobSpec {
            id: format!("c{seed}"),
            model: ModelSource::Dlx("reduced-obs".to_string()),
            kind: JobKind::Campaign(CampaignOpts {
                max_faults: 120,
                seed,
                jobs: 1,
                engine,
                ..CampaignOpts::default()
            }),
        }
    }

    #[test]
    fn execute_is_deterministic_modulo_wall_time() {
        let strip_wall = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with("wall:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let spec = campaign_spec(3, Engine::Packed);
        let a = execute(&spec, &Telemetry::new(), &ExecCtx::default()).unwrap();
        let b = execute(&spec, &Telemetry::new(), &ExecCtx::default()).unwrap();
        assert_eq!(strip_wall(&a.text), strip_wall(&b.text));
        assert_eq!(a.status, ExitStatus::Ok);
        assert_eq!(a.engine_used, Some(Engine::Packed));
        assert_eq!(a.degraded, 0);
    }

    #[test]
    fn cache_and_audit_leave_output_and_trace_identical() {
        let spec = campaign_spec(7, Engine::Differential);
        let plain_tel = Telemetry::new();
        let plain = execute(&spec, &plain_tel, &ExecCtx::default()).unwrap();

        let cache = TraceCache::new(4);
        let ctx = ExecCtx {
            cache: Some(&cache),
            audit: Some(AuditPolicy::default()),
            force_audit_fail: None,
        };
        let served_tel = Telemetry::new();
        let served = execute(&spec, &served_tel, &ctx).unwrap();
        let strip_wall = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with("wall:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip_wall(&plain.text), strip_wall(&served.text));
        assert_eq!(
            plain_tel.snapshot().to_jsonl(),
            served_tel.snapshot().to_jsonl(),
            "cache and a passing audit must be invisible to the job trace"
        );
        assert_eq!(served.cache_hit, Some(false), "first request builds");
        let again = execute(&spec, &Telemetry::new(), &ctx).unwrap();
        assert_eq!(again.cache_hit, Some(true), "second request hits");
    }

    #[test]
    fn forced_audit_failure_descends_the_ladder() {
        let spec = campaign_spec(1, Engine::Packed);
        let fail_all = |_: Engine| true;
        let ctx = ExecCtx {
            cache: None,
            audit: Some(AuditPolicy::default()),
            force_audit_fail: Some(&fail_all),
        };
        let out = execute(&spec, &Telemetry::new(), &ctx).unwrap();
        assert_eq!(out.engine_used, Some(Engine::Naive));
        assert_eq!(out.degraded, 2, "packed → differential → naive");
        assert!(out.text.contains("engine: naive"), "{}", out.text);

        // The degraded job's report is byte-identical to a single-shot
        // run that *requested* the final engine.
        let naive_spec = campaign_spec(1, Engine::Naive);
        let plain = execute(&naive_spec, &Telemetry::new(), &ExecCtx::default()).unwrap();
        let strip_wall = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with("wall:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip_wall(&out.text), strip_wall(&plain.text));
    }

    #[test]
    fn honest_audit_passes_on_real_engines() {
        let spec = campaign_spec(5, Engine::Packed);
        let ctx = ExecCtx {
            cache: None,
            audit: Some(AuditPolicy::default()),
            force_audit_fail: None,
        };
        let out = execute(&spec, &Telemetry::new(), &ctx).unwrap();
        assert_eq!(out.engine_used, Some(Engine::Packed));
        assert_eq!(out.degraded, 0);
    }

    fn close_spec(jobs: usize, engine: Engine, format: &str) -> JobSpec {
        JobSpec {
            id: format!("close{jobs}-{engine}"),
            model: ModelSource::Dlx("reduced-obs".to_string()),
            kind: JobKind::Close(CloseOpts {
                max_faults: 120,
                seed: 3,
                jobs,
                engine,
                format: format.to_string(),
                ..CloseOpts::default()
            }),
        }
    }

    #[test]
    fn close_reaches_closure_and_is_identical_across_jobs() {
        let tel1 = Telemetry::new();
        let a = execute(
            &close_spec(1, Engine::Differential, "json"),
            &tel1,
            &ExecCtx::default(),
        )
        .unwrap();
        assert_eq!(a.status, ExitStatus::Ok, "{}", a.text);
        assert!(a.text.contains("\"closed\":true"), "{}", a.text);
        for jobs in [2, 8] {
            let tel = Telemetry::new();
            let b = execute(
                &close_spec(jobs, Engine::Differential, "json"),
                &tel,
                &ExecCtx::default(),
            )
            .unwrap();
            assert_eq!(a.text, b.text, "json report must be byte-identical");
            assert_eq!(
                tel1.snapshot().to_jsonl(),
                tel.snapshot().to_jsonl(),
                "trace must be byte-identical at jobs={jobs}"
            );
        }
    }

    #[test]
    fn close_engines_agree_and_text_reports_closure() {
        let base = execute(
            &close_spec(2, Engine::Naive, "json"),
            &Telemetry::new(),
            &ExecCtx::default(),
        )
        .unwrap();
        for engine in [Engine::Differential, Engine::Packed] {
            let other = execute(
                &close_spec(2, engine, "json"),
                &Telemetry::new(),
                &ExecCtx::default(),
            )
            .unwrap();
            // Engine name is part of the report header; everything after
            // it (rounds, stats) must agree.
            let strip = |s: &str| s.split("\"seed\"").nth(1).unwrap().to_string();
            assert_eq!(strip(&base.text), strip(&other.text), "{engine}");
        }
        let text = execute(
            &close_spec(2, Engine::Differential, "text"),
            &Telemetry::new(),
            &ExecCtx::default(),
        )
        .unwrap();
        assert!(text.text.contains("closure: reached"), "{}", text.text);
        assert!(text.text.contains("round 0:"), "{}", text.text);
    }

    #[test]
    fn close_with_collapse_still_closes() {
        let spec = JobSpec {
            id: "close-collapse".to_string(),
            model: ModelSource::Dlx("reduced-obs".to_string()),
            kind: JobKind::Close(CloseOpts {
                max_faults: 120,
                seed: 3,
                jobs: 2,
                collapse: true,
                format: "json".to_string(),
                ..CloseOpts::default()
            }),
        };
        let out = execute(&spec, &Telemetry::new(), &ExecCtx::default()).unwrap();
        assert_eq!(out.status, ExitStatus::Ok, "{}", out.text);
        assert!(out.text.contains("\"closed\":true"), "{}", out.text);
        // The classes field shows the representative universe shrank.
        let classes: usize = out
            .text
            .split("\"classes\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let faults: usize = out
            .text
            .split("\"faults\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(classes < faults, "{classes} vs {faults}");
    }

    #[test]
    fn close_rejects_bad_format() {
        let spec = JobSpec {
            id: "close-bad".to_string(),
            model: ModelSource::Dlx("reduced-obs".to_string()),
            kind: JobKind::Close(CloseOpts {
                format: "yaml".to_string(),
                ..CloseOpts::default()
            }),
        };
        let e = execute(&spec, &Telemetry::new(), &ExecCtx::default()).unwrap_err();
        assert_eq!(e.status, ExitStatus::Usage);
    }

    #[test]
    fn spec_fingerprints_distinguish_jobs() {
        let a = campaign_spec(1, Engine::Packed);
        let b = campaign_spec(2, Engine::Packed);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.fingerprint(),
            campaign_spec(1, Engine::Packed).fingerprint()
        );
    }

    #[test]
    fn usage_errors_map_to_usage_status() {
        let spec = JobSpec {
            id: "x".into(),
            model: ModelSource::Dlx("nope".into()),
            kind: JobKind::Tour {
                kind: "postman".into(),
            },
        };
        let e = execute(&spec, &Telemetry::new(), &ExecCtx::default()).unwrap_err();
        assert_eq!(e.status, ExitStatus::Usage);
    }
}

//! `simcov serve` — a fault-tolerant, multi-tenant campaign service.
//!
//! The single-shot CLI runs one job per process; this crate composes the
//! workspace's deterministic engines into a long-lived server that
//! accepts campaign/lint/tour/analyze jobs over a TCP socket and
//! multiplexes them across a thread pool, without giving up the
//! byte-identical determinism the engines guarantee. The pieces:
//!
//! * [`jobs`] — the job-execution layer shared with the CLI. `simcov
//!   campaign` and a served campaign job run *the same function*, which
//!   is what makes "server results are byte-identical to single-shot CLI
//!   runs" true by construction rather than by testing alone.
//! * [`protocol`] — the wire format: 4-byte big-endian length-prefixed
//!   UTF-8 JSON frames (`simcov-serve v1`), parsed with the in-repo
//!   [`simcov_obs::json`] reader. Malformed frames get a structured
//!   error; oversized frames are refused without allocating.
//! * [`queue`] — bounded admission with per-tenant round-robin
//!   scheduling: one greedy connection cannot starve the rest, and a
//!   full queue rejects with a retry-after hint instead of growing.
//! * [`cache`] — the cross-request [`GoldenTrace`](simcov_core::GoldenTrace)
//!   cache, keyed by *(machine fingerprint, test-set fingerprint)* with
//!   bounded capacity and LRU eviction.
//! * [`journal`] — the crash-safe server journal (`simcov-serve-journal
//!   v1`): admitted jobs are fsynced before they are acknowledged, so
//!   `serve --resume` re-runs exactly the admitted-but-unfinished ones.
//! * [`server`] — the thread-pool server: per-job panic isolation,
//!   deterministic seeded retry backoff, quarantine, and the
//!   `packed → differential → naive` degradation ladder.
//! * [`client`] — a small blocking client used by `simcov submit`, the
//!   load-test harness and the CI gates.
//!
//! The service-layer `chaos` module (feature `chaos`, test-only)
//! extends the core engine's deterministic failure injection to the
//! server: dropped connections, slow clients, mid-job panics,
//! journal-write failures and forced audit trips, all pure functions of
//! a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod client;
pub mod jobs;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::TraceCache;
pub use client::Client;
pub use jobs::{AnalyzeOpts, CampaignOpts, ExecCtx, JobError, JobKind, JobOutcome, JobSpec};
pub use protocol::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use server::{Server, ServerConfig};

/// The uniform exit-code contract shared by every `simcov` subcommand
/// and by served jobs: `0` ok, `1` runtime error (including lint/analyze
/// denials and failed collapse audits), `2` usage error, `3` a *valid
/// but partial* result (deadline/step-budget truncation or quarantined
/// shards). Replaces the ad-hoc integer literals the CLI subcommands
/// used to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Complete, successful result (process exit 0).
    Ok,
    /// Runtime failure or denied findings (process exit 1).
    Error,
    /// Malformed invocation or request (process exit 2).
    Usage,
    /// Valid but incomplete result (process exit 3): every reported line
    /// is exact, and the report itself accounts for what is missing.
    Partial,
}

impl ExitStatus {
    /// The process exit code.
    pub const fn code(self) -> i32 {
        match self {
            ExitStatus::Ok => 0,
            ExitStatus::Error => 1,
            ExitStatus::Usage => 2,
            ExitStatus::Partial => 3,
        }
    }

    /// The wire spelling (`"ok"`, `"error"`, `"usage"`, `"partial"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExitStatus::Ok => "ok",
            ExitStatus::Error => "error",
            ExitStatus::Usage => "usage",
            ExitStatus::Partial => "partial",
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: i32) -> Option<ExitStatus> {
        match code {
            0 => Some(ExitStatus::Ok),
            1 => Some(ExitStatus::Error),
            2 => Some(ExitStatus::Usage),
            3 => Some(ExitStatus::Partial),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_status_codes_roundtrip() {
        for s in [
            ExitStatus::Ok,
            ExitStatus::Error,
            ExitStatus::Usage,
            ExitStatus::Partial,
        ] {
            assert_eq!(ExitStatus::from_code(s.code()), Some(s));
        }
        assert_eq!(ExitStatus::from_code(42), None);
        assert_eq!(ExitStatus::Partial.code(), 3);
        assert_eq!(ExitStatus::Partial.to_string(), "partial");
    }
}

//! Requirements 1–5 exercised on the DLX models — each requirement with
//! a satisfying and a violating configuration.

use simcov::core::{
    check_req2_bounded_processing, check_req3_unique_outputs, check_req5_observable,
};
use simcov::dlx::testmodel::{reduced_control_netlist_with_memory, reduced_memory_valid_inputs};
use simcov::fsm::enumerate_netlist;

/// Requirement 2 on the memory variant: with `mem_ready` free, a load
/// waiting on memory can stall forever (infinite-stall cycle found); with
/// the perfect-memory environment assumption (`mem_ready = 1`), the stall
/// bound is finite — exactly how the paper treats Requirement 2 as an
/// environment assumption.
#[test]
fn req2_memory_wait_is_an_environment_assumption() {
    let n = reduced_control_netlist_with_memory();
    // Free memory: infinite stall possible.
    let opts = reduced_memory_valid_inputs(&n, None);
    let m = enumerate_netlist(&n, &opts).expect("enumerates");
    let stall_outputs: Vec<bool> = (0..m.num_outputs() as u32)
        .map(|o| {
            // Output label is the bit string; stall is output bit 0
            // (rightmost character).
            m.output_label(simcov::fsm::OutputSym(o))
                .chars()
                .last()
                .map(|c| c == '1')
                .unwrap_or(false)
        })
        .collect();
    let witness = check_req2_bounded_processing(&m, |o| stall_outputs[o.index()]);
    assert!(
        witness.is_err(),
        "free mem_ready must allow an infinite stall cycle"
    );
    let cycle = witness.unwrap_err();
    assert!(!cycle.cycle.is_empty());

    // Perfect memory: bounded.
    let opts = reduced_memory_valid_inputs(&n, Some(true));
    let m = enumerate_netlist(&n, &opts).expect("enumerates");
    let stall_outputs: Vec<bool> = (0..m.num_outputs() as u32)
        .map(|o| {
            m.output_label(simcov::fsm::OutputSym(o))
                .chars()
                .last()
                .map(|c| c == '1')
                .unwrap_or(false)
        })
        .collect();
    let bound = check_req2_bounded_processing(&m, |o| stall_outputs[o.index()])
        .expect("perfect memory bounds the stall");
    assert!(
        bound.bound <= 2,
        "load-use stalls are single-cycle: {:?}",
        bound
    );
}

/// Requirement 3 on the reduced model: the bare model collides outputs
/// massively; a per-state collision report pinpoints where data selection
/// must differentiate.
#[test]
fn req3_collisions_reported_on_reduced_model() {
    let n = simcov::dlx::testmodel::reduced_control_netlist();
    let opts = simcov::dlx::testmodel::reduced_valid_inputs(&n);
    let m = enumerate_netlist(&n, &opts).expect("enumerates");
    let collisions = check_req3_unique_outputs(&m).expect_err("bare control outputs collide");
    assert!(collisions.len() > 100);
    // The observable variant still collides per-state (outputs reveal
    // state, not input identity) — Requirement 3 is about *data*
    // selection during expansion, which DistinctData supplies.
    let d = simcov::core::expand::DistinctData::default();
    let mut seen = std::collections::HashSet::new();
    for i in 0..1000 {
        assert!(seen.insert(d.value(i, 32)), "expansion data must be unique");
    }
}

/// Requirement 5 on the paper's own inventory: the DLX interaction state
/// (destination-register addresses of the current and two previous
/// instructions, the PSW) against observable-state lists.
#[test]
fn req5_dlx_interaction_state() {
    let interaction = ["ex.dest", "mem.dest", "wb.dest", "psw"];
    // The functional simulation model exposes registers, memory and the
    // pipeline bookkeeping: containment holds.
    let observable = [
        "regfile", "memory", "ex.dest", "mem.dest", "wb.dest", "psw", "pc",
    ];
    assert!(check_req5_observable(&interaction, &observable).is_ok());
    // Hiding the PSW (as a naive testbench might) is flagged.
    let partial = ["regfile", "memory", "ex.dest", "mem.dest", "wb.dest"];
    let missing = check_req5_observable(&interaction, &partial).unwrap_err();
    assert_eq!(missing, vec!["psw".to_string()]);
}

/// The memory variant agrees with the plain reduced model when memory is
/// always ready (the extension is conservative).
#[test]
fn memory_variant_conservative_extension() {
    use simcov::netlist::SimState;
    let plain = simcov::dlx::testmodel::reduced_control_netlist();
    let mem = reduced_control_netlist_with_memory();
    let mut sp = SimState::new(&plain);
    let mut sm = SimState::new(&mem);
    let stim: [[bool; 5]; 8] = [
        [false, true, false, true, false], // load r1
        [true, false, true, true, false],  // alu r1 -> stall
        [true, false, false, false, false],
        [true, true, false, false, true], // branch taken
        [false, false, false, false, false],
        [false, true, false, true, false],
        [true, false, true, false, false],
        [false, false, false, false, false],
    ];
    for (cyc, v) in stim.iter().enumerate() {
        let po = sp.step(&plain, v);
        let mut v6 = v.to_vec();
        v6.push(true); // mem_ready = 1
        let pm = sm.step(&mem, &v6);
        assert_eq!(po, pm, "cycle {cyc}");
    }
}

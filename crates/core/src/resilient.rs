//! Crash-safe campaign supervision: panic isolation, deadlines, durable
//! checkpoint/resume, and deterministic chaos injection.
//!
//! At production scale a fault campaign runs for hours across millions of
//! injected faults, and the plain [`FaultCampaign`](crate::FaultCampaign)
//! engine has an all-or-nothing failure mode: one panicking shard (or a
//! `SIGKILL`ed process) throws the whole run away. [`ResilientCampaign`]
//! layers four guarantees over the same sharded execution model, without
//! giving up bit-identical determinism:
//!
//! 1. **Panic isolation** — each shard runs under
//!    [`std::panic::catch_unwind`]. A panicking shard is retried up to a
//!    bounded budget and then *quarantined*: the campaign completes and
//!    reports the poisoned shards explicitly ([`ShardFailure`]) together
//!    with coverage bounds over the unsimulated faults.
//! 2. **Deadlines and step budgets** — a wall-clock deadline and a total
//!    simulation-step budget are enforced by cooperative cancellation
//!    checked *between faults*, so a run is truncated at fault
//!    granularity and the partial report is still valid (every outcome in
//!    it is exact; the missing shards are accounted for).
//! 3. **Durable checkpoints** — completed shards are journaled to a
//!    versioned, zero-dependency text file as they finish. After a crash
//!    or kill, [`resume`](ResilientCampaign::resume) restores the
//!    journaled shards and simulates only the rest; because the shard
//!    partition is a pure function of the fault count
//!    ([`default_shard_size`]) and per-shard results are deterministic,
//!    the merged [`CampaignStats`] and [`CampaignReport`] are
//!    byte-identical to an uninterrupted run. Torn trailing records (the
//!    `SIGKILL` signature) are detected by a per-record checksum and
//!    simply re-run.
//! 4. **Deterministic chaos** *(feature `chaos`, test-only)* — injected
//!    panics, artificial delays and checkpoint-write failures, all pure
//!    functions of `(seed, shard, attempt)` via the in-repo
//!    [`simcov_prng`], so every failure scenario in the test suite is
//!    reproducible from a single seed.
//!
//! The journal format (`simcov-journal v1`) is line-oriented text:
//!
//! ```text
//! simcov-journal v1
//! campaign faults=210 shards=4 shard_size=64 fingerprint=9bb90e2c07a1f34d
//! shard 2 faults=64 detected=60 excited=62 masked=3 escapes=2
//! o 5 1 t 3 0:17 1 0
//! o 5 1 w 2 - 0 1
//! ...
//! end 2 crc=52ae8c11b09df7e3
//! ```
//!
//! The `campaign` header carries an FNV-1a fingerprint of the machine,
//! the fault list, the test set and the shard size; resuming against a
//! different campaign is rejected with [`CampaignError::JournalMismatch`]
//! instead of silently merging incompatible results. Each `shard … end`
//! block is self-checking (`crc` over its bytes) and shards are verified
//! fault-by-fault against the expected fault list on load.

use crate::collapse::{CollapseCertificate, CollapseMode, CollapseSummary};
use crate::differential::{simulate_fault_differential, DiffStats, Engine, GoldenTrace};
use crate::error_model::{Fault, FaultKind};
use crate::faults::{simulate_fault, CampaignReport, FaultOutcome};
use crate::packed::{simulate_shard_packed, PackedStats, ReplayScript};
use crate::parallel::{default_jobs, default_shard_size, CampaignStats};
use crate::symbolic::{simulate_shard_symbolic, SymbolicContext, SymbolicEngineStats};
use simcov_fsm::{ExplicitMealy, InputSym, OutputSym, PackedMealy, StateId};
use simcov_obs::Telemetry;
use simcov_tour::TestSet;
use std::fmt;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Errors

/// A campaign-level failure the supervisor cannot degrade around.
///
/// Shard-level failures (panics, truncation) never surface here — they
/// are reported inside [`ResilientRun`]. Only checkpoint-journal problems
/// that would make the result *wrong* (unreadable journal, journal of a
/// different campaign) abort the run.
#[derive(Debug)]
pub enum CampaignError {
    /// The checkpoint journal could not be read or created.
    Journal {
        /// Journal path.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// The journal exists but belongs to a different campaign (different
    /// model, fault list, test set or shard size) or a different format
    /// version — resuming from it would merge incompatible results.
    JournalMismatch {
        /// Journal path.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
    /// The collapse certificate does not bind this campaign's machine and
    /// fault list (stale or tampered) — pruning with it would expand
    /// garbage.
    Certificate {
        /// What disagreed.
        detail: crate::collapse::CertificateError,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal { path, detail } => {
                write!(f, "checkpoint journal {}: {detail}", path.display())
            }
            CampaignError::JournalMismatch { path, detail } => write!(
                f,
                "checkpoint journal {} does not match this campaign: {detail}",
                path.display()
            ),
            CampaignError::Certificate { detail } => {
                write!(f, "collapse certificate rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

// ---------------------------------------------------------------------------
// FNV-1a hashing (fingerprints + record checksums): the workspace-wide
// implementation from `simcov_obs`, so journals and telemetry traces
// share one checksum discipline. Same algorithm (and therefore the same
// journal bytes) as the private hasher this module originally carried.
use simcov_obs::fnv::Fnv64 as Fnv;

/// Fingerprints everything the deterministic result depends on: machine
/// transition table, fault list, test set and shard partition. The
/// component encodings live in [`crate::fingerprint`] (shared with the
/// collapse certificate and the report fingerprints); the concatenation
/// order here is the journal's original one, so journal fingerprints are
/// unchanged.
fn fingerprint(m: &ExplicitMealy, faults: &[Fault], tests: &TestSet, shard_size: usize) -> u64 {
    let mut h = Fnv::new();
    crate::fingerprint::hash_machine(&mut h, m);
    crate::fingerprint::hash_faults(&mut h, faults);
    crate::fingerprint::hash_tests(&mut h, tests);
    h.u64(shard_size as u64);
    h.finish()
}

// ---------------------------------------------------------------------------
// Journal serialization

const JOURNAL_MAGIC: &str = "simcov-journal v1";

/// One `o` line: exact, lossless text encoding of a [`FaultOutcome`].
fn encode_outcome(o: &FaultOutcome) -> String {
    let (kind, arg) = match o.fault.kind {
        FaultKind::Transfer { new_next } => ('t', new_next.0),
        FaultKind::Output { new_output } => ('w', new_output.0),
    };
    let det = match o.detected {
        Some((si, vi)) => format!("{si}:{vi}"),
        None => "-".to_string(),
    };
    format!(
        "o {} {} {kind} {arg} {det} {} {}",
        o.fault.state.0,
        o.fault.input.0,
        u8::from(o.excited),
        u8::from(o.masked_somewhere),
    )
}

fn decode_outcome(line: &str) -> Option<FaultOutcome> {
    let mut it = line.split(' ');
    if it.next()? != "o" {
        return None;
    }
    let state = StateId(it.next()?.parse().ok()?);
    let input = InputSym(it.next()?.parse().ok()?);
    let kind = it.next()?;
    let arg: u32 = it.next()?.parse().ok()?;
    let kind = match kind {
        "t" => FaultKind::Transfer {
            new_next: StateId(arg),
        },
        "w" => FaultKind::Output {
            new_output: OutputSym(arg),
        },
        _ => return None,
    };
    let det = it.next()?;
    let detected = if det == "-" {
        None
    } else {
        let (si, vi) = det.split_once(':')?;
        Some((si.parse().ok()?, vi.parse().ok()?))
    };
    let excited = match it.next()? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    let masked = match it.next()? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some(FaultOutcome {
        fault: Fault { state, input, kind },
        detected,
        excited,
        masked_somewhere: masked,
    })
}

fn shard_header_line(shard: usize, stats: &CampaignStats) -> String {
    format!(
        "shard {shard} faults={} detected={} excited={} masked={} escapes={}",
        stats.faults_simulated, stats.detected, stats.excited, stats.masked, stats.escapes
    )
}

/// Durability batch size: [`write_shard`](JournalWriter::write_shard)
/// fsyncs once at least this many bytes have accumulated since the last
/// sync, rather than per record. Records are still *written* (flushed to
/// the OS) per shard, so only a machine crash — not a process crash —
/// can lose a batch; torn or missing tails are exactly what the loader's
/// per-record checksum already discards, costing a re-run of those
/// shards, never correctness.
const JOURNAL_SYNC_BYTES: usize = 256 * 1024;

/// Append-only journal writer. Every [`write_shard`](Self::write_shard)
/// flushes, and the writer fsyncs every [`JOURNAL_SYNC_BYTES`] and again
/// at [`finish`](Self::finish) — so a record either fully lands on disk
/// or is torn at the tail, and torn tails are exactly what the loader's
/// per-record checksum discards. Batching the fsyncs (instead of one per
/// shard) is what keeps checkpointing's overhead near the plain
/// campaign's wall time.
struct JournalWriter {
    path: PathBuf,
    file: BufWriter<std::fs::File>,
    /// Bytes written since the last fsync.
    unsynced: usize,
}

impl JournalWriter {
    fn create(
        path: &Path,
        fp: u64,
        faults: usize,
        shards: usize,
        shard_size: usize,
    ) -> Result<Self, CampaignError> {
        let io = |e: std::io::Error| CampaignError::Journal {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let file = std::fs::File::create(path).map_err(io)?;
        let mut w = JournalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            unsynced: 0,
        };
        writeln!(w.file, "{JOURNAL_MAGIC}").map_err(io)?;
        writeln!(
            w.file,
            "campaign faults={faults} shards={shards} shard_size={shard_size} \
             fingerprint={fp:016x}"
        )
        .map_err(io)?;
        w.sync().map_err(io)?;
        Ok(w)
    }

    fn append(path: &Path) -> Result<Self, CampaignError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CampaignError::Journal {
                path: path.to_path_buf(),
                detail: e.to_string(),
            })?;
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            unsynced: 0,
        })
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Writes one completed shard as a self-checking record, flushing it
    /// to the OS immediately and fsyncing once per [`JOURNAL_SYNC_BYTES`]
    /// batch. Returns the record size in bytes (deterministic: a pure
    /// function of the shard's outcomes), which feeds the
    /// `campaign.checkpoint_bytes` counter.
    fn write_shard(
        &mut self,
        shard: usize,
        outcomes: &[FaultOutcome],
        stats: &CampaignStats,
    ) -> Result<usize, String> {
        let mut block = String::new();
        block.push_str(&shard_header_line(shard, stats));
        block.push('\n');
        for o in outcomes {
            block.push_str(&encode_outcome(o));
            block.push('\n');
        }
        let mut h = Fnv::new();
        h.bytes(block.as_bytes());
        let crc = h.finish();
        let record = format!("{block}end {shard} crc={crc:016x}\n");
        self.unsynced += record.len();
        let res = self.file.write_all(record.as_bytes()).and_then(|()| {
            if self.unsynced >= JOURNAL_SYNC_BYTES {
                self.sync()
            } else {
                self.file.flush()
            }
        });
        res.map_err(|e| format!("{}: {e}", self.path.display()))?;
        Ok(record.len())
    }

    /// Durability barrier at end of run: fsyncs whatever the batched
    /// [`write_shard`](Self::write_shard)s left pending.
    fn finish(&mut self) -> Result<(), String> {
        self.sync()
            .map_err(|e| format!("{}: {e}", self.path.display()))
    }
}

/// Bounded hand-off depth between simulation workers and the journal
/// writer thread. Small enough that a stalled disk backpressures the
/// workers after ~[`JOURNAL_CHANNEL_CAP`] completed shards instead of
/// buffering the whole campaign in memory; large enough that bursts of
/// small shards never stall a healthy disk.
const JOURNAL_CHANNEL_CAP: usize = 64;

/// One completed shard in flight to the writer thread.
struct JournalMsg {
    shard: usize,
    outcomes: Vec<FaultOutcome>,
    stats: CampaignStats,
}

/// Off-thread checkpoint writer: completed shards are handed over a
/// *bounded* channel to a dedicated thread that owns the
/// [`JournalWriter`], so record encoding, write syscalls and the batched
/// fsyncs never run on a simulation worker. Workers pay only a memcpy of
/// the shard's outcomes plus a channel send; when the channel is full
/// (slow disk) the send blocks, which is the backpressure that keeps
/// memory bounded. Journal failures degrade to notes exactly as before —
/// they are collected on the writer thread and merged at
/// [`finish`](JournalHandle::finish), which joins the thread and is the
/// run's durability barrier.
struct JournalHandle {
    tx: Option<std::sync::mpsc::SyncSender<JournalMsg>>,
    thread: Option<std::thread::JoinHandle<Vec<String>>>,
}

impl JournalHandle {
    fn spawn(mut writer: JournalWriter, telemetry: Option<Telemetry>) -> JournalHandle {
        let (tx, rx) = std::sync::mpsc::sync_channel::<JournalMsg>(JOURNAL_CHANNEL_CAP);
        let thread = std::thread::spawn(move || {
            let mut notes = Vec::new();
            for msg in rx {
                match writer.write_shard(msg.shard, &msg.outcomes, &msg.stats) {
                    Ok(bytes) => {
                        if let Some(tel) = &telemetry {
                            tel.counter_add("campaign.checkpoint_bytes", bytes as u64);
                        }
                    }
                    Err(e) => {
                        notes.push(format!(
                            "journal: failed to record shard {}: {e}",
                            msg.shard
                        ));
                    }
                }
            }
            if let Err(e) = writer.finish() {
                notes.push(format!("journal: final sync failed: {e}"));
            }
            notes
        });
        JournalHandle {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    /// Hands a completed shard to the writer thread, blocking while the
    /// bounded channel is full. An error means the writer thread is gone
    /// (it never exits early unless it panicked) — the shard simply goes
    /// unjournaled, like any other degraded write.
    fn record(
        &self,
        shard: usize,
        outcomes: &[FaultOutcome],
        stats: &CampaignStats,
    ) -> Result<(), String> {
        let tx = self.tx.as_ref().expect("record() after finish()");
        tx.send(JournalMsg {
            shard,
            outcomes: outcomes.to_vec(),
            stats: stats.clone(),
        })
        .map_err(|_| "journal writer thread exited early".to_string())
    }

    /// Durability barrier: closes the channel, joins the writer thread
    /// (draining every pending record and fsyncing the tail batch) and
    /// returns the notes for writes that failed.
    fn finish(&mut self) -> Vec<String> {
        drop(self.tx.take());
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| vec!["journal: writer thread panicked".to_string()]),
            None => Vec::new(),
        }
    }
}

/// One restored shard: its outcomes plus the recomputed tally.
type RestoredShard = (Vec<FaultOutcome>, CampaignStats);

struct LoadedJournal {
    shards: Vec<Option<RestoredShard>>,
    notes: Vec<String>,
}

/// Parses a journal, validating the header against this campaign and each
/// record against its checksum and the expected fault list. Malformed or
/// torn records are *discarded with a note* (their shards re-run); only a
/// header that cannot belong to this campaign is a hard error.
fn load_journal(
    path: &Path,
    fp: u64,
    expected_shards: usize,
    shard_size: usize,
    total_faults: usize,
    shards: &[&[Fault]],
) -> Result<LoadedJournal, CampaignError> {
    let text = std::fs::read_to_string(path).map_err(|e| CampaignError::Journal {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let mismatch = |detail: String| CampaignError::JournalMismatch {
        path: path.to_path_buf(),
        detail,
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(JOURNAL_MAGIC) => {}
        Some(other) => return Err(mismatch(format!("unknown journal version `{other}`"))),
        None => return Err(mismatch("empty journal".to_string())),
    }
    let header = lines
        .next()
        .ok_or_else(|| mismatch("missing campaign header".to_string()))?;
    let expected_header = format!(
        "campaign faults={total_faults} shards={expected_shards} shard_size={shard_size} \
         fingerprint={fp:016x}"
    );
    if header != expected_header {
        return Err(mismatch(format!(
            "header `{header}` (expected `{expected_header}`)"
        )));
    }

    let mut restored: Vec<Option<RestoredShard>> = (0..expected_shards).map(|_| None).collect();
    let mut notes = Vec::new();
    let rest: Vec<&str> = lines.collect();
    let mut i = 0;
    while i < rest.len() {
        let start = rest[i];
        if !start.starts_with("shard ") {
            // Stray line (torn record tail from a previous crash): skip.
            i += 1;
            continue;
        }
        // Collect the block up to its `end` line.
        let mut j = i + 1;
        while j < rest.len() && !rest[j].starts_with("end ") && !rest[j].starts_with("shard ") {
            j += 1;
        }
        if j >= rest.len() || !rest[j].starts_with("end ") {
            notes.push(format!(
                "journal: discarded torn record starting at `{start}` (shard re-run)"
            ));
            i = j;
            continue;
        }
        let block_ok = (|| -> Option<(usize, RestoredShard)> {
            let shard: usize = start.split(' ').nth(1)?.parse().ok()?;
            let expected_faults = shards.get(shard)?.len();
            // Verify the record checksum over the block's exact bytes.
            let mut h = Fnv::new();
            for line in &rest[i..j] {
                h.bytes(line.as_bytes());
                h.bytes(b"\n");
            }
            let end = rest[j];
            let crc_field = end.strip_prefix(&format!("end {shard} crc="))?;
            let crc = u64::from_str_radix(crc_field, 16).ok()?;
            if crc != h.finish() {
                return None;
            }
            let outcomes: Vec<FaultOutcome> = rest[i + 1..j]
                .iter()
                .map(|l| decode_outcome(l))
                .collect::<Option<_>>()?;
            if outcomes.len() != expected_faults {
                return None;
            }
            // Outcomes must belong to exactly the faults of this shard.
            if outcomes
                .iter()
                .zip(shards[shard].iter())
                .any(|(o, f)| o.fault != *f)
            {
                return None;
            }
            let stats = CampaignStats::tally(&outcomes);
            if shard_header_line(shard, &stats) != *start {
                return None;
            }
            Some((shard, (outcomes, stats)))
        })();
        match block_ok {
            Some((shard, record)) => {
                if restored[shard].is_some() {
                    notes.push(format!(
                        "journal: duplicate record for shard {shard} ignored"
                    ));
                } else {
                    restored[shard] = Some(record);
                }
            }
            None => notes.push(format!(
                "journal: discarded corrupt record starting at `{start}` (shard re-run)"
            )),
        }
        i = j + 1;
    }
    Ok(LoadedJournal {
        shards: restored,
        notes,
    })
}

// ---------------------------------------------------------------------------
// Cooperative cancellation

const TRIP_LIVE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_STEPS: u8 = 2;

/// Why a run stopped before simulating every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The total simulation-step budget was exhausted.
    StepBudget,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline expired"),
            StopReason::StepBudget => write!(f, "step budget exhausted"),
        }
    }
}

/// Shared cancellation state, checked cooperatively between faults.
struct Cancel {
    deadline: Option<Instant>,
    steps: Option<AtomicU64>,
    tripped: AtomicU8,
}

impl Cancel {
    fn new(deadline: Option<Duration>, max_steps: Option<u64>) -> Self {
        // A zero deadline means "expire immediately", uniformly: trip at
        // construction instead of relying on the first `charge` observing
        // `now >= start`. This guarantees zero simulation work, and that
        // `reason()` reports `Deadline` even on paths that never charge.
        let already_expired = deadline == Some(Duration::ZERO);
        Cancel {
            deadline: deadline.map(|d| Instant::now() + d),
            steps: max_steps.map(AtomicU64::new),
            tripped: AtomicU8::new(if already_expired {
                TRIP_DEADLINE
            } else {
                TRIP_LIVE
            }),
        }
    }

    /// Charges `cost` steps; returns `false` once the run must stop.
    /// Sticky: after the first trip every later call returns `false`.
    fn charge(&self, cost: u64) -> bool {
        if self.tripped.load(Ordering::Relaxed) != TRIP_LIVE {
            return false;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                let _ = self.tripped.compare_exchange(
                    TRIP_LIVE,
                    TRIP_DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return false;
            }
        }
        if let Some(steps) = &self.steps {
            let charged = steps
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    cur.checked_sub(cost)
                })
                .is_ok();
            if !charged {
                let _ = self.tripped.compare_exchange(
                    TRIP_LIVE,
                    TRIP_STEPS,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return false;
            }
        }
        true
    }

    fn reason(&self) -> Option<StopReason> {
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_DEADLINE => Some(StopReason::Deadline),
            TRIP_STEPS => Some(StopReason::StepBudget),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos (test-only, feature `chaos`)

/// Deterministic fault injection for the supervisor itself (feature
/// `chaos`; compiled into test builds only). Every decision is a pure
/// function of `(seed, site, shard, attempt)`, so a failing scenario is
/// reproducible from its seed alone.
#[cfg(feature = "chaos")]
pub mod chaos {
    use simcov_prng::Prng;
    use std::time::Duration;

    /// The chaos schedule: independent probabilities per injection site.
    #[derive(Debug, Clone)]
    pub struct ChaosPlan {
        /// Seed all decisions derive from.
        pub seed: u64,
        /// Probability a `(shard, attempt)` panics before simulating.
        pub panic_prob: f64,
        /// Probability a `(shard, attempt)` sleeps before simulating.
        pub delay_prob: f64,
        /// Maximum injected delay.
        pub max_delay: Duration,
        /// Probability a completed shard's checkpoint write is dropped.
        pub checkpoint_fail_prob: f64,
    }

    impl ChaosPlan {
        /// A plan with every probability at zero (inject nothing).
        pub fn new(seed: u64) -> Self {
            ChaosPlan {
                seed,
                panic_prob: 0.0,
                delay_prob: 0.0,
                max_delay: Duration::from_millis(2),
                checkpoint_fail_prob: 0.0,
            }
        }

        fn rng(&self, site: u64, shard: usize, attempt: usize) -> Prng {
            // Distinct streams per site so e.g. raising the panic
            // probability does not reshuffle delay decisions.
            let mut h = super::Fnv::new();
            h.u64(self.seed);
            h.u64(site);
            h.u64(shard as u64);
            h.u64(attempt as u64);
            Prng::seed_from_u64(h.finish())
        }

        /// Deterministic: should this `(shard, attempt)` panic?
        pub fn should_panic(&self, shard: usize, attempt: usize) -> bool {
            self.panic_prob > 0.0 && self.rng(1, shard, attempt).gen_bool(self.panic_prob)
        }

        /// Deterministic: injected delay for this `(shard, attempt)`.
        pub fn delay(&self, shard: usize, attempt: usize) -> Option<Duration> {
            if self.delay_prob <= 0.0 {
                return None;
            }
            let mut rng = self.rng(2, shard, attempt);
            if !rng.gen_bool(self.delay_prob) {
                return None;
            }
            let nanos = self.max_delay.as_nanos().max(1) as u64;
            Some(Duration::from_nanos(rng.gen_range(0..nanos)))
        }

        /// Deterministic: should this shard's checkpoint write be dropped?
        pub fn should_fail_checkpoint(&self, shard: usize) -> bool {
            self.checkpoint_fail_prob > 0.0
                && self.rng(3, shard, 0).gen_bool(self.checkpoint_fail_prob)
        }
    }

    /// Installs (once) a panic hook that suppresses the default report
    /// for chaos-injected panics — their payload starts with `"chaos:"`
    /// — so chaos-heavy test runs do not spam stderr. Real panics still
    /// print through the previous hook.
    pub fn silence_chaos_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if !msg.starts_with("chaos:") {
                    prev(info);
                }
            }));
        });
    }
}

// ---------------------------------------------------------------------------
// The supervisor

/// A shard the supervisor gave up on: it panicked on every attempt within
/// the retry budget and was quarantined.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard index in fault order.
    pub shard: usize,
    /// Faults in the shard (all unsimulated).
    pub faults: usize,
    /// Attempts made (1 + retries).
    pub attempts: usize,
    /// The panic payload of the last attempt.
    pub message: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} ({} faults) poisoned after {} attempt{}: {}",
            self.shard,
            self.faults,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// Detection-rate bounds for a (possibly partial) campaign: every
/// unsimulated fault may or may not have been detected, so the true
/// full-campaign rate lies in `[rate_lo, rate_hi]`. On a complete run the
/// bounds coincide with the exact rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageBounds {
    /// Faults known detected (simulated and detected).
    pub detected_lo: usize,
    /// Upper bound: known detected + every unsimulated fault.
    pub detected_hi: usize,
    /// Total faults in the campaign (simulated or not).
    pub total_faults: usize,
}

impl CoverageBounds {
    /// Lower bound on the full-campaign detection rate.
    pub fn rate_lo(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected_lo as f64 / self.total_faults as f64
        }
    }

    /// Upper bound on the full-campaign detection rate.
    pub fn rate_hi(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected_hi as f64 / self.total_faults as f64
        }
    }
}

impl fmt::Display for CoverageBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "detection rate in [{:.1}%, {:.1}%] of {} faults",
            100.0 * self.rate_lo(),
            100.0 * self.rate_hi(),
            self.total_faults
        )
    }
}

/// Result of a [`ResilientCampaign`] run: the (possibly partial) report
/// and stats over completed shards, plus explicit degradation accounting.
///
/// When [`is_complete`](Self::is_complete) is `true`, `report` and
/// `stats` are byte-identical to what the plain
/// [`FaultCampaign`](crate::FaultCampaign) produces with the same shard
/// size — regardless of how many shards came from the checkpoint journal
/// versus fresh simulation, and regardless of thread count.
#[derive(Debug)]
pub struct ResilientRun {
    /// Outcomes of completed shards, concatenated in shard order (gaps
    /// from poisoned/cancelled shards are *omitted*, not padded).
    pub report: CampaignReport,
    /// Stats merged over completed shards, in shard order.
    pub stats: CampaignStats,
    /// `true` iff every shard was simulated (or restored): no poisoned
    /// shards, no truncation.
    pub is_complete: bool,
    /// Shards quarantined after exhausting the retry budget.
    pub failures: Vec<ShardFailure>,
    /// Shards not simulated because the run was cancelled (deadline or
    /// step budget), in shard order.
    pub skipped: Vec<usize>,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopReason>,
    /// Shards restored from the checkpoint journal instead of simulated.
    pub restored_shards: usize,
    /// Non-fatal checkpoint problems (torn records discarded on load,
    /// failed shard writes); the run degrades to weaker durability.
    pub journal_notes: Vec<String>,
    /// Detection-rate bounds accounting for unsimulated faults.
    pub bounds: CoverageBounds,
    /// Total faults in the campaign (simulated or not).
    pub total_faults: usize,
    /// Total shards in the partition.
    pub total_shards: usize,
    /// Worker threads the run was configured with.
    pub jobs: usize,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Differential-engine effort counters over *freshly simulated*
    /// shards (zero under [`Engine::Naive`]; restored shards contribute
    /// nothing because no simulation happened this run). Deterministic
    /// across thread counts, but — unlike `report`/`stats` — *not*
    /// invariant under checkpoint/resume splits.
    pub diff: DiffStats,
    /// Word-packing effort counters over freshly simulated shards (zero
    /// unless the run used [`Engine::Packed`]); same caveats as `diff`.
    pub packed: PackedStats,
    /// BDD-package effort counters over freshly simulated shards (zero
    /// unless the run used [`Engine::Symbolic`]); same caveats as `diff`.
    pub sym: SymbolicEngineStats,
    /// Collapse accounting when the run consumed a certificate (`None`
    /// for plain runs and [`CollapseMode::Off`]).
    pub collapse: Option<CollapseSummary>,
}

enum ShardState {
    Done(
        Vec<FaultOutcome>,
        CampaignStats,
        DiffStats,
        PackedStats,
        SymbolicEngineStats,
    ),
    Poisoned {
        attempts: usize,
        message: String,
    },
    Cancelled,
}

/// A supervised fault campaign over the sharded parallel engine. See the
/// [module docs](self) for the failure model.
///
/// ```
/// use simcov_core::{enumerate_single_faults, FaultSpace, ResilientCampaign};
/// use simcov_core::models::figure2;
/// use simcov_tour::{transition_tour, TestSet};
///
/// let (m, _) = figure2();
/// let faults = enumerate_single_faults(&m, &FaultSpace::default());
/// let tour = transition_tour(&m).unwrap();
/// let tests = TestSet::single(tour.inputs);
/// let run = ResilientCampaign::new(&m, &faults, &tests).jobs(2).run().unwrap();
/// assert!(run.is_complete);
/// assert_eq!(run.stats.faults_simulated, faults.len());
/// ```
#[derive(Debug, Clone)]
pub struct ResilientCampaign<'a> {
    golden: &'a ExplicitMealy,
    faults: &'a [Fault],
    tests: &'a TestSet,
    jobs: usize,
    shard_size: usize,
    max_retries: usize,
    deadline: Option<Duration>,
    max_steps: Option<u64>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    engine: Engine,
    telemetry: Option<Telemetry>,
    collapse: Option<(&'a CollapseCertificate, CollapseMode)>,
    shared_trace: Option<Arc<GoldenTrace>>,
    symbolic: Option<&'a SymbolicContext<'a>>,
    #[cfg(feature = "chaos")]
    chaos: Option<chaos::ChaosPlan>,
}

impl<'a> ResilientCampaign<'a> {
    /// A supervised campaign with automatic worker count and sharding, a
    /// retry budget of 2, no deadline, no step budget and no checkpoint.
    pub fn new(golden: &'a ExplicitMealy, faults: &'a [Fault], tests: &'a TestSet) -> Self {
        ResilientCampaign {
            golden,
            faults,
            tests,
            jobs: default_jobs(),
            shard_size: default_shard_size(faults.len()),
            max_retries: 2,
            deadline: None,
            max_steps: None,
            checkpoint: None,
            resume: false,
            engine: Engine::default(),
            telemetry: None,
            collapse: None,
            shared_trace: None,
            symbolic: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Attaches the netlist bridge required by [`Engine::Symbolic`], as
    /// for [`FaultCampaign::symbolic`](crate::FaultCampaign::symbolic).
    /// [`run`](Self::run) panics if [`Engine::Symbolic`] is selected
    /// without one.
    pub fn symbolic(mut self, ctx: &'a SymbolicContext<'a>) -> Self {
        self.symbolic = Some(ctx);
        self
    }

    /// Attaches a [`CollapseCertificate`], as for
    /// [`FaultCampaign::collapse`](crate::FaultCampaign::collapse).
    ///
    /// Under [`CollapseMode::On`] the supervisor runs over the *pruned*
    /// representative list — sharding, checkpoint journal, retries and
    /// cancellation all see pruned reality (and the journal fingerprint
    /// covers the pruned fault list, so collapsed and uncollapsed
    /// checkpoints can never be cross-resumed). On a complete run the
    /// outcomes are expanded and the merged stats recomputed over the full
    /// fault list's shard partition, so `report`/`stats` are bit-identical
    /// to an uncollapsed run (for a sound certificate); on a partial run
    /// only classes whose representative completed are expanded, and the
    /// coverage bounds account for the rest. Telemetry counters and shard
    /// events describe the pruned work actually performed.
    ///
    /// Under [`CollapseMode::Verify`] everything is simulated; the audit
    /// runs only when the campaign completes (an incomplete report cannot
    /// be audited — a journal note records the skip).
    pub fn collapse(mut self, cert: &'a CollapseCertificate, mode: CollapseMode) -> Self {
        self.collapse = Some((cert, mode));
        self
    }

    /// Selects the fault-simulation engine, as for
    /// [`FaultCampaign::engine`](crate::FaultCampaign::engine). Outcomes
    /// and stats are bit-identical either way, so the engine is *not*
    /// part of the journal fingerprint: a campaign checkpointed under one
    /// engine resumes soundly under the other.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the worker count (`0` clamps to 1, as for
    /// [`FaultCampaign::jobs`](crate::FaultCampaign::jobs)).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the shard size (`0` clamps to 1). Must match between the
    /// interrupted and the resuming run — it is part of the journal
    /// fingerprint.
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Retry budget per shard: a panicking shard is re-attempted up to
    /// `max_retries` more times before being quarantined.
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Wall-clock deadline for the whole run, enforced cooperatively
    /// between faults. Shards in flight when it expires are discarded
    /// (not journaled), so truncation is exact at shard granularity.
    ///
    /// A **zero** deadline uniformly means *expire immediately*: no fault
    /// is simulated, every unrestored shard is reported as skipped, and
    /// [`ResilientRun::stopped`] is [`StopReason::Deadline`]. Combined
    /// with [`resume`](Self::resume), journal restoration still happens
    /// (it costs no simulation steps), which makes `deadline(ZERO)` a
    /// cheap way to audit what a checkpoint already contains.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Total simulation-step budget: each fault charges one step per test
    /// vector before it is simulated; when the budget runs out the run is
    /// cancelled cooperatively, like a deadline but deterministic in the
    /// amount of work admitted.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Journals completed shards to `path`. Without
    /// [`resume`](Self::resume), an existing file is overwritten.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// With a checkpoint path set: restore completed shards from the
    /// journal (if it exists) and simulate only the rest. The journal
    /// must fingerprint-match this campaign. A missing journal file is
    /// not an error — the run simply starts fresh and creates it.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Attaches a telemetry sink. The run records the same `campaign`
    /// span tree, counters and per-shard events as
    /// [`FaultCampaign::telemetry`](crate::FaultCampaign::telemetry),
    /// plus the supervisor's own counters: `campaign.shards_retried`
    /// (panic retries), `campaign.shards_restored` (journal hits),
    /// `campaign.shards_skipped`, `campaign.shards_poisoned` and
    /// `campaign.checkpoint_bytes` (journal bytes written).
    ///
    /// Events are emitted only from the serial shard-ordered merge loop,
    /// so the recorded event stream is byte-identical across thread
    /// counts for the same work.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Shares a pre-built golden trace instead of building one — the hook
    /// for cross-request caches (`simcov serve` keys its cache by
    /// *(machine fingerprint, test-set fingerprint)*, which is exactly the
    /// contract here: the trace must have been built from this `golden`
    /// and this test set). Safe across engines because
    /// [`GoldenTrace::build`] and [`GoldenTrace::build_packed`] are
    /// bit-identical field for field. Ignored under [`Engine::Naive`].
    pub fn golden_trace(mut self, trace: Arc<GoldenTrace>) -> Self {
        self.shared_trace = Some(trace);
        self
    }

    /// Installs a deterministic chaos schedule (test-only).
    #[cfg(feature = "chaos")]
    pub fn chaos(mut self, plan: chaos::ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Runs the supervised campaign.
    ///
    /// # Errors
    ///
    /// [`CampaignError`] only for unrecoverable checkpoint problems
    /// (unreadable journal, journal of a different campaign) or a collapse
    /// certificate that does not bind this campaign. Everything else —
    /// panics, truncation, failed checkpoint writes — degrades into the
    /// [`ResilientRun`] accounting.
    pub fn run(&self) -> Result<ResilientRun, CampaignError> {
        let collapse = self.collapse.filter(|&(_, mode)| mode != CollapseMode::Off);
        let Some((cert, mode)) = collapse else {
            return self.run_inner(self.faults);
        };
        cert.check(self.golden, self.faults)
            .map_err(|detail| CampaignError::Certificate { detail })?;
        match mode {
            CollapseMode::On => {
                let pruned = cert.representative_faults(self.faults);
                let mut run = self.run_inner(&pruned)?;
                self.expand_run(&mut run, cert, &pruned);
                Ok(run)
            }
            _ => {
                let mut run = self.run_inner(self.faults)?;
                let violations = if run.is_complete {
                    cert.violations(&run.report.outcomes)
                } else {
                    run.journal_notes
                        .push("collapse: verify audit skipped (run incomplete)".to_string());
                    Vec::new()
                };
                if let Some(tel) = &self.telemetry {
                    tel.counter_add(simcov_obs::names::CAMPAIGN_COLLAPSED_FAULTS, 0);
                    tel.counter_add(
                        simcov_obs::names::CAMPAIGN_CLASSES,
                        cert.num_classes() as u64,
                    );
                    tel.counter_add(
                        simcov_obs::names::CAMPAIGN_COLLAPSE_VIOLATIONS,
                        violations.len() as u64,
                    );
                }
                run.collapse = Some(CollapseSummary {
                    mode: CollapseMode::Verify,
                    classes: cert.num_classes(),
                    collapsed_faults: 0,
                    violations,
                });
                Ok(run)
            }
        }
    }

    /// Post-processes a pruned [`CollapseMode::On`] run back onto the
    /// full fault universe: expands the outcomes of every class whose
    /// representative completed, recomputes the merged stats (over the
    /// full shard partition when complete, so they are bit-identical to an
    /// uncollapsed run) and rebases the coverage bounds on the full fault
    /// count.
    fn expand_run(&self, run: &mut ResilientRun, cert: &CollapseCertificate, pruned: &[Fault]) {
        let incomplete: std::collections::HashSet<usize> = run
            .failures
            .iter()
            .map(|f| f.shard)
            .chain(run.skipped.iter().copied())
            .collect();
        // Walk the pruned shard partition; completed shards' outcomes sit
        // concatenated in `run.report` in shard order (gaps omitted).
        let mut expanded: Vec<Option<FaultOutcome>> = vec![None; self.faults.len()];
        let mut rep_outcomes = run.report.outcomes.iter();
        let mut completed_shards = 0usize;
        for (shard, chunk) in pruned.chunks(self.shard_size).enumerate() {
            let lo = shard * self.shard_size;
            if incomplete.contains(&shard) {
                continue;
            }
            completed_shards += 1;
            for class in lo..lo + chunk.len() {
                let rep = rep_outcomes
                    .next()
                    .expect("one completed outcome per representative");
                for &member in cert.members(class as u32) {
                    expanded[member as usize] = Some(FaultOutcome {
                        fault: self.faults[member as usize],
                        detected: rep.detected,
                        excited: rep.excited,
                        masked_somewhere: rep.masked_somewhere,
                    });
                }
            }
        }
        let outcomes: Vec<FaultOutcome> = expanded.into_iter().flatten().collect();
        let stats = if run.is_complete {
            // Complete: re-derive the stats from the full fault list's
            // shard partition — bit-identical to an uncollapsed run.
            let mut stats = CampaignStats::default();
            for chunk in outcomes.chunks(self.shard_size) {
                stats.merge(&CampaignStats::tally(chunk));
            }
            stats
        } else {
            // Partial: one honest tally over what the certificate lets us
            // conclude; `shards` counts the pruned shards that completed.
            let mut stats = CampaignStats::tally(&outcomes);
            stats.shards = completed_shards;
            stats
        };
        let detected_lo = stats.detected;
        let unsimulated = self.faults.len() - outcomes.len();
        run.report = CampaignReport { outcomes };
        run.stats = stats;
        run.bounds = CoverageBounds {
            detected_lo,
            detected_hi: detected_lo + unsimulated,
            total_faults: self.faults.len(),
        };
        run.total_faults = self.faults.len();
        if let Some(tel) = &self.telemetry {
            tel.counter_add(
                simcov_obs::names::CAMPAIGN_COLLAPSED_FAULTS,
                cert.collapsed_faults() as u64,
            );
            tel.counter_add(
                simcov_obs::names::CAMPAIGN_CLASSES,
                cert.num_classes() as u64,
            );
        }
        run.collapse = Some(CollapseSummary {
            mode: CollapseMode::On,
            classes: cert.num_classes(),
            collapsed_faults: cert.collapsed_faults(),
            violations: Vec::new(),
        });
    }

    /// The supervision loop proper, over whatever fault list the collapse
    /// mode selected (`self.faults`, or the pruned representatives).
    fn run_inner(&self, sim_faults: &[Fault]) -> Result<ResilientRun, CampaignError> {
        let t0 = Instant::now();
        let shards: Vec<&[Fault]> = sim_faults.chunks(self.shard_size).collect();
        let nshards = shards.len();
        let fp = fingerprint(self.golden, sim_faults, self.tests, self.shard_size);

        // Checkpoint setup: load restorable shards, then open for append.
        let mut restored: Vec<Option<RestoredShard>> = (0..nshards).map(|_| None).collect();
        let mut notes: Vec<String> = Vec::new();
        let mut journal: Option<JournalHandle> = match &self.checkpoint {
            Some(path) => {
                let writer = if self.resume && path.exists() {
                    let loaded = load_journal(
                        path,
                        fp,
                        nshards,
                        self.shard_size,
                        sim_faults.len(),
                        &shards,
                    )?;
                    restored = loaded.shards;
                    notes.extend(loaded.notes);
                    JournalWriter::append(path)?
                } else {
                    JournalWriter::create(path, fp, sim_faults.len(), nshards, self.shard_size)?
                };
                // Header and journal load stay synchronous (their errors
                // are campaign-fatal); everything per-shard moves to the
                // writer thread behind a bounded channel.
                Some(JournalHandle::spawn(writer, self.telemetry.clone()))
            }
            None => None,
        };

        let cancel = Cancel::new(self.deadline, self.max_steps);
        // One step per test vector, charged before each fault; a test set
        // with zero vectors still charges 1 so budgets always bind.
        let cost = (self.tests.total_vectors() as u64).max(1);

        let span = self.telemetry.as_ref().map(|t| t.span("campaign"));
        // One golden simulation of the test set, shared read-only across
        // workers (differential engine layer 1). Built after journal
        // restoration so a fully restored resume still pays it only once
        // — it costs no cancellation budget (no *fault* is simulated).
        let tables =
            (self.engine == Engine::Packed).then(|| PackedMealy::from_explicit(self.golden));
        let trace: Option<Arc<GoldenTrace>> = match self.engine {
            Engine::Naive | Engine::Symbolic => None,
            engine => Some(match &self.shared_trace {
                // A cache-provided trace (see `golden_trace`): the caller
                // vouches it was built from this (machine, test set).
                Some(shared) => Arc::clone(shared),
                None => Arc::new(match engine {
                    Engine::Differential => GoldenTrace::build(self.golden, self.tests),
                    Engine::Packed => GoldenTrace::build_packed(
                        self.golden,
                        tables
                            .as_ref()
                            .expect("packed tables built for Engine::Packed"),
                        self.tests,
                    ),
                    Engine::Naive | Engine::Symbolic => unreachable!("matched above"),
                }),
            }),
        };
        let trace_ref = trace.as_deref();
        let tables_ref = tables.as_ref();
        // The packed engine's replay lowering of the golden run, built
        // once and shared read-only across workers like the trace.
        let script = match (&trace, self.engine) {
            (Some(trace), Engine::Packed) => Some(ReplayScript::build(trace, self.tests)),
            _ => None,
        };
        let script_ref = script.as_ref();
        let slots: Mutex<Vec<Option<ShardState>>> =
            Mutex::new((0..nshards).map(|_| None).collect());
        let notes_mx = Mutex::new(notes);
        let restored_ref = &restored;
        let shards_ref = &shards;
        let journal_ref = &journal;
        let slots_ref = &slots;
        let notes_ref = &notes_mx;
        let cancel_ref = &cancel;
        let span_ref = &span;

        let process = |i: usize| {
            if restored_ref[i].is_some() {
                return;
            }
            // Span timing from workers is trace-safe (commutative
            // aggregation); events are confined to the merge loop below.
            let _shard_span = span_ref.as_ref().map(|s| s.child("shard"));
            let state = self.attempt_shard(
                i,
                shards_ref[i],
                trace_ref,
                tables_ref,
                script_ref,
                cancel_ref,
                cost,
            );
            if let ShardState::Done(outcomes, stats, _, _, _) = &state {
                if let Some(j) = journal_ref {
                    #[cfg(feature = "chaos")]
                    let drop_write = self
                        .chaos
                        .as_ref()
                        .is_some_and(|p| p.should_fail_checkpoint(i));
                    #[cfg(not(feature = "chaos"))]
                    let drop_write = false;
                    if drop_write {
                        lock(notes_ref).push(format!(
                            "journal: chaos-injected write failure for shard {i} (not journaled)"
                        ));
                    } else if let Err(e) = j.record(i, outcomes, stats) {
                        lock(notes_ref).push(format!("journal: failed to record shard {i}: {e}"));
                    }
                }
            }
            lock(slots_ref)[i] = Some(state);
        };

        let workers = self.jobs.min(nshards.max(1));
        if workers <= 1 {
            for i in 0..nshards {
                process(i);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= nshards {
                            break;
                        }
                        process(i);
                    });
                }
            });
        }

        // Durability barrier: close the channel and join the writer
        // thread — it drains every pending record and fsyncs the tail
        // batch before this run reports its shards as journaled.
        if let Some(j) = &mut journal {
            let writer_notes = j.finish();
            if !writer_notes.is_empty() {
                lock(&notes_mx).extend(writer_notes);
            }
        }

        // Merge in shard order: restored and fresh shards interleave into
        // exactly the partition a clean run produces.
        let mut outcomes = Vec::with_capacity(sim_faults.len());
        let mut stats = CampaignStats::default();
        let mut diff = DiffStats::default();
        let mut packed = PackedStats::default();
        let mut sym = SymbolicEngineStats::default();
        let mut failures = Vec::new();
        let mut skipped = Vec::new();
        let mut restored_count = 0;
        let mut slots = slots.into_inner().unwrap_or_else(|e| e.into_inner());
        // Events only here: serial, shard-ordered, thread-count blind.
        let shard_event = |st: &CampaignStats, i: usize, restored: bool| {
            if let Some(tel) = &self.telemetry {
                tel.event(
                    "campaign.shard",
                    &[
                        ("shard", i as u64),
                        ("faults", st.faults_simulated as u64),
                        ("detected", st.detected as u64),
                        ("excited", st.excited as u64),
                        ("masked", st.masked as u64),
                        ("escapes", st.escapes as u64),
                        ("restored", u64::from(restored)),
                    ],
                );
            }
        };
        for (i, restored_shard) in restored.into_iter().enumerate() {
            if let Some((outs, st)) = restored_shard {
                restored_count += 1;
                shard_event(&st, i, true);
                stats.merge(&st);
                outcomes.extend(outs);
                continue;
            }
            match slots[i].take() {
                Some(ShardState::Done(outs, st, sd, sp, ss)) => {
                    shard_event(&st, i, false);
                    stats.merge(&st);
                    diff.merge(&sd);
                    packed.merge(&sp);
                    sym.merge(&ss);
                    outcomes.extend(outs);
                }
                Some(ShardState::Poisoned { attempts, message }) => {
                    if let Some(tel) = &self.telemetry {
                        tel.event(
                            "campaign.shard_poisoned",
                            &[
                                ("shard", i as u64),
                                ("faults", shards[i].len() as u64),
                                ("attempts", attempts as u64),
                            ],
                        );
                    }
                    failures.push(ShardFailure {
                        shard: i,
                        faults: shards[i].len(),
                        attempts,
                        message,
                    });
                }
                Some(ShardState::Cancelled) | None => {
                    if let Some(tel) = &self.telemetry {
                        tel.event(
                            "campaign.shard_skipped",
                            &[("shard", i as u64), ("faults", shards[i].len() as u64)],
                        );
                    }
                    skipped.push(i);
                }
            }
        }
        let is_complete = failures.is_empty() && skipped.is_empty();
        if let Some(tel) = &self.telemetry {
            tel.counter_add("campaign.faults_simulated", stats.faults_simulated as u64);
            tel.counter_add("campaign.faults_detected", stats.detected as u64);
            tel.counter_add("campaign.faults_excited", stats.excited as u64);
            tel.counter_add("campaign.faults_masked", stats.masked as u64);
            tel.counter_add("campaign.escapes", stats.escapes as u64);
            tel.counter_add("campaign.shards", stats.shards as u64);
            tel.counter_add("campaign.shards_restored", restored_count as u64);
            tel.counter_add("campaign.shards_skipped", skipped.len() as u64);
            tel.counter_add("campaign.shards_poisoned", failures.len() as u64);
            // Differential-effort counters, merged serially in shard
            // order from freshly simulated shards only (restored shards
            // did no simulation this run). The packed engine shares the
            // differential accounting and adds its word counters; the
            // symbolic engine reports BDD-package effort instead.
            if matches!(self.engine, Engine::Differential | Engine::Packed) {
                tel.counter_add(
                    simcov_obs::names::CAMPAIGN_FAULTS_SKIPPED_BY_INDEX,
                    diff.faults_skipped_by_index as u64,
                );
                tel.counter_add(
                    simcov_obs::names::CAMPAIGN_PREFIX_STEPS_SAVED,
                    diff.prefix_steps_saved as u64,
                );
                tel.counter_add(
                    simcov_obs::names::CAMPAIGN_DIVERGENCE_REPLAYS,
                    diff.divergence_replays as u64,
                );
            }
            if self.engine == Engine::Packed {
                tel.counter_add(
                    simcov_obs::names::CAMPAIGN_PACKED_WORDS,
                    packed.packed_words as u64,
                );
                tel.counter_add(
                    simcov_obs::names::CAMPAIGN_LANES_ACTIVE,
                    packed.lanes_active as u64,
                );
            }
            // Summed from freshly simulated shards in shard order;
            // byte-identical across `--jobs` (see `simcov_obs::names`).
            if self.engine == Engine::Symbolic {
                tel.counter_add(simcov_obs::names::BDD_UNIQUE_NODES, sym.unique_nodes);
                tel.counter_add(simcov_obs::names::BDD_ITE_CACHE_HITS, sym.ite_cache_hits);
                tel.counter_add(
                    simcov_obs::names::BDD_ITE_CACHE_MISSES,
                    sym.ite_cache_misses,
                );
                tel.counter_add(simcov_obs::names::BDD_GC_COLLECTIONS, sym.gc_collections);
            }
        }
        drop(span);
        let detected_lo = stats.detected;
        let unsimulated = sim_faults.len() - stats.faults_simulated;
        Ok(ResilientRun {
            report: CampaignReport { outcomes },
            stats,
            is_complete,
            failures,
            skipped,
            stopped: cancel.reason(),
            restored_shards: restored_count,
            journal_notes: notes_mx.into_inner().unwrap_or_else(|e| e.into_inner()),
            bounds: CoverageBounds {
                detected_lo,
                detected_hi: detected_lo + unsimulated,
                total_faults: sim_faults.len(),
            },
            total_faults: sim_faults.len(),
            total_shards: nshards,
            jobs: self.jobs,
            wall: t0.elapsed(),
            diff,
            packed,
            sym,
            collapse: None,
        })
    }

    /// Attempts one shard with panic isolation and the retry budget.
    /// `trace` is the shared golden memo (`Some` unless the engine is
    /// naive); `tables` the shared packed transition tables (`Some` iff
    /// the engine is packed).
    #[cfg_attr(not(feature = "chaos"), allow(unused_variables))]
    #[allow(clippy::too_many_arguments)] // one optional shared lowering per engine
    fn attempt_shard(
        &self,
        shard_idx: usize,
        shard: &[Fault],
        trace: Option<&GoldenTrace>,
        tables: Option<&PackedMealy>,
        script: Option<&ReplayScript>,
        cancel: &Cancel,
        cost: u64,
    ) -> ShardState {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(feature = "chaos")]
                if let Some(plan) = &self.chaos {
                    if let Some(d) = plan.delay(shard_idx, attempts) {
                        std::thread::sleep(d);
                    }
                    if plan.should_panic(shard_idx, attempts) {
                        std::panic::panic_any(format!(
                            "chaos: injected panic in shard {shard_idx} attempt {attempts}"
                        ));
                    }
                }
                let mut shard_diff = DiffStats::default();
                let mut shard_packed = PackedStats::default();
                let mut shard_sym = SymbolicEngineStats::default();
                if self.engine == Engine::Symbolic {
                    // Symbolic engine: like the packed engine the walk is
                    // shard-at-a-time, so charge the whole shard's budget
                    // up front with the same per-fault deductions as the
                    // scalar loop (partial shards are never reported).
                    for _ in shard {
                        if !cancel.charge(cost) {
                            return None;
                        }
                    }
                    let ctx = self
                        .symbolic
                        .expect("Engine::Symbolic requires ResilientCampaign::symbolic(ctx)");
                    let outcomes = simulate_shard_symbolic(
                        ctx,
                        self.golden,
                        shard,
                        self.tests,
                        &mut shard_sym,
                    );
                    return Some((outcomes, shard_diff, shard_packed, shard_sym));
                }
                if let Some(tables) = tables {
                    // Packed engine: the word replay is shard-at-a-time,
                    // so charge the whole shard's budget up front — the
                    // same per-fault deductions, in the same fault order,
                    // as the scalar loop below, so budgets admit work at
                    // identical points under every engine. A mid-shard
                    // refusal cancels the whole shard, exactly like a
                    // mid-shard refusal in the scalar loop (partial
                    // shards are never reported or journaled).
                    for _ in shard {
                        if !cancel.charge(cost) {
                            return None;
                        }
                    }
                    let trace = trace.expect("packed engine always builds a trace");
                    let script = script.expect("packed engine always builds a script");
                    let outcomes = simulate_shard_packed(
                        self.golden,
                        tables,
                        trace,
                        script,
                        shard,
                        self.tests,
                        &mut shard_diff,
                        &mut shard_packed,
                    );
                    return Some((outcomes, shard_diff, shard_packed, shard_sym));
                }
                let mut outcomes = Vec::with_capacity(shard.len());
                for f in shard {
                    // Cancellation charges the full per-fault cost before
                    // simulating regardless of engine: budgets must admit
                    // the same prefix of faults under either engine so
                    // truncation points (and resumes from them) stay
                    // deterministic and engine-independent.
                    if !cancel.charge(cost) {
                        return None;
                    }
                    outcomes.push(match trace {
                        Some(trace) => simulate_fault_differential(
                            self.golden,
                            trace,
                            f,
                            self.tests,
                            &mut shard_diff,
                        ),
                        None => simulate_fault(self.golden, f, self.tests),
                    });
                }
                Some((outcomes, shard_diff, shard_packed, shard_sym))
            }));
            match result {
                Ok(Some((outcomes, shard_diff, shard_packed, shard_sym))) => {
                    let stats = CampaignStats::tally(&outcomes);
                    return ShardState::Done(outcomes, stats, shard_diff, shard_packed, shard_sym);
                }
                Ok(None) => return ShardState::Cancelled,
                Err(payload) => {
                    if attempts > self.max_retries {
                        return ShardState::Poisoned {
                            attempts,
                            // `&*payload`: downcast the payload itself, not
                            // the `Box<dyn Any>` unsized into `dyn Any`.
                            message: panic_message(&*payload),
                        };
                    }
                    // Counter, not event: retries are observed from worker
                    // threads, and counter addition is order-blind.
                    if let Some(tel) = &self.telemetry {
                        tel.counter_add("campaign.shards_retried", 1);
                    }
                }
            }
        }
    }
}

/// Locks a mutex, recovering the data even if a holder panicked (the
/// supervisor must keep going exactly when other code is failing).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{enumerate_single_faults, extend_cyclically, FaultSpace};
    use crate::parallel::FaultCampaign;
    use crate::testutil::figure2;
    use simcov_tour::transition_tour;

    fn fixture() -> (ExplicitMealy, Vec<Fault>, TestSet) {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tour = transition_tour(&m).unwrap();
        let tests = TestSet::single(extend_cyclically(&tour.inputs, 3));
        (m, faults, tests)
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "simcov_resilient_{tag}_{}_{:?}.journal",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn complete_run_matches_plain_campaign() {
        let (m, faults, tests) = fixture();
        for jobs in [1, 2, 8] {
            let plain = FaultCampaign::new(&m, &faults, &tests).jobs(jobs).run();
            let resilient = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(jobs)
                .run()
                .unwrap();
            assert!(resilient.is_complete);
            assert_eq!(resilient.stopped, None);
            assert_eq!(resilient.stats, plain.stats, "jobs={jobs}");
            assert_eq!(resilient.report, plain.report, "jobs={jobs}");
            assert_eq!(resilient.bounds.detected_lo, resilient.bounds.detected_hi);
        }
    }

    #[test]
    fn zero_deadline_truncates_with_accurate_accounting() {
        let (m, faults, tests) = fixture();
        let run = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .deadline(Duration::ZERO)
            .run()
            .unwrap();
        assert!(!run.is_complete);
        assert_eq!(run.stopped, Some(StopReason::Deadline));
        assert_eq!(run.stats.faults_simulated, 0);
        assert_eq!(run.skipped.len(), run.total_shards);
        assert_eq!(run.bounds.detected_lo, 0);
        assert_eq!(run.bounds.detected_hi, faults.len());
        assert!((run.bounds.rate_hi() - 1.0).abs() < 1e-12);
        assert!(run.bounds.to_string().contains("detection rate"));
    }

    #[test]
    fn zero_deadline_expires_immediately_regardless_of_jobs() {
        // Regression: a zero deadline must uniformly mean "expire
        // immediately" — zero faults simulated, every shard skipped —
        // not "whatever the first clock read decides".
        let (m, faults, tests) = fixture();
        for jobs in [1, 4] {
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(jobs)
                .deadline(Duration::ZERO)
                .run()
                .unwrap();
            assert_eq!(run.stats.faults_simulated, 0, "jobs={jobs}");
            assert_eq!(run.stopped, Some(StopReason::Deadline), "jobs={jobs}");
            assert_eq!(run.skipped.len(), run.total_shards, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_deadline_with_resume_still_restores_the_journal() {
        // Documented: journal restoration costs no simulation steps, so
        // deadline(ZERO) + resume audits a checkpoint without simulating.
        let (m, faults, tests) = fixture();
        let path = temp_path("zero_resume");
        let _c = Cleanup(path.clone());
        let full = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .shard_size(5)
            .checkpoint(&path)
            .run()
            .unwrap();
        assert!(full.is_complete);
        let audit = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .shard_size(5)
            .deadline(Duration::ZERO)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap();
        assert_eq!(audit.restored_shards, audit.total_shards);
        assert!(audit.is_complete, "nothing remained to simulate");
        assert_eq!(audit.stats, full.stats);
        assert_eq!(audit.stopped, Some(StopReason::Deadline));
    }

    #[test]
    fn telemetry_counters_reconcile_and_trace_is_thread_count_blind() {
        let (m, faults, tests) = fixture();
        let traces: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&jobs| {
                let path = temp_path(&format!("tel{jobs}"));
                let _c = Cleanup(path.clone());
                let tel = Telemetry::new();
                let run = ResilientCampaign::new(&m, &faults, &tests)
                    .jobs(jobs)
                    .shard_size(5)
                    .checkpoint(&path)
                    .telemetry(tel.clone())
                    .run()
                    .unwrap();
                assert!(run.is_complete);
                let snap = tel.snapshot();
                assert_eq!(
                    snap.counter("campaign.faults_simulated"),
                    Some(run.stats.faults_simulated as u64)
                );
                assert_eq!(
                    snap.counter("campaign.faults_detected"),
                    Some(run.stats.detected as u64)
                );
                assert_eq!(
                    snap.counter("campaign.checkpoint_bytes"),
                    Some(
                        std::fs::metadata(&path).unwrap().len() - {
                            // Header lines precede the first shard record.
                            let text = std::fs::read_to_string(&path).unwrap();
                            text.lines()
                                .take(2)
                                .map(|l| l.len() as u64 + 1)
                                .sum::<u64>()
                        }
                    ),
                    "checkpoint_bytes covers exactly the shard records"
                );
                assert_eq!(snap.events.len(), run.total_shards);
                snap.to_jsonl()
            })
            .collect();
        assert_eq!(traces[0], traces[1]);
        assert_eq!(traces[0], traces[2]);
    }

    #[test]
    fn step_budget_admits_partial_prefix_of_work() {
        let (m, faults, tests) = fixture();
        let cost = tests.total_vectors() as u64;
        // Budget for roughly half the faults, serial so admission order
        // is the shard order.
        let budget = cost * (faults.len() as u64 / 2);
        let run = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(7)
            .max_steps(budget)
            .run()
            .unwrap();
        assert!(!run.is_complete);
        assert_eq!(run.stopped, Some(StopReason::StepBudget));
        assert!(run.stats.faults_simulated <= faults.len() / 2 + 7);
        assert!(!run.skipped.is_empty());
        // Every simulated outcome is exact: it matches the clean run's
        // prefix for the completed shards.
        let clean = FaultCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(7)
            .run();
        assert_eq!(
            run.report.outcomes[..],
            clean.report.outcomes[..run.report.outcomes.len()]
        );
    }

    #[test]
    fn checkpoint_then_resume_is_byte_identical() {
        let (m, faults, tests) = fixture();
        let path = temp_path("resume");
        let _c = Cleanup(path.clone());
        let clean = FaultCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .shard_size(5)
            .run();
        // Truncated first run: journal whatever completes.
        let cost = tests.total_vectors() as u64;
        let first = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .shard_size(5)
            .max_steps(cost * 40)
            .checkpoint(&path)
            .run()
            .unwrap();
        assert!(!first.is_complete);
        // Resume: only the missing shards are simulated.
        let resumed = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .shard_size(5)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap();
        assert!(resumed.is_complete, "notes: {:?}", resumed.journal_notes);
        assert!(resumed.restored_shards > 0);
        assert_eq!(resumed.stats, clean.stats);
        assert_eq!(resumed.report, clean.report);
    }

    #[test]
    fn engines_agree_under_supervision() {
        let (m, faults, tests) = fixture();
        let naive = ResilientCampaign::new(&m, &faults, &tests)
            .engine(Engine::Naive)
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(naive.diff, DiffStats::default(), "naive does no diffing");
        for jobs in [1, 2, 8] {
            let differential = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(jobs)
                .run()
                .unwrap();
            assert_eq!(differential.report, naive.report, "jobs={jobs}");
            assert_eq!(differential.stats, naive.stats, "jobs={jobs}");
            let packed = ResilientCampaign::new(&m, &faults, &tests)
                .engine(Engine::Packed)
                .jobs(jobs)
                .run()
                .unwrap();
            assert_eq!(packed.report, naive.report, "packed, jobs={jobs}");
            assert_eq!(packed.stats, naive.stats, "packed, jobs={jobs}");
            assert_eq!(
                packed.diff, differential.diff,
                "packed saves exactly the differential effort, jobs={jobs}"
            );
        }
    }

    #[test]
    fn packed_checkpoint_resumes_under_naive_bit_identically() {
        // The engine is excluded from the journal fingerprint, so a
        // campaign interrupted under the packed engine must resume
        // soundly — and bit-identically — under the naive oracle.
        let (m, faults, tests) = fixture();
        let path = temp_path("packed_to_naive");
        let _c = Cleanup(path.clone());
        let clean = FaultCampaign::new(&m, &faults, &tests)
            .engine(Engine::Naive)
            .jobs(2)
            .shard_size(5)
            .run();
        let cost = tests.total_vectors() as u64;
        let first = ResilientCampaign::new(&m, &faults, &tests)
            .engine(Engine::Packed)
            .jobs(2)
            .shard_size(5)
            .max_steps(cost * 40)
            .checkpoint(&path)
            .run()
            .unwrap();
        assert!(!first.is_complete);
        let header_under_packed: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .take(2)
            .map(str::to_string)
            .collect();
        let resumed = ResilientCampaign::new(&m, &faults, &tests)
            .engine(Engine::Naive)
            .jobs(2)
            .shard_size(5)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap();
        assert!(resumed.is_complete, "notes: {:?}", resumed.journal_notes);
        assert!(resumed.restored_shards > 0);
        assert_eq!(resumed.stats, clean.stats);
        assert_eq!(resumed.report, clean.report);
        assert_eq!(
            resumed.packed,
            PackedStats::default(),
            "naive packs nothing"
        );
        // The fingerprint header a naive run writes is byte-identical to
        // the packed run's — the engine really is outside the fingerprint.
        let path2 = temp_path("naive_header");
        let _c2 = Cleanup(path2.clone());
        ResilientCampaign::new(&m, &faults, &tests)
            .engine(Engine::Naive)
            .jobs(1)
            .shard_size(5)
            .max_steps(0)
            .checkpoint(&path2)
            .run()
            .unwrap();
        let header_under_naive: Vec<String> = std::fs::read_to_string(&path2)
            .unwrap()
            .lines()
            .take(2)
            .map(str::to_string)
            .collect();
        assert_eq!(header_under_packed, header_under_naive);
    }

    #[test]
    fn batched_journal_writes_survive_truncation_at_any_offset() {
        // write_shard batches fsyncs (one per JOURNAL_SYNC_BYTES, plus a
        // finish() barrier), so a crash may tear the file anywhere — not
        // just inside the last record. Any prefix must restore exactly
        // its complete records and re-run the rest.
        let (m, faults, tests) = fixture();
        let path = temp_path("any_offset");
        let _c = Cleanup(path.clone());
        let clean = FaultCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(5)
            .run();
        ResilientCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(5)
            .checkpoint(&path)
            .run()
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let header_end = {
            let mut it = text.match_indices('\n');
            it.next();
            it.next().map(|(i, _)| i + 1).unwrap()
        };
        for frac in [0, 1, 2, 3, 5, 7, 8] {
            let cut = header_end + (text.len() - header_end) * frac / 8;
            std::fs::write(&path, &text[..cut]).unwrap();
            let resumed = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(1)
                .shard_size(5)
                .checkpoint(&path)
                .resume(true)
                .run()
                .unwrap();
            assert!(resumed.is_complete, "cut at {cut} bytes");
            assert_eq!(resumed.stats, clean.stats, "cut at {cut} bytes");
            assert_eq!(resumed.report, clean.report, "cut at {cut} bytes");
        }
    }

    #[test]
    fn cross_engine_checkpoint_resume_is_byte_identical() {
        // The engine is deliberately not part of the journal fingerprint:
        // outcomes are engine-independent, so a campaign interrupted
        // under the naive engine must resume soundly (and bit-identically)
        // under the differential one.
        let (m, faults, tests) = fixture();
        let path = temp_path("cross_engine");
        let _c = Cleanup(path.clone());
        let clean = FaultCampaign::new(&m, &faults, &tests)
            .jobs(2)
            .shard_size(5)
            .run();
        let cost = tests.total_vectors() as u64;
        let first = ResilientCampaign::new(&m, &faults, &tests)
            .engine(Engine::Naive)
            .jobs(2)
            .shard_size(5)
            .max_steps(cost * 40)
            .checkpoint(&path)
            .run()
            .unwrap();
        assert!(!first.is_complete);
        let resumed = ResilientCampaign::new(&m, &faults, &tests)
            .engine(Engine::Differential)
            .jobs(2)
            .shard_size(5)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap();
        assert!(resumed.is_complete, "notes: {:?}", resumed.journal_notes);
        assert!(resumed.restored_shards > 0);
        assert_eq!(resumed.stats, clean.stats);
        assert_eq!(resumed.report, clean.report);
        // Only the freshly simulated shards did differential work.
        assert!(resumed.diff.divergence_replays > 0);
        assert!(resumed.diff.divergence_replays < clean.diff.divergence_replays);
    }

    #[test]
    fn resume_with_missing_journal_starts_fresh() {
        let (m, faults, tests) = fixture();
        let path = temp_path("fresh");
        let _c = Cleanup(path.clone());
        assert!(!path.exists());
        let run = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap();
        assert!(run.is_complete);
        assert_eq!(run.restored_shards, 0);
        assert!(path.exists());
    }

    #[test]
    fn journal_of_different_campaign_is_rejected() {
        let (m, faults, tests) = fixture();
        let path = temp_path("mismatch");
        let _c = Cleanup(path.clone());
        ResilientCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .checkpoint(&path)
            .run()
            .unwrap();
        // Same machine, different fault list => different fingerprint.
        let fewer = &faults[..faults.len() - 1];
        let err = ResilientCampaign::new(&m, fewer, &tests)
            .jobs(1)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, CampaignError::JournalMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn unknown_journal_version_is_rejected() {
        let (m, faults, tests) = fixture();
        let path = temp_path("version");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, "simcov-journal v999\ncampaign x\n").unwrap();
        let err = ResilientCampaign::new(&m, &faults, &tests)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn torn_journal_tail_is_discarded_and_rerun() {
        let (m, faults, tests) = fixture();
        let path = temp_path("torn");
        let _c = Cleanup(path.clone());
        let clean = FaultCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(5)
            .run();
        ResilientCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(5)
            .checkpoint(&path)
            .run()
            .unwrap();
        // Tear the file mid-record, as a SIGKILL during a write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() * 3 / 4;
        std::fs::write(&path, &text[..cut]).unwrap();
        let resumed = ResilientCampaign::new(&m, &faults, &tests)
            .jobs(1)
            .shard_size(5)
            .checkpoint(&path)
            .resume(true)
            .run()
            .unwrap();
        assert!(resumed.is_complete);
        assert_eq!(resumed.stats, clean.stats);
        assert_eq!(resumed.report, clean.report);
    }

    #[test]
    fn outcome_encoding_roundtrips() {
        let samples = [
            FaultOutcome {
                fault: Fault {
                    state: StateId(3),
                    input: InputSym(1),
                    kind: FaultKind::Transfer {
                        new_next: StateId(9),
                    },
                },
                detected: Some((2, 17)),
                excited: true,
                masked_somewhere: false,
            },
            FaultOutcome {
                fault: Fault {
                    state: StateId(0),
                    input: InputSym(0),
                    kind: FaultKind::Output {
                        new_output: OutputSym(4),
                    },
                },
                detected: None,
                excited: false,
                masked_somewhere: true,
            },
        ];
        for o in &samples {
            let line = encode_outcome(o);
            assert_eq!(decode_outcome(&line).as_ref(), Some(o), "{line}");
        }
        assert_eq!(decode_outcome("o 1 2 z 3 - 0 0"), None);
        assert_eq!(decode_outcome("garbage"), None);
        assert_eq!(decode_outcome("o 1 2 t 3 - 0 0 extra"), None);
    }

    #[test]
    fn empty_fault_list_is_trivially_complete() {
        let (m, _, tests) = fixture();
        let run = ResilientCampaign::new(&m, &[], &tests).run().unwrap();
        assert!(run.is_complete);
        assert_eq!(run.total_shards, 0);
        assert_eq!(run.stats, CampaignStats::default());
        assert!((run.bounds.rate_lo() - 1.0).abs() < 1e-12);
    }

    #[cfg(feature = "chaos")]
    mod chaos_tests {
        use super::*;
        use crate::resilient::chaos::{silence_chaos_panics, ChaosPlan};

        #[test]
        fn chaos_decisions_are_deterministic() {
            let plan = ChaosPlan {
                panic_prob: 0.5,
                delay_prob: 0.5,
                checkpoint_fail_prob: 0.5,
                ..ChaosPlan::new(42)
            };
            for shard in 0..32 {
                for attempt in 1..4 {
                    assert_eq!(
                        plan.should_panic(shard, attempt),
                        plan.should_panic(shard, attempt)
                    );
                    assert_eq!(plan.delay(shard, attempt), plan.delay(shard, attempt));
                }
                assert_eq!(
                    plan.should_fail_checkpoint(shard),
                    plan.should_fail_checkpoint(shard)
                );
            }
            // A 50% plan actually injects something over 32 shards.
            assert!((0..32).any(|s| plan.should_panic(s, 1)));
            assert!((0..32).any(|s| !plan.should_panic(s, 1)));
        }

        #[test]
        fn injected_panics_are_isolated_and_retried_to_success() {
            silence_chaos_panics();
            let (m, faults, tests) = fixture();
            // Panic often, but with a generous retry budget every shard
            // eventually draws a non-panicking attempt (p = 0.3^11 per
            // shard of exhausting all attempts — negligible, and the
            // chaos schedule is deterministic per seed anyway).
            let plan = ChaosPlan {
                panic_prob: 0.3,
                ..ChaosPlan::new(7)
            };
            let clean = FaultCampaign::new(&m, &faults, &tests)
                .jobs(2)
                .shard_size(5)
                .run();
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(2)
                .shard_size(5)
                .max_retries(10)
                .chaos(plan)
                .run()
                .unwrap();
            assert!(run.is_complete, "failures: {:?}", run.failures);
            assert_eq!(run.stats, clean.stats);
            assert_eq!(run.report, clean.report);
        }

        #[test]
        fn exhausted_retries_quarantine_the_shard() {
            silence_chaos_panics();
            let (m, faults, tests) = fixture();
            // Always panic: every shard poisons after 1 + max_retries.
            let plan = ChaosPlan {
                panic_prob: 1.0,
                ..ChaosPlan::new(3)
            };
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(2)
                .shard_size(5)
                .max_retries(1)
                .chaos(plan)
                .run()
                .unwrap();
            assert!(!run.is_complete);
            assert_eq!(run.stopped, None, "panics are not cancellation");
            assert_eq!(run.failures.len(), run.total_shards);
            assert_eq!(run.stats.faults_simulated, 0);
            for f in &run.failures {
                assert_eq!(f.attempts, 2);
                assert!(f.message.contains("chaos"), "{f}");
                assert!(f.to_string().contains("poisoned"));
            }
            assert_eq!(run.bounds.detected_hi, faults.len());
        }

        #[test]
        fn checkpoint_write_failures_degrade_not_corrupt() {
            silence_chaos_panics();
            let (m, faults, tests) = fixture();
            let path = temp_path("ckptfail");
            let _c = Cleanup(path.clone());
            let plan = ChaosPlan {
                checkpoint_fail_prob: 0.5,
                ..ChaosPlan::new(11)
            };
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(2)
                .shard_size(5)
                .checkpoint(&path)
                .chaos(plan)
                .run()
                .unwrap();
            assert!(run.is_complete, "write failures must not fail the run");
            assert!(
                run.journal_notes.iter().any(|n| n.contains("chaos")),
                "{:?}",
                run.journal_notes
            );
            // The journal holds a subset of shards; resuming restores that
            // subset, re-runs the rest, and still matches a clean run.
            let clean = FaultCampaign::new(&m, &faults, &tests)
                .jobs(1)
                .shard_size(5)
                .run();
            let resumed = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(1)
                .shard_size(5)
                .checkpoint(&path)
                .resume(true)
                .run()
                .unwrap();
            assert!(resumed.is_complete);
            assert!(resumed.restored_shards < resumed.total_shards);
            assert_eq!(resumed.stats, clean.stats);
            assert_eq!(resumed.report, clean.report);
        }
    }

    mod collapse_modes {
        use super::*;
        use crate::{ClassKind, CollapseCertificate, CollapseMode};

        fn singleton_cert(m: &ExplicitMealy, faults: &[Fault]) -> CollapseCertificate {
            let class_of: Vec<u32> = (0..faults.len() as u32).collect();
            let kinds = vec![ClassKind::Singleton; faults.len()];
            CollapseCertificate::new(m, faults, class_of, kinds, Vec::new()).unwrap()
        }

        #[test]
        fn collapse_on_complete_matches_uncollapsed() {
            let (m, faults, tests) = fixture();
            let cert = singleton_cert(&m, &faults);
            let off = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(2)
                .run()
                .unwrap();
            for jobs in [1, 2, 8] {
                let on = ResilientCampaign::new(&m, &faults, &tests)
                    .jobs(jobs)
                    .collapse(&cert, CollapseMode::On)
                    .run()
                    .unwrap();
                assert!(on.is_complete);
                assert_eq!(on.report, off.report, "jobs={jobs}");
                assert_eq!(on.stats, off.stats, "jobs={jobs}");
                assert_eq!(on.bounds, off.bounds, "jobs={jobs}");
                let summary = on.collapse.expect("collapse run carries a summary");
                assert_eq!(summary.collapsed_faults, 0, "singletons prune nothing");
            }
            assert!(off.collapse.is_none());
        }

        #[test]
        fn collapse_on_partial_bounds_cover_the_full_universe() {
            let (m, faults, tests) = fixture();
            let cert = singleton_cert(&m, &faults);
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .jobs(1)
                .shard_size(5)
                .deadline(Duration::ZERO)
                .collapse(&cert, CollapseMode::On)
                .run()
                .unwrap();
            assert!(!run.is_complete);
            assert_eq!(run.stopped, Some(StopReason::Deadline));
            assert!(run.report.outcomes.is_empty());
            assert_eq!(run.total_faults, faults.len());
            assert_eq!(run.bounds.total_faults, faults.len());
            assert_eq!(run.bounds.detected_hi, faults.len());
        }

        #[test]
        fn collapse_verify_audits_complete_runs() {
            let (m, faults, tests) = fixture();
            let sound = singleton_cert(&m, &faults);
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .collapse(&sound, CollapseMode::Verify)
                .run()
                .unwrap();
            assert!(run.is_complete);
            let summary = run.collapse.unwrap();
            assert!(summary.violations.is_empty());
            // A bogus one-big-class certificate is caught.
            let bogus = CollapseCertificate::new(
                &m,
                &faults,
                vec![0; faults.len()],
                vec![ClassKind::Singleton],
                Vec::new(),
            )
            .unwrap();
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .collapse(&bogus, CollapseMode::Verify)
                .run()
                .unwrap();
            assert!(!run.collapse.unwrap().violations.is_empty());
        }

        #[test]
        fn collapse_verify_skips_audit_on_incomplete_runs() {
            let (m, faults, tests) = fixture();
            let cert = singleton_cert(&m, &faults);
            let run = ResilientCampaign::new(&m, &faults, &tests)
                .deadline(Duration::ZERO)
                .collapse(&cert, CollapseMode::Verify)
                .run()
                .unwrap();
            assert!(!run.is_complete);
            let summary = run.collapse.unwrap();
            assert!(summary.violations.is_empty());
            assert!(
                run.journal_notes
                    .iter()
                    .any(|n| n.contains("verify audit skipped")),
                "{:?}",
                run.journal_notes
            );
        }

        #[test]
        fn stale_certificate_is_a_campaign_error() {
            let (m, faults, tests) = fixture();
            let cert = singleton_cert(&m, &faults[1..]);
            let err = ResilientCampaign::new(&m, &faults, &tests)
                .collapse(&cert, CollapseMode::On)
                .run()
                .unwrap_err();
            assert!(matches!(err, CampaignError::Certificate { .. }), "{err}");
        }

        #[test]
        fn collapsed_and_uncollapsed_journals_never_cross_resume() {
            let (m, faults, tests) = fixture();
            let path = temp_path("collapse_cross");
            let _cleanup = Cleanup(path.clone());
            // Journal a plain run, then try to resume it collapsed: even
            // though singleton pruning keeps the same fault list length,
            // an *actually pruning* certificate would not — and the
            // fingerprint guards both cases. Exercise it with a genuinely
            // pruned list: two faults in one class.
            let merged = CollapseCertificate::new(
                &m,
                &faults,
                std::iter::once(0u32)
                    .chain(std::iter::once(0u32))
                    .chain(1..faults.len() as u32 - 1)
                    .collect(),
                vec![ClassKind::Singleton; faults.len() - 1],
                Vec::new(),
            )
            .unwrap();
            assert_eq!(merged.collapsed_faults(), 1);
            ResilientCampaign::new(&m, &faults, &tests)
                .checkpoint(&path)
                .run()
                .unwrap();
            let err = ResilientCampaign::new(&m, &faults, &tests)
                .checkpoint(&path)
                .resume(true)
                .collapse(&merged, CollapseMode::On)
                .run()
                .unwrap_err();
            assert!(
                matches!(err, CampaignError::JournalMismatch { .. }),
                "{err}"
            );
        }
    }
}

//! Constrained-random simulation with symbolic coverage measurement —
//! the modern face of the paper's input don't-cares.
//!
//! Inputs are sampled uniformly from the valid-input constraint (a BDD),
//! the model is simulated cycle by cycle, and transition coverage is
//! accumulated symbolically. On the full 22-latch DLX test model the
//! coverage after tens of thousands of cycles is a vanishing fraction of
//! the 287 million transitions — the gap that motivates tour-based,
//! coverage-directed test generation.
//!
//! Run with: `cargo run --release --example constrained_random`

use simcov::dlx::testmodel::{derive_test_model, valid_inputs_bdd};
use simcov::fsm::{CoverageAccumulator, SymbolicFsm};

fn main() {
    let (model, _) = derive_test_model();
    let mut fsm = SymbolicFsm::from_netlist(&model);
    let valid = valid_inputs_bdd(&mut fsm);
    fsm.set_valid_inputs(valid);
    let reach = fsm.reachable();
    let total = fsm.count_transitions(reach.reached);
    println!(
        "model: {} — {} reachable states, {} transitions",
        model.stats(),
        fsm.count_states(reach.reached),
        total
    );

    let in_vars: Vec<simcov::bdd::Var> = (0..fsm.num_inputs()).map(|k| fsm.input_var(k)).collect();
    let mut acc = CoverageAccumulator::new();
    let mut state = model.initial_state();
    let mut rng: u128 = 0x853c49e6748fea9b;
    for cycle in 1..=20_000u32 {
        let minterm = fsm
            .mgr_ref()
            .sample_minterm(fsm.valid_inputs(), &in_vars, |bound| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng % bound
            })
            .expect("the valid-input constraint is satisfiable");
        let assignment = minterm.to_assignment((2 * fsm.num_latches() + fsm.num_inputs()) as u32);
        let inputs: Vec<bool> = (0..fsm.num_inputs())
            .map(|k| assignment[fsm.input_var(k).0 as usize])
            .collect();
        fsm.record_visit(&mut acc, &state, &inputs);
        let (next, _) = model.step(&state, &inputs);
        state = next;
        if cycle % 5_000 == 0 {
            let covered = fsm.coverage_count(&acc);
            println!(
                "after {cycle:>6} cycles: {covered:>7} transitions covered ({:.5}% of {total})",
                100.0 * covered as f64 / total as f64
            );
        }
    }
    println!("\n(the transition-tour methodology covers all of them, with a certificate)");
}

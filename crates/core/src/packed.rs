//! Bit-parallel (word-packed) fault simulation: up to 64 suffix replays
//! advanced lane-parallel over struct-of-arrays transition tables.
//!
//! The differential engine ([`crate::differential`]) already skips every
//! provably redundant step, but what remains — the golden-trace build and
//! each divergence replay — is a *serial pointer chase*: every table
//! lookup depends on the state the previous lookup produced, so on a
//! model whose table outgrows L1 the engine is latency-bound, not
//! compute-bound. This module attacks exactly that:
//!
//! 1. Faults in a shard are classified in fault order with the same O(1)
//!    index fast paths as the differential engine (unexcited skip,
//!    index-only output classification, ineffective transfer). Only
//!    **effective transfer faults** — the ones needing replay — enter
//!    the `LanePool`, which keeps up to [`LANES`] of them in flight.
//! 2. The pool replays its live lanes together, one micro-step per lane
//!    per round, over the [`PackedMealy`] struct-of-arrays tables, and
//!    refills a slot the moment its lane retires. Each lane carries its
//!    own [`LanePatch`] (the packed `PatchedMealy`), its own excitation
//!    cursor and its own masking scan, so the 64 mutants stay fully
//!    independent — but their table loads are issued back-to-back with
//!    no data dependency, letting the memory system overlap the cache
//!    misses a scalar replay would serialise.
//!
//! Per lane, the replay mirrors [`crate::simulate_fault_differential`]'s loop
//! **exactly** — same masking comparison at each position, same
//! truncation-asymmetry detection, same first-detecting-sequence cut-off,
//! same [`DiffStats`] accounting — so outcomes and effort counters are
//! bit-identical to both scalar engines (DESIGN.md §12 gives the
//! argument; the three-way equivalence tests and the CI gate enforce it).
//! [`PackedStats`] additionally counts the words formed and the lanes
//! they carried, surfaced as the `campaign.packed_words` and
//! `campaign.lanes_active` telemetry counters.

use crate::differential::{DiffStats, GoldenTrace};
use crate::error_model::{Fault, FaultKind};
use crate::faults::FaultOutcome;
use simcov_fsm::{
    ExplicitMealy, LanePatch, PackedMealy, LANES, UNDEFINED_NARROW, UNDEFINED_RECORD,
};
use simcov_tour::TestSet;

/// A replay's view of the gather table: `load` returns the wide fused
/// record for a cell. The narrow view gathers half the bytes per
/// lane-step and widens in registers — same values, fewer random cache
/// lines — so the replay loop is written once against this trait and
/// monomorphised per table width.
trait GatherTable: Copy {
    fn load(&self, cell: usize) -> u64;
}

#[derive(Clone, Copy)]
struct WideGather<'a>(&'a PackedMealy);

impl GatherTable for WideGather<'_> {
    #[inline]
    fn load(&self, cell: usize) -> u64 {
        self.0.raw_record(cell)
    }
}

#[derive(Clone, Copy)]
struct NarrowGather<'a> {
    table: &'a [u32],
    shift: u32,
    mask: u32,
}

impl GatherTable for NarrowGather<'_> {
    #[inline]
    fn load(&self, cell: usize) -> u64 {
        let v = self.table[cell];
        if v == UNDEFINED_NARROW {
            UNDEFINED_RECORD
        } else {
            u64::from(v >> self.shift) << 32 | u64::from(v & self.mask)
        }
    }
}

/// Deterministic counters for the packed engine's batching effort: how
/// many words were formed and how many lanes they carried. Like
/// [`DiffStats`], a pure function of `(golden, faults, tests, shard
/// partition)`, so merged totals are identical across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedStats {
    /// Fault words replayed (each covers up to [`LANES`] faults).
    pub packed_words: usize,
    /// Lanes occupied across all words (= effective transfer faults that
    /// went through a packed replay). `lanes_active / packed_words` is
    /// the mean word occupancy.
    pub lanes_active: usize,
}

impl PackedStats {
    /// Component-wise sum: commutative and associative, so any merge
    /// tree over the same shard set yields the same totals.
    pub fn merge(&mut self, other: &PackedStats) {
        self.packed_words += other.packed_words;
        self.lanes_active += other.lanes_active;
    }
}

/// One position of a [`ReplayScript`]: the golden state *before* step
/// `p`, the input applied at `p` and the golden output of step `p`,
/// fused into a single 12-byte record. A replaying lane reads exactly
/// one sequential stream besides its transition-table gathers — instead
/// of three parallel streams (states, inputs, outputs) per lane, which
/// at 64 lanes overwhelms the hardware stream prefetchers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ScriptCell {
    gs: u32,
    inp: u32,
    go: u32,
}

/// The golden run lowered for lane replay: per test sequence, a dense
/// `ScriptCell` array over the golden run's positions `0..=gl` (where
/// `gl` is the golden output count — shorter than the sequence when the
/// golden run truncates on an undefined transition). The terminator
/// cell at `gl` carries the final golden state plus the input at `gl`
/// when the sequence goes on (the faulty run may step where the golden
/// run truncated); its `go` field is unused. A pure re-encoding of
/// ([`GoldenTrace`], [`TestSet`]), built once per campaign and shared
/// read-only across shards.
pub struct ReplayScript {
    per_seq: Vec<Vec<ScriptCell>>,
    seq_lens: Vec<u32>,
}

impl ReplayScript {
    /// Lowers the memoized golden run for packed replay. `trace` must
    /// have been built for exactly `tests`.
    pub fn build(trace: &GoldenTrace, tests: &TestSet) -> ReplayScript {
        let per_seq = (0..tests.sequences.len())
            .map(|si| {
                let gs = trace.seq_states(si);
                let go = trace.seq_outputs(si);
                let seq = &tests.sequences[si];
                let gl = go.len();
                (0..=gl)
                    .map(|p| ScriptCell {
                        gs: gs[p].0,
                        inp: seq.get(p).map_or(0, |i| i.0),
                        go: go.get(p).map_or(0, |o| o.0),
                    })
                    .collect()
            })
            .collect();
        let seq_lens = tests.sequences.iter().map(|s| s.len() as u32).collect();
        ReplayScript { per_seq, seq_lens }
    }
}

/// The suffix a lane replays next: position `p` in sequence `si`, the
/// redirected state to start from, and the sequence's script slice,
/// resolved once per sequence so the round loops never touch the
/// `Vec<Vec<_>>` indirection per lane-step.
struct Suffix<'t> {
    p: usize,
    state: u32,
    script: &'t [ScriptCell],
    seq_len: u32,
}

/// One lane of a fault word: an effective transfer fault mid-replay.
///
/// Only the *cold* per-lane state lives here — identity, excitation
/// cursor and the accumulated outcome, touched when a lane crosses a
/// sequence boundary, detects, or retires. The hot per-step state
/// (position, faulty state, cached slices, diverge/reconverge flags)
/// lives in [`LanePool::replay`]'s struct-of-arrays locals so a round
/// touches a few dense arrays instead of 64 scattered structs.
struct Lane<'t> {
    /// Index into the shard's outcome vector.
    slot: usize,
    fault: Fault,
    patch: LanePatch,
    /// Ascending `(sequence, vector)` excitation entries for this cell.
    entries: &'t [(u32, u32)],
    /// Cursor into `entries` (first entry not before `si`).
    ei: usize,
    /// Current sequence index.
    si: usize,
    masked_somewhere: bool,
    detected: Option<(usize, usize)>,
}

impl<'t> Lane<'t> {
    /// Advances `si` to the next sequence that excites this fault and
    /// returns the replay suffix to run, accounting skipped work exactly
    /// as the scalar loop does. `None` when no sequence remains (the
    /// lane's outcome is final).
    fn start_next_replay(
        &mut self,
        script: &'t ReplayScript,
        diff: &mut DiffStats,
    ) -> Option<Suffix<'t>> {
        while self.si < script.per_seq.len() {
            while self.ei < self.entries.len() && (self.entries[self.ei].0 as usize) < self.si {
                self.ei += 1;
            }
            // The script holds gl + 1 cells (golden output count plus a
            // terminator).
            let gl = script.per_seq[self.si].len() - 1;
            if self.ei < self.entries.len() && self.entries[self.ei].0 as usize == self.si {
                // First excitation of this sequence: replay from e + 1 in
                // the redirected state, exactly like the scalar engine.
                let e = self.entries[self.ei].1 as usize;
                diff.prefix_steps_saved += e + 1;
                diff.divergence_replays += 1;
                return Some(Suffix {
                    p: e + 1,
                    state: self.patch.next,
                    script: &script.per_seq[self.si],
                    seq_len: script.seq_lens[self.si],
                });
            }
            // No excitation on this sequence: the faulty run is the
            // golden run — nothing detected, nothing masked.
            diff.prefix_steps_saved += gl;
            self.si += 1;
        }
        None
    }

    /// Ends the current sequence without a detection and moves on,
    /// folding in whether the finished sequence masked.
    fn finish_sequence(
        &mut self,
        seq_masked: bool,
        script: &'t ReplayScript,
        diff: &mut DiffStats,
    ) -> Option<Suffix<'t>> {
        self.masked_somewhere |= seq_masked;
        self.si += 1;
        self.start_next_replay(script, diff)
    }
}

/// The shard's effective transfer faults, replayed through a pool of
/// [`LANES`] lane slots. Build with [`LanePool::push`]; replay with
/// [`LanePool::replay`], which drains the pool.
///
/// Unlike a fixed batch that drains to empty, the pool *refills*: the
/// moment a lane retires, its slot is handed the next pending fault, so
/// the number of in-flight independent table loads stays pinned at
/// [`LANES`] until the shard runs out of faults. Without refill the
/// longest-lived lane in each batch finishes nearly alone — at full
/// serial miss latency — and the tail rounds dominate the run time.
struct LanePool<'t> {
    lanes: Vec<Lane<'t>>,
}

impl<'t> LanePool<'t> {
    fn new() -> Self {
        LanePool { lanes: Vec::new() }
    }

    fn push(&mut self, slot: usize, fault: Fault, patch: LanePatch, entries: &'t [(u32, u32)]) {
        self.lanes.push(Lane {
            slot,
            fault,
            patch,
            entries,
            ei: 0,
            si: 0,
            masked_somewhere: false,
            detected: None,
        });
    }

    /// Replays every lane to completion and writes each outcome into its
    /// slot. One round advances every live lane one micro-step, and is
    /// software-pipelined so the table loads actually overlap: each lane
    /// visit first *resolves* the table gather it issued on its
    /// *previous* visit, then *stages* the next one, so a load issued in
    /// round `k` is consumed in round `k + 1`, a full round of other
    /// lanes' work later — every live lane keeps one table miss in
    /// flight while the bookkeeping of the rest of the word executes
    /// under it.
    ///
    /// The round body is two-tiered. The fast tier runs one speculative,
    /// branch-light visit per live lane: the resolve of the previous
    /// gather, the masking scan one position ahead, and the next gather
    /// are all computed unconditionally into locals (speculative indices
    /// clamped in-bounds), every exceptional condition — unstaged slot,
    /// patched cell, [`UNDEFINED_RECORD`], end of sequence or golden
    /// trace, output mismatch — is OR-folded into one `bad` flag, and a
    /// single rarely-taken branch either commits the step or defers the
    /// lane. The exception tier then replays the deferred lanes through
    /// the scalar loop's exact detection/truncation/end-of-sequence case
    /// analysis and refills freed slots from the pending pool.
    ///
    /// The hot per-step state lives in struct-of-arrays locals rather
    /// than the [`Lane`] structs (flags as independent bytes, not shared
    /// bit-mask registers, to keep lanes' updates dependency-free), and
    /// the gather is monomorphised over [`GatherTable`]: machines whose
    /// ids fit the narrow 32-bit records gather half the bytes per step.
    fn replay(
        self,
        packed: &PackedMealy,
        script: &'t ReplayScript,
        outcomes: &mut [Option<FaultOutcome>],
        diff: &mut DiffStats,
        stats: &mut PackedStats,
    ) {
        // Gather through the narrow (32-bit) table when the machine's id
        // ranges permit one — half the bytes per lane-step — widening in
        // registers to the exact wide records the logic below expects.
        match packed.narrow_table() {
            Some((table, shift)) => {
                let mask = (1u32 << shift).wrapping_sub(1);
                self.replay_with(
                    NarrowGather { table, shift, mask },
                    packed,
                    script,
                    outcomes,
                    diff,
                    stats,
                )
            }
            None => self.replay_with(WideGather(packed), packed, script, outcomes, diff, stats),
        }
    }

    fn replay_with<G: GatherTable>(
        mut self,
        g: G,
        packed: &PackedMealy,
        script: &'t ReplayScript,
        outcomes: &mut [Option<FaultOutcome>],
        diff: &mut DiffStats,
        stats: &mut PackedStats,
    ) {
        if self.lanes.is_empty() {
            return;
        }
        // `packed_words` counts 64-lane batches worth of replayed faults:
        // with refill the batches interleave in time, but the totals are
        // the same pure function of the shard's effective transfer count
        // as with fixed words, so merged stats stay engine-deterministic.
        stats.packed_words += self.lanes.len().div_ceil(LANES);
        stats.lanes_active += self.lanes.len();
        // Hot per-lane replay state, struct-of-arrays, indexed by slot.
        let mut state = [0u32; LANES];
        let mut pos = [0u32; LANES];
        let mut scr: [&'t [ScriptCell]; LANES] = [&[]; LANES];
        // Sequence length (`pi` reaching it ends the sequence) and golden
        // output count (`pi` reaching it with the faulty machine still
        // stepping is a truncation-asymmetry detection).
        let mut lens = [0u32; LANES];
        let mut gls = [0u32; LANES];
        let mut patch_cell = [usize::MAX; LANES];
        let mut patch_rec = [0u64; LANES];
        let mut slot_lane = [usize::MAX; LANES];
        // Per-lane flags as independent bytes, NOT word-wide bit-masks: a
        // shared mask register would make every lane's flag update a
        // read-modify-write of the same register, chaining the otherwise
        // independent lanes through it and capping instruction-level
        // parallelism at the chain latency.
        let mut diverged = [false; LANES];
        let mut seq_masked = [false; LANES];
        let mut alive = [false; LANES];
        let mut live_count = 0usize;
        // Next pending lane to feed into a freed slot.
        let mut pending = 0usize;
        macro_rules! install {
            ($l:expr, $s:expr) => {{
                let s = $s;
                state[$l] = s.state;
                pos[$l] = s.p as u32;
                scr[$l] = s.script;
                lens[$l] = s.seq_len;
                gls[$l] = (s.script.len() - 1) as u32;
            }};
        }
        // Hands slot `l` the next pending lane that actually has a suffix
        // to replay (a lane whose replay starts empty is already final),
        // or marks the slot dead when the pool is exhausted.
        macro_rules! refill {
            ($l:expr) => {{
                if alive[$l] {
                    alive[$l] = false;
                    live_count -= 1;
                }
                while pending < self.lanes.len() {
                    let li = pending;
                    pending += 1;
                    let lane = &mut self.lanes[li];
                    if let Some(s) = lane.start_next_replay(script, diff) {
                        slot_lane[$l] = li;
                        patch_cell[$l] = lane.patch.cell;
                        patch_rec[$l] =
                            u64::from(lane.patch.out) << 32 | u64::from(lane.patch.next);
                        install!($l, s);
                        diverged[$l] = false;
                        seq_masked[$l] = false;
                        alive[$l] = true;
                        live_count += 1;
                        break;
                    }
                }
            }};
        }
        for l in 0..LANES {
            refill!(l);
        }
        let mut cells = [0usize; LANES];
        let mut recs = [0u64; LANES];
        let mut go_stage = [0u32; LANES];
        // Slots whose gather from the previous round is still unresolved.
        let mut staged = [false; LANES];
        let ni = packed.num_inputs();
        let ncells = packed.num_states() * ni;
        while live_count > 0 {
            // Fast tier: one speculative, branch-light visit per live
            // lane. Everything the common case needs — resolve of the
            // previous gather, the masking scan one position ahead, and
            // the next gather — is computed unconditionally into locals,
            // all exceptional conditions are OR-folded into one `bad`
            // flag, and a single rarely-taken branch either commits the
            // step or defers the lane untouched to the exception tier.
            // The two speculative indexings are clamped (`pi1.min(gl)`,
            // `min(ncells - 1)`) so a deferred lane's garbage values
            // stay in bounds; nothing is committed for such a lane.
            let mut exc = 0u64;
            for l in 0..LANES {
                if !alive[l] {
                    continue;
                }
                let pi = pos[l] as usize;
                let hit = cells[l] == patch_cell[l];
                let rec = if hit { patch_rec[l] } else { recs[l] };
                let gl = gls[l] as usize;
                let mut bad = !staged[l]
                    | hit
                    | (rec == UNDEFINED_RECORD)
                    | (pi >= gl)
                    | ((rec >> 32) as u32 != go_stage[l]);
                let st = rec as u32;
                let pi1 = pi + 1;
                let c = scr[l][pi1.min(gl)];
                let neq = c.gs != st;
                let dv = diverged[l] | neq;
                let sm = seq_masked[l] | (diverged[l] & !neq);
                bad |= pi1 >= lens[l] as usize;
                let cell = (st as usize * ni + c.inp as usize).min(ncells - 1);
                let r2 = g.load(cell);
                if bad {
                    exc |= 1u64 << l;
                    continue;
                }
                state[l] = st;
                pos[l] = pi1 as u32;
                diverged[l] = dv;
                seq_masked[l] = sm;
                cells[l] = cell;
                recs[l] = r2;
                go_stage[l] = c.go;
            }
            // Exception tier: the scalar loop's exact case analysis for
            // the deferred lanes — detection, truncation, patch overlay,
            // sequence turnover and first-visit staging. A lane leaves
            // this tier either dead or staged with a fresh gather.
            while exc != 0 {
                let l = exc.trailing_zeros() as usize;
                exc &= exc - 1;
                if staged[l] {
                    // Resolve the gather this slot issued on its previous
                    // visit: the common case — defined record, output
                    // matches, golden not truncated, no patch overlay —
                    // advances behind one predictable branch.
                    staged[l] = false;
                    let pi = pos[l] as usize;
                    let hit = cells[l] == patch_cell[l];
                    let rec = if hit { patch_rec[l] } else { recs[l] };
                    let cold = hit
                        | (rec == UNDEFINED_RECORD)
                        | (pi >= gls[l] as usize)
                        | ((rec >> 32) as u32 != go_stage[l]);
                    if !cold {
                        state[l] = rec as u32;
                        pos[l] = pi as u32 + 1;
                    } else if !hit && rec == UNDEFINED_RECORD && !packed.is_defined(cells[l]) {
                        // Sentinel pre-filter: any other record value
                        // proves the cell defined without touching the
                        // definedness bitmap; the bitmap stays
                        // authoritative for the (cold) case of a defined
                        // record that happens to encode as the sentinel.
                        // Faulty truncates with p outputs; truncation
                        // asymmetry detects at the common length.
                        if gls[l] as usize > pi {
                            let lane = &mut self.lanes[slot_lane[l]];
                            lane.detected = Some((lane.si, pi));
                            refill!(l);
                        } else {
                            let lane = &mut self.lanes[slot_lane[l]];
                            match lane.finish_sequence(seq_masked[l], script, diff) {
                                Some(s) => {
                                    install!(l, s);
                                    diverged[l] = false;
                                    seq_masked[l] = false;
                                }
                                None => refill!(l),
                            }
                        }
                    } else if pi >= gls[l] as usize {
                        // Golden truncated at gl = p but the faulty
                        // machine stepped on: asymmetry detects at the
                        // common length.
                        let lane = &mut self.lanes[slot_lane[l]];
                        lane.detected = Some((lane.si, pi));
                        refill!(l);
                    } else if (rec >> 32) as u32 != go_stage[l] {
                        let lane = &mut self.lanes[slot_lane[l]];
                        lane.detected = Some((lane.si, pi));
                        refill!(l);
                    } else {
                        state[l] = rec as u32;
                        pos[l] = pi as u32 + 1;
                    }
                }
                // Stage: masking scan at the (possibly just-advanced)
                // position, end-of-sequence bookkeeping, and the next
                // gather. The loop re-stages immediately when a sequence
                // ends or a fresh lane lands in the slot, so every visit
                // leaves a live slot with exactly one gather in flight.
                // One fused script load per visit covers the golden
                // state, the input and the golden output at `pi`.
                while alive[l] && !staged[l] {
                    let pi = pos[l] as usize;
                    let c = scr[l][pi];
                    // Masking state-comparison at position p, mirroring
                    // the scalar loop (which mirrors `is_masked_on`'s
                    // diverge-then-reconverge scan), branchless over the
                    // per-lane flag bytes.
                    let neq = c.gs != state[l];
                    seq_masked[l] |= diverged[l] & !neq;
                    diverged[l] |= neq;
                    if pi >= lens[l] as usize {
                        // Both runs consumed the whole sequence: no
                        // detection.
                        let lane = &mut self.lanes[slot_lane[l]];
                        match lane.finish_sequence(seq_masked[l], script, diff) {
                            Some(s) => {
                                install!(l, s);
                                diverged[l] = false;
                                seq_masked[l] = false;
                            }
                            None => refill!(l),
                        }
                        continue;
                    }
                    cells[l] = state[l] as usize * ni + c.inp as usize;
                    recs[l] = g.load(cells[l]);
                    go_stage[l] = c.go;
                    staged[l] = true;
                }
            }
        }
        for lane in self.lanes {
            outcomes[lane.slot] = Some(FaultOutcome {
                fault: lane.fault,
                detected: lane.detected,
                // Every lane came through the excitation index non-empty.
                excited: true,
                masked_somewhere: lane.masked_somewhere,
            });
        }
    }
}

/// Simulates one shard under the packed engine, bit-identical to mapping
/// [`crate::simulate_fault_differential`] (and hence
/// [`simulate_fault`](crate::faults::simulate_fault)) over the shard.
///
/// Faults are classified in fault order; effective transfer faults enter
/// the `LanePool` in that same order and are replayed lane-parallel
/// (up to [`LANES`] in flight, slots refilled as lanes retire), with
/// outcomes written back by position — so the returned vector is in
/// fault order regardless of scheduling. `diff` accumulates the same
/// per-fault [`DiffStats`] the differential engine would, `stats` the
/// word-formation counters. `script` is the replay lowering of
/// `(trace, tests)` from [`ReplayScript::build`], built once per
/// campaign and shared across shards.
///
/// # Panics
///
/// Panics if a fault's transition is undefined in `golden`, or if
/// `trace` / `packed` / `script` were built for a different
/// `(golden, tests)` pair.
#[allow(clippy::too_many_arguments)] // mirrors the scalar shard signature plus the packed lowerings
pub fn simulate_shard_packed<'t>(
    golden: &ExplicitMealy,
    packed: &PackedMealy,
    trace: &'t GoldenTrace,
    script: &'t ReplayScript,
    shard: &[Fault],
    tests: &'t TestSet,
    diff: &mut DiffStats,
    stats: &mut PackedStats,
) -> Vec<FaultOutcome> {
    assert_eq!(
        trace.num_sequences(),
        tests.sequences.len(),
        "golden trace must memoize exactly this test set"
    );
    assert_eq!(
        script.per_seq.len(),
        tests.sequences.len(),
        "replay script must lower exactly this test set"
    );
    let mut outcomes: Vec<Option<FaultOutcome>> = vec![None; shard.len()];
    let mut pool = LanePool::new();
    for (slot, fault) in shard.iter().enumerate() {
        let fault = *fault;
        let (orig_next, orig_out) = golden
            .step(fault.state, fault.input)
            .expect("transition must be defined to be faulted");
        let entries = trace.excitations(fault.state, fault.input);
        // The differential engine's index fast paths, verbatim (DESIGN.md
        // §11 Lemmas 1–2): only effective transfer faults reach a word.
        if entries.is_empty() {
            diff.faults_skipped_by_index += 1;
            outcomes[slot] = Some(FaultOutcome {
                fault,
                detected: None,
                excited: false,
                masked_somewhere: false,
            });
            continue;
        }
        match fault.kind {
            FaultKind::Output { new_output } => {
                diff.prefix_steps_saved += trace.total_steps();
                let detected = (new_output != orig_out)
                    .then(|| (entries[0].0 as usize, entries[0].1 as usize));
                outcomes[slot] = Some(FaultOutcome {
                    fault,
                    detected,
                    excited: true,
                    masked_somewhere: false,
                });
            }
            FaultKind::Transfer { new_next } => {
                if new_next == orig_next {
                    diff.prefix_steps_saved += trace.total_steps();
                    outcomes[slot] = Some(FaultOutcome {
                        fault,
                        detected: None,
                        excited: true,
                        masked_somewhere: false,
                    });
                    continue;
                }
                let patch = packed.lane_patch(fault.state, fault.input, new_next, orig_out);
                pool.push(slot, fault, patch, entries);
            }
        }
    }
    pool.replay(packed, script, &mut outcomes, diff, stats);
    outcomes
        .into_iter()
        .map(|o| o.expect("every slot classified or replayed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::{simulate_fault_differential, GoldenTrace};
    use crate::faults::{enumerate_single_faults, extend_cyclically, simulate_fault, FaultSpace};
    use crate::testutil::figure2;
    use simcov_fsm::{InputSym, MealyBuilder, OutputSym};
    use simcov_prng::{forall_cfg, Config, Gen};
    use simcov_tour::transition_tour;

    /// Asserts the packed shard simulation is bit-identical to both
    /// scalar engines on the whole fault list as ONE shard, and that the
    /// DiffStats totals match the differential engine's exactly.
    fn assert_three_way(m: &ExplicitMealy, faults: &[Fault], tests: &TestSet) {
        let trace = GoldenTrace::build(m, tests);
        let packed = PackedMealy::from_explicit(m);
        let packed_trace = GoldenTrace::build_packed(m, &packed, tests);
        assert_eq!(packed_trace, trace, "packed trace build must be identical");
        let mut diff_p = DiffStats::default();
        let mut pstats = PackedStats::default();
        let script = ReplayScript::build(&trace, tests);
        let got = simulate_shard_packed(
            m,
            &packed,
            &trace,
            &script,
            faults,
            tests,
            &mut diff_p,
            &mut pstats,
        );
        let mut diff_d = DiffStats::default();
        for (f, o) in faults.iter().zip(&got) {
            let differential = simulate_fault_differential(m, &trace, f, tests, &mut diff_d);
            assert_eq!(*o, differential, "fault {f} (vs differential)");
            assert_eq!(*o, simulate_fault(m, f, tests), "fault {f} (vs naive)");
        }
        assert_eq!(diff_p, diff_d, "effort accounting must match");
        let effective_transfers = faults
            .iter()
            .filter(|f| match f.kind {
                FaultKind::Transfer { new_next } => {
                    !trace.excitations(f.state, f.input).is_empty()
                        && m.step(f.state, f.input).unwrap().0 != new_next
                }
                FaultKind::Output { .. } => false,
            })
            .count();
        assert_eq!(pstats.lanes_active, effective_transfers);
        assert_eq!(pstats.packed_words, effective_transfers.div_ceil(LANES));
    }

    /// Random strongly-connected-ish machine, as in the cross-engine
    /// property suite: input 0 forms a ring so every state is reachable.
    fn random_machine(g: &mut Gen) -> ExplicitMealy {
        let n = g.int_in(2..10usize);
        let ni = g.int_in(1..4usize);
        let no = g.int_in(1..4usize);
        let mut b = MealyBuilder::new();
        let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
        let inputs: Vec<_> = (0..ni).map(|i| b.add_input(format!("i{i}"))).collect();
        let outs: Vec<_> = (0..no).map(|i| b.add_output(format!("o{i}"))).collect();
        for (si, &s) in states.iter().enumerate() {
            for (ii, &i) in inputs.iter().enumerate() {
                if ii == 0 {
                    b.add_transition(s, i, states[(si + 1) % n], outs[g.int_in(0..no)]);
                } else if g.bool() {
                    b.add_transition(s, i, states[g.int_in(0..n)], outs[g.int_in(0..no)]);
                }
            }
        }
        b.build(states[0]).unwrap()
    }

    fn random_tests(g: &mut Gen, m: &ExplicitMealy) -> TestSet {
        let nseq = g.int_in(1..6usize);
        let ni = m.num_inputs();
        TestSet {
            sequences: (0..nseq)
                .map(|_| {
                    let len = g.int_in(0..30usize);
                    (0..len).map(|_| InputSym(g.int_in(0..ni) as u32)).collect()
                })
                .collect(),
        }
    }

    #[test]
    fn figure2_exhaustive_faults_bit_identical_three_ways() {
        let (m, _) = figure2();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tour = transition_tour(&m).unwrap();
        for k in [0, 1, 3] {
            let tests = TestSet::single(extend_cyclically(&tour.inputs, k));
            assert_three_way(&m, &faults, &tests);
        }
    }

    #[test]
    fn random_machines_bit_identical_three_ways() {
        forall_cfg(
            "packed_equivalence",
            Config::with_cases(40),
            |g: &mut Gen| {
                let m = random_machine(g);
                let faults = enumerate_single_faults(
                    &m,
                    &FaultSpace {
                        max_faults: 200,
                        seed: g.u64(),
                        ..FaultSpace::default()
                    },
                );
                let tests = random_tests(g, &m);
                assert_three_way(&m, &faults, &tests);
            },
        );
    }

    #[test]
    fn word_boundaries_pin_tail_masking() {
        // Exactly 1, 63, 64 and 65 effective transfer faults: the word
        // tail (partial last word) must behave like any other lane.
        let (m, _) = figure2();
        let tour = transition_tour(&m).unwrap();
        let tests = TestSet::single(extend_cyclically(&tour.inputs, 2));
        // All-transfer fault list cycled to the wanted length.
        let transfers: Vec<Fault> = enumerate_single_faults(
            &m,
            &FaultSpace {
                output: false,
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        assert!(!transfers.is_empty());
        for count in [1usize, 63, 64, 65, 130] {
            let faults: Vec<Fault> = (0..count).map(|i| transfers[i % transfers.len()]).collect();
            assert_three_way(&m, &faults, &tests);
        }
    }

    #[test]
    fn partial_machine_truncation_bit_identical() {
        // Transfer redirections into states with undefined continuations
        // exercise the undefined-lane path of the word replay.
        let mut b = MealyBuilder::new();
        let s: Vec<_> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let o0 = b.add_output("o0");
        let o1 = b.add_output("o1");
        b.add_transition(s[0], x, s[1], o0);
        b.add_transition(s[0], y, s[2], o1);
        b.add_transition(s[1], x, s[2], o0);
        b.add_transition(s[1], y, s[0], o0);
        b.add_transition(s[2], x, s[3], o1);
        let m = b.build(s[0]).unwrap();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tests = TestSet {
            sequences: vec![
                vec![x, x, x, x],
                vec![x, y, x, y, x],
                vec![y, x, x],
                vec![x, y, y, x],
            ],
        };
        assert_three_way(&m, &faults, &tests);
    }

    #[test]
    fn packed_stats_merge_is_commutative() {
        let a = PackedStats {
            packed_words: 3,
            lanes_active: 130,
        };
        let b = PackedStats {
            packed_words: 1,
            lanes_active: 7,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.packed_words, 4);
        assert_eq!(ab.lanes_active, 137);
    }

    #[test]
    fn output_faults_never_occupy_lanes() {
        let (m, fault) = figure2();
        let tour = transition_tour(&m).unwrap();
        let tests = TestSet::single(extend_cyclically(&tour.inputs, 1));
        let trace = GoldenTrace::build(&m, &tests);
        let packed = PackedMealy::from_explicit(&m);
        let of = Fault {
            kind: FaultKind::Output {
                new_output: OutputSym(0),
            },
            ..fault
        };
        let mut diff = DiffStats::default();
        let mut stats = PackedStats::default();
        let script = ReplayScript::build(&trace, &tests);
        let _ = simulate_shard_packed(
            &m,
            &packed,
            &trace,
            &script,
            &[of],
            &tests,
            &mut diff,
            &mut stats,
        );
        assert_eq!(stats, PackedStats::default());
    }
}

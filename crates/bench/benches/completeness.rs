//! E2 / Theorems 1-3: completeness of transition tours on a compliant
//! test model, validated by exhaustive single-fault injection.

use simcov_bench::timing::BenchReport;
use simcov_bench::{reduced_dlx_machine, reduced_dlx_machine_hidden};
use simcov_core::{
    certify_completeness, enumerate_single_faults, extend_cyclically, FaultCampaign, FaultSpace,
};
use simcov_tour::{transition_tour, TestSet};

fn report() {
    eprintln!("== Completeness (Theorem 3) ==");
    for (name, m, k) in [
        (
            "observable (Req 5 satisfied)",
            reduced_dlx_machine(),
            1usize,
        ),
        ("hidden (Req 5 violated)", reduced_dlx_machine_hidden(), 4),
    ] {
        let cert = certify_completeness(&m, k, None);
        let tour = transition_tour(&m).unwrap();
        let faults = enumerate_single_faults(
            &m,
            &FaultSpace {
                max_faults: usize::MAX,
                ..FaultSpace::default()
            },
        );
        let tests = TestSet::single(extend_cyclically(&tour.inputs, k));
        let run = FaultCampaign::new(&m, &faults, &tests).run();
        eprintln!(
            "  {name}: certificate={}, tour len {}, campaign {}",
            if cert.is_ok() { "ISSUED" } else { "REJECTED" },
            tour.len(),
            run.report,
        );
        eprintln!("    stats: {}", run.stats);
    }
    eprintln!("  (paper: certified model => complete test set; violated => escapes)");
}

fn main() {
    report();
    let mut rep = BenchReport::new("completeness");
    let m = reduced_dlx_machine();
    rep.bench("completeness/certify_k1", || {
        certify_completeness(&m, 1, None).unwrap()
    });
    let faults = enumerate_single_faults(
        &m,
        &FaultSpace {
            max_faults: 500,
            ..FaultSpace::default()
        },
    );
    let tour = transition_tour(&m).unwrap();
    let tests = TestSet::single(extend_cyclically(&tour.inputs, 1));
    rep.bench("completeness/campaign_500_faults", || {
        FaultCampaign::new(&m, &faults, &tests).run()
    });
    // One telemetry-instrumented run snapshots the campaign counters
    // into the report, so perf numbers carry their workload context.
    let tel = simcov_obs::Telemetry::new();
    let _ = FaultCampaign::new(&m, &faults, &tests)
        .telemetry(tel.clone())
        .run();
    rep.counters_from(&tel.snapshot());
    rep.write().expect("write bench report");
}

//! ∀k-distinguishability (Definition 5).
//!
//! A state `s1` is ∀k-distinguishable from `s2` if **every** input sequence
//! of length `k` distinguishes them (produces a different output somewhere
//! along the way). This is much stronger than ordinary (∃) distinguish-
//! ability, and it is precisely what lets a transition tour expose transfer
//! errors: after a wrong transition lands in `s2` instead of `s1`,
//! *whatever* the tour does next (length ≥ k) reveals the difference
//! (Theorem 1).
//!
//! The computation iterates the "equal-output-reachable" pair relation:
//! `E_0` holds for every pair; `E_j(s, t)` holds iff some input keeps the
//! outputs equal and leads to a pair in `E_{j-1}`. A pair is
//! ∀k-distinguishable iff it is *not* in `E_k`.

use simcov_fsm::{ExplicitMealy, InputSym, StateId};

/// A pair of states that some length-`k` sequence fails to distinguish,
/// with the witnessing input sequence (all outputs equal along it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairWitness {
    /// First state of the indistinguishable pair.
    pub s1: StateId,
    /// Second state.
    pub s2: StateId,
    /// An input sequence of length `k` along which both states produce
    /// identical outputs.
    pub witness: Vec<InputSym>,
}

/// Result of the ∀k-distinguishability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distinguishability {
    /// The `k` that was checked.
    pub k: usize,
    /// Number of reachable states analysed.
    pub states: usize,
    /// Pairs (restricted to distinct reachable states) violating
    /// ∀k-distinguishability, with witnesses. Empty ⇔ the property holds.
    pub violations: Vec<PairWitness>,
}

impl Distinguishability {
    /// `true` if every pair of distinct reachable states is
    /// ∀k-distinguishable — the hypothesis of Theorem 1.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Errors from [`forall_k_distinguishable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistinguishError {
    /// Some reachable `(state, input)` transition is undefined; the
    /// universal quantification over input sequences is only meaningful
    /// on machines complete over their (valid) alphabet.
    IncompleteMachine {
        /// A reachable state with a missing transition.
        state: StateId,
        /// The input with no transition.
        input: InputSym,
    },
}

impl std::fmt::Display for DistinguishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistinguishError::IncompleteMachine { state, input } => write!(
                f,
                "machine is not complete: no transition from state {} on input {}",
                state.0, input.0
            ),
        }
    }
}

impl std::error::Error for DistinguishError {}

/// Checks ∀k-distinguishability of every pair of distinct reachable states
/// of `m`, returning witnesses for the violating pairs (at most
/// `max_witnesses`; the count of violations is exact regardless).
///
/// # Errors
///
/// [`DistinguishError::IncompleteMachine`] if a reachable transition is
/// missing — restrict the machine to its valid alphabet first.
///
/// # Complexity
///
/// `O(k · n² · |I|)` time, `O(n²)` space over `n` reachable states.
pub fn forall_k_distinguishable(
    m: &ExplicitMealy,
    k: usize,
    max_witnesses: usize,
) -> Result<Distinguishability, DistinguishError> {
    let reach = m.reachable_states();
    let n = reach.len();
    let ni = m.num_inputs();
    // Dense renumbering of reachable states.
    let mut idx_of = vec![usize::MAX; m.num_states()];
    for (i, &s) in reach.iter().enumerate() {
        idx_of[s.index()] = i;
    }
    for &s in &reach {
        for i in m.inputs() {
            if m.step(s, i).is_none() {
                return Err(DistinguishError::IncompleteMachine { state: s, input: i });
            }
        }
    }
    // Precompute dense successor/output tables.
    let mut succ = vec![0usize; n * ni];
    let mut out = vec![0u32; n * ni];
    for (si, &s) in reach.iter().enumerate() {
        for i in 0..ni {
            let (nx, o) = m.step(s, InputSym(i as u32)).expect("checked complete");
            succ[si * ni + i] = idx_of[nx.index()];
            out[si * ni + i] = o.0;
        }
    }
    // e[p] = true iff pair p is in E_j. Pairs are ordered (s, t) with
    // s <= t stored at s * n + t (diagonal always true).
    let pair = |a: usize, b: usize| if a <= b { a * n + b } else { b * n + a };
    let mut e = vec![true; n * n];
    for round in 0..k {
        let mut next = vec![false; n * n];
        let mut changed = false;
        for a in 0..n {
            next[pair(a, a)] = true;
            for b in (a + 1)..n {
                let mut hold = false;
                for i in 0..ni {
                    if out[a * ni + i] == out[b * ni + i]
                        && e[pair(succ[a * ni + i], succ[b * ni + i])]
                    {
                        hold = true;
                        break;
                    }
                }
                next[pair(a, b)] = hold;
                if hold != e[pair(a, b)] {
                    changed = true;
                }
            }
        }
        e = next;
        if !changed && round > 0 {
            // Fixed point: E_j = E_{j+1} = ... = E_k.
            break;
        }
    }
    // Collect violations with witnesses.
    let mut violations = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if e[pair(a, b)] {
                let witness = if violations.len() < max_witnesses {
                    reconstruct_witness(n, ni, &succ, &out, k, a, b)
                } else {
                    Vec::new()
                };
                violations.push(PairWitness {
                    s1: reach[a],
                    s2: reach[b],
                    witness,
                });
            }
        }
    }
    Ok(Distinguishability {
        k,
        states: n,
        violations,
    })
}

/// Rebuilds one equal-output sequence of length `k` for the pair `(a, b)`
/// by recomputing the `E_j` levels (memory-light: recompute rather than
/// store all k levels).
fn reconstruct_witness(
    n: usize,
    ni: usize,
    succ: &[usize],
    out: &[u32],
    k: usize,
    a: usize,
    b: usize,
) -> Vec<InputSym> {
    // levels[j] = E_j for j in 0..=k (E_0 all true).
    let pair = |x: usize, y: usize| if x <= y { x * n + y } else { y * n + x };
    let mut levels: Vec<Vec<bool>> = Vec::with_capacity(k + 1);
    levels.push(vec![true; n * n]);
    for _ in 0..k {
        let prev = levels.last().expect("nonempty");
        let mut next = vec![false; n * n];
        for x in 0..n {
            next[pair(x, x)] = true;
            for y in (x + 1)..n {
                for i in 0..ni {
                    if out[x * ni + i] == out[y * ni + i]
                        && prev[pair(succ[x * ni + i], succ[y * ni + i])]
                    {
                        next[pair(x, y)] = true;
                        break;
                    }
                }
            }
        }
        levels.push(next);
    }
    let mut seq = Vec::with_capacity(k);
    let (mut x, mut y) = (a, b);
    for j in (1..=k).rev() {
        let mut chosen = None;
        for i in 0..ni {
            if out[x * ni + i] == out[y * ni + i]
                && levels[j - 1][pair(succ[x * ni + i], succ[y * ni + i])]
            {
                chosen = Some(i);
                break;
            }
        }
        let i = chosen.expect("pair is in E_j, a continuation must exist");
        seq.push(InputSym(i as u32));
        let (nx, nyy) = (succ[x * ni + i], succ[y * ni + i]);
        x = nx;
        y = nyy;
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    /// Two states distinguished by every input: ∀1-distinguishable.
    #[test]
    fn immediately_distinguishable() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o0 = b.add_output("o0");
        let o1 = b.add_output("o1");
        b.add_transition(s0, a, s1, o0);
        b.add_transition(s1, a, s0, o1);
        let m = b.build(s0).unwrap();
        let d = forall_k_distinguishable(&m, 1, 10).unwrap();
        assert!(d.holds());
        assert_eq!(d.states, 2);
    }

    /// Figure-2-style: states 3 and 3' agree on input c but differ on b —
    /// ∃-distinguishable but NOT ∀1-distinguishable.
    #[test]
    fn exists_but_not_forall() {
        let (m, _) = crate::testutil::figure2();
        let d = forall_k_distinguishable(&m, 1, 100).unwrap();
        assert!(!d.holds());
        let s3 = m.state_by_label("3").unwrap();
        let s3p = m.state_by_label("3'").unwrap();
        let c = m.input_by_label("c").unwrap();
        let v = d
            .violations
            .iter()
            .find(|v| (v.s1 == s3 && v.s2 == s3p) || (v.s1 == s3p && v.s2 == s3))
            .expect("3/3' must violate forall-1");
        assert_eq!(v.witness, vec![c]);
    }

    /// Witness sequences really do keep outputs equal.
    #[test]
    fn witnesses_are_sound() {
        let (m, _) = crate::testutil::figure2();
        for k in 1..=3 {
            let d = forall_k_distinguishable(&m, k, 1000).unwrap();
            for v in &d.violations {
                assert_eq!(v.witness.len(), k);
                let (_, out1) = m.run(v.s1, &v.witness);
                let (_, out2) = m.run(v.s2, &v.witness);
                assert_eq!(out1, out2, "witness must keep outputs equal (k={k})");
            }
        }
    }

    /// Exhaustive cross-check on a small machine: compare against
    /// brute-force enumeration of all input sequences of length k.
    #[test]
    fn matches_brute_force() {
        let (m, _) = crate::testutil::figure2();
        let reach = m.reachable_states();
        let ni = m.num_inputs() as u32;
        for k in 1..=3usize {
            let d = forall_k_distinguishable(&m, k, usize::MAX).unwrap();
            let mut brute = Vec::new();
            for (ai, &a) in reach.iter().enumerate() {
                for &b in reach.iter().skip(ai + 1) {
                    // Does some sequence of length k keep outputs equal?
                    let total = (ni as usize).pow(k as u32);
                    let mut found = false;
                    for code in 0..total {
                        let mut c = code;
                        let seq: Vec<InputSym> = (0..k)
                            .map(|_| {
                                let i = InputSym((c % ni as usize) as u32);
                                c /= ni as usize;
                                i
                            })
                            .collect();
                        if m.run(a, &seq).1 == m.run(b, &seq).1 {
                            found = true;
                            break;
                        }
                    }
                    if found {
                        brute.push((a, b));
                    }
                }
            }
            let mut got: Vec<(StateId, StateId)> =
                d.violations.iter().map(|v| (v.s1, v.s2)).collect();
            got.sort();
            brute.sort();
            assert_eq!(got, brute, "k={k}");
        }
    }

    #[test]
    fn incomplete_machine_rejected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let _s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s0, o);
        let m = b.build(s0).unwrap();
        // s1 unreachable: machine is complete on reachable part -> Ok.
        assert!(forall_k_distinguishable(&m, 2, 10).is_ok());
        // Make s1 reachable but leave it undefined.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        let m = b.build(s0).unwrap();
        assert_eq!(
            forall_k_distinguishable(&m, 2, 10).unwrap_err(),
            DistinguishError::IncompleteMachine {
                state: s1,
                input: a
            }
        );
    }

    /// Monotonicity: if ∀k holds then ∀(k+1) holds (more steps can only
    /// help distinguish).
    #[test]
    fn monotone_in_k() {
        let (m, _) = crate::testutil::figure2();
        let mut prev_violations = usize::MAX;
        for k in 1..=4 {
            let d = forall_k_distinguishable(&m, k, 0).unwrap();
            assert!(d.violations.len() <= prev_violations, "k={k}");
            prev_violations = d.violations.len();
        }
    }

    #[test]
    fn witness_cap_respected() {
        let (m, _) = crate::testutil::figure2();
        let d = forall_k_distinguishable(&m, 1, 1).unwrap();
        assert!(!d.violations.is_empty());
        let with_witness = d
            .violations
            .iter()
            .filter(|v| !v.witness.is_empty())
            .count();
        assert!(with_witness <= 1);
    }
}

//! ∀k-distinguishability (Definition 5).
//!
//! A state `s1` is ∀k-distinguishable from `s2` if **every** input sequence
//! of length `k` distinguishes them (produces a different output somewhere
//! along the way). This is much stronger than ordinary (∃) distinguish-
//! ability, and it is precisely what lets a transition tour expose transfer
//! errors: after a wrong transition lands in `s2` instead of `s1`,
//! *whatever* the tour does next (length ≥ k) reveals the difference
//! (Theorem 1).
//!
//! The computation iterates the "equal-output-reachable" pair relation:
//! `E_0` holds for every pair; `E_j(s, t)` holds iff some input keeps the
//! outputs equal and leads to a pair in `E_{j-1}`. A pair is
//! ∀k-distinguishable iff it is *not* in `E_k`.
//!
//! The relation chain is materialised once as [`DistinguishLevels`]: every
//! `E_j` up to the requested bound (or the fixpoint, whichever comes
//! first) is stored as a word-packed bitset over state pairs. Witness
//! reconstruction and queries at *every* `k ≤ k_max` then read the stored
//! levels instead of re-running the traversal — one golden sweep shared
//! across all witnesses and all `k` values, which is what keeps linting
//! large machines (10k+ states) out of the seconds range.

use simcov_fsm::{ExplicitMealy, InputSym, StateId};

/// A pair of states that some length-`k` sequence fails to distinguish,
/// with the witnessing input sequence (all outputs equal along it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairWitness {
    /// First state of the indistinguishable pair.
    pub s1: StateId,
    /// Second state.
    pub s2: StateId,
    /// An input sequence of length `k` along which both states produce
    /// identical outputs.
    pub witness: Vec<InputSym>,
}

/// Result of the ∀k-distinguishability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distinguishability {
    /// The `k` that was checked.
    pub k: usize,
    /// Number of reachable states analysed.
    pub states: usize,
    /// Pairs (restricted to distinct reachable states) violating
    /// ∀k-distinguishability, with witnesses. Empty ⇔ the property holds.
    pub violations: Vec<PairWitness>,
}

impl Distinguishability {
    /// `true` if every pair of distinct reachable states is
    /// ∀k-distinguishable — the hypothesis of Theorem 1.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Errors from [`forall_k_distinguishable`] / [`DistinguishLevels::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistinguishError {
    /// Some reachable `(state, input)` transition is undefined; the
    /// universal quantification over input sequences is only meaningful
    /// on machines complete over their (valid) alphabet.
    IncompleteMachine {
        /// A reachable state with a missing transition.
        state: StateId,
        /// The input with no transition.
        input: InputSym,
    },
}

impl std::fmt::Display for DistinguishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistinguishError::IncompleteMachine { state, input } => write!(
                f,
                "machine is not complete: no transition from state {} on input {}",
                state.0, input.0
            ),
        }
    }
}

impl std::error::Error for DistinguishError {}

#[inline]
fn bit_get(bits: &[u64], p: usize) -> bool {
    bits[p >> 6] & (1 << (p & 63)) != 0
}

#[inline]
fn bit_set(bits: &mut [u64], p: usize) {
    bits[p >> 6] |= 1 << (p & 63);
}

/// The memoized `E_0 ⊇ E_1 ⊇ … ⊇ E_{k_max}` chain over one machine's
/// reachable state pairs, each level a word-packed bitset.
///
/// Build once with [`build`](Self::build), then query
/// [`analyze`](Self::analyze) for any `k ≤ k_max`: violations and their
/// witnesses are read off the stored levels with no further traversal of
/// the machine. The chain is cut at its fixpoint (`E_{j+1} = E_j` implies
/// every later level is identical), so memory is
/// `O(min(k_max, fixpoint) · n²/64)` words.
#[derive(Debug, Clone)]
pub struct DistinguishLevels {
    k_max: usize,
    reach: Vec<StateId>,
    n: usize,
    ni: usize,
    /// Dense successor table over reachable-state indices.
    succ: Vec<usize>,
    /// Dense output table over reachable-state indices.
    out: Vec<u32>,
    /// `levels[j] = E_j` for `j ≤` the stored bound; queries past the end
    /// clamp to the last level (the fixpoint).
    levels: Vec<Vec<u64>>,
}

impl DistinguishLevels {
    /// Runs the pair-relation fixpoint up to `k_max` rounds (stopping
    /// early at the fixpoint) over the reachable part of `m`.
    ///
    /// # Errors
    ///
    /// [`DistinguishError::IncompleteMachine`] if a reachable transition
    /// is missing — restrict the machine to its valid alphabet first.
    ///
    /// # Complexity
    ///
    /// `O(min(k_max, fix) · n² · |I|)` time, `O(min(k_max, fix) · n²/64)`
    /// space over `n` reachable states.
    pub fn build(m: &ExplicitMealy, k_max: usize) -> Result<Self, DistinguishError> {
        let reach = m.reachable_states();
        let n = reach.len();
        let ni = m.num_inputs();
        // Dense renumbering of reachable states.
        let mut idx_of = vec![usize::MAX; m.num_states()];
        for (i, &s) in reach.iter().enumerate() {
            idx_of[s.index()] = i;
        }
        for &s in &reach {
            for i in m.inputs() {
                if m.step(s, i).is_none() {
                    return Err(DistinguishError::IncompleteMachine { state: s, input: i });
                }
            }
        }
        // Precompute dense successor/output tables.
        let mut succ = vec![0usize; n * ni];
        let mut out = vec![0u32; n * ni];
        for (si, &s) in reach.iter().enumerate() {
            for i in 0..ni {
                let (nx, o) = m.step(s, InputSym(i as u32)).expect("checked complete");
                succ[si * ni + i] = idx_of[nx.index()];
                out[si * ni + i] = o.0;
            }
        }
        // Pairs are ordered (a, b) with a <= b, bit a * n + b (only those
        // canonical positions are ever set, so levels compare with plain
        // word equality).
        let words = (n * n).div_ceil(64).max(1);
        let mut e0 = vec![0u64; words];
        for a in 0..n {
            for b in a..n {
                bit_set(&mut e0, a * n + b);
            }
        }
        let mut levels = vec![e0];
        for _ in 0..k_max {
            let prev = levels.last().expect("nonempty");
            let mut next = vec![0u64; words];
            for a in 0..n {
                bit_set(&mut next, a * n + a);
                for b in (a + 1)..n {
                    for i in 0..ni {
                        if out[a * ni + i] == out[b * ni + i] {
                            let (sa, sb) = (succ[a * ni + i], succ[b * ni + i]);
                            let p = if sa <= sb { sa * n + sb } else { sb * n + sa };
                            if bit_get(prev, p) {
                                bit_set(&mut next, a * n + b);
                                break;
                            }
                        }
                    }
                }
            }
            if next == *levels.last().expect("nonempty") {
                // Fixed point: E_j = E_{j+1} = … ; later levels clamp.
                break;
            }
            levels.push(next);
        }
        Ok(DistinguishLevels {
            k_max,
            reach,
            n,
            ni,
            succ,
            out,
            levels,
        })
    }

    /// The `k_max` bound the chain was built for.
    pub fn max_k(&self) -> usize {
        self.k_max
    }

    /// `E_j`, clamping past the stored fixpoint.
    fn level(&self, j: usize) -> &[u64] {
        &self.levels[j.min(self.levels.len() - 1)]
    }

    /// Violating pairs (with witnesses) at depth `k`, read off the stored
    /// chain. Witnesses are reconstructed for at most `max_witnesses`
    /// violations; the violation count is exact regardless.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.max_k()` — the chain was not built deep enough
    /// to answer that query exactly.
    pub fn analyze(&self, k: usize, max_witnesses: usize) -> Distinguishability {
        assert!(
            k <= self.k_max,
            "analyze({k}) beyond the built bound {}",
            self.k_max
        );
        let n = self.n;
        let ek = self.level(k);
        let mut violations = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if bit_get(ek, a * n + b) {
                    let witness = if violations.len() < max_witnesses {
                        self.reconstruct_witness(k, a, b)
                    } else {
                        Vec::new()
                    };
                    violations.push(PairWitness {
                        s1: self.reach[a],
                        s2: self.reach[b],
                        witness,
                    });
                }
            }
        }
        Distinguishability {
            k,
            states: n,
            violations,
        }
    }

    /// Reads one equal-output sequence of length `k` for the pair
    /// `(a, b)` off the stored levels — `O(k · |I|)`, no recomputation.
    fn reconstruct_witness(&self, k: usize, a: usize, b: usize) -> Vec<InputSym> {
        let (n, ni) = (self.n, self.ni);
        let mut seq = Vec::with_capacity(k);
        let (mut x, mut y) = (a, b);
        for j in (1..=k).rev() {
            let prev = self.level(j - 1);
            let mut chosen = None;
            for i in 0..ni {
                if self.out[x * ni + i] == self.out[y * ni + i] {
                    let (sx, sy) = (self.succ[x * ni + i], self.succ[y * ni + i]);
                    let p = if sx <= sy { sx * n + sy } else { sy * n + sx };
                    if bit_get(prev, p) {
                        chosen = Some((i, sx, sy));
                        break;
                    }
                }
            }
            let (i, nx, ny) = chosen.expect("pair is in E_j, a continuation must exist");
            seq.push(InputSym(i as u32));
            x = nx;
            y = ny;
        }
        seq
    }
}

/// Checks ∀k-distinguishability of every pair of distinct reachable states
/// of `m`, returning witnesses for the violating pairs (at most
/// `max_witnesses`; the count of violations is exact regardless).
///
/// Convenience wrapper over [`DistinguishLevels`]: builds the chain for
/// this single `k` and queries it once. Callers sweeping several `k`
/// values (or reconstructing many witnesses) should build
/// [`DistinguishLevels`] themselves and share it.
///
/// # Errors
///
/// [`DistinguishError::IncompleteMachine`] if a reachable transition is
/// missing — restrict the machine to its valid alphabet first.
///
/// # Complexity
///
/// `O(k · n² · |I|)` time, `O(k · n²/64)` space over `n` reachable states.
pub fn forall_k_distinguishable(
    m: &ExplicitMealy,
    k: usize,
    max_witnesses: usize,
) -> Result<Distinguishability, DistinguishError> {
    Ok(DistinguishLevels::build(m, k)?.analyze(k, max_witnesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    /// Two states distinguished by every input: ∀1-distinguishable.
    #[test]
    fn immediately_distinguishable() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o0 = b.add_output("o0");
        let o1 = b.add_output("o1");
        b.add_transition(s0, a, s1, o0);
        b.add_transition(s1, a, s0, o1);
        let m = b.build(s0).unwrap();
        let d = forall_k_distinguishable(&m, 1, 10).unwrap();
        assert!(d.holds());
        assert_eq!(d.states, 2);
    }

    /// Figure-2-style: states 3 and 3' agree on input c but differ on b —
    /// ∃-distinguishable but NOT ∀1-distinguishable.
    #[test]
    fn exists_but_not_forall() {
        let (m, _) = crate::testutil::figure2();
        let d = forall_k_distinguishable(&m, 1, 100).unwrap();
        assert!(!d.holds());
        let s3 = m.state_by_label("3").unwrap();
        let s3p = m.state_by_label("3'").unwrap();
        let c = m.input_by_label("c").unwrap();
        let v = d
            .violations
            .iter()
            .find(|v| (v.s1 == s3 && v.s2 == s3p) || (v.s1 == s3p && v.s2 == s3))
            .expect("3/3' must violate forall-1");
        assert_eq!(v.witness, vec![c]);
    }

    /// Witness sequences really do keep outputs equal.
    #[test]
    fn witnesses_are_sound() {
        let (m, _) = crate::testutil::figure2();
        for k in 1..=3 {
            let d = forall_k_distinguishable(&m, k, 1000).unwrap();
            for v in &d.violations {
                assert_eq!(v.witness.len(), k);
                let (_, out1) = m.run(v.s1, &v.witness);
                let (_, out2) = m.run(v.s2, &v.witness);
                assert_eq!(out1, out2, "witness must keep outputs equal (k={k})");
            }
        }
    }

    /// Exhaustive cross-check on a small machine: compare against
    /// brute-force enumeration of all input sequences of length k.
    #[test]
    fn matches_brute_force() {
        let (m, _) = crate::testutil::figure2();
        let reach = m.reachable_states();
        let ni = m.num_inputs() as u32;
        for k in 1..=3usize {
            let d = forall_k_distinguishable(&m, k, usize::MAX).unwrap();
            let mut brute = Vec::new();
            for (ai, &a) in reach.iter().enumerate() {
                for &b in reach.iter().skip(ai + 1) {
                    // Does some sequence of length k keep outputs equal?
                    let total = (ni as usize).pow(k as u32);
                    let mut found = false;
                    for code in 0..total {
                        let mut c = code;
                        let seq: Vec<InputSym> = (0..k)
                            .map(|_| {
                                let i = InputSym((c % ni as usize) as u32);
                                c /= ni as usize;
                                i
                            })
                            .collect();
                        if m.run(a, &seq).1 == m.run(b, &seq).1 {
                            found = true;
                            break;
                        }
                    }
                    if found {
                        brute.push((a, b));
                    }
                }
            }
            let mut got: Vec<(StateId, StateId)> =
                d.violations.iter().map(|v| (v.s1, v.s2)).collect();
            got.sort();
            brute.sort();
            assert_eq!(got, brute, "k={k}");
        }
    }

    #[test]
    fn incomplete_machine_rejected() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let _s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s0, o);
        let m = b.build(s0).unwrap();
        // s1 unreachable: machine is complete on reachable part -> Ok.
        assert!(forall_k_distinguishable(&m, 2, 10).is_ok());
        // Make s1 reachable but leave it undefined.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        let m = b.build(s0).unwrap();
        assert_eq!(
            forall_k_distinguishable(&m, 2, 10).unwrap_err(),
            DistinguishError::IncompleteMachine {
                state: s1,
                input: a
            }
        );
    }

    /// Monotonicity: if ∀k holds then ∀(k+1) holds (more steps can only
    /// help distinguish).
    #[test]
    fn monotone_in_k() {
        let (m, _) = crate::testutil::figure2();
        let mut prev_violations = usize::MAX;
        for k in 1..=4 {
            let d = forall_k_distinguishable(&m, k, 0).unwrap();
            assert!(d.violations.len() <= prev_violations, "k={k}");
            prev_violations = d.violations.len();
        }
    }

    #[test]
    fn witness_cap_respected() {
        let (m, _) = crate::testutil::figure2();
        let d = forall_k_distinguishable(&m, 1, 1).unwrap();
        assert!(!d.violations.is_empty());
        let with_witness = d
            .violations
            .iter()
            .filter(|v| !v.witness.is_empty())
            .count();
        assert!(with_witness <= 1);
    }

    /// One shared chain answers every k ≤ k_max identically to the
    /// dedicated per-k computation — the memoized sweep.
    #[test]
    fn shared_levels_match_per_k_runs() {
        let (m, _) = crate::testutil::figure2();
        let levels = DistinguishLevels::build(&m, 4).unwrap();
        assert_eq!(levels.max_k(), 4);
        for k in 0..=4 {
            let swept = levels.analyze(k, usize::MAX);
            let direct = forall_k_distinguishable(&m, k, usize::MAX).unwrap();
            assert_eq!(swept, direct, "k={k}");
        }
    }

    /// The chain is cut at its fixpoint, and clamped queries past it stay
    /// correct (E_fix = E_{fix+1} = …).
    #[test]
    fn fixpoint_clamps_deep_queries() {
        let (m, _) = crate::testutil::figure2();
        let deep = DistinguishLevels::build(&m, 64).unwrap();
        assert!(
            deep.levels.len() <= m.num_states() * m.num_states() + 1,
            "chain must stop at the fixpoint, not at k_max"
        );
        let d64 = deep.analyze(64, 8);
        for v in &d64.violations {
            if !v.witness.is_empty() {
                assert_eq!(v.witness.len(), 64);
                let (_, out1) = m.run(v.s1, &v.witness);
                let (_, out2) = m.run(v.s2, &v.witness);
                assert_eq!(out1, out2, "clamped witness must keep outputs equal");
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond the built bound")]
    fn analyze_past_the_bound_panics() {
        let (m, _) = crate::testutil::figure2();
        let levels = DistinguishLevels::build(&m, 2).unwrap();
        let _ = levels.analyze(3, 0);
    }
}

//! Property-based tests: explicit/symbolic agreement on random netlists,
//! minimization invariants, and machine-level invariants — all on the
//! workspace's hermetic `forall` driver.

use simcov_core::testutil::{forall_cfg, Config, Gen};
use simcov_fsm::{
    enumerate_netlist, minimize, EnumerateOptions, ExplicitMealy, InputSym, MealyBuilder, PairFsm,
    StateId, SymbolicFsm,
};
use simcov_netlist::{Netlist, SignalId};

/// A recipe for a random well-formed netlist (operands resolved modulo
/// the signal pool).
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    latch_inits: Vec<bool>,
    gates: Vec<(u8, u16, u16, u16)>,
    latch_next_picks: Vec<u16>,
    output_picks: Vec<u16>,
}

fn recipe(g: &mut Gen) -> Recipe {
    let num_inputs = g.int_in(1..3usize);
    let latch_inits: Vec<bool> = (0..g.int_in(1..5usize)).map(|_| g.bool()).collect();
    let gates = (0..g.int_in(0..16usize))
        .map(|_| (g.int_in(0..5u8), g.u16(), g.u16(), g.u16()))
        .collect();
    let latch_next_picks = (0..latch_inits.len()).map(|_| g.u16()).collect();
    let output_picks = (0..g.int_in(1..3usize)).map(|_| g.u16()).collect();
    Recipe {
        num_inputs,
        latch_inits,
        gates,
        latch_next_picks,
        output_picks,
    }
}

fn build(r: &Recipe) -> Netlist {
    let mut n = Netlist::new();
    let mut pool: Vec<SignalId> = Vec::new();
    for i in 0..r.num_inputs {
        pool.push(n.add_input(format!("i{i}")));
    }
    let latches: Vec<_> = r
        .latch_inits
        .iter()
        .enumerate()
        .map(|(i, &init)| n.add_latch(format!("q{i}"), init))
        .collect();
    for &l in &latches {
        pool.push(n.latch_output(l));
    }
    for &(op, a, b, c) in &r.gates {
        let pick = |x: u16| pool[x as usize % pool.len()];
        let (sa, sb, sc) = (pick(a), pick(b), pick(c));
        let g = match op {
            0 => n.and(sa, sb),
            1 => n.or(sa, sb),
            2 => n.xor(sa, sb),
            3 => n.not(sa),
            _ => n.mux(sa, sb, sc),
        };
        pool.push(g);
    }
    for (i, &pick) in r.latch_next_picks.iter().enumerate() {
        let s = pool[pick as usize % pool.len()];
        n.set_latch_next(latches[i], s);
    }
    for (i, &pick) in r.output_picks.iter().enumerate() {
        let s = pool[pick as usize % pool.len()];
        n.add_output(format!("o{i}"), s);
    }
    n
}

/// A random complete Mealy machine over a ring backbone, for
/// minimization properties.
fn random_mealy(g: &mut Gen) -> ExplicitMealy {
    let n = g.int_in(2..10usize);
    let ni = g.int_in(1..4usize);
    let no = g.int_in(1..4usize);
    let mut b = MealyBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    let inputs: Vec<_> = (0..ni).map(|i| b.add_input(format!("i{i}"))).collect();
    let outs: Vec<_> = (0..no).map(|i| b.add_output(format!("o{i}"))).collect();
    for s in 0..n {
        #[allow(clippy::needless_range_loop)]
        for i in 0..ni {
            let dest = if i == 0 { (s + 1) % n } else { g.int_in(0..n) };
            let out = g.int_in(0..no);
            b.add_transition(states[s], inputs[i], states[dest], outs[out]);
        }
    }
    b.build(states[0]).expect("complete machine")
}

/// Explicit enumeration and symbolic reachability agree on state and
/// transition counts.
#[test]
fn explicit_symbolic_agree() {
    forall_cfg("explicit_symbolic_agree", Config::with_cases(48), |g| {
        let n = build(&recipe(g));
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        let mut fsm = SymbolicFsm::from_netlist(&n);
        let reach = fsm.reachable();
        assert_eq!(fsm.count_states(reach.reached), m.num_states() as u128);
        assert_eq!(
            fsm.count_transitions(reach.reached),
            m.num_transitions() as u128
        );
    });
}

/// The symbolic pair analysis agrees with a brute-force pair check.
#[test]
fn pair_analysis_agrees_with_bruteforce() {
    forall_cfg(
        "pair_analysis_agrees_with_bruteforce",
        Config::with_cases(48),
        |g| {
            let n = build(&recipe(g));
            let k = g.int_in(1..3usize);
            let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
            // Brute force E_k over the explicit machine.
            let reach = m.reachable_states();
            let nn = reach.len();
            let ni = m.num_inputs();
            let mut idx = vec![usize::MAX; m.num_states()];
            for (i, &s) in reach.iter().enumerate() {
                idx[s.index()] = i;
            }
            let pair = |a: usize, b: usize| if a <= b { a * nn + b } else { b * nn + a };
            let mut e = vec![true; nn * nn];
            for _ in 0..k {
                let mut next = vec![false; nn * nn];
                for a in 0..nn {
                    next[pair(a, a)] = true;
                    for b in (a + 1)..nn {
                        for i in 0..ni {
                            let (na, oa) = m.step(reach[a], InputSym(i as u32)).expect("complete");
                            let (nb, ob) = m.step(reach[b], InputSym(i as u32)).expect("complete");
                            if oa == ob && e[pair(idx[na.index()], idx[nb.index()])] {
                                next[pair(a, b)] = true;
                                break;
                            }
                        }
                    }
                }
                e = next;
            }
            let mut brute = 0u128;
            for a in 0..nn {
                for b in (a + 1)..nn {
                    if e[pair(a, b)] {
                        brute += 1;
                    }
                }
            }
            let mut pf = PairFsm::from_netlist(&n);
            let sym = pf.forall_k(&n.initial_state(), k, true);
            assert_eq!(sym.violating_pairs, brute);
            assert_eq!(sym.reachable_states, nn as u128);
        },
    );
}

/// Machine mutations are involutive where expected: redirecting a
/// transition back restores the original machine.
#[test]
fn mutation_roundtrip() {
    forall_cfg("mutation_roundtrip", Config::with_cases(48), |g| {
        let n = build(&recipe(g));
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        let s = StateId(g.u16() as u32 % m.num_states() as u32);
        let i = InputSym(g.u16() as u32 % m.num_inputs() as u32);
        let (orig_next, _) = m.step(s, i).expect("complete");
        let other = StateId((orig_next.0 + 1) % m.num_states() as u32);
        let mutated = m.with_redirected_transition(s, i, other);
        let restored = mutated.with_redirected_transition(s, i, orig_next);
        assert_eq!(&restored, &m);
    });
}

/// DOT export is syntactically coherent (every reachable state and
/// transition appears).
#[test]
fn dot_mentions_everything() {
    forall_cfg("dot_mentions_everything", Config::with_cases(48), |g| {
        let n = build(&recipe(g));
        let m = enumerate_netlist(&n, &EnumerateOptions::exhaustive(&n)).expect("enumerates");
        let dot = m.to_dot();
        for s in m.reachable_states() {
            let label = format!("s{}", s.0);
            assert!(dot.contains(&label));
        }
        assert!(dot.contains("init ->"));
    });
}

/// Minimization preserves the machine's language: on random input words
/// the minimized machine produces exactly the golden output trace, and
/// every original state agrees with its equivalence-class representative.
#[test]
fn minimize_preserves_language() {
    forall_cfg("minimize_preserves_language", Config::with_cases(48), |g| {
        let m = random_mealy(g);
        let min = minimize(&m);
        assert!(min.machine.num_states() <= m.num_states());
        // Random words from reset: identical output traces.
        for _ in 0..8 {
            let word: Vec<InputSym> =
                g.vec_of(0..24usize, |g| InputSym(g.int_in(0..m.num_inputs() as u32)));
            let (_, golden) = m.run(m.reset(), &word);
            let (_, reduced) = min.machine.run(min.machine.reset(), &word);
            assert_eq!(
                golden, reduced,
                "word {word:?} distinguishes machine from its quotient"
            );
        }
        // Classwise: every reachable original state behaves like its class.
        for s in m.reachable_states() {
            let class = min.class_of[s.index()].expect("reachable states have a class");
            let word: Vec<InputSym> =
                g.vec_of(0..12usize, |g| InputSym(g.int_in(0..m.num_inputs() as u32)));
            let (_, from_orig) = m.run(s, &word);
            let (_, from_class) = min.machine.run(StateId(class), &word);
            assert_eq!(
                from_orig, from_class,
                "state s{} deviates from its class",
                s.0
            );
        }
    });
}

//! UIO sequences and UIO-based transition checking.
//!
//! The paper's minimum-cost tour formulation comes from Aho, Dahbura, Lee
//! & Uyar's work on protocol conformance testing, where each transition
//! is verified by a **Unique Input/Output sequence**: an input sequence
//! whose output from the transition's destination state differs from its
//! output from *every* other state. A UIO confirms which state the
//! machine landed in — the ∃-flavoured cousin of the paper's
//! ∀k-distinguishability.
//!
//! [`uio_test_set`] builds the classic checking test set: for every
//! transition `(s, i)`, a sequence *reach-s · i · UIO(δ(s, i))*. It
//! detects transfer errors even on machines that fail the paper's ∀k
//! property — at the price of a much larger test set and a reset between
//! sequences.

use crate::random::TestSet;
use simcov_fsm::{ExplicitMealy, InputSym, StateId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Errors from UIO construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UioError {
    /// These states have no UIO sequence within the length bound.
    NoUio(Vec<StateId>),
    /// The machine has unreachable-from-reset states involved in
    /// requested checks.
    Unreachable(StateId),
}

impl std::fmt::Display for UioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UioError::NoUio(ss) => {
                write!(f, "{} states have no UIO within the length bound", ss.len())
            }
            UioError::Unreachable(s) => write!(f, "state {} unreachable from reset", s.0),
        }
    }
}

impl std::error::Error for UioError {}

/// Searches (breadth-first over sequences, with signature-based pruning)
/// for a shortest UIO sequence of `state`: an input sequence along which
/// `state`'s outputs differ from every other reachable state's outputs at
/// some position.
///
/// Returns `None` if no UIO of length ≤ `max_len` exists (some machines
/// have none at all). The search visits at most `max_nodes` frontier
/// entries before giving up, guarding the exponential worst case.
pub fn uio_sequence(
    m: &ExplicitMealy,
    state: StateId,
    max_len: usize,
    max_nodes: usize,
) -> Option<Vec<InputSym>> {
    let reach = m.reachable_states();
    // A frontier node: current position of the candidate state and the
    // surviving impostor pairs (impostor's current position). The
    // sequence so far is reconstructed via parent links.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Node {
        cur: StateId,
        impostors: Vec<StateId>,
    }
    let start = Node {
        cur: state,
        impostors: reach.iter().copied().filter(|&t| t != state).collect(),
    };
    if start.impostors.is_empty() {
        return Some(Vec::new());
    }
    let mut parents: Vec<(usize, InputSym)> = Vec::new();
    let mut nodes: Vec<Node> = vec![start.clone()];
    let mut seen: HashSet<Node> = HashSet::from([start]);
    let mut queue: VecDeque<(usize, usize)> = VecDeque::from([(0usize, 0usize)]); // (node idx, depth)
    let mut expansions = 0usize;
    while let Some((idx, depth)) = queue.pop_front() {
        if depth >= max_len {
            continue;
        }
        expansions += 1;
        if expansions > max_nodes {
            return None;
        }
        let node = nodes[idx].clone();
        for i in m.inputs() {
            let Some((next, out)) = m.step(node.cur, i) else {
                continue;
            };
            let mut impostors = Vec::new();
            let mut dead_end = false;
            for &t in &node.impostors {
                match m.step(t, i) {
                    Some((tn, to)) => {
                        if to == out {
                            impostors.push(tn);
                        }
                        // Different output: impostor eliminated.
                    }
                    None => {
                        // Impostor cannot take this input: on a complete
                        // machine this does not occur; on partial
                        // machines treat as eliminated (observable
                        // divergence).
                        let _ = &mut dead_end;
                    }
                }
            }
            // Canonicalize impostor multiset for pruning.
            impostors.sort_unstable();
            impostors.dedup();
            let child = Node {
                cur: next,
                impostors,
            };
            if child.impostors.is_empty() {
                // Reconstruct the sequence.
                let mut seq = vec![i];
                let mut walk = idx;
                while walk != 0 {
                    let (p, inp) = parents[walk - 1];
                    seq.push(inp);
                    walk = p;
                }
                seq.reverse();
                return Some(seq);
            }
            if seen.insert(child.clone()) {
                nodes.push(child);
                parents.push((idx, i));
                queue.push_back((nodes.len() - 1, depth + 1));
            }
        }
    }
    None
}

/// Builds the UIO-based checking test set: one sequence per reachable
/// transition, each of the form *shortest-path-to-s · i · UIO(δ(s,i))*.
///
/// # Errors
///
/// [`UioError::NoUio`] listing the destination states that lack a UIO
/// within `max_uio_len`.
pub fn uio_test_set(m: &ExplicitMealy, max_uio_len: usize) -> Result<TestSet, UioError> {
    let reach = m.reachable_states();
    // Shortest input paths from reset to every state.
    let mut path: HashMap<StateId, Vec<InputSym>> = HashMap::new();
    path.insert(m.reset(), Vec::new());
    let mut q = VecDeque::from([m.reset()]);
    while let Some(s) = q.pop_front() {
        for i in m.inputs() {
            if let Some((n, _)) = m.step(s, i) {
                if !path.contains_key(&n) {
                    let mut p = path[&s].clone();
                    p.push(i);
                    path.insert(n, p);
                    q.push_back(n);
                }
            }
        }
    }
    // UIOs per destination state, memoized.
    let mut uios: HashMap<StateId, Option<Vec<InputSym>>> = HashMap::new();
    let mut missing = Vec::new();
    let mut sequences = Vec::new();
    for &s in &reach {
        for i in m.inputs() {
            let Some((next, _)) = m.step(s, i) else {
                continue;
            };
            let uio = uios
                .entry(next)
                .or_insert_with(|| uio_sequence(m, next, max_uio_len, 200_000));
            match uio {
                Some(u) => {
                    let mut seq = path[&s].clone();
                    seq.push(i);
                    seq.extend(u.iter().copied());
                    sequences.push(seq);
                }
                None => {
                    if !missing.contains(&next) {
                        missing.push(next);
                    }
                }
            }
        }
    }
    if !missing.is_empty() {
        return Err(UioError::NoUio(missing));
    }
    Ok(TestSet { sequences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    /// Machine where every state has a distinct self-loop output: UIO of
    /// length 1 everywhere.
    fn distinct_loops() -> ExplicitMealy {
        let mut b = MealyBuilder::new();
        let states: Vec<_> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        let step = b.add_input("step");
        let probe = b.add_input("probe");
        let o = b.add_output("common");
        let probes: Vec<_> = (0..4).map(|i| b.add_output(format!("p{i}"))).collect();
        for i in 0..4 {
            b.add_transition(states[i], step, states[(i + 1) % 4], o);
            b.add_transition(states[i], probe, states[i], probes[i]);
        }
        b.build(states[0]).unwrap()
    }

    #[test]
    fn uio_length_one_when_probe_exists() {
        let m = distinct_loops();
        for s in m.states() {
            let uio = uio_sequence(&m, s, 4, 100_000).expect("probe gives a UIO");
            assert_eq!(uio.len(), 1);
            assert_eq!(m.input_label(uio[0]), "probe");
        }
    }

    #[test]
    fn uio_is_actually_unique() {
        let m = distinct_loops();
        for s in m.reachable_states() {
            let uio = uio_sequence(&m, s, 4, 100_000).unwrap();
            let (_, mine) = m.run(s, &uio);
            for t in m.reachable_states() {
                if t != s {
                    let (_, theirs) = m.run(t, &uio);
                    assert_ne!(mine, theirs, "UIO of {s:?} must differ from {t:?}");
                }
            }
        }
    }

    #[test]
    fn uio_none_when_states_equivalent() {
        // Two states with identical rows: no UIO can exist.
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s1, a, s0, o);
        let m = b.build(s0).unwrap();
        assert_eq!(uio_sequence(&m, s0, 6, 100_000), None);
    }

    #[test]
    fn uio_test_set_covers_all_transitions_and_detects_transfers() {
        use crate::verify::coverage_set;
        let m = distinct_loops();
        let ts = uio_test_set(&m, 4).unwrap();
        assert_eq!(ts.len(), m.num_transitions());
        let seqs: Vec<&[InputSym]> = ts.sequences.iter().map(Vec::as_slice).collect();
        let cov = coverage_set(&m, seqs.iter().copied());
        assert!(cov.all_transitions_covered());
        // Every single transfer error changes some sequence's output
        // trace: the UIO at the end identifies the wrong destination.
        for s in m.reachable_states() {
            for i in m.inputs() {
                let (next, _) = m.step(s, i).unwrap();
                for t in m.reachable_states() {
                    if t == next {
                        continue;
                    }
                    let bad = m.with_redirected_transition(s, i, t);
                    let detected = ts
                        .sequences
                        .iter()
                        .any(|seq| m.output_trace(seq) != bad.output_trace(seq));
                    assert!(detected, "transfer ({s:?},{i:?})->{t:?} must be caught");
                }
            }
        }
    }

    #[test]
    fn uio_error_reported() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let a = b.add_input("a");
        let o = b.add_output("o");
        b.add_transition(s0, a, s1, o);
        b.add_transition(s1, a, s0, o);
        let m = b.build(s0).unwrap();
        let err = uio_test_set(&m, 5).unwrap_err();
        assert!(matches!(err, UioError::NoUio(_)));
        assert!(err.to_string().contains("no UIO"));
    }
}

//! Property-based tests for the DLX: encode/decode roundtrips over the
//! whole instruction space, and spec/pipeline equivalence on random
//! forward-flow programs — on the workspace's hermetic `forall` driver.

use simcov_core::testutil::{forall, forall_cfg, Config, Gen};
use simcov_dlx::isa::{AluOp, Instr, MemWidth, Reg};
use simcov_dlx::pipeline::Pipeline;
use simcov_dlx::spec::Spec;

fn reg(g: &mut Gen) -> Reg {
    Reg(g.int_in(0..32u8))
}

fn alu_op(g: &mut Gen) -> AluOp {
    AluOp::ALL[g.int_in(0..AluOp::ALL.len())]
}

fn width(g: &mut Gen) -> MemWidth {
    match g.int_in(0..3u8) {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        _ => MemWidth::Word,
    }
}

fn instr(g: &mut Gen) -> Instr {
    match g.int_in(0..10u8) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::Alu {
            op: alu_op(g),
            rd: reg(g),
            rs1: reg(g),
            rs2: reg(g),
        },
        3 => Instr::AluImm {
            op: alu_op(g),
            rd: reg(g),
            rs1: reg(g),
            imm: g.u16(),
        },
        4 => Instr::Lhi {
            rd: reg(g),
            imm: g.u16(),
        },
        5 => {
            let w = width(g);
            // Word loads are canonically signed in the encoding.
            let signed = if w == MemWidth::Word { true } else { g.bool() };
            Instr::Load {
                width: w,
                signed,
                rd: reg(g),
                rs1: reg(g),
                imm: g.u16(),
            }
        }
        6 => Instr::Store {
            width: width(g),
            rs2: reg(g),
            rs1: reg(g),
            imm: g.u16(),
        },
        7 => Instr::Branch {
            on_zero: g.bool(),
            rs1: reg(g),
            imm: g.u16(),
        },
        8 => Instr::Jump {
            link: g.bool(),
            offset: g.int_in(-(1i32 << 25)..(1i32 << 25)),
        },
        _ => Instr::JumpReg {
            link: g.bool(),
            rs1: reg(g),
        },
    }
}

/// Every instruction round-trips through its 32-bit encoding.
#[test]
fn encode_decode_roundtrip() {
    forall("encode_decode_roundtrip", |g| {
        let i = instr(g);
        let w = i.encode();
        assert_eq!(Instr::decode(w), Some(i));
    });
}

/// Class, destination and sources are consistent: the destination is
/// only reported for register-writing classes and never r0.
#[test]
fn dest_class_consistency() {
    forall("dest_class_consistency", |g| {
        let i = instr(g);
        if let Some(d) = i.dest() {
            assert_ne!(d, Reg(0));
        }
        if !i.class().writes_reg() && !matches!(i, Instr::JumpReg { link: true, .. }) {
            assert_eq!(i.dest(), None);
        }
    });
}

/// Random forward-flow program recipe: ALU/memory traffic plus forward
/// branches/jumps that always terminate.
#[derive(Debug, Clone)]
struct ProgRecipe {
    items: Vec<(u8, u8, u8, u8, u16)>,
}

fn prog_recipe(g: &mut Gen) -> ProgRecipe {
    let items = g.vec_of(1..40usize, |g| {
        (
            g.int_in(0..9u8),
            g.int_in(0..8u8),
            g.int_in(0..8u8),
            g.int_in(0..8u8),
            g.u16(),
        )
    });
    ProgRecipe { items }
}

fn realize(r: &ProgRecipe) -> Vec<Instr> {
    let len = r.items.len();
    let mut prog = Vec::with_capacity(len + 1);
    for (pc, &(kind, a, b, c, imm)) in r.items.iter().enumerate() {
        let ra = Reg(a % 8);
        let rb = Reg(b % 8);
        let rc = Reg(c % 8);
        let i = match kind {
            0..=2 => Instr::Alu {
                op: AluOp::ALL[(imm as usize) % AluOp::ALL.len()],
                rd: ra,
                rs1: rb,
                rs2: rc,
            },
            3..=4 => Instr::AluImm {
                op: AluOp::ALL[(imm as usize) % AluOp::ALL.len()],
                rd: ra,
                rs1: rb,
                imm,
            },
            5 => Instr::Load {
                width: MemWidth::Word,
                signed: true,
                rd: ra,
                rs1: Reg(0),
                imm: (imm % 64) * 4,
            },
            6 => Instr::Store {
                width: MemWidth::Word,
                rs2: ra,
                rs1: Reg(0),
                imm: (imm % 64) * 4,
            },
            7 => {
                let skip = 1 + (imm % 2);
                if pc + skip as usize + 1 < len {
                    Instr::Branch {
                        on_zero: imm & 4 == 0,
                        rs1: ra,
                        imm: skip,
                    }
                } else {
                    Instr::Nop
                }
            }
            _ => {
                let skip = 1 + (imm as i32 % 2);
                if pc + skip as usize + 1 < len {
                    Instr::Jump {
                        link: imm & 8 == 0,
                        offset: skip,
                    }
                } else {
                    Instr::Nop
                }
            }
        };
        prog.push(i);
    }
    prog.push(Instr::Halt);
    prog
}

/// The golden pipeline's retire trace equals the specification's on
/// arbitrary forward-flow programs (the central correctness property
/// of the implementation under validation).
#[test]
fn pipeline_matches_spec() {
    forall_cfg("pipeline_matches_spec", Config::with_cases(64), |g| {
        let prog = realize(&prog_recipe(g));
        let mut spec = Spec::new(prog.clone());
        let spec_events = spec.run_to_halt(2_000);
        let mut pipe = Pipeline::new(prog);
        let pipe_events = pipe.run_to_halt(50_000, 2_000);
        assert_eq!(spec_events, pipe_events);
    });
}

/// Every control fault either leaves the trace identical (fault not
/// excited by this program) or changes it — and the golden pipeline
/// never reports fault-only statistics.
#[test]
fn faults_change_traces_or_are_unexcited() {
    forall_cfg(
        "faults_change_traces_or_are_unexcited",
        Config::with_cases(64),
        |g| {
            use simcov_dlx::ControlFault;
            let prog = realize(&prog_recipe(g));
            let mut golden = Pipeline::new(prog.clone());
            let golden_events = golden.run_to_halt(50_000, 2_000);
            for fault in ControlFault::ALL {
                let mut faulty = Pipeline::new(prog.clone()).with_fault(fault);
                let faulty_events = faulty.run_to_halt(50_000, 2_000);
                // No assertion on inequality (the program may not excite the
                // fault); but a *detected* difference must be a genuine
                // divergence, not a panic or hang.
                let _ = faulty_events == golden_events;
            }
        },
    );
}

//! The core netlist data structure: gates, latches, inputs, outputs,
//! modules, and cycle-accurate simulation.

use std::collections::HashMap;
use std::fmt;

/// Handle to a combinational signal (a node in the gate DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index (stable for the lifetime of the netlist).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a latch (state element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LatchId(pub(crate) u32);

impl LatchId {
    /// Raw index into the latch table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a primary input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputId(pub(crate) u32);

impl InputId {
    /// Raw index into the input table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate in the combinational DAG.
///
/// The node set is minimal but complete (`Mux` is included because control
/// logic is mux-heavy and it keeps cones readable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Constant 0 or 1.
    Const(bool),
    /// Primary input.
    Input(InputId),
    /// Output of a latch (current-state bit).
    LatchOut(LatchId),
    /// Negation.
    Not(SignalId),
    /// Conjunction.
    And(SignalId, SignalId),
    /// Disjunction.
    Or(SignalId, SignalId),
    /// Exclusive or.
    Xor(SignalId, SignalId),
    /// `Mux(sel, t, e)` = `sel ? t : e`.
    Mux(SignalId, SignalId, SignalId),
}

/// A state element: a D-latch clocked by the single global clock.
#[derive(Debug, Clone)]
pub struct Latch {
    /// Hierarchical name, e.g. `"ex.dest[1]"`.
    pub name: String,
    /// Power-on value.
    pub init: bool,
    /// Next-state function (must be set before simulation; see
    /// [`Netlist::set_latch_next`]).
    pub next: Option<SignalId>,
    /// Owning module (the unit of structural abstraction), e.g. `"fetch"`.
    pub module: String,
}

/// Summary statistics of a netlist (the numbers reported in Fig 3(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of latches (state elements).
    pub latches: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gate nodes (including constants/input/latch-out nodes).
    pub nodes: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} latches, {} PIs, {} POs, {} nodes",
            self.latches, self.inputs, self.outputs, self.nodes
        )
    }
}

/// A synchronous bit-level netlist.
///
/// Gates are hash-consed, so structurally identical expressions share
/// nodes. Latches, inputs and outputs are named; latches additionally carry
/// a `module` tag that the abstraction passes use as the unit of removal.
#[derive(Clone, Default)]
pub struct Netlist {
    pub(crate) nodes: Vec<NodeKind>,
    dedup: HashMap<NodeKind, SignalId>,
    pub(crate) inputs: Vec<String>,
    pub(crate) latches: Vec<Latch>,
    pub(crate) outputs: Vec<(String, SignalId)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    fn intern(&mut self, kind: NodeKind) -> SignalId {
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let id = SignalId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.dedup.insert(kind, id);
        id
    }

    /// The constant-`value` signal.
    pub fn constant(&mut self, value: bool) -> SignalId {
        self.intern(NodeKind::Const(value))
    }

    /// Declares a new primary input and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        let id = InputId(self.inputs.len() as u32);
        self.inputs.push(name.into());
        self.intern(NodeKind::Input(id))
    }

    /// Declares a new latch in module `""` with the given init value.
    ///
    /// The next-state function must be assigned with
    /// [`Netlist::set_latch_next`] before simulation.
    pub fn add_latch(&mut self, name: impl Into<String>, init: bool) -> LatchId {
        self.add_latch_in(name, init, "")
    }

    /// Declares a new latch inside the named module.
    pub fn add_latch_in(
        &mut self,
        name: impl Into<String>,
        init: bool,
        module: impl Into<String>,
    ) -> LatchId {
        let id = LatchId(self.latches.len() as u32);
        self.latches.push(Latch {
            name: name.into(),
            init,
            next: None,
            module: module.into(),
        });
        id
    }

    /// The current-state output signal of a latch.
    pub fn latch_output(&mut self, latch: LatchId) -> SignalId {
        self.intern(NodeKind::LatchOut(latch))
    }

    /// Assigns the next-state function of a latch.
    ///
    /// # Panics
    ///
    /// Panics if the latch id is out of range.
    pub fn set_latch_next(&mut self, latch: LatchId, next: SignalId) {
        self.latches[latch.index()].next = Some(next);
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, sig: SignalId) {
        self.outputs.push((name.into(), sig));
    }

    /// Negation gate.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        match self.nodes[a.index()] {
            NodeKind::Const(v) => self.constant(!v),
            NodeKind::Not(inner) => inner,
            _ => self.intern(NodeKind::Not(a)),
        }
    }

    /// Conjunction gate (with constant folding and commutativity
    /// normalisation).
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        match (self.nodes[a.index()], self.nodes[b.index()]) {
            (NodeKind::Const(false), _) | (_, NodeKind::Const(false)) => self.constant(false),
            (NodeKind::Const(true), _) => b,
            (_, NodeKind::Const(true)) => a,
            _ if a == b => a,
            _ => {
                let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
                self.intern(NodeKind::And(x, y))
            }
        }
    }

    /// Disjunction gate.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        match (self.nodes[a.index()], self.nodes[b.index()]) {
            (NodeKind::Const(true), _) | (_, NodeKind::Const(true)) => self.constant(true),
            (NodeKind::Const(false), _) => b,
            (_, NodeKind::Const(false)) => a,
            _ if a == b => a,
            _ => {
                let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
                self.intern(NodeKind::Or(x, y))
            }
        }
    }

    /// Exclusive-or gate.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        match (self.nodes[a.index()], self.nodes[b.index()]) {
            (NodeKind::Const(false), _) => b,
            (_, NodeKind::Const(false)) => a,
            (NodeKind::Const(true), _) => self.not(b),
            (_, NodeKind::Const(true)) => self.not(a),
            _ if a == b => self.constant(false),
            _ => {
                let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
                self.intern(NodeKind::Xor(x, y))
            }
        }
    }

    /// Multiplexer gate: `sel ? t : e`.
    pub fn mux(&mut self, sel: SignalId, t: SignalId, e: SignalId) -> SignalId {
        match self.nodes[sel.index()] {
            NodeKind::Const(true) => return t,
            NodeKind::Const(false) => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        self.intern(NodeKind::Mux(sel, t, e))
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Input names, in declaration order.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.iter().map(String::as_str)
    }

    /// Index of the input with the given name.
    pub fn input_by_name(&self, name: &str) -> Option<InputId> {
        self.inputs
            .iter()
            .position(|n| n == name)
            .map(|i| InputId(i as u32))
    }

    /// The latch table.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// All latch ids.
    pub fn latch_ids(&self) -> impl Iterator<Item = LatchId> {
        (0..self.latches.len() as u32).map(LatchId)
    }

    /// The latch with the given name.
    pub fn latch_by_name(&self, name: &str) -> Option<LatchId> {
        self.latches
            .iter()
            .position(|l| l.name == name)
            .map(|i| LatchId(i as u32))
    }

    /// Latches belonging to the given module.
    pub fn module_latches(&self, module: &str) -> Vec<LatchId> {
        self.latches
            .iter()
            .enumerate()
            .filter(|(_, l)| l.module == module)
            .map(|(i, _)| LatchId(i as u32))
            .collect()
    }

    /// The distinct module names present, in first-seen order.
    pub fn module_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for l in &self.latches {
            if !seen.contains(&l.module) {
                seen.push(l.module.clone());
            }
        }
        seen
    }

    /// The primary outputs (name, signal).
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// The gate kind of a signal.
    pub fn node(&self, sig: SignalId) -> NodeKind {
        self.nodes[sig.index()]
    }

    /// Number of gate nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The gate at index `idx`, if in range. Nodes are stored in
    /// topological order (operands precede users), so iterating
    /// `0..num_nodes()` visits every cone bottom-up.
    pub fn node_at(&self, idx: usize) -> Option<NodeKind> {
        self.nodes.get(idx).copied()
    }

    /// The [`SignalId`] for node index `idx`, if in range — the inverse of
    /// [`SignalId::index`], for read-only traversals (e.g. lints) that
    /// enumerate the node table.
    pub fn signal_at(&self, idx: usize) -> Option<SignalId> {
        (idx < self.nodes.len()).then_some(SignalId(idx as u32))
    }

    /// Summary statistics (the numbers reported per abstraction step in
    /// Fig 3(b)).
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            latches: self.latches.len(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            nodes: self.nodes.len(),
        }
    }

    /// The power-on state vector.
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches.iter().map(|l| l.init).collect()
    }

    /// Evaluates every node under the given state and input vectors,
    /// returning the full value table (indexable by [`SignalId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `state` or `inputs` have the wrong length.
    pub fn eval_all(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.latches.len(), "state width mismatch");
        assert_eq!(inputs.len(), self.inputs.len(), "input width mismatch");
        let mut vals = vec![false; self.nodes.len()];
        // Nodes are created in topological order (operands precede users),
        // so a single forward pass evaluates everything.
        for (i, kind) in self.nodes.iter().enumerate() {
            vals[i] = match *kind {
                NodeKind::Const(v) => v,
                NodeKind::Input(id) => inputs[id.index()],
                NodeKind::LatchOut(id) => state[id.index()],
                NodeKind::Not(a) => !vals[a.index()],
                NodeKind::And(a, b) => vals[a.index()] && vals[b.index()],
                NodeKind::Or(a, b) => vals[a.index()] || vals[b.index()],
                NodeKind::Xor(a, b) => vals[a.index()] ^ vals[b.index()],
                NodeKind::Mux(s, t, e) => {
                    if vals[s.index()] {
                        vals[t.index()]
                    } else {
                        vals[e.index()]
                    }
                }
            };
        }
        vals
    }

    /// Advances the circuit one clock cycle: returns `(next_state,
    /// outputs)` for the given current state and inputs.
    ///
    /// # Panics
    ///
    /// Panics if any latch has no next-state function assigned, or on
    /// width mismatch.
    pub fn step(&self, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let vals = self.eval_all(state, inputs);
        let next = self
            .latches
            .iter()
            .map(|l| vals[l.next.expect("latch has no next-state function").index()])
            .collect();
        let outs = self.outputs.iter().map(|&(_, s)| vals[s.index()]).collect();
        (next, outs)
    }

    /// Validates structural invariants: every latch has a next function and
    /// all signal references are in range. Returns a list of problems
    /// (empty when well-formed).
    pub fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, l) in self.latches.iter().enumerate() {
            if l.next.is_none() {
                problems.push(format!(
                    "latch #{i} `{}` has no next-state function",
                    l.name
                ));
            }
        }
        let n = self.nodes.len() as u32;
        let mut check_sig = |s: SignalId, what: &str| {
            if s.0 >= n {
                problems.push(format!("{what}: dangling signal {}", s.0));
            }
        };
        for (name, s) in &self.outputs {
            check_sig(*s, &format!("output `{name}`"));
        }
        for l in &self.latches {
            if let Some(nx) = l.next {
                check_sig(nx, &format!("latch `{}` next", l.name));
            }
        }
        problems
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Netlist({})", self.stats())
    }
}

/// A running simulation of a netlist: owns the current state vector.
///
/// # Example
///
/// ```
/// use simcov_netlist::{Netlist, SimState};
///
/// let mut n = Netlist::new();
/// let d = n.add_input("d");
/// let q = n.add_latch("q", false);
/// n.set_latch_next(q, d);
/// let qo = n.latch_output(q);
/// n.add_output("q", qo);
///
/// let mut sim = SimState::new(&n);
/// let out = sim.step(&n, &[true]);
/// assert_eq!(out, vec![false]); // outputs are pre-clock
/// let out = sim.step(&n, &[false]);
/// assert_eq!(out, vec![true]); // the 1 arrived after one cycle
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimState {
    state: Vec<bool>,
    cycle: u64,
}

impl SimState {
    /// Starts a simulation from the power-on state of `n`.
    pub fn new(n: &Netlist) -> Self {
        SimState {
            state: n.initial_state(),
            cycle: 0,
        }
    }

    /// The current state vector (one bool per latch).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Applies one input vector, returning the outputs sampled *before*
    /// the clock edge, then advances the state.
    pub fn step(&mut self, n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let (next, outs) = n.step(&self.state, inputs);
        self.state = next;
        self.cycle += 1;
        outs
    }

    /// Resets to the power-on state.
    pub fn reset(&mut self, n: &Netlist) {
        self.state = n.initial_state();
        self.cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.and(a, b);
        let y = n.and(b, a); // commuted, must share
        assert_eq!(x, y);
    }

    #[test]
    fn constant_folding() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let t = n.constant(true);
        let f = n.constant(false);
        assert_eq!(n.and(a, t), a);
        assert_eq!(n.and(a, f), f);
        assert_eq!(n.or(a, f), a);
        assert_eq!(n.or(a, t), t);
        assert_eq!(n.xor(a, f), a);
        let na = n.not(a);
        assert_eq!(n.xor(a, t), na);
        assert_eq!(n.not(na), a);
        assert_eq!(n.mux(t, a, na), a);
        assert_eq!(n.mux(f, a, na), na);
        assert_eq!(n.mux(na, a, a), a);
    }

    #[test]
    fn xor_self_is_false() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        assert_eq!(n.xor(a, a), n.constant(false));
    }

    #[test]
    fn step_toggling_counter() {
        // 2-bit counter built from xor/and.
        let mut n = Netlist::new();
        let b0 = n.add_latch("b0", false);
        let b1 = n.add_latch("b1", false);
        let b0o = n.latch_output(b0);
        let b1o = n.latch_output(b1);
        let nb0 = n.not(b0o);
        let carry = b0o;
        let nb1 = n.xor(b1o, carry);
        n.set_latch_next(b0, nb0);
        n.set_latch_next(b1, nb1);
        n.add_output("b0", b0o);
        n.add_output("b1", b1o);
        let mut sim = SimState::new(&n);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let o = sim.step(&n, &[]);
            seen.push((o[1], o[0]));
        }
        assert_eq!(
            seen,
            vec![
                (false, false),
                (false, true),
                (true, false),
                (true, true),
                (false, false)
            ]
        );
    }

    #[test]
    fn check_reports_unassigned_latch() {
        let mut n = Netlist::new();
        let _ = n.add_latch("q", false);
        let problems = n.check();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("no next-state"));
    }

    #[test]
    fn module_queries() {
        let mut n = Netlist::new();
        let a = n.add_latch_in("x", false, "fetch");
        let b = n.add_latch_in("y", true, "decode");
        let c = n.add_latch_in("z", false, "fetch");
        let t = n.constant(false);
        for l in [a, b, c] {
            n.set_latch_next(l, t);
        }
        assert_eq!(n.module_latches("fetch"), vec![a, c]);
        assert_eq!(
            n.module_names(),
            vec!["fetch".to_string(), "decode".to_string()]
        );
        assert_eq!(n.latch_by_name("y"), Some(b));
        assert_eq!(n.latch_by_name("nope"), None);
    }

    #[test]
    fn stats_and_names() {
        let mut n = Netlist::new();
        let a = n.add_input("in0");
        let q = n.add_latch("q", true);
        n.set_latch_next(q, a);
        let qo = n.latch_output(q);
        n.add_output("o", qo);
        let s = n.stats();
        assert_eq!(s.latches, 1);
        assert_eq!(s.inputs, 1);
        assert_eq!(s.outputs, 1);
        assert_eq!(n.input_by_name("in0"), Some(InputId(0)));
        assert_eq!(n.input_by_name("zzz"), None);
        assert_eq!(n.initial_state(), vec![true]);
        assert_eq!(format!("{s}"), "1 latches, 1 PIs, 1 POs, 2 nodes");
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn eval_wrong_width_panics() {
        let mut n = Netlist::new();
        let q = n.add_latch("q", false);
        let qo = n.latch_output(q);
        n.set_latch_next(q, qo);
        n.eval_all(&[], &[]);
    }
}

//! # simcov-lint — static diagnostics for validation models
//!
//! The paper's methodology (Gupta, Malik & Ashar, DAC 1997) hinges on
//! preconditions that are *checkable before any simulation runs*: the
//! test model must be a deterministic, complete, strongly connected FSM
//! whose reachable states are ∀k-distinguishable (Theorem 1), the
//! five Requirements of Section 4 must hold, and the abstraction map
//! from the design to the test model must preserve transitions without
//! collapsing outputs (Sections 6.1–6.3). This crate turns each of
//! those preconditions into a *coded lint* in the style of compiler
//! diagnostics:
//!
//! * every check has a stable code (`SC001`, …) and kebab-case name,
//!   registered once in [`codes`];
//! * findings carry a [`Location`] in model vocabulary (state,
//!   transition, latch, abstract class) and concrete witnesses;
//! * severities (`deny` / `warn` / `allow`) resolve per code through a
//!   [`LintConfig`], so CI can tighten or relax policy without code
//!   changes;
//! * reports render as human-readable text or deterministic JSON.
//!
//! Three pass families cover the three artifact kinds:
//!
//! | family | codes | target |
//! |---|---|---|
//! | [`model`] | `SC001`–`SC008` | explicit Mealy machines |
//! | [`netlist`] | `SC020`–`SC030` | sequential circuits |
//! | [`abstraction`] | `SC040`–`SC042` | quotient maps |
//!
//! ```
//! use simcov_fsm::MealyBuilder;
//! use simcov_lint::{lint_model, LintConfig, ModelTarget};
//!
//! let mut b = MealyBuilder::new();
//! let s0 = b.add_state("s0");
//! let dead = b.add_state("dead");
//! let i = b.add_input("i");
//! let o = b.add_output("o");
//! b.add_transition(s0, i, s0, o);
//! b.add_transition(dead, i, s0, o);
//! let m = b.build(s0).unwrap();
//!
//! let report = lint_model(&ModelTarget::new(&m), &LintConfig::new());
//! assert!(report.has_code("SC001")); // `dead` is unreachable
//! assert!(!report.has_denials());    // ... but that is only a warning
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod codes;
pub mod diag;
mod json;
pub mod model;
pub mod netlist;

pub use abstraction::{lint_quotient, QuotientTarget};
pub use codes::{all_codes, find_code};
pub use diag::{
    run_passes, Diagnostic, Diagnostics, LintCode, LintConfig, LintPass, Location, Severity,
};
pub use model::{lint_build_error, lint_model, model_passes, ModelTarget};
pub use netlist::{lint_blif_error, lint_netlist, netlist_passes};

use simcov_obs::Telemetry;

/// Records a finished lint family's findings into a telemetry sink: the
/// `lint.findings` / `lint.denials` / `lint.warnings` / `lint.suppressed`
/// counters (pure functions of the linted artifact, so traces stay
/// deterministic).
fn record_diags(telemetry: &Telemetry, d: &Diagnostics) {
    telemetry.counter_add("lint.findings", d.items().len() as u64);
    telemetry.counter_add("lint.denials", d.deny_count() as u64);
    telemetry.counter_add("lint.warnings", d.warn_count() as u64);
    telemetry.counter_add("lint.suppressed", d.suppressed() as u64);
}

/// [`lint_netlist`] with telemetry: a `lint/netlist` span around the
/// pass family plus the `lint.*` counters.
pub fn lint_netlist_traced(
    n: &simcov_netlist::Netlist,
    config: &LintConfig,
    telemetry: &Telemetry,
) -> Diagnostics {
    let d = {
        let root = telemetry.span("lint");
        let _s = root.child("netlist");
        lint_netlist(n, config)
    };
    record_diags(telemetry, &d);
    d
}

/// [`lint_model`] with telemetry: a `lint/model` span around the pass
/// family plus the `lint.*` counters (accumulated on top of any earlier
/// family's, mirroring [`Diagnostics::merge`]).
pub fn lint_model_traced(
    target: &ModelTarget<'_>,
    config: &LintConfig,
    telemetry: &Telemetry,
) -> Diagnostics {
    let d = {
        let root = telemetry.span("lint");
        let _s = root.child("model");
        lint_model(target, config)
    };
    record_diags(telemetry, &d);
    d
}

#[cfg(test)]
mod traced_tests {
    use super::*;
    use simcov_fsm::MealyBuilder;

    #[test]
    fn traced_lint_matches_untraced_and_records_counters() {
        let mut b = MealyBuilder::new();
        let s0 = b.add_state("s0");
        let dead = b.add_state("dead");
        let i = b.add_input("i");
        let o = b.add_output("o");
        b.add_transition(s0, i, s0, o);
        b.add_transition(dead, i, s0, o);
        let m = b.build(s0).unwrap();
        let config = LintConfig::new();
        let tel = Telemetry::new();
        let traced = lint_model_traced(&ModelTarget::new(&m), &config, &tel);
        let plain = lint_model(&ModelTarget::new(&m), &config);
        assert_eq!(traced.items().len(), plain.items().len());
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter("lint.findings"),
            Some(plain.items().len() as u64)
        );
        assert_eq!(
            snap.counter("lint.denials"),
            Some(plain.deny_count() as u64)
        );
        assert_eq!(
            snap.counter("lint.warnings"),
            Some(plain.warn_count() as u64)
        );
        assert_eq!(snap.span("lint/model").unwrap().count, 1);
    }
}

//! The `simcov-serve v1` wire protocol.
//!
//! Frames are a 4-byte big-endian `u32` byte length followed by that many
//! bytes of UTF-8 JSON, parsed with the in-repo [`simcov_obs::json`]
//! reader. The framing rules are chosen so a hostile or broken peer can
//! never panic the server or pin its memory:
//!
//! * a length above [`MAX_FRAME_BYTES`] is refused *before any payload
//!   allocation* ([`FrameError::Oversized`]);
//! * a clean EOF between frames is a normal close
//!   ([`FrameError::Closed`]); EOF *inside* a frame is a truncation
//!   ([`FrameError::Truncated`]);
//! * payloads that are not UTF-8 or not valid JSON surface as
//!   [`FrameError::Malformed`], which the server answers with a
//!   structured `{"type":"error"}` frame and keeps the connection open.
//!
//! Requests are JSON objects with a `"type"` field: `campaign`, `lint`,
//! `tour` and `analyze` submit jobs (with `"id"`, a `"model"` object and
//! per-kind options); `query` polls a prior id; `stats` snapshots the
//! server counters; `shutdown` drains and stops the server. Responses
//! are `ack`, `result`, `stats` and `error` objects — see DESIGN.md §14
//! for the full grammar and a worked session.

use crate::jobs::{
    AnalyzeOpts, CampaignOpts, CloseOpts, JobKind, JobSpec, ModelSource, SeverityOverrides,
};
use simcov_core::{CollapseMode, Engine};
use simcov_obs::json::{self, Json};
use std::io::{Read, Write};

/// Hard cap on a frame's payload length (16 MiB). Large enough for any
/// report or model this workspace produces, small enough that a hostile
/// length prefix cannot pin memory.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// A framing failure. `Closed` is the *normal* end of a connection.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on a frame boundary.
    Closed,
    /// EOF inside a length prefix or payload.
    Truncated,
    /// Declared length exceeds [`MAX_FRAME_BYTES`] (refused before
    /// allocation).
    Oversized(usize),
    /// Payload is not UTF-8 or not valid JSON.
    Malformed(String),
    /// Underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Oversized(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            FrameError::Malformed(e) => write!(f, "malformed frame: {e}"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_start: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_start && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning its raw payload text (UTF-8 validated but
/// not yet parsed) — the server journals this verbatim.
pub fn read_frame_text(r: &mut impl Read) -> Result<String, FrameError> {
    let mut len = [0u8; 4];
    read_exact_or(r, &mut len, true)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    String::from_utf8(payload).map_err(|e| FrameError::Malformed(format!("not UTF-8: {e}")))
}

/// Reads one frame, returning its parsed JSON payload.
pub fn read_frame(r: &mut impl Read) -> Result<Json, FrameError> {
    let text = read_frame_text(r)?;
    json::parse(&text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Writes one frame carrying `payload` (already-serialized JSON).
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    debug_assert!(
        bytes.len() <= MAX_FRAME_BYTES,
        "server produced an oversized frame"
    );
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

fn get_str<'a>(obj: &'a Json, field: &str) -> Result<&'a str, String> {
    obj.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{field}`"))
}

fn get_u64(obj: &Json, field: &str, default: u64) -> Result<u64, String> {
    match obj.get(field) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{field}` must be a non-negative integer")),
    }
}

fn get_opt_u64(obj: &Json, field: &str) -> Result<Option<u64>, String> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{field}` must be a non-negative integer")),
    }
}

fn parse_model(req: &Json) -> Result<ModelSource, String> {
    let model = req.get("model").ok_or("missing `model` object")?;
    match (model.get("dlx"), model.get("blif")) {
        (Some(dlx), None) => Ok(ModelSource::Dlx(
            dlx.as_str()
                .ok_or("`model.dlx` must be a string")?
                .to_string(),
        )),
        (None, Some(blif)) => Ok(ModelSource::Blif {
            name: model
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("<wire>")
                .to_string(),
            text: blif
                .as_str()
                .ok_or("`model.blif` must be a string")?
                .to_string(),
        }),
        _ => Err("`model` must carry exactly one of `dlx` or `blif`".to_string()),
    }
}

fn parse_overrides(req: &Json) -> Result<SeverityOverrides, String> {
    let mut overrides = Vec::new();
    let Some(list) = req.get("overrides") else {
        return Ok(overrides);
    };
    let arr = list.as_arr().ok_or("`overrides` must be an array")?;
    for pair in arr {
        let code = pair
            .get("code")
            .and_then(Json::as_str)
            .ok_or("override entries need a string `code`")?;
        let severity = pair
            .get("severity")
            .and_then(Json::as_str)
            .ok_or("override entries need a string `severity`")?;
        overrides.push((code.to_string(), severity.to_string()));
    }
    Ok(overrides)
}

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    /// Submit a job.
    Submit {
        /// The job, ready to queue.
        spec: JobSpec,
        /// Whether the client wants the job's telemetry trace inlined in
        /// the result.
        want_trace: bool,
    },
    /// Poll the result of a previously submitted id.
    Query {
        /// The id to poll.
        id: String,
    },
    /// Snapshot the server's telemetry counters.
    Stats,
    /// Drain the queue and stop the server.
    Shutdown,
}

/// Parses a request frame. Errors are client-facing messages.
pub fn parse_request(req: &Json) -> Result<Request, String> {
    let kind = get_str(req, "type")?;
    match kind {
        "query" => Ok(Request::Query {
            id: get_str(req, "id")?.to_string(),
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "campaign" | "lint" | "tour" | "analyze" | "close" => {
            let id = get_str(req, "id")?.to_string();
            let model = parse_model(req)?;
            let job = match kind {
                "campaign" => {
                    for forbidden in ["checkpoint", "resume"] {
                        if req.get(forbidden).is_some() {
                            return Err(format!(
                                "`{forbidden}` is not accepted over the wire: the server \
                                 journal owns durability (use `serve --resume`)"
                            ));
                        }
                    }
                    let engine = match req.get("engine") {
                        None => Engine::default(),
                        Some(v) => match v.as_str() {
                            Some("naive") => Engine::Naive,
                            Some("differential") => Engine::Differential,
                            Some("packed") => Engine::Packed,
                            Some("symbolic") => Engine::Symbolic,
                            _ => {
                                return Err(
                                    "`engine` must be naive|differential|packed|symbolic".into()
                                )
                            }
                        },
                    };
                    let collapse = match req.get("collapse") {
                        None => CollapseMode::Off,
                        Some(v) => v
                            .as_str()
                            .and_then(|s| s.parse::<CollapseMode>().ok())
                            .ok_or("`collapse` must be off|on|verify")?,
                    };
                    let defaults = CampaignOpts::default();
                    JobKind::Campaign(CampaignOpts {
                        max_faults: get_u64(req, "max_faults", defaults.max_faults as u64)?
                            as usize,
                        seed: get_u64(req, "seed", defaults.seed)?,
                        k: get_u64(req, "k", defaults.k as u64)? as usize,
                        jobs: get_u64(req, "jobs", defaults.jobs as u64)? as usize,
                        max_retries: get_u64(req, "max_retries", defaults.max_retries as u64)?
                            as usize,
                        deadline_ms: get_opt_u64(req, "deadline_ms")?,
                        max_steps: get_opt_u64(req, "max_steps")?,
                        checkpoint: None,
                        resume: false,
                        engine,
                        collapse,
                    })
                }
                "lint" => JobKind::Lint {
                    format: req
                        .get("format")
                        .map(|v| v.as_str().map(str::to_string))
                        .unwrap_or(Some("text".to_string()))
                        .ok_or("`format` must be a string")?,
                    // Matches the CLI's `lint --k` default.
                    k: get_u64(req, "k", 1)? as usize,
                    overrides: parse_overrides(req)?,
                },
                "tour" => JobKind::Tour {
                    kind: req
                        .get("kind")
                        .map(|v| v.as_str().map(str::to_string))
                        .unwrap_or(Some("postman".to_string()))
                        .ok_or("`kind` must be a string")?,
                },
                "analyze" => {
                    let defaults = AnalyzeOpts::default();
                    JobKind::Analyze {
                        format: req
                            .get("format")
                            .map(|v| v.as_str().map(str::to_string))
                            .unwrap_or(Some("text".to_string()))
                            .ok_or("`format` must be a string")?,
                        opts: AnalyzeOpts {
                            max_faults: get_u64(req, "max_faults", defaults.max_faults as u64)?
                                as usize,
                            seed: get_u64(req, "seed", defaults.seed)?,
                            max_nodes: get_u64(req, "max_nodes", defaults.max_nodes as u64)?
                                as usize,
                        },
                        overrides: parse_overrides(req)?,
                    }
                }
                "close" => {
                    let engine = match req.get("engine") {
                        None => Engine::default(),
                        Some(v) => match v.as_str() {
                            Some("naive") => Engine::Naive,
                            Some("differential") => Engine::Differential,
                            Some("packed") => Engine::Packed,
                            Some("symbolic") => Engine::Symbolic,
                            _ => {
                                return Err(
                                    "`engine` must be naive|differential|packed|symbolic".into()
                                )
                            }
                        },
                    };
                    let defaults = CloseOpts::default();
                    JobKind::Close(CloseOpts {
                        max_faults: get_u64(req, "max_faults", defaults.max_faults as u64)?
                            as usize,
                        seed: get_u64(req, "seed", defaults.seed)?,
                        rounds: get_u64(req, "rounds", defaults.rounds as u64)? as usize,
                        budget: get_opt_u64(req, "budget")?,
                        jobs: get_u64(req, "jobs", defaults.jobs as u64)? as usize,
                        engine,
                        collapse: matches!(req.get("collapse"), Some(Json::Bool(true))),
                        format: req
                            .get("format")
                            .map(|v| v.as_str().map(str::to_string))
                            .unwrap_or(Some(defaults.format))
                            .ok_or("`format` must be a string")?,
                    })
                }
                _ => unreachable!("matched above"),
            };
            let want_trace = matches!(req.get("trace"), Some(Json::Bool(true)));
            Ok(Request::Submit {
                spec: JobSpec {
                    id,
                    model,
                    kind: job,
                },
                want_trace,
            })
        }
        other => Err(format!(
            "unknown request type `{other}` \
             (campaign|lint|tour|analyze|close|query|stats|shutdown)"
        )),
    }
}

/// Serializes an error response.
pub fn error_response(message: &str) -> String {
    format!(r#"{{"type":"error","error":"{}"}}"#, json::escape(message))
}

/// Serializes an ack response. `retry_after_ms` accompanies
/// `status: "rejected"` backpressure.
pub fn ack_response(id: &str, status: &str, retry_after_ms: Option<u64>) -> String {
    let mut s = format!(
        r#"{{"type":"ack","id":"{}","status":"{}""#,
        json::escape(id),
        json::escape(status)
    );
    if let Some(ms) = retry_after_ms {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!(r#","retry_after_ms":{ms}"#));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &str) -> Result<Json, FrameError> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        read_frame(&mut &buf[..])
    }

    #[test]
    fn frames_roundtrip() {
        let v = roundtrip(r#"{"type":"stats"}"#).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("stats"));
    }

    #[test]
    fn clean_eof_is_closed_and_partial_eof_is_truncated() {
        assert!(matches!(read_frame(&mut &[][..]), Err(FrameError::Closed)));
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"type":"stats"}"#).unwrap();
        for cut in 1..buf.len() {
            assert!(
                matches!(read_frame(&mut &buf[..cut]), Err(FrameError::Truncated)),
                "cut at {cut} must be a truncation"
            );
        }
    }

    #[test]
    fn oversized_length_is_refused_without_payload() {
        let bytes = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes();
        match read_frame(&mut &bytes[..]) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME_BYTES + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_structured_errors() {
        for bad in ["{", "", "nope", "{\"a\":}"] {
            assert!(
                matches!(roundtrip(bad), Err(FrameError::Malformed(_))),
                "payload {bad:?} must be Malformed"
            );
        }
        // Invalid UTF-8.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn campaign_request_parses_with_defaults() {
        let req = simcov_obs::json::parse(
            r#"{"type":"campaign","id":"j1","model":{"dlx":"reduced-obs"},"seed":7}"#,
        )
        .unwrap();
        match parse_request(&req).unwrap() {
            Request::Submit { spec, want_trace } => {
                assert_eq!(spec.id, "j1");
                assert!(!want_trace);
                match spec.kind {
                    JobKind::Campaign(opts) => {
                        assert_eq!(opts.seed, 7);
                        assert_eq!(opts.max_faults, CampaignOpts::default().max_faults);
                    }
                    other => panic!("expected campaign, got {other:?}"),
                }
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn close_request_parses_with_defaults_and_overrides() {
        let req = simcov_obs::json::parse(
            r#"{"type":"close","id":"c1","model":{"dlx":"reduced-obs"},"seed":7,
                "rounds":4,"budget":5000,"collapse":true,"format":"json"}"#,
        )
        .unwrap();
        match parse_request(&req).unwrap() {
            Request::Submit { spec, .. } => match spec.kind {
                JobKind::Close(opts) => {
                    assert_eq!(opts.seed, 7);
                    assert_eq!(opts.rounds, 4);
                    assert_eq!(opts.budget, Some(5000));
                    assert!(opts.collapse);
                    assert_eq!(opts.format, "json");
                    assert_eq!(opts.max_faults, CloseOpts::default().max_faults);
                }
                other => panic!("expected close, got {other:?}"),
            },
            other => panic!("expected submit, got {other:?}"),
        }
        let bare = simcov_obs::json::parse(r#"{"type":"close","id":"c2","model":{"dlx":"final"}}"#)
            .unwrap();
        match parse_request(&bare).unwrap() {
            Request::Submit { spec, .. } => match spec.kind {
                JobKind::Close(opts) => assert_eq!(opts, CloseOpts::default()),
                other => panic!("expected close, got {other:?}"),
            },
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn wire_campaigns_reject_checkpointing() {
        let req = simcov_obs::json::parse(
            r#"{"type":"campaign","id":"j1","model":{"dlx":"final"},"checkpoint":"x"}"#,
        )
        .unwrap();
        let err = parse_request(&req).unwrap_err();
        assert!(err.contains("server journal"), "{err}");
    }

    #[test]
    fn unknown_type_is_an_error() {
        let req = simcov_obs::json::parse(r#"{"type":"frobnicate"}"#).unwrap();
        assert!(parse_request(&req)
            .unwrap_err()
            .contains("unknown request type"));
    }
}

//! Cube extraction and minterm iteration.

use crate::manager::{Bdd, BddManager, Var};

/// A total assignment to the variables of a manager, indexed by level.
pub type Assignment = Vec<bool>;

/// A partial assignment (cube): literals over a subset of the variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cube {
    /// `(variable, polarity)` literals, sorted by variable level.
    pub literals: Vec<(Var, bool)>,
}

impl Cube {
    /// The polarity of `v` in this cube, if constrained.
    pub fn polarity(&self, v: Var) -> Option<bool> {
        self.literals
            .iter()
            .find(|&&(lv, _)| lv == v)
            .map(|&(_, p)| p)
    }

    /// Expands the cube to a total assignment over `num_vars` variables,
    /// filling unconstrained variables with `false`.
    pub fn to_assignment(&self, num_vars: u32) -> Assignment {
        let mut a = vec![false; num_vars as usize];
        for &(v, p) in &self.literals {
            a[v.0 as usize] = p;
        }
        a
    }
}

impl BddManager {
    /// Extracts one satisfying cube of `f`, or `None` if `f` is
    /// unsatisfiable. Unconstrained variables are omitted from the cube.
    pub fn pick_cube(&self, f: Bdd) -> Option<Cube> {
        if f.is_false() {
            return None;
        }
        let mut literals = Vec::new();
        let mut cur = f;
        while !cur.is_true() {
            let level = self.level_of(cur);
            let (lo, hi) = self.cofactors(cur, level);
            if !lo.is_false() {
                literals.push((Var(level), false));
                cur = lo;
            } else {
                literals.push((Var(level), true));
                cur = hi;
            }
        }
        Some(Cube { literals })
    }

    /// Extracts one satisfying *minterm* of `f` over the given variables:
    /// a cube constraining every variable in `vars`.
    ///
    /// Variables of `f` outside `vars` must not exist (i.e. `vars` must
    /// cover the support of `f`), otherwise the returned minterm may not
    /// satisfy `f` for all completions.
    pub fn pick_minterm(&self, f: Bdd, vars: &[Var]) -> Option<Cube> {
        let partial = self.pick_cube(f)?;
        let mut literals = partial.literals;
        let have: std::collections::HashSet<u32> = literals.iter().map(|&(v, _)| v.0).collect();
        for &v in vars {
            if !have.contains(&v.0) {
                literals.push((v, false));
            }
        }
        literals.sort_unstable_by_key(|&(v, _)| v.0);
        Some(Cube { literals })
    }

    /// Samples a satisfying minterm of `f` over `vars` *uniformly at
    /// random*, using exact solution counts to weight each branch
    /// (constrained-random stimulus generation: `f` is the constraint,
    /// the minterm is the stimulus).
    ///
    /// Randomness is supplied by `pick`, called as `pick(bound)` and
    /// expected to return a uniform value in `[0, bound)` — keeping this
    /// crate free of RNG dependencies.
    ///
    /// Returns `None` if `f` is unsatisfiable. `vars` must cover the
    /// support of `f` and be sorted by level.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable outside `vars` (debug builds),
    /// or if more than 127 variables are given.
    pub fn sample_minterm(
        &self,
        f: Bdd,
        vars: &[crate::Var],
        mut pick: impl FnMut(u128) -> u128,
    ) -> Option<Cube> {
        if f.is_false() {
            return None;
        }
        assert!(
            vars.len() <= 127,
            "sample_minterm supports at most 127 variables"
        );
        debug_assert!(
            vars.windows(2).all(|w| w[0].0 < w[1].0),
            "vars must be sorted"
        );
        let num_vars = vars.last().map(|v| v.0 + 1).unwrap_or(0);
        let mut literals = Vec::with_capacity(vars.len());
        let mut cur = f;
        for &v in vars {
            let level = self.level_of(cur);
            let (lo, hi) = if level == v.0 {
                self.cofactors(cur, level)
            } else {
                // f does not test v here: both branches identical.
                (cur, cur)
            };
            // Count solutions under each branch over the remaining vars.
            let count = |g: Bdd| -> u128 {
                if g.is_false() {
                    0
                } else {
                    // sat_count over the full declared range, then strip
                    // the variables at or above v (handled already) by
                    // counting only below: use the standard trick of
                    // counting over num_vars and dividing by 2^(vars
                    // above v that are free). Simpler: count over
                    // num_vars then shift by the number of decided vars.
                    self.sat_count(g, num_vars)
                }
            };
            let c_lo = count(lo);
            let c_hi = count(hi);
            let total = c_lo + c_hi;
            debug_assert!(total > 0, "reached an unsatisfiable branch");
            let go_high = pick(total) >= c_lo;
            literals.push((v, go_high));
            cur = if go_high { hi } else { lo };
        }
        debug_assert!(cur.is_true(), "vars must cover the support of f");
        Some(Cube { literals })
    }

    /// Iterates all satisfying minterms of `f` over `vars` (which must
    /// cover the support of `f`). The iteration is deterministic
    /// (lexicographic in the variable order).
    ///
    /// # Example
    ///
    /// ```
    /// use simcov_bdd::BddManager;
    ///
    /// let mut m = BddManager::new(2);
    /// let a = m.var(0);
    /// let b = m.var(1);
    /// let f = m.or(a, b);
    /// let vars = [simcov_bdd::Var(0), simcov_bdd::Var(1)];
    /// assert_eq!(m.cubes(f, &vars).count(), 3);
    /// ```
    pub fn cubes<'a>(&'a self, f: Bdd, vars: &'a [Var]) -> CubeIter<'a> {
        CubeIter {
            mgr: self,
            vars,
            stack: if f.is_false() {
                Vec::new()
            } else {
                vec![(f, 0, Vec::new())]
            },
        }
    }
}

/// Iterator over the satisfying minterms of a BDD; see
/// [`BddManager::cubes`].
pub struct CubeIter<'a> {
    mgr: &'a BddManager,
    vars: &'a [Var],
    /// (node, index into vars, literals chosen so far)
    stack: Vec<(Bdd, usize, Vec<bool>)>,
}

impl Iterator for CubeIter<'_> {
    type Item = Cube;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, vi, lits)) = self.stack.pop() {
            if vi == self.vars.len() {
                if node.is_true() {
                    let literals = self.vars.iter().zip(&lits).map(|(&v, &p)| (v, p)).collect();
                    return Some(Cube { literals });
                }
                // Support of f not covered by vars — skip (documented
                // precondition violation degrades to missing minterms, not
                // wrong ones).
                continue;
            }
            let v = self.vars[vi];
            let level = self.mgr.level_of(node);
            let (lo, hi) = if level == v.0 {
                self.mgr.cofactors(node, level)
            } else {
                (node, node)
            };
            // Push high second so that the low branch (false literal) comes
            // out first: lexicographic order.
            if !hi.is_false() {
                let mut l1 = lits.clone();
                l1.push(true);
                self.stack.push((hi, vi + 1, l1));
            }
            if !lo.is_false() {
                let mut l0 = lits;
                l0.push(false);
                self.stack.push((lo, vi + 1, l0));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_cube_none_for_false() {
        let m = BddManager::new(2);
        assert_eq!(m.pick_cube(Bdd::FALSE), None);
    }

    #[test]
    fn pick_cube_satisfies() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(2);
        let nb = m.not(b);
        let f = m.and(a, nb);
        let cube = m.pick_cube(f).unwrap();
        let asg = cube.to_assignment(4);
        assert!(m.eval(f, &asg));
        assert_eq!(cube.polarity(Var(0)), Some(true));
        assert_eq!(cube.polarity(Var(2)), Some(false));
        assert_eq!(cube.polarity(Var(1)), None);
    }

    #[test]
    fn pick_minterm_constrains_all_vars() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let vars = [Var(0), Var(1), Var(2)];
        let mt = m.pick_minterm(a, &vars).unwrap();
        assert_eq!(mt.literals.len(), 3);
        assert!(m.eval(a, &mt.to_assignment(3)));
    }

    #[test]
    fn cubes_enumerates_all_minterms() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let vars = [Var(0), Var(1), Var(2)];
        let minterms: Vec<Cube> = m.cubes(f, &vars).collect();
        assert_eq!(minterms.len(), m.sat_count(f, 3) as usize);
        for mt in &minterms {
            assert!(m.eval(f, &mt.to_assignment(3)));
        }
        // Lexicographic and unique.
        let mut asgs: Vec<Assignment> = minterms.iter().map(|c| c.to_assignment(3)).collect();
        let sorted = {
            let mut s = asgs.clone();
            s.sort();
            s
        };
        assert_eq!(asgs, sorted);
        asgs.dedup();
        assert_eq!(asgs.len(), minterms.len());
    }

    #[test]
    fn cubes_of_true_covers_space() {
        let m = BddManager::new(2);
        let vars = [Var(0), Var(1)];
        assert_eq!(m.cubes(Bdd::TRUE, &vars).count(), 4);
        assert_eq!(m.cubes(Bdd::FALSE, &vars).count(), 0);
    }

    #[test]
    fn cube_to_assignment_default_false() {
        let c = Cube {
            literals: vec![(Var(1), true)],
        };
        assert_eq!(c.to_assignment(3), vec![false, true, false]);
    }

    #[test]
    fn sample_minterm_satisfies_constraint() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let vars = [Var(0), Var(1), Var(2), Var(3)];
        // Deterministic "random" stream.
        let mut state = 12345u128;
        for _ in 0..50 {
            let mt = m
                .sample_minterm(f, &vars, |bound| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state % bound
                })
                .expect("satisfiable");
            assert!(m.eval(f, &mt.to_assignment(4)));
            assert_eq!(mt.literals.len(), 4);
        }
        assert!(m.sample_minterm(Bdd::FALSE, &vars, |b| b / 2).is_none());
    }

    #[test]
    fn sample_minterm_is_roughly_uniform() {
        // f = a | b over 2 vars has 3 minterms; sample many times with a
        // decent PRNG and check each minterm appears with frequency near
        // 1/3.
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        let vars = [Var(0), Var(1)];
        let mut counts = [0u32; 4];
        let mut state = 0x9e3779b97f4a7c15u128;
        for _ in 0..3000 {
            let mt = m
                .sample_minterm(f, &vars, |bound| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % bound
                })
                .expect("satisfiable");
            let asg = mt.to_assignment(2);
            counts[(asg[0] as usize) | ((asg[1] as usize) << 1)] += 1;
        }
        assert_eq!(counts[0], 0, "00 does not satisfy a|b");
        for &c in &counts[1..] {
            assert!((800..1200).contains(&c), "non-uniform: {counts:?}");
        }
    }
}
